#pragma once

/// \file config_io.hpp
/// \brief Load experiment configurations from `key = value` files.
///
/// Lets the CLI and scripted sweeps configure every knob without
/// recompiling. Unknown keys are rejected (typo protection); absent keys
/// keep their paper defaults. Recognized keys are documented in
/// docs/config-reference written by `ecocloud_cli help-config` and in the
/// field lists below.

#include <iosfwd>

#include "ecocloud/scenario/scenario.hpp"

namespace ecocloud::scenario {

/// Keys: servers, core_mhz, core_mix (e.g. "4,6,8"), ram_per_core_mb,
/// vms, horizon_hours, warmup_hours, seed,
/// ta, p, tl, th, alpha, beta, high_dest_factor,
/// monitor_period_s, migration_cooldown_s, migration_latency_s,
/// boot_time_s, grace_period_s, hibernate_delay_s, require_fit,
/// enable_migrations, invite_group_size,
/// reference_mhz, sample_period_s, diurnal_amplitude, diurnal_peak_hour,
/// ar1_rho, dev_base, dev_slope.
///
/// A `[faults]` section (or `faults.`-prefixed keys) configures fault
/// injection: server_mtbf_s, server_mttr_s, migration_abort_prob,
/// boot_failure_prob, max_boot_retries, invitation_loss_prob,
/// reply_loss_prob, max_invite_rounds, redeploy_delay_s,
/// redeploy_backoff_s, redeploy_backoff_max_s, redeploy_max_attempts,
/// and schedule (e.g.
/// "crash 10-20 3600 600, repair 5 7200"). All zero by default.
///
/// A `[checkpoint]` section (out, every_s), an `[audit]` section
/// (every_s, action = log|abort|heal, tolerance, strict) and a
/// `[watchdog]` section (stall_s) configure the robustness machinery
/// (RunControl); all disabled by default.
[[nodiscard]] DailyConfig load_daily_config(std::istream& in);

/// Keys: servers, cores_per_server, core_mhz, initial_vms, horizon_hours,
/// mean_lifetime_hours, metrics_period_s, seed, plus the algorithm and
/// workload keys of load_daily_config (migrations stay disabled).
[[nodiscard]] ConsolidationConfig load_consolidation_config(std::istream& in);

}  // namespace ecocloud::scenario
