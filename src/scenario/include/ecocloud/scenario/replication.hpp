#pragma once

/// \file replication.hpp
/// \brief Multi-seed replication runner with confidence intervals.
///
/// Single simulation runs answer "what happened under seed S"; claims like
/// "ecoCloud's energy is comparable to MBFD's" need replication. The
/// runner executes K independent copies of a daily scenario (seeds
/// base_seed, base_seed+1, ...) across a thread pool — each replication is
/// a self-contained object, so they parallelize embarrassingly — and
/// reports every headline metric as mean +- 95% half-width.

#include <cstddef>

#include "ecocloud/scenario/scenario.hpp"
#include "ecocloud/stats/confidence.hpp"
#include "ecocloud/util/thread_pool.hpp"

namespace ecocloud::scenario {

/// Headline metrics of one completed daily run.
struct RunMetrics {
  double energy_kwh = 0.0;
  double mean_active_servers = 0.0;
  double migrations = 0.0;
  double switches = 0.0;
  double overload_percent = 0.0;
};

/// Extract RunMetrics from a finished DailyScenario (post-warm-up window).
[[nodiscard]] RunMetrics collect_metrics(DailyScenario& daily);

/// Per-metric confidence intervals over the replications.
struct ReplicatedMetrics {
  stats::MeanCI energy_kwh;
  stats::MeanCI mean_active_servers;
  stats::MeanCI migrations;
  stats::MeanCI switches;
  stats::MeanCI overload_percent;
  std::size_t replications = 0;
};

/// Run \p replications copies of the scenario (seeds config.seed + k) under
/// the given algorithm and aggregate. Runs on \p pool when provided
/// (nullptr = sequential).
[[nodiscard]] ReplicatedMetrics run_replicated(
    const DailyConfig& config, Algorithm algorithm, std::size_t replications,
    util::ThreadPool* pool = nullptr,
    baseline::CentralizedParams centralized_params = {});

}  // namespace ecocloud::scenario
