#pragma once

/// \file scenario.hpp
/// \brief Ready-made experiment setups for the paper's two evaluations.
///
/// Benches, examples and integration tests all run the same two scenarios;
/// centralizing the setup keeps every figure reproduction consistent:
///
///  * DailyScenario (Sec. III) — 400 servers (1/3 x 4, 1/3 x 6, 1/3 x 8
///    cores at 2 GHz), 6,000 trace-driven VMs, ecoCloud assignment +
///    migration, 48 hours, metrics every 30 minutes.
///  * ConsolidationScenario (Sec. IV) — 100 six-core servers, 1,500
///    initial VMs spread randomly (10-30% per-server load), migrations
///    disabled, open arrivals/departures, 18 hours starting at midnight.

#include <memory>
#include <optional>
#include <string>

#include "ecocloud/baseline/centralized_controller.hpp"
#include "ecocloud/net/topology.hpp"
#include "ecocloud/core/controller.hpp"
#include "ecocloud/core/open_system.hpp"
#include "ecocloud/core/trace_driver.hpp"
#include "ecocloud/faults/fault_injector.hpp"
#include "ecocloud/metrics/collector.hpp"
#include "ecocloud/trace/rate_estimator.hpp"
#include "ecocloud/trace/trace_set.hpp"

namespace ecocloud::ckpt {
class CheckpointManager;
}

namespace ecocloud::scenario {

/// Robustness knobs shared by both experiments: periodic crash-safe
/// checkpoints, the runtime invariant auditor, and the wall-clock
/// watchdog. Parsed from `[checkpoint]` / `[audit]` / `[watchdog]`
/// config sections (config_io) and overridable from the CLI. Not part
/// of the config digest: a snapshot carries its own checkpoint/audit
/// events, so resuming with different cadences or output paths is safe.
struct RunControl {
  /// Snapshot file written every checkpoint_every_s of sim time. Empty
  /// disables periodic checkpointing.
  std::string checkpoint_out;
  sim::SimTime checkpoint_every_s = 0.0;

  /// Invariant-audit cadence; 0 disables the auditor.
  sim::SimTime audit_every_s = 0.0;
  /// "log" | "abort" | "heal" (ckpt::parse_audit_action).
  std::string audit_action = "log";
  /// Relative tolerance of the floating-point conservation checks.
  double audit_tolerance = 1e-6;
  /// Require every live VM to be owned exactly once. On by default for
  /// the daily scenario; the consolidation scenario's departed VMs are
  /// legitimately unowned, so its loader defaults this to false.
  bool audit_strict = true;

  /// Wall-clock seconds of event-loop silence before the watchdog aborts
  /// with a diagnostic; 0 disables the watchdog.
  double watchdog_stall_s = 0.0;
};

/// Fleet mix of the Sec. III experiment.
struct FleetConfig {
  std::size_t num_servers = 400;
  double core_mhz = 2000.0;
  /// Server classes, assigned round-robin: one third each of 4/6/8 cores.
  std::vector<unsigned> core_mix = {4, 6, 8};
  double ram_per_core_mb = 4096.0;
};

/// Build a hibernated fleet into \p datacenter per the mix.
void build_fleet(dc::DataCenter& datacenter, const FleetConfig& fleet);

/// Parameters of the 48-hour daily-cycle experiment.
struct DailyConfig {
  FleetConfig fleet;
  std::size_t num_vms = 6000;
  sim::SimTime horizon_s = 48.0 * sim::kHour;
  core::EcoCloudParams params;  // paper defaults
  trace::WorkloadConfig workload;
  std::uint64_t seed = 20130520;  // arbitrary but fixed
  /// Back the trace driver with a trace::StreamingTraces cursor bank
  /// instead of a materialized trace::TraceSet: O(VMs) memory instead of
  /// O(VMs x horizon), same event stream bit for bit (DESIGN.md §14).
  /// Deliberately NOT part of the config digest — snapshots are portable
  /// across trace-memory modes. Ignored (forced off) when traces are
  /// supplied externally.
  bool streaming_traces = false;
  /// Skip accounting during the initial consolidation transient.
  sim::SimTime warmup_s = 0.0;
  /// When set, the fleet is organized into racks: invitations go to one
  /// random rack (footnote 1) and migration times include RAM transfer
  /// over the intra-/inter-rack bandwidth. ecoCloud only.
  std::optional<net::TopologyConfig> topology;
  /// Fault injection (crashes, lossy control plane, boot/migration
  /// failures). All-zero (the default) runs the exact fault-free code
  /// paths; see src/faults. ecoCloud only.
  faults::FaultParams faults;
  /// Checkpoint/audit/watchdog wiring (not part of the config digest).
  RunControl run;
};

/// Which algorithm drives the daily scenario.
///  * kEcoCloud     — the paper's decentralized procedures;
///  * kCentralized  — periodic global reoptimization (baseline module);
///  * kStatic       — no consolidation at all: every server active, VMs
///    spread round-robin, no migrations (the "before" reference that
///    motivates the paper's Sec. I under-utilization discussion).
enum class Algorithm { kEcoCloud, kCentralized, kStatic };

/// Configuration fingerprint of a daily run (every field that shapes the
/// deterministic event stream, printed with round-tripping precision).
/// Shared by DailyScenario::config_digest and the sharded runner, which
/// appends its shard count so single- and sharded-run snapshots never
/// restore into each other.
[[nodiscard]] std::string daily_config_digest(const DailyConfig& config,
                                              const char* algo);

/// A fully wired daily-cycle experiment. Construct, then run().
class DailyScenario {
 public:
  explicit DailyScenario(DailyConfig config,
                         Algorithm algorithm = Algorithm::kEcoCloud,
                         baseline::CentralizedParams centralized_params = {});

  /// Drive the scenario with externally supplied traces (e.g. real
  /// PlanetLab logs imported via trace::read_planetlab_dir) instead of the
  /// synthetic workload; config.num_vms is taken from the trace set.
  DailyScenario(DailyConfig config, trace::TraceSet traces,
                Algorithm algorithm = Algorithm::kEcoCloud,
                baseline::CentralizedParams centralized_params = {});

  /// Deploy all VMs at t=0 and simulate the full horizon. Equivalent to
  /// start() + run_slice(horizon) + finish().
  void run();

  /// Finish the horizon of a run restored from a snapshot. Deployment and
  /// service start are skipped — state and the event calendar came back
  /// with the snapshot — and the warmup reset still happens if the
  /// snapshot predates it.
  void run_resumed();

  /// Setup phase of run() without advancing simulation time: boot the
  /// static fleet if applicable, start fault hooks, create and deploy
  /// every VM, start the drivers and the collector. The campaign server
  /// uses start() + repeated run_slice() so it can checkpoint, pause, or
  /// evict a campaign between slices.
  void start();

  /// Advance the simulation to min(\p until, horizon), performing the
  /// warmup accounting reset when the slice crosses warmup_s. Slicing is
  /// invisible to the event stream: nothing samples the clock between
  /// events, so N slices execute the identical event sequence as one
  /// run_until(horizon). Returns true once the horizon has been reached.
  bool run_slice(sim::SimTime until);

  /// Post-horizon bookkeeping: advance idle-interval accounting to the
  /// horizon and finalize fault statistics. Call exactly once, after
  /// run_slice() has returned true.
  void finish();

  /// Register this scenario's state sections and calendar-event owners
  /// (controller, trace driver, collector, faults, scenario flags) plus
  /// the config digest. ecoCloud only: the baseline controllers schedule
  /// untagged events and cannot be checkpointed.
  void register_checkpoint(ckpt::CheckpointManager& manager);

  /// Fingerprint of the immutable configuration; snapshots only restore
  /// into a scenario with an identical digest.
  [[nodiscard]] std::string config_digest() const;

  [[nodiscard]] const DailyConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] dc::DataCenter& datacenter() { return *dc_; }
  /// The materialized trace set. Throws when the scenario runs in
  /// streaming mode (config.streaming_traces) — use streaming() there.
  [[nodiscard]] const trace::TraceSet& traces() const;
  /// The cursor bank backing a streaming-mode run; null otherwise.
  [[nodiscard]] const trace::StreamingTraces* streaming() const {
    return streaming_.get();
  }
  [[nodiscard]] metrics::MetricsCollector& collector() { return *collector_; }
  [[nodiscard]] core::EcoCloudController* ecocloud() { return eco_.get(); }
  [[nodiscard]] baseline::CentralizedController* centralized() {
    return central_.get();
  }
  [[nodiscard]] const net::Topology* topology() const { return topology_.get(); }
  /// Non-null only when config.faults.enabled() and the algorithm is
  /// kEcoCloud; carries the resilience statistics of the run.
  [[nodiscard]] faults::FaultInjector* fault_injector() { return injector_.get(); }

 private:
  /// Shared wiring once the trace source (traces_ or streaming_) exists:
  /// fleet, trace driver, controller, collector, fault injector.
  void init(const baseline::CentralizedParams& centralized_params);

  DailyConfig config_;
  Algorithm algorithm_;
  sim::Simulator sim_;
  std::unique_ptr<net::Topology> topology_;
  std::unique_ptr<dc::DataCenter> dc_;
  std::unique_ptr<trace::TraceSet> traces_;
  std::unique_ptr<trace::StreamingTraces> streaming_;
  std::unique_ptr<core::TraceDriver> trace_driver_;
  std::unique_ptr<core::EcoCloudController> eco_;
  std::unique_ptr<baseline::CentralizedController> central_;
  std::unique_ptr<metrics::MetricsCollector> collector_;
  std::unique_ptr<faults::FaultInjector> injector_;
  /// Whether the warmup accounting reset already happened (part of the
  /// scenario snapshot section, so a resume before/after warmup behaves
  /// exactly like the uninterrupted run).
  bool warmup_done_ = false;
};

/// Parameters of the Sec. IV consolidation experiment.
struct ConsolidationConfig {
  std::size_t num_servers = 100;
  unsigned cores_per_server = 6;
  double core_mhz = 2000.0;
  std::size_t initial_vms = 1500;
  sim::SimTime horizon_s = 18.0 * sim::kHour;
  /// Mean VM lifetime (1/nu). The paper does not publish its lambda/mu;
  /// 2 h gives enough turnover for the system to reach the Fig.-12 steady
  /// state within ~6 hours, as the paper reports.
  sim::SimTime mean_lifetime_s = 2.0 * sim::kHour;
  core::EcoCloudParams params;  // migrations disabled in the constructor
  /// Reference capacity lowered so 1,500 VMs load 100 servers to the
  /// paper's "10-30%" starting condition (DESIGN.md Sec. 5).
  trace::WorkloadConfig workload{.reference_mhz = 1600.0};
  std::uint64_t seed = 19731123;
  /// Metrics sampling period (finer than 30 min to resolve the transient).
  sim::SimTime sample_period_s = 900.0;
  /// Checkpoint/audit/watchdog wiring (not part of the config digest).
  RunControl run;
};

/// The migration-free consolidation experiment with open arrivals.
class ConsolidationScenario {
 public:
  explicit ConsolidationScenario(ConsolidationConfig config);

  void run();

  /// Finish the horizon of a run restored from a snapshot (see
  /// DailyScenario::run_resumed).
  void run_resumed();

  /// Register state sections and event owners with a checkpoint manager
  /// (datacenter, controller, trace driver, open system, rate estimator,
  /// collector) plus the config digest.
  void register_checkpoint(ckpt::CheckpointManager& manager);

  [[nodiscard]] std::string config_digest() const;

  [[nodiscard]] const ConsolidationConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] dc::DataCenter& datacenter() { return *dc_; }
  [[nodiscard]] const trace::TraceSet& traces() const { return *traces_; }
  [[nodiscard]] metrics::MetricsCollector& collector() { return *collector_; }
  [[nodiscard]] core::EcoCloudController& controller() { return *eco_; }
  [[nodiscard]] trace::RateEstimator& rates() { return *rates_; }
  [[nodiscard]] core::OpenSystemDriver& open_system() { return *open_; }

  /// Arrival rate used to drive the scenario (VMs/second at time t).
  [[nodiscard]] double lambda(sim::SimTime t) const;

  /// Per-VM departure rate (1/s).
  [[nodiscard]] double nu() const { return 1.0 / config_.mean_lifetime_s; }

  /// Mean VM demand as a fraction of one server's capacity — the fluid
  /// model's vm_share for this fleet.
  [[nodiscard]] double mean_vm_share() const;

 private:
  ConsolidationConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<dc::DataCenter> dc_;
  std::unique_ptr<trace::TraceSet> traces_;
  std::unique_ptr<core::TraceDriver> trace_driver_;
  std::unique_ptr<core::EcoCloudController> eco_;
  std::unique_ptr<core::OpenSystemDriver> open_;
  std::unique_ptr<trace::RateEstimator> rates_;
  std::unique_ptr<metrics::MetricsCollector> collector_;
};

}  // namespace ecocloud::scenario
