#include "ecocloud/scenario/config_io.hpp"

#include <istream>

#include "ecocloud/faults/fault_model.hpp"
#include "ecocloud/util/key_value.hpp"
#include "ecocloud/util/string_util.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::scenario {

namespace {

/// Read a non-negative integer key (size_t fields must reject negatives
/// instead of wrapping through the cast).
std::size_t get_size(const util::KeyValueConfig& kv, const std::string& key,
                     std::size_t fallback) {
  const long long value = kv.get_int(key, static_cast<long long>(fallback));
  util::require(value >= 0, "config: '" + key + "' must be >= 0");
  return static_cast<std::size_t>(value);
}

void load_params(const util::KeyValueConfig& kv, core::EcoCloudParams& params) {
  params.ta = kv.get_double("ta", params.ta);
  params.p = kv.get_double("p", params.p);
  params.tl = kv.get_double("tl", params.tl);
  params.th = kv.get_double("th", params.th);
  params.alpha = kv.get_double("alpha", params.alpha);
  params.beta = kv.get_double("beta", params.beta);
  params.high_dest_factor = kv.get_double("high_dest_factor", params.high_dest_factor);
  params.monitor_period_s = kv.get_double("monitor_period_s", params.monitor_period_s);
  params.migration_cooldown_s =
      kv.get_double("migration_cooldown_s", params.migration_cooldown_s);
  params.migration_latency_s =
      kv.get_double("migration_latency_s", params.migration_latency_s);
  params.boot_time_s = kv.get_double("boot_time_s", params.boot_time_s);
  params.grace_period_s = kv.get_double("grace_period_s", params.grace_period_s);
  params.hibernate_delay_s =
      kv.get_double("hibernate_delay_s", params.hibernate_delay_s);
  params.require_fit = kv.get_bool("require_fit", params.require_fit);
  params.enable_migrations =
      kv.get_bool("enable_migrations", params.enable_migrations);
  params.invite_group_size =
      get_size(kv, "invite_group_size", params.invite_group_size);
  params.fast_sampler = kv.get_bool("fast_sampler", params.fast_sampler);
}

void load_faults(const util::KeyValueConfig& kv, faults::FaultParams& params) {
  params.server_mtbf_s = kv.get_double("faults.server_mtbf_s", params.server_mtbf_s);
  params.server_mttr_s = kv.get_double("faults.server_mttr_s", params.server_mttr_s);
  params.migration_abort_prob =
      kv.get_double("faults.migration_abort_prob", params.migration_abort_prob);
  params.boot_failure_prob =
      kv.get_double("faults.boot_failure_prob", params.boot_failure_prob);
  params.max_boot_retries =
      get_size(kv, "faults.max_boot_retries", params.max_boot_retries);
  params.invitation_loss_prob =
      kv.get_double("faults.invitation_loss_prob", params.invitation_loss_prob);
  params.reply_loss_prob =
      kv.get_double("faults.reply_loss_prob", params.reply_loss_prob);
  params.max_invite_rounds =
      get_size(kv, "faults.max_invite_rounds", params.max_invite_rounds);
  params.redeploy_delay_s =
      kv.get_double("faults.redeploy_delay_s", params.redeploy_delay_s);
  params.redeploy_backoff_s =
      kv.get_double("faults.redeploy_backoff_s", params.redeploy_backoff_s);
  params.redeploy_backoff_max_s =
      kv.get_double("faults.redeploy_backoff_max_s", params.redeploy_backoff_max_s);
  params.redeploy_max_attempts =
      get_size(kv, "faults.redeploy_max_attempts", params.redeploy_max_attempts);
  const std::string schedule = kv.get_string("faults.schedule", "");
  if (!schedule.empty()) params.schedule = faults::parse_fault_schedule(schedule);
  params.validate();
}

void load_run_control(const util::KeyValueConfig& kv, RunControl& run) {
  run.checkpoint_out = kv.get_string("checkpoint.out", run.checkpoint_out);
  run.checkpoint_every_s =
      kv.get_double("checkpoint.every_s", run.checkpoint_every_s);
  util::require(run.checkpoint_every_s >= 0.0,
                "config: 'checkpoint.every_s' must be >= 0");
  util::require(run.checkpoint_every_s == 0.0 || !run.checkpoint_out.empty(),
                "config: 'checkpoint.every_s' needs 'checkpoint.out'");
  run.audit_every_s = kv.get_double("audit.every_s", run.audit_every_s);
  util::require(run.audit_every_s >= 0.0, "config: 'audit.every_s' must be >= 0");
  run.audit_action = kv.get_string("audit.action", run.audit_action);
  util::require(run.audit_action == "log" || run.audit_action == "abort" ||
                    run.audit_action == "heal",
                "config: 'audit.action' must be log, abort, or heal");
  run.audit_tolerance = kv.get_double("audit.tolerance", run.audit_tolerance);
  util::require(run.audit_tolerance >= 0.0,
                "config: 'audit.tolerance' must be >= 0");
  run.audit_strict = kv.get_bool("audit.strict", run.audit_strict);
  run.watchdog_stall_s = kv.get_double("watchdog.stall_s", run.watchdog_stall_s);
  util::require(run.watchdog_stall_s >= 0.0,
                "config: 'watchdog.stall_s' must be >= 0");
}

void load_workload(const util::KeyValueConfig& kv, trace::WorkloadConfig& workload) {
  workload.reference_mhz = kv.get_double("reference_mhz", workload.reference_mhz);
  workload.sample_period_s =
      kv.get_double("sample_period_s", workload.sample_period_s);
  const double amplitude =
      kv.get_double("diurnal_amplitude", workload.diurnal.amplitude());
  const double peak_hour =
      kv.get_double("diurnal_peak_hour", workload.diurnal.peak_hour());
  workload.diurnal = trace::DiurnalPattern(amplitude, peak_hour);
  workload.ar1_rho = kv.get_double("ar1_rho", workload.ar1_rho);
  workload.dev_base = kv.get_double("dev_base", workload.dev_base);
  workload.dev_slope = kv.get_double("dev_slope", workload.dev_slope);
}

}  // namespace

DailyConfig load_daily_config(std::istream& in) {
  const auto kv = util::KeyValueConfig::parse(in);
  DailyConfig config;

  config.fleet.num_servers = static_cast<std::size_t>(
      kv.get_int("servers", static_cast<long long>(config.fleet.num_servers)));
  config.fleet.core_mhz = kv.get_double("core_mhz", config.fleet.core_mhz);
  config.fleet.ram_per_core_mb =
      kv.get_double("ram_per_core_mb", config.fleet.ram_per_core_mb);
  const std::string mix = kv.get_string("core_mix", "");
  if (!mix.empty()) {
    config.fleet.core_mix.clear();
    for (const std::string& part : util::split(mix, ',')) {
      const long long cores = util::parse_int(part);
      util::require(cores > 0, "core_mix entries must be positive");
      config.fleet.core_mix.push_back(static_cast<unsigned>(cores));
    }
  }

  config.num_vms = static_cast<std::size_t>(
      kv.get_int("vms", static_cast<long long>(config.num_vms)));
  config.horizon_s =
      kv.get_double("horizon_hours", config.horizon_s / sim::kHour) * sim::kHour;
  config.warmup_s =
      kv.get_double("warmup_hours", config.warmup_s / sim::kHour) * sim::kHour;
  config.seed = static_cast<std::uint64_t>(
      kv.get_int("seed", static_cast<long long>(config.seed)));
  config.streaming_traces =
      kv.get_bool("streaming_traces", config.streaming_traces);

  const auto racks = kv.get_int("racks", 0);
  if (racks > 0) {
    net::TopologyConfig topology;
    topology.num_racks = static_cast<std::size_t>(racks);
    topology.intra_rack_gbps =
        kv.get_double("intra_rack_gbps", topology.intra_rack_gbps);
    topology.inter_rack_gbps =
        kv.get_double("inter_rack_gbps", topology.inter_rack_gbps);
    config.topology = topology;
  } else {
    // Consume the bandwidth keys even without racks, for typo detection.
    (void)kv.get_double("intra_rack_gbps", 0.0);
    (void)kv.get_double("inter_rack_gbps", 0.0);
  }

  load_params(kv, config.params);
  load_workload(kv, config.workload);
  load_faults(kv, config.faults);
  load_run_control(kv, config.run);
  kv.require_all_used();
  config.params.validate();
  return config;
}

ConsolidationConfig load_consolidation_config(std::istream& in) {
  const auto kv = util::KeyValueConfig::parse(in);
  ConsolidationConfig config;

  config.num_servers = static_cast<std::size_t>(
      kv.get_int("servers", static_cast<long long>(config.num_servers)));
  config.cores_per_server = static_cast<unsigned>(
      kv.get_int("cores_per_server", config.cores_per_server));
  config.core_mhz = kv.get_double("core_mhz", config.core_mhz);
  config.initial_vms = static_cast<std::size_t>(
      kv.get_int("initial_vms", static_cast<long long>(config.initial_vms)));
  config.horizon_s =
      kv.get_double("horizon_hours", config.horizon_s / sim::kHour) * sim::kHour;
  config.mean_lifetime_s =
      kv.get_double("mean_lifetime_hours", config.mean_lifetime_s / sim::kHour) *
      sim::kHour;
  // "sample_period_s" configures the workload cadence; the metrics window
  // has its own key to avoid the collision.
  config.sample_period_s =
      kv.get_double("metrics_period_s", config.sample_period_s);
  config.seed = static_cast<std::uint64_t>(
      kv.get_int("seed", static_cast<long long>(config.seed)));

  load_params(kv, config.params);
  load_workload(kv, config.workload);
  // Departed VMs stay unowned forever in the open system, so the strict
  // every-VM-owned audit would always fail here.
  config.run.audit_strict = false;
  load_run_control(kv, config.run);
  kv.require_all_used();
  return config;
}

}  // namespace ecocloud::scenario
