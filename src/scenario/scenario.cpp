#include "ecocloud/scenario/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "ecocloud/ckpt/checkpoint.hpp"
#include "ecocloud/util/phase_profiler.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::scenario {

namespace {

/// Digest helpers: every field that shapes the deterministic run is
/// printed exactly (%.17g round-trips doubles) so a snapshot refuses to
/// restore into even a slightly different experiment.
void digest_f(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%.17g", key, value);
  out += buf;
}

void digest_u(std::string& out, const char* key, std::uint64_t value) {
  out += ' ';
  out += key;
  out += '=';
  out += std::to_string(value);
}

void digest_params(std::string& out, const core::EcoCloudParams& p) {
  digest_f(out, "ta", p.ta);
  digest_f(out, "p", p.p);
  digest_f(out, "tl", p.tl);
  digest_f(out, "th", p.th);
  digest_f(out, "alpha", p.alpha);
  digest_f(out, "beta", p.beta);
  digest_f(out, "hdf", p.high_dest_factor);
  digest_f(out, "monitor", p.monitor_period_s);
  digest_f(out, "cooldown", p.migration_cooldown_s);
  digest_f(out, "mig_latency", p.migration_latency_s);
  digest_f(out, "boot", p.boot_time_s);
  digest_f(out, "grace", p.grace_period_s);
  digest_f(out, "hib_delay", p.hibernate_delay_s);
  digest_u(out, "fit", p.require_fit ? 1 : 0);
  digest_u(out, "migrations", p.enable_migrations ? 1 : 0);
  digest_u(out, "invite_group", p.invite_group_size);
  digest_u(out, "fast_sampler", p.fast_sampler ? 1 : 0);
}

void digest_workload(std::string& out, const trace::WorkloadConfig& w) {
  digest_f(out, "ref_mhz", w.reference_mhz);
  digest_f(out, "sample", w.sample_period_s);
  digest_f(out, "diurnal_amp", w.diurnal.amplitude());
  digest_f(out, "diurnal_peak", w.diurnal.peak_hour());
  digest_f(out, "rho", w.ar1_rho);
  digest_f(out, "dev_base", w.dev_base);
  digest_f(out, "dev_slope", w.dev_slope);
  digest_f(out, "ram_min", w.ram_min_mb);
  digest_f(out, "ram_max", w.ram_max_mb);
}

void digest_faults(std::string& out, const faults::FaultParams& f) {
  digest_f(out, "mtbf", f.server_mtbf_s);
  digest_f(out, "mttr", f.server_mttr_s);
  digest_f(out, "mig_abort", f.migration_abort_prob);
  digest_f(out, "boot_fail", f.boot_failure_prob);
  digest_u(out, "boot_retries", f.max_boot_retries);
  digest_f(out, "inv_loss", f.invitation_loss_prob);
  digest_f(out, "reply_loss", f.reply_loss_prob);
  digest_u(out, "invite_rounds", f.max_invite_rounds);
  digest_f(out, "redeploy_delay", f.redeploy_delay_s);
  digest_f(out, "backoff", f.redeploy_backoff_s);
  digest_f(out, "backoff_max", f.redeploy_backoff_max_s);
  digest_u(out, "redeploy_attempts", f.redeploy_max_attempts);
  digest_u(out, "scripted", f.schedule.size());
  for (const faults::ScriptedFault& fault : f.schedule) {
    digest_u(out, "kind", fault.kind == faults::ScriptedFault::Kind::kCrash ? 0 : 1);
    digest_f(out, "at", fault.time);
    digest_u(out, "first", fault.first);
    digest_u(out, "last", fault.last);
    digest_f(out, "repair_after", fault.repair_after_s);
  }
}

}  // namespace

void build_fleet(dc::DataCenter& datacenter, const FleetConfig& fleet) {
  util::require(!fleet.core_mix.empty(), "build_fleet: empty core mix");
  for (std::size_t i = 0; i < fleet.num_servers; ++i) {
    const unsigned cores = fleet.core_mix[i % fleet.core_mix.size()];
    datacenter.add_server(cores, fleet.core_mhz,
                          fleet.ram_per_core_mb * static_cast<double>(cores));
  }
}

DailyScenario::DailyScenario(DailyConfig config, Algorithm algorithm,
                             baseline::CentralizedParams centralized_params)
    : config_(std::move(config)), algorithm_(algorithm) {
  config_.params.validate();
  util::Rng rng(config_.seed);
  const auto num_steps =
      static_cast<std::size_t>(config_.horizon_s /
                               config_.workload.sample_period_s) +
      2;
  trace::WorkloadModel model(config_.workload);
  // Both generators consume the seed stream identically, so the two modes
  // produce the same event stream bit for bit (engine_regression_test pins
  // both against the same hashes).
  if (config_.streaming_traces) {
    streaming_ = std::make_unique<trace::StreamingTraces>(
        trace::StreamingTraces::generate(model, config_.num_vms, num_steps, rng));
  } else {
    traces_ = std::make_unique<trace::TraceSet>(
        trace::TraceSet::generate(model, config_.num_vms, num_steps, rng));
  }
  init(centralized_params);
}

DailyScenario::DailyScenario(DailyConfig config, trace::TraceSet traces,
                             Algorithm algorithm,
                             baseline::CentralizedParams centralized_params)
    : config_(std::move(config)), algorithm_(algorithm) {
  config_.params.validate();
  // Externally supplied traces are materialized by definition.
  config_.streaming_traces = false;
  config_.num_vms = traces.num_vms();
  traces_ = std::make_unique<trace::TraceSet>(std::move(traces));
  init(centralized_params);
}

void DailyScenario::init(const baseline::CentralizedParams& centralized_params) {
  dc_ = std::make_unique<dc::DataCenter>();
  build_fleet(*dc_, config_.fleet);

  if (streaming_) {
    trace_driver_ = std::make_unique<core::TraceDriver>(sim_, *dc_, *streaming_);
  } else {
    trace_driver_ = std::make_unique<core::TraceDriver>(sim_, *dc_, *traces_);
  }

  util::Rng rng(config_.seed);
  if (algorithm_ == Algorithm::kEcoCloud) {
    eco_ = std::make_unique<core::EcoCloudController>(sim_, *dc_, config_.params,
                                                      rng.split(1));
    if (config_.topology) {
      topology_ =
          std::make_unique<net::Topology>(dc_->num_servers(), *config_.topology);
      eco_->set_topology(topology_.get());
    }
  } else if (algorithm_ == Algorithm::kCentralized) {
    central_ = std::make_unique<baseline::CentralizedController>(
        sim_, *dc_, centralized_params, rng.split(1));
  }
  // kStatic needs no controller at all.

  collector_ = std::make_unique<metrics::MetricsCollector>(sim_, *dc_);
  if (eco_) collector_->attach(*eco_);

  if (eco_ && config_.faults.enabled()) {
    // Stream 7 keeps fault draws out of the workload (seed) and
    // controller (split 1) streams: the same seed yields the same fault
    // sequence regardless of the other knobs.
    injector_ = std::make_unique<faults::FaultInjector>(
        sim_, *dc_, *eco_, config_.faults, rng.split(7));
  }
}

void DailyScenario::start() {
  if (algorithm_ == Algorithm::kStatic) {
    // No consolidation: the whole fleet runs and VMs are spread
    // round-robin, as in a data center without any placement policy.
    for (std::size_t s = 0; s < dc_->num_servers(); ++s) {
      dc_->start_booting(0.0, static_cast<dc::ServerId>(s));
      dc_->finish_booting(0.0, static_cast<dc::ServerId>(s));
    }
  }

  // Hooks must be live before the first deployment: message loss applies
  // to the initial placement wave too.
  if (injector_) injector_->start();

  // Create all VMs with their t=0 demand and deploy them; the controllers
  // wake servers and queue VMs as boots complete. At planet scale this
  // wave is tens of seconds of wall time, so it carries its own phase —
  // one span, always timed, never mistaken for steady-state event cost.
  {
    util::ScopedPhase profile(util::Phase::kVmLifecycle);
    for (std::size_t i = 0; i < config_.num_vms; ++i) {
      const double ram_mb =
          streaming_ ? streaming_->ram_mb(i) : traces_->ram_mb(i);
      const dc::VmId vm = dc_->create_vm(0.0, ram_mb);
      trace_driver_->map_vm(i, vm);
      if (eco_) {
        eco_->deploy_vm(vm);
      } else if (central_) {
        central_->deploy_vm(vm);
      } else {
        dc_->place_vm(0.0, vm,
                      static_cast<dc::ServerId>(i % dc_->num_servers()));
      }
    }
  }

  trace_driver_->start();
  if (eco_) eco_->start();
  if (central_) central_->start();
  collector_->start();
}

bool DailyScenario::run_slice(sim::SimTime until) {
  const sim::SimTime target = std::min(until, config_.horizon_s);
  if (config_.warmup_s > 0.0 && !warmup_done_ &&
      target >= config_.warmup_s) {
    sim_.run_until(config_.warmup_s);
    dc_->reset_accounting(sim_.now());
    collector_->rebase();
    if (eco_) eco_->reset_counters();
    warmup_done_ = true;
  }
  sim_.run_until(target);
  return target >= config_.horizon_s;
}

void DailyScenario::finish() {
  dc_->advance_to(config_.horizon_s);
  if (injector_) injector_->finalize(config_.horizon_s);
}

void DailyScenario::run() {
  start();
  run_slice(config_.horizon_s);
  finish();
}

void DailyScenario::run_resumed() {
  run_slice(config_.horizon_s);
  finish();
}

const trace::TraceSet& DailyScenario::traces() const {
  util::require(traces_ != nullptr,
                "DailyScenario::traces: run is in streaming mode "
                "(config.streaming_traces) — no materialized TraceSet exists");
  return *traces_;
}

std::string daily_config_digest(const DailyConfig& config, const char* algo) {
  std::string digest = "daily algo=";
  digest += algo;
  digest_u(digest, "seed", config.seed);
  digest_u(digest, "servers", config.fleet.num_servers);
  digest_f(digest, "core_mhz", config.fleet.core_mhz);
  digest += " mix=";
  for (unsigned cores : config.fleet.core_mix) {
    digest += std::to_string(cores);
    digest += ',';
  }
  digest_f(digest, "ram_per_core", config.fleet.ram_per_core_mb);
  digest_u(digest, "vms", config.num_vms);
  digest_f(digest, "horizon", config.horizon_s);
  digest_f(digest, "warmup", config.warmup_s);
  digest_params(digest, config.params);
  digest_workload(digest, config.workload);
  digest_faults(digest, config.faults);
  if (config.topology) {
    digest_u(digest, "racks", config.topology->num_racks);
    digest_f(digest, "intra_gbps", config.topology->intra_rack_gbps);
    digest_f(digest, "inter_gbps", config.topology->inter_rack_gbps);
  } else {
    digest += " topo=none";
  }
  return digest;
}

std::string DailyScenario::config_digest() const {
  return daily_config_digest(config_,
                             algorithm_ == Algorithm::kEcoCloud       ? "eco"
                             : algorithm_ == Algorithm::kCentralized ? "centralized"
                                                                     : "static");
}

void DailyScenario::register_checkpoint(ckpt::CheckpointManager& manager) {
  util::require(eco_ != nullptr,
                "checkpointing supports the ecoCloud algorithm only (the "
                "baseline controllers schedule untagged events)");
  manager.set_config_digest(config_digest());

  manager.add_section(
      "scenario", [this](util::BinWriter& w) { w.boolean(warmup_done_); },
      [this](util::BinReader& r) { warmup_done_ = r.boolean(); });
  manager.add_section(
      "datacenter", [this](util::BinWriter& w) { dc_->save_state(w); },
      [this](util::BinReader& r) { dc_->load_state(r); });
  manager.add_section(
      "controller", [this](util::BinWriter& w) { eco_->save_state(w); },
      [this](util::BinReader& r) { eco_->load_state(r); });
  manager.add_section(
      "trace_driver", [this](util::BinWriter& w) { trace_driver_->save_state(w); },
      [this](util::BinReader& r) { trace_driver_->load_state(r); });
  manager.add_section(
      "collector", [this](util::BinWriter& w) { collector_->save_state(w); },
      [this](util::BinReader& r) { collector_->load_state(r); });
  if (injector_) {
    manager.add_section(
        "faults", [this](util::BinWriter& w) { injector_->save_state(w); },
        [this](util::BinReader& r) { injector_->load_state(r); });
  }

  manager.add_owner(
      sim::tag_owner::kController,
      [this](const sim::EventTag& tag) { return eco_->rebuild_event(tag); },
      [this](const sim::EventTag& tag, sim::EventHandle handle) {
        eco_->bind_event(tag, handle);
      });
  manager.add_owner(sim::tag_owner::kTraceDriver, [this](const sim::EventTag& tag) {
    return trace_driver_->rebuild_event(tag);
  });
  manager.add_owner(sim::tag_owner::kCollector, [this](const sim::EventTag& tag) {
    return collector_->rebuild_event(tag);
  });
  if (injector_) {
    manager.add_owner(sim::tag_owner::kFaults, [this](const sim::EventTag& tag) {
      return injector_->rebuild_event(tag);
    });
    manager.add_owner(
        sim::tag_owner::kRedeploy,
        [this](const sim::EventTag& tag) {
          return injector_->redeploy().rebuild_event(tag);
        },
        [this](const sim::EventTag& tag, sim::EventHandle handle) {
          injector_->redeploy().bind_event(tag, handle);
        });
  }
}

ConsolidationScenario::ConsolidationScenario(ConsolidationConfig config)
    : config_(std::move(config)) {
  // The Sec. IV experiment studies the assignment procedure in isolation.
  config_.params.enable_migrations = false;
  config_.params.validate();

  dc_ = std::make_unique<dc::DataCenter>();
  for (std::size_t i = 0; i < config_.num_servers; ++i) {
    dc_->add_server(config_.cores_per_server, config_.core_mhz);
  }

  util::Rng rng(config_.seed);
  const auto num_steps =
      static_cast<std::size_t>(config_.horizon_s / config_.workload.sample_period_s) + 2;
  trace::WorkloadModel model(config_.workload);
  traces_ = std::make_unique<trace::TraceSet>(
      trace::TraceSet::generate(model, 6000, num_steps, rng));

  trace_driver_ = std::make_unique<core::TraceDriver>(sim_, *dc_, *traces_);
  eco_ = std::make_unique<core::EcoCloudController>(sim_, *dc_, config_.params,
                                                    rng.split(1));
  rates_ = std::make_unique<trace::RateEstimator>(1800.0);

  const double nu_rate = nu();
  const std::size_t target = config_.initial_vms;
  const trace::DiurnalPattern diurnal = config_.workload.diurnal;
  auto lambda_fn = [target, nu_rate, diurnal](sim::SimTime t) {
    return static_cast<double>(target) * nu_rate * diurnal.value(t);
  };
  const double lambda_max =
      static_cast<double>(target) * nu_rate * diurnal.max() * 1.001;

  open_ = std::make_unique<core::OpenSystemDriver>(sim_, *dc_, *eco_, *trace_driver_,
                                                   *traces_, rng.split(2), lambda_fn,
                                                   lambda_max, nu_rate);
  open_->set_rate_estimator(rates_.get());

  metrics::CollectorConfig mc;
  mc.sample_period_s = config_.sample_period_s;
  collector_ = std::make_unique<metrics::MetricsCollector>(sim_, *dc_, mc);
  collector_->attach(*eco_);
}

double ConsolidationScenario::lambda(sim::SimTime t) const {
  return static_cast<double>(config_.initial_vms) * nu() *
         config_.workload.diurnal.value(t);
}

double ConsolidationScenario::mean_vm_share() const {
  const double mean_mhz = trace::WorkloadModel::expected_average_percent() / 100.0 *
                          config_.workload.reference_mhz;
  const double capacity =
      static_cast<double>(config_.cores_per_server) * config_.core_mhz;
  return mean_mhz / capacity;
}

void ConsolidationScenario::run() {
  // Non-consolidated start: every server active, VMs spread uniformly.
  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    eco_->force_activate(static_cast<dc::ServerId>(s));
  }
  open_->seed_initial_population(config_.initial_vms);
  dc_->reset_accounting(sim_.now());

  trace_driver_->start();
  eco_->start();  // no-op with migrations disabled, kept for symmetry
  open_->start();
  collector_->sample_now();
  collector_->start();

  sim_.run_until(config_.horizon_s);
  dc_->advance_to(config_.horizon_s);
}

void ConsolidationScenario::run_resumed() {
  sim_.run_until(config_.horizon_s);
  dc_->advance_to(config_.horizon_s);
}

std::string ConsolidationScenario::config_digest() const {
  std::string digest = "consolidation";
  digest_u(digest, "seed", config_.seed);
  digest_u(digest, "servers", config_.num_servers);
  digest_u(digest, "cores", config_.cores_per_server);
  digest_f(digest, "core_mhz", config_.core_mhz);
  digest_u(digest, "initial_vms", config_.initial_vms);
  digest_f(digest, "horizon", config_.horizon_s);
  digest_f(digest, "lifetime", config_.mean_lifetime_s);
  digest_f(digest, "sample", config_.sample_period_s);
  digest_params(digest, config_.params);
  digest_workload(digest, config_.workload);
  return digest;
}

void ConsolidationScenario::register_checkpoint(ckpt::CheckpointManager& manager) {
  manager.set_config_digest(config_digest());

  manager.add_section(
      "datacenter", [this](util::BinWriter& w) { dc_->save_state(w); },
      [this](util::BinReader& r) { dc_->load_state(r); });
  manager.add_section(
      "controller", [this](util::BinWriter& w) { eco_->save_state(w); },
      [this](util::BinReader& r) { eco_->load_state(r); });
  manager.add_section(
      "trace_driver", [this](util::BinWriter& w) { trace_driver_->save_state(w); },
      [this](util::BinReader& r) { trace_driver_->load_state(r); });
  manager.add_section(
      "open_system", [this](util::BinWriter& w) { open_->save_state(w); },
      [this](util::BinReader& r) { open_->load_state(r); });
  manager.add_section(
      "rates", [this](util::BinWriter& w) { rates_->save_state(w); },
      [this](util::BinReader& r) { rates_->load_state(r); });
  manager.add_section(
      "collector", [this](util::BinWriter& w) { collector_->save_state(w); },
      [this](util::BinReader& r) { collector_->load_state(r); });

  manager.add_owner(
      sim::tag_owner::kController,
      [this](const sim::EventTag& tag) { return eco_->rebuild_event(tag); },
      [this](const sim::EventTag& tag, sim::EventHandle handle) {
        eco_->bind_event(tag, handle);
      });
  manager.add_owner(sim::tag_owner::kTraceDriver, [this](const sim::EventTag& tag) {
    return trace_driver_->rebuild_event(tag);
  });
  manager.add_owner(sim::tag_owner::kOpenSystem, [this](const sim::EventTag& tag) {
    return open_->rebuild_event(tag);
  });
  manager.add_owner(sim::tag_owner::kCollector, [this](const sim::EventTag& tag) {
    return collector_->rebuild_event(tag);
  });
}

}  // namespace ecocloud::scenario
