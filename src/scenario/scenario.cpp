#include "ecocloud/scenario/scenario.hpp"

#include <algorithm>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::scenario {

void build_fleet(dc::DataCenter& datacenter, const FleetConfig& fleet) {
  util::require(!fleet.core_mix.empty(), "build_fleet: empty core mix");
  for (std::size_t i = 0; i < fleet.num_servers; ++i) {
    const unsigned cores = fleet.core_mix[i % fleet.core_mix.size()];
    datacenter.add_server(cores, fleet.core_mhz,
                          fleet.ram_per_core_mb * static_cast<double>(cores));
  }
}

DailyScenario::DailyScenario(DailyConfig config, Algorithm algorithm,
                             baseline::CentralizedParams centralized_params)
    : DailyScenario(
          [&config] {
            config.params.validate();
            util::Rng rng(config.seed);
            const auto num_steps = static_cast<std::size_t>(
                                       config.horizon_s /
                                       config.workload.sample_period_s) +
                                   2;
            trace::WorkloadModel model(config.workload);
            return trace::TraceSet::generate(model, config.num_vms, num_steps,
                                             rng);
          }(),
          config, algorithm, centralized_params) {}

DailyScenario::DailyScenario(DailyConfig config, trace::TraceSet traces,
                             Algorithm algorithm,
                             baseline::CentralizedParams centralized_params)
    : DailyScenario(std::move(traces), config, algorithm, centralized_params) {}

DailyScenario::DailyScenario(trace::TraceSet traces, DailyConfig config,
                             Algorithm algorithm,
                             baseline::CentralizedParams centralized_params)
    : config_(std::move(config)), algorithm_(algorithm) {
  config_.params.validate();
  config_.num_vms = traces.num_vms();

  dc_ = std::make_unique<dc::DataCenter>();
  build_fleet(*dc_, config_.fleet);

  traces_ = std::make_unique<trace::TraceSet>(std::move(traces));
  trace_driver_ = std::make_unique<core::TraceDriver>(sim_, *dc_, *traces_);

  util::Rng rng(config_.seed);
  if (algorithm_ == Algorithm::kEcoCloud) {
    eco_ = std::make_unique<core::EcoCloudController>(sim_, *dc_, config_.params,
                                                      rng.split(1));
    if (config_.topology) {
      topology_ =
          std::make_unique<net::Topology>(dc_->num_servers(), *config_.topology);
      eco_->set_topology(topology_.get());
    }
  } else if (algorithm_ == Algorithm::kCentralized) {
    central_ = std::make_unique<baseline::CentralizedController>(
        sim_, *dc_, centralized_params, rng.split(1));
  }
  // kStatic needs no controller at all.

  collector_ = std::make_unique<metrics::MetricsCollector>(sim_, *dc_);
  if (eco_) collector_->attach(*eco_);

  if (eco_ && config_.faults.enabled()) {
    // Stream 7 keeps fault draws out of the workload (seed) and
    // controller (split 1) streams: the same seed yields the same fault
    // sequence regardless of the other knobs.
    injector_ = std::make_unique<faults::FaultInjector>(
        sim_, *dc_, *eco_, config_.faults, rng.split(7));
  }
}

void DailyScenario::run() {
  if (algorithm_ == Algorithm::kStatic) {
    // No consolidation: the whole fleet runs and VMs are spread
    // round-robin, as in a data center without any placement policy.
    for (std::size_t s = 0; s < dc_->num_servers(); ++s) {
      dc_->start_booting(0.0, static_cast<dc::ServerId>(s));
      dc_->finish_booting(0.0, static_cast<dc::ServerId>(s));
    }
  }

  // Hooks must be live before the first deployment: message loss applies
  // to the initial placement wave too.
  if (injector_) injector_->start();

  // Create all VMs with their t=0 demand and deploy them; the controllers
  // wake servers and queue VMs as boots complete.
  for (std::size_t i = 0; i < config_.num_vms; ++i) {
    const dc::VmId vm = dc_->create_vm(0.0, traces_->ram_mb(i));
    trace_driver_->map_vm(i, vm);
    if (eco_) {
      eco_->deploy_vm(vm);
    } else if (central_) {
      central_->deploy_vm(vm);
    } else {
      dc_->place_vm(0.0, vm, static_cast<dc::ServerId>(i % dc_->num_servers()));
    }
  }

  trace_driver_->start();
  if (eco_) eco_->start();
  if (central_) central_->start();
  collector_->start();

  if (config_.warmup_s > 0.0) {
    sim_.run_until(config_.warmup_s);
    dc_->reset_accounting(sim_.now());
    collector_->rebase();
    if (eco_) eco_->reset_counters();
  }
  sim_.run_until(config_.horizon_s);
  dc_->advance_to(config_.horizon_s);
  if (injector_) injector_->finalize(config_.horizon_s);
}

ConsolidationScenario::ConsolidationScenario(ConsolidationConfig config)
    : config_(std::move(config)) {
  // The Sec. IV experiment studies the assignment procedure in isolation.
  config_.params.enable_migrations = false;
  config_.params.validate();

  dc_ = std::make_unique<dc::DataCenter>();
  for (std::size_t i = 0; i < config_.num_servers; ++i) {
    dc_->add_server(config_.cores_per_server, config_.core_mhz);
  }

  util::Rng rng(config_.seed);
  const auto num_steps =
      static_cast<std::size_t>(config_.horizon_s / config_.workload.sample_period_s) + 2;
  trace::WorkloadModel model(config_.workload);
  traces_ = std::make_unique<trace::TraceSet>(
      trace::TraceSet::generate(model, 6000, num_steps, rng));

  trace_driver_ = std::make_unique<core::TraceDriver>(sim_, *dc_, *traces_);
  eco_ = std::make_unique<core::EcoCloudController>(sim_, *dc_, config_.params,
                                                    rng.split(1));
  rates_ = std::make_unique<trace::RateEstimator>(1800.0);

  const double nu_rate = nu();
  const std::size_t target = config_.initial_vms;
  const trace::DiurnalPattern diurnal = config_.workload.diurnal;
  auto lambda_fn = [target, nu_rate, diurnal](sim::SimTime t) {
    return static_cast<double>(target) * nu_rate * diurnal.value(t);
  };
  const double lambda_max =
      static_cast<double>(target) * nu_rate * diurnal.max() * 1.001;

  open_ = std::make_unique<core::OpenSystemDriver>(sim_, *dc_, *eco_, *trace_driver_,
                                                   *traces_, rng.split(2), lambda_fn,
                                                   lambda_max, nu_rate);
  open_->set_rate_estimator(rates_.get());

  metrics::CollectorConfig mc;
  mc.sample_period_s = config_.sample_period_s;
  collector_ = std::make_unique<metrics::MetricsCollector>(sim_, *dc_, mc);
  collector_->attach(*eco_);
}

double ConsolidationScenario::lambda(sim::SimTime t) const {
  return static_cast<double>(config_.initial_vms) * nu() *
         config_.workload.diurnal.value(t);
}

double ConsolidationScenario::mean_vm_share() const {
  const double mean_mhz = trace::WorkloadModel::expected_average_percent() / 100.0 *
                          config_.workload.reference_mhz;
  const double capacity =
      static_cast<double>(config_.cores_per_server) * config_.core_mhz;
  return mean_mhz / capacity;
}

void ConsolidationScenario::run() {
  // Non-consolidated start: every server active, VMs spread uniformly.
  for (std::size_t s = 0; s < config_.num_servers; ++s) {
    eco_->force_activate(static_cast<dc::ServerId>(s));
  }
  open_->seed_initial_population(config_.initial_vms);
  dc_->reset_accounting(sim_.now());

  trace_driver_->start();
  eco_->start();  // no-op with migrations disabled, kept for symmetry
  open_->start();
  collector_->sample_now();
  collector_->start();

  sim_.run_until(config_.horizon_s);
  dc_->advance_to(config_.horizon_s);
}

}  // namespace ecocloud::scenario
