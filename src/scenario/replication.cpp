#include "ecocloud/scenario/replication.hpp"

#include "ecocloud/util/validation.hpp"

namespace ecocloud::scenario {

RunMetrics collect_metrics(DailyScenario& daily) {
  RunMetrics out;
  const dc::DataCenter& d = daily.datacenter();
  out.energy_kwh = d.energy_joules() / 3.6e6;
  out.migrations = static_cast<double>(d.total_migrations());
  out.switches =
      static_cast<double>(d.total_activations() + d.total_hibernations());
  out.overload_percent =
      d.vm_seconds() > 0.0 ? 100.0 * d.overload_vm_seconds() / d.vm_seconds()
                           : 0.0;
  double active = 0.0;
  std::size_t n = 0;
  for (const auto& sample : daily.collector().samples()) {
    if (sample.time <= daily.config().warmup_s + 1e-9) continue;
    active += static_cast<double>(sample.active_servers);
    ++n;
  }
  out.mean_active_servers = n ? active / static_cast<double>(n) : 0.0;
  return out;
}

ReplicatedMetrics run_replicated(const DailyConfig& config, Algorithm algorithm,
                                 std::size_t replications, util::ThreadPool* pool,
                                 baseline::CentralizedParams centralized_params) {
  util::require(replications >= 1, "run_replicated: need at least 1 replication");

  std::vector<RunMetrics> runs(replications);
  const auto one = [&](std::size_t k) {
    DailyConfig replica = config;
    replica.seed = config.seed + k;
    DailyScenario daily(replica, algorithm, centralized_params);
    daily.run();
    runs[k] = collect_metrics(daily);
  };

  if (pool) {
    pool->parallel_for(0, replications, one);
  } else {
    for (std::size_t k = 0; k < replications; ++k) one(k);
  }

  const auto gather = [&](double RunMetrics::* field) {
    std::vector<double> values;
    values.reserve(replications);
    for (const RunMetrics& run : runs) values.push_back(run.*field);
    return stats::mean_ci_95(values);
  };

  ReplicatedMetrics out;
  out.replications = replications;
  out.energy_kwh = gather(&RunMetrics::energy_kwh);
  out.mean_active_servers = gather(&RunMetrics::mean_active_servers);
  out.migrations = gather(&RunMetrics::migrations);
  out.switches = gather(&RunMetrics::switches);
  out.overload_percent = gather(&RunMetrics::overload_percent);
  return out;
}

}  // namespace ecocloud::scenario
