#include "ecocloud/dc/server.hpp"

#include <algorithm>
#include <cmath>

#include "ecocloud/util/math.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::dc {

const char* to_string(ServerState state) {
  switch (state) {
    case ServerState::kHibernated: return "hibernated";
    case ServerState::kBooting: return "booting";
    case ServerState::kActive: return "active";
    case ServerState::kFailed: return "failed";
  }
  return "unknown";
}

Server ServerSoA::add(unsigned cores, double mhz, double ram_mb) {
  util::require(cores > 0, "Server: num_cores must be > 0");
  util::require(mhz > 0.0, "Server: core_mhz must be > 0");
  util::require(ram_mb >= 0.0, "Server: ram_mb must be >= 0");
  const auto id = static_cast<ServerId>(size());
  num_cores.push_back(cores);
  core_mhz.push_back(mhz);
  capacity_mhz.push_back(static_cast<double>(cores) * mhz);
  ram_capacity_mb.push_back(ram_mb);
  state.push_back(static_cast<std::uint8_t>(ServerState::kHibernated));
  demand_mhz.push_back(0.0);
  ram_used_mb.push_back(0.0);
  reserved_mhz.push_back(0.0);
  reservation_count.push_back(0);
  migrating_out_count.push_back(0);
  grace_until.push_back(-1.0);
  migration_cooldown_until.push_back(-1.0);
  vms.emplace_back();
  vm_count.push_back(0);
  return Server(*this, id);
}

double Server::utilization() const { return util::clamp01(demand_ratio()); }

double Server::decision_utilization() const {
  return util::clamp01((demand_mhz() + reserved_mhz()) / capacity_mhz());
}

double Server::granted_fraction() const {
  return overloaded() ? capacity_mhz() / demand_mhz() : 1.0;
}

void Server::host_vm(VmId vm, double demand, double ram) {
  soa_->vms[id_].push_back(vm);
  ++soa_->vm_count[id_];
  soa_->demand_mhz[id_] += demand;
  soa_->ram_used_mb[id_] += ram;
}

void Server::unhost_vm(VmId vm, double demand, double ram) {
  std::vector<VmId>& hosted = soa_->vms[id_];
  const auto it = std::find(hosted.begin(), hosted.end(), vm);
  util::ensure(it != hosted.end(), "Server::unhost_vm: VM not hosted here");
  *it = hosted.back();
  hosted.pop_back();
  --soa_->vm_count[id_];
  double& load = soa_->demand_mhz[id_];
  double& ram_used = soa_->ram_used_mb[id_];
  load -= demand;
  ram_used -= ram;
  // Cancel accumulated floating-point drift near zero.
  if (hosted.empty() || load < 0.0) load = std::max(0.0, load);
  if (hosted.empty()) load = 0.0;
  if (hosted.empty() || ram_used < 0.0) ram_used = std::max(0.0, ram_used);
  if (hosted.empty()) ram_used = 0.0;
}

void Server::change_demand(double delta_mhz) {
  double& load = soa_->demand_mhz[id_];
  load += delta_mhz;
  if (load < 0.0) load = 0.0;
}

void Server::remove_reservation(double mhz) {
  double& reserved = soa_->reserved_mhz[id_];
  reserved -= mhz;
  if (soa_->reservation_count[id_] > 0) --soa_->reservation_count[id_];
  if (reserved < 0.0) reserved = 0.0;
}

void Server::save_state(util::BinWriter& w) const {
  w.u8(soa_->state[id_]);
  w.f64(demand_mhz());
  w.f64(ram_used_mb());
  w.f64(reserved_mhz());
  w.u64(reservation_count());
  w.u64(migrating_out_count());
  const std::vector<VmId>& hosted = vms();
  w.u64(hosted.size());
  for (VmId vm : hosted) w.u64(static_cast<std::uint64_t>(vm));
  w.f64(grace_until());
  w.f64(migration_cooldown_until());
}

void Server::load_state(util::BinReader& r) {
  const auto state = r.u8();
  util::require(state <= static_cast<std::uint8_t>(ServerState::kFailed),
                "Server::load_state: invalid power state byte");
  soa_->state[id_] = state;
  soa_->demand_mhz[id_] = r.f64();
  soa_->ram_used_mb[id_] = r.f64();
  soa_->reserved_mhz[id_] = r.f64();
  soa_->reservation_count[id_] = static_cast<std::uint32_t>(r.u64());
  soa_->migrating_out_count[id_] = static_cast<std::uint32_t>(r.u64());
  const std::uint64_t n = r.u64();
  std::vector<VmId>& hosted = soa_->vms[id_];
  hosted.clear();
  hosted.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    hosted.push_back(static_cast<VmId>(r.u64()));
  }
  soa_->vm_count[id_] = static_cast<std::uint32_t>(n);
  soa_->grace_until[id_] = r.f64();
  soa_->migration_cooldown_until[id_] = r.f64();
}

}  // namespace ecocloud::dc
