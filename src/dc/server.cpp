#include "ecocloud/dc/server.hpp"

#include <algorithm>
#include <cmath>

#include "ecocloud/util/math.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::dc {

const char* to_string(ServerState state) {
  switch (state) {
    case ServerState::kHibernated: return "hibernated";
    case ServerState::kBooting: return "booting";
    case ServerState::kActive: return "active";
    case ServerState::kFailed: return "failed";
  }
  return "unknown";
}

Server::Server(ServerId id, unsigned num_cores, double core_mhz, double ram_mb)
    : id_(id),
      num_cores_(num_cores),
      core_mhz_(core_mhz),
      capacity_mhz_(static_cast<double>(num_cores) * core_mhz),
      ram_mb_(ram_mb) {
  util::require(num_cores > 0, "Server: num_cores must be > 0");
  util::require(core_mhz > 0.0, "Server: core_mhz must be > 0");
  util::require(ram_mb >= 0.0, "Server: ram_mb must be >= 0");
}

double Server::utilization() const { return util::clamp01(demand_ratio()); }

double Server::decision_utilization() const {
  return util::clamp01((demand_mhz_ + reserved_mhz_) / capacity_mhz_);
}

double Server::granted_fraction() const {
  return overloaded() ? capacity_mhz_ / demand_mhz_ : 1.0;
}

void Server::host_vm(VmId vm, double demand_mhz, double ram_mb) {
  vms_.push_back(vm);
  demand_mhz_ += demand_mhz;
  ram_used_mb_ += ram_mb;
}

void Server::unhost_vm(VmId vm, double demand_mhz, double ram_mb) {
  const auto it = std::find(vms_.begin(), vms_.end(), vm);
  util::ensure(it != vms_.end(), "Server::unhost_vm: VM not hosted here");
  *it = vms_.back();
  vms_.pop_back();
  demand_mhz_ -= demand_mhz;
  ram_used_mb_ -= ram_mb;
  // Cancel accumulated floating-point drift near zero.
  if (vms_.empty() || demand_mhz_ < 0.0) demand_mhz_ = std::max(0.0, demand_mhz_);
  if (vms_.empty()) demand_mhz_ = 0.0;
  if (vms_.empty() || ram_used_mb_ < 0.0) ram_used_mb_ = std::max(0.0, ram_used_mb_);
  if (vms_.empty()) ram_used_mb_ = 0.0;
}

void Server::change_demand(double delta_mhz) {
  demand_mhz_ += delta_mhz;
  if (demand_mhz_ < 0.0) demand_mhz_ = 0.0;
}

void Server::remove_reservation(double mhz) {
  reserved_mhz_ -= mhz;
  if (reservation_count_ > 0) --reservation_count_;
  if (reserved_mhz_ < 0.0) reserved_mhz_ = 0.0;
}

void Server::save_state(util::BinWriter& w) const {
  w.u8(static_cast<std::uint8_t>(state_));
  w.f64(demand_mhz_);
  w.f64(ram_used_mb_);
  w.f64(reserved_mhz_);
  w.u64(reservation_count_);
  w.u64(migrating_out_count_);
  w.u64(vms_.size());
  for (VmId vm : vms_) w.u64(static_cast<std::uint64_t>(vm));
  w.f64(grace_until_);
  w.f64(migration_cooldown_until_);
}

void Server::load_state(util::BinReader& r) {
  const auto state = r.u8();
  util::require(state <= static_cast<std::uint8_t>(ServerState::kFailed),
                "Server::load_state: invalid power state byte");
  state_ = static_cast<ServerState>(state);
  demand_mhz_ = r.f64();
  ram_used_mb_ = r.f64();
  reserved_mhz_ = r.f64();
  reservation_count_ = static_cast<std::size_t>(r.u64());
  migrating_out_count_ = static_cast<std::size_t>(r.u64());
  const std::uint64_t n = r.u64();
  vms_.clear();
  vms_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    vms_.push_back(static_cast<VmId>(r.u64()));
  }
  grace_until_ = r.f64();
  migration_cooldown_until_ = r.f64();
}

}  // namespace ecocloud::dc
