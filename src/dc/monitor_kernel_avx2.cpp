// AVX2 translation unit of the monitor classification kernel. This file is
// added to the build only on x86-64 (src/dc/CMakeLists.txt) and compiled
// with exactly -mavx2 on top of the project flags — deliberately not -mfma,
// so the compiler cannot contract the shared loop body into fused ops that
// would round differently from the scalar build. The loop itself lives in
// monitor_kernel.hpp; this TU only instantiates it under the wider ISA.

#include "ecocloud/dc/monitor_kernel.hpp"

#if defined(__x86_64__) && defined(__AVX2__)

namespace ecocloud::dc::detail {

void classify_avx2(const std::uint8_t* state, const std::uint32_t* vm_count,
                   const double* demand_mhz, const double* capacity_mhz,
                   std::size_t begin, std::size_t end, double tl, double th,
                   double* u_eff, std::uint8_t* cls) {
  classify_loop(state, vm_count, demand_mhz, capacity_mhz, begin, end, tl, th,
                u_eff, cls);
}

}  // namespace ecocloud::dc::detail

#endif
