#include "ecocloud/dc/monitor_kernel.hpp"

#include <cstdlib>

#include "ecocloud/dc/server.hpp"

namespace ecocloud::dc {

#if defined(ECOCLOUD_HAVE_AVX2_KERNEL)
namespace detail {
// Defined in monitor_kernel_avx2.cpp, compiled with -mavx2 (and nothing
// else: no -mfma, so no contraction can creep into the shared loop body).
void classify_avx2(const std::uint8_t* state, const std::uint32_t* vm_count,
                   const double* demand_mhz, const double* capacity_mhz,
                   std::size_t begin, std::size_t end, double tl, double th,
                   double* u_eff, std::uint8_t* cls);
}  // namespace detail
#endif

namespace {

using ClassifyFn = void (*)(const std::uint8_t*, const std::uint32_t*,
                            const double*, const double*, std::size_t,
                            std::size_t, double, double, double*,
                            std::uint8_t*);

struct Dispatch {
  ClassifyFn fn;
  const char* name;
};

Dispatch resolve_kernel() {
  if (std::getenv("ECOCLOUD_FORCE_SCALAR_KERNEL") != nullptr) {
    return {&detail::classify_loop, "scalar"};
  }
#if defined(ECOCLOUD_HAVE_AVX2_KERNEL)
  if (__builtin_cpu_supports("avx2")) {
    return {&detail::classify_avx2, "avx2"};
  }
#endif
  return {&detail::classify_loop, "scalar"};
}

const Dispatch& kernel() {
  static const Dispatch dispatch = resolve_kernel();
  return dispatch;
}

}  // namespace

void monitor_classify(const ServerSoA& soa, std::size_t begin, std::size_t end,
                      double tl, double th, double* u_eff, std::uint8_t* cls) {
  kernel().fn(soa.state.data(), soa.vm_count.data(), soa.demand_mhz.data(),
              soa.capacity_mhz.data(), begin, end, tl, th, u_eff, cls);
}

void monitor_classify_scalar(const ServerSoA& soa, std::size_t begin,
                             std::size_t end, double tl, double th,
                             double* u_eff, std::uint8_t* cls) {
  detail::classify_loop(soa.state.data(), soa.vm_count.data(),
                        soa.demand_mhz.data(), soa.capacity_mhz.data(), begin,
                        end, tl, th, u_eff, cls);
}

const char* monitor_kernel_name() { return kernel().name; }

}  // namespace ecocloud::dc
