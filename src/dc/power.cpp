#include "ecocloud/dc/power.hpp"

#include "ecocloud/util/math.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::dc {

PowerModel::PowerModel(double idle_fraction, double sleep_w,
                       double peak_w_per_core, double base_w)
    : idle_fraction_(idle_fraction),
      sleep_w_(sleep_w),
      peak_w_per_core_(peak_w_per_core),
      base_w_(base_w) {
  util::require(idle_fraction >= 0.0 && idle_fraction <= 1.0,
                "PowerModel: idle_fraction must be in [0,1]");
  util::require(sleep_w >= 0.0, "PowerModel: sleep_w must be >= 0");
  util::require(peak_w_per_core >= 0.0, "PowerModel: peak_w_per_core must be >= 0");
  util::require(base_w >= 0.0, "PowerModel: base_w must be >= 0");
}

double PowerModel::peak_w(unsigned num_cores) const {
  return base_w_ + peak_w_per_core_ * static_cast<double>(num_cores);
}

double PowerModel::idle_w(unsigned num_cores) const {
  return idle_fraction_ * peak_w(num_cores);
}

double PowerModel::active_power_w(unsigned num_cores, double u) const {
  const double peak = peak_w(num_cores);
  const double idle = idle_fraction_ * peak;
  return idle + (peak - idle) * util::clamp01(u);
}

double PowerModel::power_w(const Server& server) const {
  switch (server.state()) {
    case ServerState::kHibernated:
      return sleep_w_;
    case ServerState::kBooting:
      return peak_w(server.num_cores());
    case ServerState::kActive:
      return active_power_w(server.num_cores(), server.utilization());
    case ServerState::kFailed:
      return 0.0;  // fail-stop: the machine is dark until repaired
  }
  return 0.0;
}

}  // namespace ecocloud::dc
