#include "ecocloud/dc/datacenter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::dc {

DataCenter::DataCenter(PowerModel power_model) : power_model_(power_model) {}

ServerId DataCenter::add_server(unsigned num_cores, double core_mhz, double ram_mb) {
  const Server srv = servers_.add(num_cores, core_mhz, ram_mb);
  const ServerId id = srv.id();
  monitor_dirty_flag_.push_back(0);
  // Ids are handed out in increasing order, so the hibernated membership
  // set starts out sorted (and the cached sorted view with it).
  auto& hibernated = state_members_[static_cast<std::size_t>(ServerState::kHibernated)];
  state_pos_.push_back(static_cast<std::uint32_t>(hibernated.size()));
  hibernated.push_back(id);
  sorted_dirty_[static_cast<std::size_t>(ServerState::kHibernated)] = true;
  total_capacity_mhz_ += srv.capacity_mhz();
  power_contrib_w_.push_back(power_model_.power_w(srv));
  total_power_w_ += power_contrib_w_.back();
  overload_vm_contrib_.push_back(0);
  overload_since_.push_back(-1.0);
  overload_min_granted_.push_back(1.0);
  overload_accum_s_.push_back(0.0);
  return id;
}

VmId DataCenter::create_vm(double demand_mhz, double ram_mb) {
  util::require(demand_mhz >= 0.0, "DataCenter::create_vm: demand must be >= 0");
  util::require(ram_mb >= 0.0, "DataCenter::create_vm: ram must be >= 0");
  return vms_.add(demand_mhz, ram_mb);
}

double DataCenter::overall_load() const {
  return total_capacity_mhz_ > 0.0 ? total_demand_mhz_ / total_capacity_mhz_ : 0.0;
}

const std::vector<ServerId>& DataCenter::servers_with(ServerState state) const {
  const auto i = static_cast<std::size_t>(state);
  if (sorted_dirty_[i]) {
    sorted_view_[i] = state_members_[i];
    std::sort(sorted_view_[i].begin(), sorted_view_[i].end());
    sorted_dirty_[i] = false;
  }
  return sorted_view_[i];
}

std::vector<ServerId> DataCenter::servers_in_state(ServerState state) const {
  return servers_with(state);
}

std::vector<double> DataCenter::active_utilizations() const {
  const std::vector<ServerId>& active = servers_with(ServerState::kActive);
  std::vector<double> out;
  out.reserve(active.size());
  for (ServerId s : active) out.push_back(server(s).utilization());
  return out;
}

void DataCenter::move_server_state(ServerId s, ServerState from, ServerState to) {
  std::vector<ServerId>& src = state_members_[static_cast<std::size_t>(from)];
  const std::uint32_t pos = state_pos_[s];
  src[pos] = src.back();
  state_pos_[src[pos]] = pos;
  src.pop_back();
  std::vector<ServerId>& dst = state_members_[static_cast<std::size_t>(to)];
  state_pos_[s] = static_cast<std::uint32_t>(dst.size());
  dst.push_back(s);
  sorted_dirty_[static_cast<std::size_t>(from)] = true;
  sorted_dirty_[static_cast<std::size_t>(to)] = true;
}

void DataCenter::advance_to(sim::SimTime t) {
  util::require(t >= last_time_, "DataCenter::advance_to: time went backwards");
  const double dt = t - last_time_;
  if (dt > 0.0) {
    energy_j_ += total_power_w_ * dt;
    overload_vm_seconds_ += static_cast<double>(overloaded_vm_count_) * dt;
    vm_seconds_ += static_cast<double>(placed_vm_count_) * dt;
    last_time_ = t;
  }
}

void DataCenter::reset_accounting(sim::SimTime t) {
  advance_to(t);
  energy_j_ = 0.0;
  overload_vm_seconds_ = 0.0;
  vm_seconds_ = 0.0;
  overload_episodes_.clear();
  activations_ = 0;
  hibernations_ = 0;
  migrations_ = 0;
  failures_ = 0;
  repairs_ = 0;
  max_inflight_ = inflight_;
}

void DataCenter::mark_monitor_dirty(ServerId s) {
  if (monitor_all_dirty_ || monitor_dirty_flag_[s]) return;
  monitor_dirty_flag_[s] = 1;
  monitor_dirty_ids_.push_back(s);
  // Past ~1/8 of the fleet an incremental drain stops paying for itself —
  // collapse to one branch-light full rebuild.
  if (monitor_dirty_ids_.size() * 8 >= servers_.size()) {
    mark_all_monitor_dirty();
  }
}

void DataCenter::mark_all_monitor_dirty() {
  monitor_all_dirty_ = true;
  for (ServerId s : monitor_dirty_ids_) monitor_dirty_flag_[s] = 0;
  monitor_dirty_ids_.clear();
}

void DataCenter::clear_monitor_dirty() {
  monitor_all_dirty_ = false;
  for (ServerId s : monitor_dirty_ids_) monitor_dirty_flag_[s] = 0;
  monitor_dirty_ids_.clear();
}

void DataCenter::refresh_server(sim::SimTime t, ServerId s) {
  mark_monitor_dirty(s);
  const Server srv = Server(servers_, s);

  const double new_power = power_model_.power_w(srv);
  total_power_w_ += new_power - power_contrib_w_[s];
  power_contrib_w_[s] = new_power;

  const std::size_t new_overload_vms = srv.overloaded() ? srv.vm_count() : 0;
  overloaded_vm_count_ += new_overload_vms;
  overloaded_vm_count_ -= overload_vm_contrib_[s];
  overload_vm_contrib_[s] = new_overload_vms;

  // Overload-episode bookkeeping.
  if (srv.overloaded()) {
    if (overload_since_[s] < 0.0) {
      overload_since_[s] = t;
      overload_min_granted_[s] = srv.granted_fraction();
    } else {
      overload_min_granted_[s] =
          std::min(overload_min_granted_[s], srv.granted_fraction());
    }
  } else if (overload_since_[s] >= 0.0) {
    overload_episodes_.push_back(OverloadEpisode{
        s, overload_since_[s], t - overload_since_[s], overload_min_granted_[s]});
    overload_accum_s_[s] += t - overload_since_[s];
    overload_since_[s] = -1.0;
    overload_min_granted_[s] = 1.0;
  }
}

double DataCenter::server_overload_seconds(ServerId s, sim::SimTime t) const {
  util::require(s < servers_.size(), "server_overload_seconds: unknown server");
  const double open =
      overload_since_[s] >= 0.0 ? t - overload_since_[s] : 0.0;
  return overload_accum_s_[s] + open;
}

double DataCenter::vm_overload_seconds(VmId v, sim::SimTime t) const {
  util::require(v < vms_.size(), "vm_overload_seconds: unknown VM");
  if (vms_.host[v] == kNoServer) return vms_.overload_total_s[v];
  return vms_.overload_total_s[v] +
         server_overload_seconds(vms_.host[v], t) - vms_.overload_baseline_s[v];
}

void DataCenter::place_vm(sim::SimTime t, VmId v, ServerId s) {
  advance_to(t);
  util::require(v < vms_.size(), "DataCenter::place_vm: unknown VM");
  Server srv = server_mutable(s);
  util::require(vms_.host[v] == kNoServer, "DataCenter::place_vm: VM already placed");
  util::require(srv.active(), "DataCenter::place_vm: server not active");
  vms_.host[v] = s;
  srv.host_vm(v, vms_.demand_mhz[v], vms_.ram_mb[v]);
  total_demand_mhz_ += vms_.demand_mhz[v];
  ++placed_vm_count_;
  refresh_server(t, s);
  vms_.overload_baseline_s[v] = server_overload_seconds(s, t);
}

void DataCenter::unplace_vm(sim::SimTime t, VmId v) {
  advance_to(t);
  util::require(v < vms_.size(), "DataCenter::unplace_vm: unknown VM");
  util::require(vms_.host[v] != kNoServer, "DataCenter::unplace_vm: VM not placed");
  util::require(vms_.migrating_to[v] == kNoServer,
                "DataCenter::unplace_vm: cancel the migration first");
  const ServerId s = vms_.host[v];
  vms_.overload_total_s[v] +=
      server_overload_seconds(s, t) - vms_.overload_baseline_s[v];
  server_mutable(s).unhost_vm(v, vms_.demand_mhz[v], vms_.ram_mb[v]);
  vms_.host[v] = kNoServer;
  total_demand_mhz_ -= vms_.demand_mhz[v];
  --placed_vm_count_;
  refresh_server(t, s);
}

void DataCenter::set_vm_demand(sim::SimTime t, VmId v, double demand_mhz) {
  util::require(demand_mhz >= 0.0, "DataCenter::set_vm_demand: demand must be >= 0");
  advance_to(t);
  util::require(v < vms_.size(), "DataCenter::set_vm_demand: unknown VM");
  const double delta = demand_mhz - vms_.demand_mhz[v];
  vms_.demand_mhz[v] = demand_mhz;
  const ServerId host = vms_.host[v];
  if (host != kNoServer) {
    Server(servers_, host).change_demand(delta);
    total_demand_mhz_ += delta;
    refresh_server(t, host);
  }
  const ServerId dest = vms_.migrating_to[v];
  if (dest != kNoServer) {
    // Keep the destination reservation in sync with the new demand.
    Server target = Server(servers_, dest);
    target.remove_reservation(vms_.reserved_at_dest_mhz[v]);
    vms_.reserved_at_dest_mhz[v] = demand_mhz;
    target.add_reservation(demand_mhz);
  }
}

void DataCenter::begin_migration(sim::SimTime t, VmId v, ServerId dest) {
  advance_to(t);
  util::require(v < vms_.size(), "DataCenter::begin_migration: unknown VM");
  util::require(vms_.host[v] != kNoServer,
                "DataCenter::begin_migration: VM not placed");
  util::require(vms_.migrating_to[v] == kNoServer,
                "DataCenter::begin_migration: already migrating");
  util::require(dest != vms_.host[v], "DataCenter::begin_migration: dest == source");
  Server target = server_mutable(dest);
  util::require(target.active() || target.booting(),
                "DataCenter::begin_migration: destination is hibernated");
  vms_.migrating_to[v] = dest;
  vms_.reserved_at_dest_mhz[v] = vms_.demand_mhz[v];
  target.add_reservation(vms_.reserved_at_dest_mhz[v]);
  Server(servers_, vms_.host[v]).add_migrating_out();
  // No refresh_server here (power/overload are demand-driven), but the
  // outbound count changes the source's effective utilization.
  mark_monitor_dirty(vms_.host[v]);
  ++inflight_;
  max_inflight_ = std::max(max_inflight_, inflight_);
}

void DataCenter::complete_migration(sim::SimTime t, VmId v) {
  advance_to(t);
  util::require(v < vms_.size(), "DataCenter::complete_migration: unknown VM");
  util::require(vms_.migrating_to[v] != kNoServer,
                "DataCenter::complete_migration: not migrating");
  const ServerId src = vms_.host[v];
  const ServerId dest = vms_.migrating_to[v];
  Server target = server_mutable(dest);
  util::require(target.active(), "DataCenter::complete_migration: dest not active");

  target.remove_reservation(vms_.reserved_at_dest_mhz[v]);
  vms_.reserved_at_dest_mhz[v] = 0.0;
  vms_.overload_total_s[v] +=
      server_overload_seconds(src, t) - vms_.overload_baseline_s[v];
  Server source = Server(servers_, src);
  source.remove_migrating_out();
  source.unhost_vm(v, vms_.demand_mhz[v], vms_.ram_mb[v]);
  target.host_vm(v, vms_.demand_mhz[v], vms_.ram_mb[v]);
  vms_.host[v] = dest;
  vms_.migrating_to[v] = kNoServer;
  --inflight_;
  ++migrations_;
  refresh_server(t, src);
  refresh_server(t, dest);
  vms_.overload_baseline_s[v] = server_overload_seconds(dest, t);
}

void DataCenter::cancel_migration(sim::SimTime t, VmId v) {
  advance_to(t);
  util::require(v < vms_.size(), "DataCenter::cancel_migration: unknown VM");
  util::require(vms_.migrating_to[v] != kNoServer,
                "DataCenter::cancel_migration: not migrating");
  Server(servers_, vms_.migrating_to[v])
      .remove_reservation(vms_.reserved_at_dest_mhz[v]);
  Server(servers_, vms_.host[v]).remove_migrating_out();
  mark_monitor_dirty(vms_.host[v]);
  vms_.reserved_at_dest_mhz[v] = 0.0;
  vms_.migrating_to[v] = kNoServer;
  --inflight_;
}

void DataCenter::start_booting(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server srv = server_mutable(s);
  util::require(srv.hibernated(), "DataCenter::start_booting: server not hibernated");
  srv.set_state(ServerState::kBooting);
  move_server_state(s, ServerState::kHibernated, ServerState::kBooting);
  refresh_server(t, s);
}

void DataCenter::finish_booting(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server srv = server_mutable(s);
  util::require(srv.booting(), "DataCenter::finish_booting: server not booting");
  srv.set_state(ServerState::kActive);
  move_server_state(s, ServerState::kBooting, ServerState::kActive);
  ++activations_;
  refresh_server(t, s);
}

void DataCenter::hibernate(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server srv = server_mutable(s);
  util::require(srv.active(), "DataCenter::hibernate: server not active");
  util::require(srv.empty(), "DataCenter::hibernate: server still hosts VMs");
  util::require(srv.reserved_mhz() == 0.0,
                "DataCenter::hibernate: inbound migration reservation pending");
  srv.set_state(ServerState::kHibernated);
  move_server_state(s, ServerState::kActive, ServerState::kHibernated);
  ++hibernations_;
  refresh_server(t, s);
}

std::vector<VmId> DataCenter::fail_server(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server srv = server_mutable(s);
  util::require(!srv.failed(), "DataCenter::fail_server: server already failed");
  // Check the reservation *count*, not the float sum: out-of-order releases
  // of concurrent reservations can leave sub-epsilon residue in the sum.
  util::require(srv.reservation_count() == 0,
                "DataCenter::fail_server: roll back inbound migrations first");
  srv.clear_reservations();

  // Orphan every hosted VM, settling its SLA attribution exactly as
  // unplace_vm would. The vector is copied because unhosting mutates it.
  const std::vector<VmId> orphans = srv.vms();
  for (VmId v : orphans) {
    util::require(vms_.migrating_to[v] == kNoServer,
                  "DataCenter::fail_server: roll back outbound migrations first");
    vms_.overload_total_s[v] +=
        server_overload_seconds(s, t) - vms_.overload_baseline_s[v];
    srv.unhost_vm(v, vms_.demand_mhz[v], vms_.ram_mb[v]);
    vms_.host[v] = kNoServer;
    total_demand_mhz_ -= vms_.demand_mhz[v];
    --placed_vm_count_;
  }

  move_server_state(s, srv.state(), ServerState::kFailed);
  srv.set_state(ServerState::kFailed);
  srv.set_grace_until(-1.0);
  srv.set_migration_cooldown_until(-1.0);
  ++failures_;
  refresh_server(t, s);
  return orphans;
}

void DataCenter::repair_server(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server srv = server_mutable(s);
  util::require(srv.failed(), "DataCenter::repair_server: server not failed");
  srv.set_state(ServerState::kHibernated);
  move_server_state(s, ServerState::kFailed, ServerState::kHibernated);
  ++repairs_;
  refresh_server(t, s);
}

namespace {

void save_id_vector(util::BinWriter& w, const std::vector<ServerId>& ids) {
  w.u64(ids.size());
  for (ServerId id : ids) w.u64(id);
}

void load_id_vector(util::BinReader& r, std::vector<ServerId>& ids) {
  const std::uint64_t n = r.u64();
  ids.clear();
  ids.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<ServerId>(r.u64()));
  }
}

void save_double_vector(util::BinWriter& w, const std::vector<double>& xs) {
  w.u64(xs.size());
  for (double x : xs) w.f64(x);
}

void load_double_vector(util::BinReader& r, std::vector<double>& xs) {
  const std::uint64_t n = r.u64();
  xs.clear();
  xs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) xs.push_back(r.f64());
}

}  // namespace

void DataCenter::save_state(util::BinWriter& w) const {
  w.u64(servers_.size());
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const Server srv = server(static_cast<ServerId>(s));
    w.u32(srv.num_cores());
    w.f64(srv.core_mhz());
    w.f64(srv.ram_capacity_mb());
    srv.save_state(w);
  }
  w.u64(vms_.size());
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    w.f64(vms_.demand_mhz[i]);
    w.f64(vms_.ram_mb[i]);
    w.u64(vms_.host[i]);
    w.u64(vms_.migrating_to[i]);
    w.f64(vms_.reserved_at_dest_mhz[i]);
    w.f64(vms_.overload_total_s[i]);
    w.f64(vms_.overload_baseline_s[i]);
  }
  save_double_vector(w, power_contrib_w_);
  w.u64(overload_vm_contrib_.size());
  for (std::size_t c : overload_vm_contrib_) w.u64(c);
  save_double_vector(w, overload_since_);
  save_double_vector(w, overload_min_granted_);
  save_double_vector(w, overload_accum_s_);
  // Dense membership sets, in membership order: the O(1) samplers draw by
  // position, so the order itself is part of the deterministic state.
  for (const auto& members : state_members_) save_id_vector(w, members);
  w.u64(placed_vm_count_);
  w.f64(total_capacity_mhz_);
  w.f64(total_demand_mhz_);
  w.f64(total_power_w_);
  w.u64(overloaded_vm_count_);
  w.f64(last_time_);
  w.f64(energy_j_);
  w.f64(overload_vm_seconds_);
  w.f64(vm_seconds_);
  w.u64(overload_episodes_.size());
  for (const OverloadEpisode& ep : overload_episodes_) {
    w.u64(ep.server);
    w.f64(ep.start);
    w.f64(ep.duration_s);
    w.f64(ep.min_granted_fraction);
  }
  w.u64(activations_);
  w.u64(hibernations_);
  w.u64(migrations_);
  w.u64(failures_);
  w.u64(repairs_);
  w.u64(inflight_);
  w.u64(max_inflight_);
}

void DataCenter::load_state(util::BinReader& r) {
  const std::uint64_t num_servers = r.u64();
  if (num_servers != servers_.size()) {
    throw std::runtime_error(
        "DataCenter::load_state: snapshot has " + std::to_string(num_servers) +
        " servers but the configured fleet has " +
        std::to_string(servers_.size()));
  }
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    Server srv = Server(servers_, static_cast<ServerId>(s));
    const std::uint32_t cores = r.u32();
    const double core_mhz = r.f64();
    const double ram_mb = r.f64();
    if (cores != srv.num_cores() || core_mhz != srv.core_mhz() ||
        ram_mb != srv.ram_capacity_mb()) {
      throw std::runtime_error(
          "DataCenter::load_state: server " + std::to_string(srv.id()) +
          " capacity differs from the snapshot (configuration mismatch)");
    }
    srv.load_state(r);
  }
  const std::uint64_t num_vms = r.u64();
  vms_.clear();
  vms_.reserve(static_cast<std::size_t>(num_vms));
  for (std::uint64_t i = 0; i < num_vms; ++i) {
    const double demand = r.f64();
    const double ram = r.f64();
    const VmId id = vms_.add(demand, ram);
    vms_.host[id] = static_cast<ServerId>(r.u64());
    vms_.migrating_to[id] = static_cast<ServerId>(r.u64());
    vms_.reserved_at_dest_mhz[id] = r.f64();
    vms_.overload_total_s[id] = r.f64();
    vms_.overload_baseline_s[id] = r.f64();
  }
  load_double_vector(r, power_contrib_w_);
  const std::uint64_t num_contrib = r.u64();
  overload_vm_contrib_.clear();
  overload_vm_contrib_.reserve(static_cast<std::size_t>(num_contrib));
  for (std::uint64_t i = 0; i < num_contrib; ++i) {
    overload_vm_contrib_.push_back(static_cast<std::size_t>(r.u64()));
  }
  load_double_vector(r, overload_since_);
  load_double_vector(r, overload_min_granted_);
  load_double_vector(r, overload_accum_s_);
  if (power_contrib_w_.size() != servers_.size() ||
      overload_vm_contrib_.size() != servers_.size() ||
      overload_since_.size() != servers_.size() ||
      overload_min_granted_.size() != servers_.size() ||
      overload_accum_s_.size() != servers_.size()) {
    throw std::runtime_error(
        "DataCenter::load_state: per-server cache arrays do not match the "
        "fleet size");
  }
  std::size_t member_total = 0;
  for (auto& members : state_members_) {
    load_id_vector(r, members);
    member_total += members.size();
  }
  if (member_total != servers_.size()) {
    throw std::runtime_error(
        "DataCenter::load_state: state membership does not cover the fleet");
  }
  state_pos_.assign(servers_.size(), 0);
  for (const auto& members : state_members_) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] >= servers_.size()) {
        throw std::runtime_error(
            "DataCenter::load_state: state membership names unknown server");
      }
      state_pos_[members[i]] = static_cast<std::uint32_t>(i);
    }
  }
  sorted_dirty_.fill(true);
  mark_all_monitor_dirty();
  placed_vm_count_ = static_cast<std::size_t>(r.u64());
  total_capacity_mhz_ = r.f64();
  total_demand_mhz_ = r.f64();
  total_power_w_ = r.f64();
  overloaded_vm_count_ = static_cast<std::size_t>(r.u64());
  last_time_ = r.f64();
  energy_j_ = r.f64();
  overload_vm_seconds_ = r.f64();
  vm_seconds_ = r.f64();
  const std::uint64_t num_episodes = r.u64();
  overload_episodes_.clear();
  overload_episodes_.reserve(static_cast<std::size_t>(num_episodes));
  for (std::uint64_t i = 0; i < num_episodes; ++i) {
    OverloadEpisode ep;
    ep.server = static_cast<ServerId>(r.u64());
    ep.start = r.f64();
    ep.duration_s = r.f64();
    ep.min_granted_fraction = r.f64();
    overload_episodes_.push_back(ep);
  }
  activations_ = r.u64();
  hibernations_ = r.u64();
  migrations_ = r.u64();
  failures_ = r.u64();
  repairs_ = r.u64();
  inflight_ = static_cast<std::size_t>(r.u64());
  max_inflight_ = static_cast<std::size_t>(r.u64());
}

std::vector<std::string> DataCenter::audit_invariants(double tolerance) const {
  std::vector<std::string> violations;
  const auto complain = [&violations](std::string message) {
    violations.push_back(std::move(message));
  };

  // Per-server: hosted list consistency and load == sum of VM demands.
  std::vector<std::size_t> times_hosted(vms_.size(), 0);
  std::size_t hosted_total = 0;
  double demand_total_recomputed = 0.0;
  for (const Server srv : servers()) {
    double demand_sum = 0.0;
    double ram_sum = 0.0;
    std::size_t migrating_out = 0;
    for (VmId v : srv.vms()) {
      if (v >= vms_.size()) {
        complain("server " + std::to_string(srv.id()) +
                 " hosts unknown VM " + std::to_string(v));
        continue;
      }
      ++times_hosted[v];
      if (vms_.host[v] != srv.id()) {
        complain("VM " + std::to_string(v) + " is listed on server " +
                 std::to_string(srv.id()) + " but records host " +
                 std::to_string(vms_.host[v]));
      }
      demand_sum += vms_.demand_mhz[v];
      ram_sum += vms_.ram_mb[v];
      if (vms_.migrating_to[v] != kNoServer) ++migrating_out;
    }
    if (srv.vm_count() != srv.vms().size()) {
      complain("server " + std::to_string(srv.id()) + " vm_count column " +
               std::to_string(srv.vm_count()) + " != hosted list size " +
               std::to_string(srv.vms().size()));
    }
    hosted_total += srv.vm_count();
    demand_total_recomputed += srv.demand_mhz();
    const double demand_tol = tolerance * std::max(1.0, srv.capacity_mhz());
    if (std::abs(demand_sum - srv.demand_mhz()) > demand_tol) {
      complain("server " + std::to_string(srv.id()) + " load " +
               std::to_string(srv.demand_mhz()) + " MHz != sum of hosted VM "
               "demands " + std::to_string(demand_sum) + " MHz");
    }
    if (std::abs(ram_sum - srv.ram_used_mb()) >
        tolerance * std::max(1.0, srv.ram_capacity_mb())) {
      complain("server " + std::to_string(srv.id()) + " RAM accounting drifted");
    }
    if (migrating_out != srv.migrating_out_count()) {
      complain("server " + std::to_string(srv.id()) + " migrating_out_count " +
               std::to_string(srv.migrating_out_count()) + " != " +
               std::to_string(migrating_out) + " migrating hosted VMs");
    }
    if ((srv.hibernated() || srv.failed()) && !srv.empty()) {
      complain("server " + std::to_string(srv.id()) +
               " hosts VMs while powered off");
    }
  }

  // Per-VM: placed exactly once, on the server that lists it; inbound
  // reservation counts match.
  std::vector<std::size_t> inbound(servers_.size(), 0);
  std::size_t migrating_vms = 0;
  for (std::size_t i = 0; i < vms_.size(); ++i) {
    const auto v = static_cast<VmId>(i);
    const std::size_t expected = vms_.host[v] != kNoServer ? 1 : 0;
    if (times_hosted[v] != expected) {
      complain("VM " + std::to_string(v) + " appears " +
               std::to_string(times_hosted[v]) +
               " times in server host lists but placed()=" +
               std::to_string(expected));
    }
    if (vms_.migrating_to[v] != kNoServer) {
      ++migrating_vms;
      if (vms_.migrating_to[v] < servers_.size()) {
        ++inbound[vms_.migrating_to[v]];
      } else {
        complain("VM " + std::to_string(v) +
                 " is migrating to unknown server " +
                 std::to_string(vms_.migrating_to[v]));
      }
    }
  }
  for (const Server srv : servers()) {
    if (srv.reservation_count() != inbound[srv.id()]) {
      complain("server " + std::to_string(srv.id()) + " reservation_count " +
               std::to_string(srv.reservation_count()) + " != " +
               std::to_string(inbound[srv.id()]) + " inbound migrations");
    }
  }
  if (migrating_vms != inflight_) {
    complain("inflight migration counter " + std::to_string(inflight_) +
             " != " + std::to_string(migrating_vms) + " migrating VMs");
  }

  // Dense state membership == brute-force scan (as a set), and the position
  // map points every server at its own slot.
  for (std::size_t st = 0; st < state_members_.size(); ++st) {
    std::vector<ServerId> expected;
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      if (servers_.state[s] == st) expected.push_back(static_cast<ServerId>(s));
    }
    std::vector<ServerId> got = state_members_[st];
    std::sort(got.begin(), got.end());
    if (got != expected) {
      complain(std::string("state membership for '") +
               to_string(static_cast<ServerState>(st)) +
               "' differs from a brute-force fleet scan");
    }
    const std::vector<ServerId>& members = state_members_[st];
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] >= state_pos_.size() || state_pos_[members[i]] != i) {
        complain("state position map is inconsistent for server " +
                 std::to_string(members[i]));
        break;
      }
    }
    if (!sorted_dirty_[st]) {
      std::vector<ServerId> sorted = state_members_[st];
      std::sort(sorted.begin(), sorted.end());
      if (sorted_view_[st] != sorted) {
        complain(std::string("cached sorted view for '") +
                 to_string(static_cast<ServerState>(st)) + "' is stale");
      }
    }
  }

  // Cached aggregates == recomputation.
  if (hosted_total != placed_vm_count_) {
    complain("placed_vm_count " + std::to_string(placed_vm_count_) + " != " +
             std::to_string(hosted_total) + " hosted VMs");
  }
  if (std::abs(demand_total_recomputed - total_demand_mhz_) >
      tolerance * std::max(1.0, total_capacity_mhz_)) {
    complain("total_demand_mhz drifted from the per-server sum");
  }
  double power_sum = 0.0;
  std::size_t overload_vms = 0;
  for (const Server srv : servers()) {
    const double expected_power = power_model_.power_w(srv);
    if (std::abs(power_contrib_w_[srv.id()] - expected_power) >
        tolerance * std::max(1.0, expected_power)) {
      complain("cached power contribution of server " +
               std::to_string(srv.id()) + " is stale");
    }
    power_sum += power_contrib_w_[srv.id()];
    const std::size_t expected_overload = srv.overloaded() ? srv.vm_count() : 0;
    if (overload_vm_contrib_[srv.id()] != expected_overload) {
      complain("cached overload VM contribution of server " +
               std::to_string(srv.id()) + " is stale");
    }
    overload_vms += overload_vm_contrib_[srv.id()];
  }
  if (std::abs(power_sum - total_power_w_) >
      tolerance * std::max(1.0, power_sum)) {
    complain("total_power_w drifted from the per-server contributions");
  }
  if (overload_vms != overloaded_vm_count_) {
    complain("overloaded_vm_count " + std::to_string(overloaded_vm_count_) +
             " != " + std::to_string(overload_vms) + " from contributions");
  }
  return violations;
}

std::size_t DataCenter::heal_caches() {
  std::size_t healed = 0;
  mark_all_monitor_dirty();

  // The vm_count column is pure mirror state; resync it first so the
  // aggregate healing below reads the truth.
  bool vm_count_changed = false;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    const auto n = static_cast<std::uint32_t>(servers_.vms[s].size());
    if (servers_.vm_count[s] != n) {
      servers_.vm_count[s] = n;
      vm_count_changed = true;
    }
  }
  if (vm_count_changed) ++healed;

  // Rebuild the dense membership sets when they disagree with the state
  // column *as sets* (healing re-derives membership in ascending id order —
  // a healed run may therefore sample in a different order, exactly as
  // documented for the heal audit action).
  bool members_ok = state_pos_.size() == servers_.size();
  if (members_ok) {
    std::array<std::size_t, 4> counts{};
    for (std::size_t s = 0; s < servers_.size() && members_ok; ++s) {
      const auto st = static_cast<std::size_t>(servers_.state[s]);
      const std::vector<ServerId>& members = state_members_[st];
      const std::uint32_t pos = state_pos_[s];
      if (pos >= members.size() || members[pos] != static_cast<ServerId>(s)) {
        members_ok = false;
      }
      ++counts[st];
    }
    for (std::size_t st = 0; st < 4 && members_ok; ++st) {
      if (counts[st] != state_members_[st].size()) members_ok = false;
    }
  }
  if (!members_ok) {
    for (auto& members : state_members_) members.clear();
    state_pos_.assign(servers_.size(), 0);
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      auto& members = state_members_[static_cast<std::size_t>(servers_.state[s])];
      state_pos_[s] = static_cast<std::uint32_t>(members.size());
      members.push_back(static_cast<ServerId>(s));
    }
    ++healed;
  }
  sorted_dirty_.fill(true);

  double power_sum = 0.0;
  std::size_t overload_vms = 0;
  bool contrib_changed = false;
  for (const Server srv : servers()) {
    const double power = power_model_.power_w(srv);
    if (power_contrib_w_[srv.id()] != power) {
      power_contrib_w_[srv.id()] = power;
      contrib_changed = true;
    }
    const std::size_t overload = srv.overloaded() ? srv.vm_count() : 0;
    if (overload_vm_contrib_[srv.id()] != overload) {
      overload_vm_contrib_[srv.id()] = overload;
      contrib_changed = true;
    }
    power_sum += power;
    overload_vms += overload;
  }
  if (contrib_changed || total_power_w_ != power_sum ||
      overloaded_vm_count_ != overload_vms) {
    total_power_w_ = power_sum;
    overloaded_vm_count_ = overload_vms;
    ++healed;
  }

  std::size_t hosted = 0;
  double demand = 0.0;
  double capacity = 0.0;
  std::size_t migrating = 0;
  for (const Server srv : servers()) {
    hosted += srv.vm_count();
    demand += srv.demand_mhz();
    capacity += srv.capacity_mhz();
  }
  for (ServerId dest : vms_.migrating_to) {
    if (dest != kNoServer) ++migrating;
  }
  if (placed_vm_count_ != hosted || total_demand_mhz_ != demand ||
      total_capacity_mhz_ != capacity || inflight_ != migrating) {
    placed_vm_count_ = hosted;
    total_demand_mhz_ = demand;
    total_capacity_mhz_ = capacity;
    inflight_ = migrating;
    ++healed;
  }
  return healed;
}

}  // namespace ecocloud::dc
