#include "ecocloud/dc/datacenter.hpp"

#include <algorithm>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::dc {

DataCenter::DataCenter(PowerModel power_model) : power_model_(power_model) {}

ServerId DataCenter::add_server(unsigned num_cores, double core_mhz, double ram_mb) {
  const auto id = static_cast<ServerId>(servers_.size());
  servers_.emplace_back(id, num_cores, core_mhz, ram_mb);
  // Ids are handed out in increasing order, so push_back keeps the
  // hibernated index sorted.
  state_index(ServerState::kHibernated).push_back(id);
  total_capacity_mhz_ += servers_.back().capacity_mhz();
  power_contrib_w_.push_back(power_model_.power_w(servers_.back()));
  total_power_w_ += power_contrib_w_.back();
  overload_vm_contrib_.push_back(0);
  overload_since_.push_back(-1.0);
  overload_min_granted_.push_back(1.0);
  overload_accum_s_.push_back(0.0);
  return id;
}

VmId DataCenter::create_vm(double demand_mhz, double ram_mb) {
  util::require(demand_mhz >= 0.0, "DataCenter::create_vm: demand must be >= 0");
  util::require(ram_mb >= 0.0, "DataCenter::create_vm: ram must be >= 0");
  const auto id = static_cast<VmId>(vms_.size());
  Vm v;
  v.id = id;
  v.demand_mhz = demand_mhz;
  v.ram_mb = ram_mb;
  vms_.push_back(v);
  return id;
}

double DataCenter::overall_load() const {
  return total_capacity_mhz_ > 0.0 ? total_demand_mhz_ / total_capacity_mhz_ : 0.0;
}

std::vector<ServerId> DataCenter::servers_in_state(ServerState state) const {
  return servers_with(state);
}

std::vector<double> DataCenter::active_utilizations() const {
  const std::vector<ServerId>& active = servers_with(ServerState::kActive);
  std::vector<double> out;
  out.reserve(active.size());
  for (ServerId s : active) out.push_back(servers_[s].utilization());
  return out;
}

void DataCenter::move_server_index(ServerId s, ServerState from, ServerState to) {
  std::vector<ServerId>& src = state_index(from);
  src.erase(std::lower_bound(src.begin(), src.end(), s));
  std::vector<ServerId>& dst = state_index(to);
  dst.insert(std::lower_bound(dst.begin(), dst.end(), s), s);
}

void DataCenter::advance_to(sim::SimTime t) {
  util::require(t >= last_time_, "DataCenter::advance_to: time went backwards");
  const double dt = t - last_time_;
  if (dt > 0.0) {
    energy_j_ += total_power_w_ * dt;
    overload_vm_seconds_ += static_cast<double>(overloaded_vm_count_) * dt;
    vm_seconds_ += static_cast<double>(placed_vm_count_) * dt;
    last_time_ = t;
  }
}

void DataCenter::reset_accounting(sim::SimTime t) {
  advance_to(t);
  energy_j_ = 0.0;
  overload_vm_seconds_ = 0.0;
  vm_seconds_ = 0.0;
  overload_episodes_.clear();
  activations_ = 0;
  hibernations_ = 0;
  migrations_ = 0;
  failures_ = 0;
  repairs_ = 0;
  max_inflight_ = inflight_;
}

void DataCenter::refresh_server(sim::SimTime t, ServerId s) {
  Server& srv = servers_.at(s);

  const double new_power = power_model_.power_w(srv);
  total_power_w_ += new_power - power_contrib_w_[s];
  power_contrib_w_[s] = new_power;

  const std::size_t new_overload_vms = srv.overloaded() ? srv.vm_count() : 0;
  overloaded_vm_count_ += new_overload_vms;
  overloaded_vm_count_ -= overload_vm_contrib_[s];
  overload_vm_contrib_[s] = new_overload_vms;

  // Overload-episode bookkeeping.
  if (srv.overloaded()) {
    if (overload_since_[s] < 0.0) {
      overload_since_[s] = t;
      overload_min_granted_[s] = srv.granted_fraction();
    } else {
      overload_min_granted_[s] =
          std::min(overload_min_granted_[s], srv.granted_fraction());
    }
  } else if (overload_since_[s] >= 0.0) {
    overload_episodes_.push_back(OverloadEpisode{
        s, overload_since_[s], t - overload_since_[s], overload_min_granted_[s]});
    overload_accum_s_[s] += t - overload_since_[s];
    overload_since_[s] = -1.0;
    overload_min_granted_[s] = 1.0;
  }
}

double DataCenter::server_overload_seconds(ServerId s, sim::SimTime t) const {
  util::require(s < servers_.size(), "server_overload_seconds: unknown server");
  const double open =
      overload_since_[s] >= 0.0 ? t - overload_since_[s] : 0.0;
  return overload_accum_s_[s] + open;
}

double DataCenter::vm_overload_seconds(VmId v, sim::SimTime t) const {
  const Vm& machine = vms_.at(v);
  if (!machine.placed()) return machine.overload_total_s;
  return machine.overload_total_s +
         server_overload_seconds(machine.host, t) - machine.overload_baseline_s;
}

void DataCenter::place_vm(sim::SimTime t, VmId v, ServerId s) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  Server& srv = servers_.at(s);
  util::require(!machine.placed(), "DataCenter::place_vm: VM already placed");
  util::require(srv.active(), "DataCenter::place_vm: server not active");
  machine.host = s;
  srv.host_vm(v, machine.demand_mhz, machine.ram_mb);
  total_demand_mhz_ += machine.demand_mhz;
  ++placed_vm_count_;
  refresh_server(t, s);
  machine.overload_baseline_s = server_overload_seconds(s, t);
}

void DataCenter::unplace_vm(sim::SimTime t, VmId v) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  util::require(machine.placed(), "DataCenter::unplace_vm: VM not placed");
  util::require(!machine.migrating(),
                "DataCenter::unplace_vm: cancel the migration first");
  const ServerId s = machine.host;
  machine.overload_total_s +=
      server_overload_seconds(s, t) - machine.overload_baseline_s;
  servers_.at(s).unhost_vm(v, machine.demand_mhz, machine.ram_mb);
  machine.host = kNoServer;
  total_demand_mhz_ -= machine.demand_mhz;
  --placed_vm_count_;
  refresh_server(t, s);
}

void DataCenter::set_vm_demand(sim::SimTime t, VmId v, double demand_mhz) {
  util::require(demand_mhz >= 0.0, "DataCenter::set_vm_demand: demand must be >= 0");
  advance_to(t);
  Vm& machine = vms_.at(v);
  const double delta = demand_mhz - machine.demand_mhz;
  machine.demand_mhz = demand_mhz;
  if (machine.placed()) {
    servers_.at(machine.host).change_demand(delta);
    total_demand_mhz_ += delta;
    refresh_server(t, machine.host);
  }
  if (machine.migrating()) {
    // Keep the destination reservation in sync with the new demand.
    Server& target = servers_.at(machine.migrating_to);
    target.remove_reservation(machine.reserved_at_dest_mhz);
    machine.reserved_at_dest_mhz = demand_mhz;
    target.add_reservation(demand_mhz);
  }
}

void DataCenter::begin_migration(sim::SimTime t, VmId v, ServerId dest) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  util::require(machine.placed(), "DataCenter::begin_migration: VM not placed");
  util::require(!machine.migrating(), "DataCenter::begin_migration: already migrating");
  util::require(dest != machine.host, "DataCenter::begin_migration: dest == source");
  Server& target = servers_.at(dest);
  util::require(target.active() || target.booting(),
                "DataCenter::begin_migration: destination is hibernated");
  machine.migrating_to = dest;
  machine.reserved_at_dest_mhz = machine.demand_mhz;
  target.add_reservation(machine.reserved_at_dest_mhz);
  servers_.at(machine.host).add_migrating_out();
  ++inflight_;
  max_inflight_ = std::max(max_inflight_, inflight_);
}

void DataCenter::complete_migration(sim::SimTime t, VmId v) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  util::require(machine.migrating(), "DataCenter::complete_migration: not migrating");
  const ServerId src = machine.host;
  const ServerId dest = machine.migrating_to;
  Server& target = servers_.at(dest);
  util::require(target.active(), "DataCenter::complete_migration: dest not active");

  target.remove_reservation(machine.reserved_at_dest_mhz);
  machine.reserved_at_dest_mhz = 0.0;
  machine.overload_total_s +=
      server_overload_seconds(src, t) - machine.overload_baseline_s;
  servers_.at(src).remove_migrating_out();
  servers_.at(src).unhost_vm(v, machine.demand_mhz, machine.ram_mb);
  target.host_vm(v, machine.demand_mhz, machine.ram_mb);
  machine.host = dest;
  machine.migrating_to = kNoServer;
  --inflight_;
  ++migrations_;
  refresh_server(t, src);
  refresh_server(t, dest);
  machine.overload_baseline_s = server_overload_seconds(dest, t);
}

void DataCenter::cancel_migration(sim::SimTime t, VmId v) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  util::require(machine.migrating(), "DataCenter::cancel_migration: not migrating");
  servers_.at(machine.migrating_to).remove_reservation(machine.reserved_at_dest_mhz);
  servers_.at(machine.host).remove_migrating_out();
  machine.reserved_at_dest_mhz = 0.0;
  machine.migrating_to = kNoServer;
  --inflight_;
}

void DataCenter::start_booting(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(srv.hibernated(), "DataCenter::start_booting: server not hibernated");
  srv.set_state(ServerState::kBooting);
  move_server_index(s, ServerState::kHibernated, ServerState::kBooting);
  refresh_server(t, s);
}

void DataCenter::finish_booting(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(srv.booting(), "DataCenter::finish_booting: server not booting");
  srv.set_state(ServerState::kActive);
  move_server_index(s, ServerState::kBooting, ServerState::kActive);
  ++activations_;
  refresh_server(t, s);
}

void DataCenter::hibernate(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(srv.active(), "DataCenter::hibernate: server not active");
  util::require(srv.empty(), "DataCenter::hibernate: server still hosts VMs");
  util::require(srv.reserved_mhz() == 0.0,
                "DataCenter::hibernate: inbound migration reservation pending");
  srv.set_state(ServerState::kHibernated);
  move_server_index(s, ServerState::kActive, ServerState::kHibernated);
  ++hibernations_;
  refresh_server(t, s);
}

std::vector<VmId> DataCenter::fail_server(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(!srv.failed(), "DataCenter::fail_server: server already failed");
  // Check the reservation *count*, not the float sum: out-of-order releases
  // of concurrent reservations can leave sub-epsilon residue in the sum.
  util::require(srv.reservation_count() == 0,
                "DataCenter::fail_server: roll back inbound migrations first");
  srv.clear_reservations();

  // Orphan every hosted VM, settling its SLA attribution exactly as
  // unplace_vm would. The vector is copied because unhosting mutates it.
  const std::vector<VmId> orphans = srv.vms();
  for (VmId v : orphans) {
    Vm& machine = vms_.at(v);
    util::require(!machine.migrating(),
                  "DataCenter::fail_server: roll back outbound migrations first");
    machine.overload_total_s +=
        server_overload_seconds(s, t) - machine.overload_baseline_s;
    srv.unhost_vm(v, machine.demand_mhz, machine.ram_mb);
    machine.host = kNoServer;
    total_demand_mhz_ -= machine.demand_mhz;
    --placed_vm_count_;
  }

  move_server_index(s, srv.state(), ServerState::kFailed);
  srv.set_state(ServerState::kFailed);
  srv.set_grace_until(-1.0);
  srv.set_migration_cooldown_until(-1.0);
  ++failures_;
  refresh_server(t, s);
  return orphans;
}

void DataCenter::repair_server(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(srv.failed(), "DataCenter::repair_server: server not failed");
  srv.set_state(ServerState::kHibernated);
  move_server_index(s, ServerState::kFailed, ServerState::kHibernated);
  ++repairs_;
  refresh_server(t, s);
}

}  // namespace ecocloud::dc
