#include "ecocloud/dc/datacenter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::dc {

DataCenter::DataCenter(PowerModel power_model) : power_model_(power_model) {}

ServerId DataCenter::add_server(unsigned num_cores, double core_mhz, double ram_mb) {
  const auto id = static_cast<ServerId>(servers_.size());
  servers_.emplace_back(id, num_cores, core_mhz, ram_mb);
  // Ids are handed out in increasing order, so push_back keeps the
  // hibernated index sorted.
  state_index(ServerState::kHibernated).push_back(id);
  total_capacity_mhz_ += servers_.back().capacity_mhz();
  power_contrib_w_.push_back(power_model_.power_w(servers_.back()));
  total_power_w_ += power_contrib_w_.back();
  overload_vm_contrib_.push_back(0);
  overload_since_.push_back(-1.0);
  overload_min_granted_.push_back(1.0);
  overload_accum_s_.push_back(0.0);
  return id;
}

VmId DataCenter::create_vm(double demand_mhz, double ram_mb) {
  util::require(demand_mhz >= 0.0, "DataCenter::create_vm: demand must be >= 0");
  util::require(ram_mb >= 0.0, "DataCenter::create_vm: ram must be >= 0");
  const auto id = static_cast<VmId>(vms_.size());
  Vm v;
  v.id = id;
  v.demand_mhz = demand_mhz;
  v.ram_mb = ram_mb;
  vms_.push_back(v);
  return id;
}

double DataCenter::overall_load() const {
  return total_capacity_mhz_ > 0.0 ? total_demand_mhz_ / total_capacity_mhz_ : 0.0;
}

std::vector<ServerId> DataCenter::servers_in_state(ServerState state) const {
  return servers_with(state);
}

std::vector<double> DataCenter::active_utilizations() const {
  const std::vector<ServerId>& active = servers_with(ServerState::kActive);
  std::vector<double> out;
  out.reserve(active.size());
  for (ServerId s : active) out.push_back(servers_[s].utilization());
  return out;
}

void DataCenter::move_server_index(ServerId s, ServerState from, ServerState to) {
  std::vector<ServerId>& src = state_index(from);
  src.erase(std::lower_bound(src.begin(), src.end(), s));
  std::vector<ServerId>& dst = state_index(to);
  dst.insert(std::lower_bound(dst.begin(), dst.end(), s), s);
}

void DataCenter::advance_to(sim::SimTime t) {
  util::require(t >= last_time_, "DataCenter::advance_to: time went backwards");
  const double dt = t - last_time_;
  if (dt > 0.0) {
    energy_j_ += total_power_w_ * dt;
    overload_vm_seconds_ += static_cast<double>(overloaded_vm_count_) * dt;
    vm_seconds_ += static_cast<double>(placed_vm_count_) * dt;
    last_time_ = t;
  }
}

void DataCenter::reset_accounting(sim::SimTime t) {
  advance_to(t);
  energy_j_ = 0.0;
  overload_vm_seconds_ = 0.0;
  vm_seconds_ = 0.0;
  overload_episodes_.clear();
  activations_ = 0;
  hibernations_ = 0;
  migrations_ = 0;
  failures_ = 0;
  repairs_ = 0;
  max_inflight_ = inflight_;
}

void DataCenter::refresh_server(sim::SimTime t, ServerId s) {
  Server& srv = servers_.at(s);

  const double new_power = power_model_.power_w(srv);
  total_power_w_ += new_power - power_contrib_w_[s];
  power_contrib_w_[s] = new_power;

  const std::size_t new_overload_vms = srv.overloaded() ? srv.vm_count() : 0;
  overloaded_vm_count_ += new_overload_vms;
  overloaded_vm_count_ -= overload_vm_contrib_[s];
  overload_vm_contrib_[s] = new_overload_vms;

  // Overload-episode bookkeeping.
  if (srv.overloaded()) {
    if (overload_since_[s] < 0.0) {
      overload_since_[s] = t;
      overload_min_granted_[s] = srv.granted_fraction();
    } else {
      overload_min_granted_[s] =
          std::min(overload_min_granted_[s], srv.granted_fraction());
    }
  } else if (overload_since_[s] >= 0.0) {
    overload_episodes_.push_back(OverloadEpisode{
        s, overload_since_[s], t - overload_since_[s], overload_min_granted_[s]});
    overload_accum_s_[s] += t - overload_since_[s];
    overload_since_[s] = -1.0;
    overload_min_granted_[s] = 1.0;
  }
}

double DataCenter::server_overload_seconds(ServerId s, sim::SimTime t) const {
  util::require(s < servers_.size(), "server_overload_seconds: unknown server");
  const double open =
      overload_since_[s] >= 0.0 ? t - overload_since_[s] : 0.0;
  return overload_accum_s_[s] + open;
}

double DataCenter::vm_overload_seconds(VmId v, sim::SimTime t) const {
  const Vm& machine = vms_.at(v);
  if (!machine.placed()) return machine.overload_total_s;
  return machine.overload_total_s +
         server_overload_seconds(machine.host, t) - machine.overload_baseline_s;
}

void DataCenter::place_vm(sim::SimTime t, VmId v, ServerId s) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  Server& srv = servers_.at(s);
  util::require(!machine.placed(), "DataCenter::place_vm: VM already placed");
  util::require(srv.active(), "DataCenter::place_vm: server not active");
  machine.host = s;
  srv.host_vm(v, machine.demand_mhz, machine.ram_mb);
  total_demand_mhz_ += machine.demand_mhz;
  ++placed_vm_count_;
  refresh_server(t, s);
  machine.overload_baseline_s = server_overload_seconds(s, t);
}

void DataCenter::unplace_vm(sim::SimTime t, VmId v) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  util::require(machine.placed(), "DataCenter::unplace_vm: VM not placed");
  util::require(!machine.migrating(),
                "DataCenter::unplace_vm: cancel the migration first");
  const ServerId s = machine.host;
  machine.overload_total_s +=
      server_overload_seconds(s, t) - machine.overload_baseline_s;
  servers_.at(s).unhost_vm(v, machine.demand_mhz, machine.ram_mb);
  machine.host = kNoServer;
  total_demand_mhz_ -= machine.demand_mhz;
  --placed_vm_count_;
  refresh_server(t, s);
}

void DataCenter::set_vm_demand(sim::SimTime t, VmId v, double demand_mhz) {
  util::require(demand_mhz >= 0.0, "DataCenter::set_vm_demand: demand must be >= 0");
  advance_to(t);
  Vm& machine = vms_.at(v);
  const double delta = demand_mhz - machine.demand_mhz;
  machine.demand_mhz = demand_mhz;
  if (machine.placed()) {
    servers_.at(machine.host).change_demand(delta);
    total_demand_mhz_ += delta;
    refresh_server(t, machine.host);
  }
  if (machine.migrating()) {
    // Keep the destination reservation in sync with the new demand.
    Server& target = servers_.at(machine.migrating_to);
    target.remove_reservation(machine.reserved_at_dest_mhz);
    machine.reserved_at_dest_mhz = demand_mhz;
    target.add_reservation(demand_mhz);
  }
}

void DataCenter::begin_migration(sim::SimTime t, VmId v, ServerId dest) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  util::require(machine.placed(), "DataCenter::begin_migration: VM not placed");
  util::require(!machine.migrating(), "DataCenter::begin_migration: already migrating");
  util::require(dest != machine.host, "DataCenter::begin_migration: dest == source");
  Server& target = servers_.at(dest);
  util::require(target.active() || target.booting(),
                "DataCenter::begin_migration: destination is hibernated");
  machine.migrating_to = dest;
  machine.reserved_at_dest_mhz = machine.demand_mhz;
  target.add_reservation(machine.reserved_at_dest_mhz);
  servers_.at(machine.host).add_migrating_out();
  ++inflight_;
  max_inflight_ = std::max(max_inflight_, inflight_);
}

void DataCenter::complete_migration(sim::SimTime t, VmId v) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  util::require(machine.migrating(), "DataCenter::complete_migration: not migrating");
  const ServerId src = machine.host;
  const ServerId dest = machine.migrating_to;
  Server& target = servers_.at(dest);
  util::require(target.active(), "DataCenter::complete_migration: dest not active");

  target.remove_reservation(machine.reserved_at_dest_mhz);
  machine.reserved_at_dest_mhz = 0.0;
  machine.overload_total_s +=
      server_overload_seconds(src, t) - machine.overload_baseline_s;
  servers_.at(src).remove_migrating_out();
  servers_.at(src).unhost_vm(v, machine.demand_mhz, machine.ram_mb);
  target.host_vm(v, machine.demand_mhz, machine.ram_mb);
  machine.host = dest;
  machine.migrating_to = kNoServer;
  --inflight_;
  ++migrations_;
  refresh_server(t, src);
  refresh_server(t, dest);
  machine.overload_baseline_s = server_overload_seconds(dest, t);
}

void DataCenter::cancel_migration(sim::SimTime t, VmId v) {
  advance_to(t);
  Vm& machine = vms_.at(v);
  util::require(machine.migrating(), "DataCenter::cancel_migration: not migrating");
  servers_.at(machine.migrating_to).remove_reservation(machine.reserved_at_dest_mhz);
  servers_.at(machine.host).remove_migrating_out();
  machine.reserved_at_dest_mhz = 0.0;
  machine.migrating_to = kNoServer;
  --inflight_;
}

void DataCenter::start_booting(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(srv.hibernated(), "DataCenter::start_booting: server not hibernated");
  srv.set_state(ServerState::kBooting);
  move_server_index(s, ServerState::kHibernated, ServerState::kBooting);
  refresh_server(t, s);
}

void DataCenter::finish_booting(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(srv.booting(), "DataCenter::finish_booting: server not booting");
  srv.set_state(ServerState::kActive);
  move_server_index(s, ServerState::kBooting, ServerState::kActive);
  ++activations_;
  refresh_server(t, s);
}

void DataCenter::hibernate(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(srv.active(), "DataCenter::hibernate: server not active");
  util::require(srv.empty(), "DataCenter::hibernate: server still hosts VMs");
  util::require(srv.reserved_mhz() == 0.0,
                "DataCenter::hibernate: inbound migration reservation pending");
  srv.set_state(ServerState::kHibernated);
  move_server_index(s, ServerState::kActive, ServerState::kHibernated);
  ++hibernations_;
  refresh_server(t, s);
}

std::vector<VmId> DataCenter::fail_server(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(!srv.failed(), "DataCenter::fail_server: server already failed");
  // Check the reservation *count*, not the float sum: out-of-order releases
  // of concurrent reservations can leave sub-epsilon residue in the sum.
  util::require(srv.reservation_count() == 0,
                "DataCenter::fail_server: roll back inbound migrations first");
  srv.clear_reservations();

  // Orphan every hosted VM, settling its SLA attribution exactly as
  // unplace_vm would. The vector is copied because unhosting mutates it.
  const std::vector<VmId> orphans = srv.vms();
  for (VmId v : orphans) {
    Vm& machine = vms_.at(v);
    util::require(!machine.migrating(),
                  "DataCenter::fail_server: roll back outbound migrations first");
    machine.overload_total_s +=
        server_overload_seconds(s, t) - machine.overload_baseline_s;
    srv.unhost_vm(v, machine.demand_mhz, machine.ram_mb);
    machine.host = kNoServer;
    total_demand_mhz_ -= machine.demand_mhz;
    --placed_vm_count_;
  }

  move_server_index(s, srv.state(), ServerState::kFailed);
  srv.set_state(ServerState::kFailed);
  srv.set_grace_until(-1.0);
  srv.set_migration_cooldown_until(-1.0);
  ++failures_;
  refresh_server(t, s);
  return orphans;
}

void DataCenter::repair_server(sim::SimTime t, ServerId s) {
  advance_to(t);
  Server& srv = servers_.at(s);
  util::require(srv.failed(), "DataCenter::repair_server: server not failed");
  srv.set_state(ServerState::kHibernated);
  move_server_index(s, ServerState::kFailed, ServerState::kHibernated);
  ++repairs_;
  refresh_server(t, s);
}

namespace {

void save_id_vector(util::BinWriter& w, const std::vector<ServerId>& ids) {
  w.u64(ids.size());
  for (ServerId id : ids) w.u64(id);
}

void load_id_vector(util::BinReader& r, std::vector<ServerId>& ids) {
  const std::uint64_t n = r.u64();
  ids.clear();
  ids.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<ServerId>(r.u64()));
  }
}

void save_double_vector(util::BinWriter& w, const std::vector<double>& xs) {
  w.u64(xs.size());
  for (double x : xs) w.f64(x);
}

void load_double_vector(util::BinReader& r, std::vector<double>& xs) {
  const std::uint64_t n = r.u64();
  xs.clear();
  xs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) xs.push_back(r.f64());
}

}  // namespace

void DataCenter::save_state(util::BinWriter& w) const {
  w.u64(servers_.size());
  for (const Server& srv : servers_) {
    w.u32(srv.num_cores());
    w.f64(srv.core_mhz());
    w.f64(srv.ram_capacity_mb());
    srv.save_state(w);
  }
  w.u64(vms_.size());
  for (const Vm& v : vms_) {
    w.f64(v.demand_mhz);
    w.f64(v.ram_mb);
    w.u64(v.host);
    w.u64(v.migrating_to);
    w.f64(v.reserved_at_dest_mhz);
    w.f64(v.overload_total_s);
    w.f64(v.overload_baseline_s);
  }
  save_double_vector(w, power_contrib_w_);
  w.u64(overload_vm_contrib_.size());
  for (std::size_t c : overload_vm_contrib_) w.u64(c);
  save_double_vector(w, overload_since_);
  save_double_vector(w, overload_min_granted_);
  save_double_vector(w, overload_accum_s_);
  for (const auto& index : state_index_) save_id_vector(w, index);
  w.u64(placed_vm_count_);
  w.f64(total_capacity_mhz_);
  w.f64(total_demand_mhz_);
  w.f64(total_power_w_);
  w.u64(overloaded_vm_count_);
  w.f64(last_time_);
  w.f64(energy_j_);
  w.f64(overload_vm_seconds_);
  w.f64(vm_seconds_);
  w.u64(overload_episodes_.size());
  for (const OverloadEpisode& ep : overload_episodes_) {
    w.u64(ep.server);
    w.f64(ep.start);
    w.f64(ep.duration_s);
    w.f64(ep.min_granted_fraction);
  }
  w.u64(activations_);
  w.u64(hibernations_);
  w.u64(migrations_);
  w.u64(failures_);
  w.u64(repairs_);
  w.u64(inflight_);
  w.u64(max_inflight_);
}

void DataCenter::load_state(util::BinReader& r) {
  const std::uint64_t num_servers = r.u64();
  if (num_servers != servers_.size()) {
    throw std::runtime_error(
        "DataCenter::load_state: snapshot has " + std::to_string(num_servers) +
        " servers but the configured fleet has " +
        std::to_string(servers_.size()));
  }
  for (Server& srv : servers_) {
    const std::uint32_t cores = r.u32();
    const double core_mhz = r.f64();
    const double ram_mb = r.f64();
    if (cores != srv.num_cores() || core_mhz != srv.core_mhz() ||
        ram_mb != srv.ram_capacity_mb()) {
      throw std::runtime_error(
          "DataCenter::load_state: server " + std::to_string(srv.id()) +
          " capacity differs from the snapshot (configuration mismatch)");
    }
    srv.load_state(r);
  }
  const std::uint64_t num_vms = r.u64();
  vms_.clear();
  vms_.reserve(static_cast<std::size_t>(num_vms));
  for (std::uint64_t i = 0; i < num_vms; ++i) {
    Vm v;
    v.id = static_cast<VmId>(i);
    v.demand_mhz = r.f64();
    v.ram_mb = r.f64();
    v.host = static_cast<ServerId>(r.u64());
    v.migrating_to = static_cast<ServerId>(r.u64());
    v.reserved_at_dest_mhz = r.f64();
    v.overload_total_s = r.f64();
    v.overload_baseline_s = r.f64();
    vms_.push_back(v);
  }
  load_double_vector(r, power_contrib_w_);
  const std::uint64_t num_contrib = r.u64();
  overload_vm_contrib_.clear();
  overload_vm_contrib_.reserve(static_cast<std::size_t>(num_contrib));
  for (std::uint64_t i = 0; i < num_contrib; ++i) {
    overload_vm_contrib_.push_back(static_cast<std::size_t>(r.u64()));
  }
  load_double_vector(r, overload_since_);
  load_double_vector(r, overload_min_granted_);
  load_double_vector(r, overload_accum_s_);
  if (power_contrib_w_.size() != servers_.size() ||
      overload_vm_contrib_.size() != servers_.size() ||
      overload_since_.size() != servers_.size() ||
      overload_min_granted_.size() != servers_.size() ||
      overload_accum_s_.size() != servers_.size()) {
    throw std::runtime_error(
        "DataCenter::load_state: per-server cache arrays do not match the "
        "fleet size");
  }
  for (auto& index : state_index_) load_id_vector(r, index);
  placed_vm_count_ = static_cast<std::size_t>(r.u64());
  total_capacity_mhz_ = r.f64();
  total_demand_mhz_ = r.f64();
  total_power_w_ = r.f64();
  overloaded_vm_count_ = static_cast<std::size_t>(r.u64());
  last_time_ = r.f64();
  energy_j_ = r.f64();
  overload_vm_seconds_ = r.f64();
  vm_seconds_ = r.f64();
  const std::uint64_t num_episodes = r.u64();
  overload_episodes_.clear();
  overload_episodes_.reserve(static_cast<std::size_t>(num_episodes));
  for (std::uint64_t i = 0; i < num_episodes; ++i) {
    OverloadEpisode ep;
    ep.server = static_cast<ServerId>(r.u64());
    ep.start = r.f64();
    ep.duration_s = r.f64();
    ep.min_granted_fraction = r.f64();
    overload_episodes_.push_back(ep);
  }
  activations_ = r.u64();
  hibernations_ = r.u64();
  migrations_ = r.u64();
  failures_ = r.u64();
  repairs_ = r.u64();
  inflight_ = static_cast<std::size_t>(r.u64());
  max_inflight_ = static_cast<std::size_t>(r.u64());
}

std::vector<std::string> DataCenter::audit_invariants(double tolerance) const {
  std::vector<std::string> violations;
  const auto complain = [&violations](std::string message) {
    violations.push_back(std::move(message));
  };

  // Per-server: hosted list consistency and load == sum of VM demands.
  std::vector<std::size_t> times_hosted(vms_.size(), 0);
  std::size_t hosted_total = 0;
  double demand_total_recomputed = 0.0;
  for (const Server& srv : servers_) {
    double demand_sum = 0.0;
    double ram_sum = 0.0;
    std::size_t migrating_out = 0;
    for (VmId v : srv.vms()) {
      if (v >= vms_.size()) {
        complain("server " + std::to_string(srv.id()) +
                 " hosts unknown VM " + std::to_string(v));
        continue;
      }
      ++times_hosted[v];
      const Vm& machine = vms_[v];
      if (machine.host != srv.id()) {
        complain("VM " + std::to_string(v) + " is listed on server " +
                 std::to_string(srv.id()) + " but records host " +
                 std::to_string(machine.host));
      }
      demand_sum += machine.demand_mhz;
      ram_sum += machine.ram_mb;
      if (machine.migrating()) ++migrating_out;
    }
    hosted_total += srv.vm_count();
    demand_total_recomputed += srv.demand_mhz();
    const double demand_tol = tolerance * std::max(1.0, srv.capacity_mhz());
    if (std::abs(demand_sum - srv.demand_mhz()) > demand_tol) {
      complain("server " + std::to_string(srv.id()) + " load " +
               std::to_string(srv.demand_mhz()) + " MHz != sum of hosted VM "
               "demands " + std::to_string(demand_sum) + " MHz");
    }
    if (std::abs(ram_sum - srv.ram_used_mb()) >
        tolerance * std::max(1.0, srv.ram_capacity_mb())) {
      complain("server " + std::to_string(srv.id()) + " RAM accounting drifted");
    }
    if (migrating_out != srv.migrating_out_count()) {
      complain("server " + std::to_string(srv.id()) + " migrating_out_count " +
               std::to_string(srv.migrating_out_count()) + " != " +
               std::to_string(migrating_out) + " migrating hosted VMs");
    }
    if ((srv.hibernated() || srv.failed()) && !srv.empty()) {
      complain("server " + std::to_string(srv.id()) +
               " hosts VMs while powered off");
    }
  }

  // Per-VM: placed exactly once, on the server that lists it; inbound
  // reservation counts match.
  std::vector<std::size_t> inbound(servers_.size(), 0);
  std::size_t migrating_vms = 0;
  for (const Vm& machine : vms_) {
    const std::size_t expected = machine.placed() ? 1 : 0;
    if (times_hosted[machine.id] != expected) {
      complain("VM " + std::to_string(machine.id) + " appears " +
               std::to_string(times_hosted[machine.id]) +
               " times in server host lists but placed()=" +
               std::to_string(expected));
    }
    if (machine.migrating()) {
      ++migrating_vms;
      if (machine.migrating_to < servers_.size()) {
        ++inbound[machine.migrating_to];
      } else {
        complain("VM " + std::to_string(machine.id) +
                 " is migrating to unknown server " +
                 std::to_string(machine.migrating_to));
      }
    }
  }
  for (const Server& srv : servers_) {
    if (srv.reservation_count() != inbound[srv.id()]) {
      complain("server " + std::to_string(srv.id()) + " reservation_count " +
               std::to_string(srv.reservation_count()) + " != " +
               std::to_string(inbound[srv.id()]) + " inbound migrations");
    }
  }
  if (migrating_vms != inflight_) {
    complain("inflight migration counter " + std::to_string(inflight_) +
             " != " + std::to_string(migrating_vms) + " migrating VMs");
  }

  // State indices == brute-force scan (membership and sorted order).
  for (std::size_t st = 0; st < state_index_.size(); ++st) {
    std::vector<ServerId> expected;
    for (const Server& srv : servers_) {
      if (static_cast<std::size_t>(srv.state()) == st) {
        expected.push_back(srv.id());
      }
    }
    if (state_index_[st] != expected) {
      complain(std::string("state index for '") +
               to_string(static_cast<ServerState>(st)) +
               "' differs from a brute-force fleet scan");
    }
  }

  // Cached aggregates == recomputation.
  if (hosted_total != placed_vm_count_) {
    complain("placed_vm_count " + std::to_string(placed_vm_count_) + " != " +
             std::to_string(hosted_total) + " hosted VMs");
  }
  if (std::abs(demand_total_recomputed - total_demand_mhz_) >
      tolerance * std::max(1.0, total_capacity_mhz_)) {
    complain("total_demand_mhz drifted from the per-server sum");
  }
  double power_sum = 0.0;
  std::size_t overload_vms = 0;
  for (const Server& srv : servers_) {
    const double expected_power = power_model_.power_w(srv);
    if (std::abs(power_contrib_w_[srv.id()] - expected_power) >
        tolerance * std::max(1.0, expected_power)) {
      complain("cached power contribution of server " +
               std::to_string(srv.id()) + " is stale");
    }
    power_sum += power_contrib_w_[srv.id()];
    const std::size_t expected_overload = srv.overloaded() ? srv.vm_count() : 0;
    if (overload_vm_contrib_[srv.id()] != expected_overload) {
      complain("cached overload VM contribution of server " +
               std::to_string(srv.id()) + " is stale");
    }
    overload_vms += overload_vm_contrib_[srv.id()];
  }
  if (std::abs(power_sum - total_power_w_) >
      tolerance * std::max(1.0, power_sum)) {
    complain("total_power_w drifted from the per-server contributions");
  }
  if (overload_vms != overloaded_vm_count_) {
    complain("overloaded_vm_count " + std::to_string(overloaded_vm_count_) +
             " != " + std::to_string(overload_vms) + " from contributions");
  }
  return violations;
}

std::size_t DataCenter::heal_caches() {
  std::size_t healed = 0;

  std::array<std::vector<ServerId>, 4> index;
  for (const Server& srv : servers_) {
    index[static_cast<std::size_t>(srv.state())].push_back(srv.id());
  }
  if (index != state_index_) {
    state_index_ = std::move(index);
    ++healed;
  }

  double power_sum = 0.0;
  std::size_t overload_vms = 0;
  bool contrib_changed = false;
  for (const Server& srv : servers_) {
    const double power = power_model_.power_w(srv);
    if (power_contrib_w_[srv.id()] != power) {
      power_contrib_w_[srv.id()] = power;
      contrib_changed = true;
    }
    const std::size_t overload = srv.overloaded() ? srv.vm_count() : 0;
    if (overload_vm_contrib_[srv.id()] != overload) {
      overload_vm_contrib_[srv.id()] = overload;
      contrib_changed = true;
    }
    power_sum += power;
    overload_vms += overload;
  }
  if (contrib_changed || total_power_w_ != power_sum ||
      overloaded_vm_count_ != overload_vms) {
    total_power_w_ = power_sum;
    overloaded_vm_count_ = overload_vms;
    ++healed;
  }

  std::size_t hosted = 0;
  double demand = 0.0;
  double capacity = 0.0;
  std::size_t migrating = 0;
  for (const Server& srv : servers_) {
    hosted += srv.vm_count();
    demand += srv.demand_mhz();
    capacity += srv.capacity_mhz();
  }
  for (const Vm& machine : vms_) {
    if (machine.migrating()) ++migrating;
  }
  if (placed_vm_count_ != hosted || total_demand_mhz_ != demand ||
      total_capacity_mhz_ != capacity || inflight_ != migrating) {
    placed_vm_count_ = hosted;
    total_demand_mhz_ = demand;
    total_capacity_mhz_ = capacity;
    inflight_ = migrating;
    ++healed;
  }
  return healed;
}

}  // namespace ecocloud::dc
