#pragma once

/// \file monitor_kernel.hpp
/// \brief Columnar classification kernel for the monitor hot path.
///
/// One pass over the ServerSoA columns computes, for a contiguous id
/// range, the fast-path effective utilization (demand/capacity clamped to
/// [0,1] — exact for every server with no outbound migrations) and a
/// 4-way class byte against the [Tl, Th] band. The loop is branch-light
/// and touches only dense POD columns, so the compiler vectorizes it; an
/// AVX2 translation unit and a portable scalar one compile the SAME loop
/// body and the dispatcher picks at runtime. Every operation in the loop
/// (divide, compare, clamp via select) is IEEE-exact, so the two builds
/// are bit-identical by construction — `tests/controller_test.cpp` locks
/// them together anyway, and CI runs a forced-scalar leg
/// (ECOCLOUD_FORCE_SCALAR_KERNEL=1). See DESIGN.md §17.

#include <cstddef>
#include <cstdint>

namespace ecocloud::dc {

struct ServerSoA;

/// Per-server monitor classification. Values are chosen so the batch loop
/// can compute them arithmetically: skip = 0, otherwise 1 + (u < Tl) +
/// 2*(u > Th) — Tl < Th makes the two predicates exclusive.
enum class MonitorClass : std::uint8_t {
  kSkip = 0,    ///< not active, or hosts nothing: monitor tick is a no-op
  kInBand = 1,  ///< Tl <= u <= Th: no trial
  kLow = 2,     ///< u < Tl: f_l Bernoulli trial at fire time
  kHigh = 3,    ///< u > Th: f_h Bernoulli trial at fire time
};

namespace detail {

/// The shared loop body. Compiled once per ISA translation unit; must stay
/// free of FMA-contractible operations (only divide/compare/select) so
/// every build produces bit-identical u_eff values.
inline void classify_loop(const std::uint8_t* state, const std::uint32_t* vm_count,
                          const double* demand_mhz, const double* capacity_mhz,
                          std::size_t begin, std::size_t end, double tl, double th,
                          double* u_eff, std::uint8_t* cls) {
  constexpr std::uint8_t kActiveByte = 2;  // ServerState::kActive
  for (std::size_t i = begin; i < end; ++i) {
    // util::clamp01(demand_ratio()) exactly: demand >= 0 and capacity > 0,
    // so u >= 0 and never NaN — the lower clamp is a no-op kept for shape.
    double u = demand_mhz[i] / capacity_mhz[i];
    u = u < 0.0 ? 0.0 : u;
    u = u > 1.0 ? 1.0 : u;
    u_eff[i] = u;
    const std::uint8_t band = static_cast<std::uint8_t>(
        1u + (u < tl ? 1u : 0u) + (u > th ? 2u : 0u));
    const bool live = (state[i] == kActiveByte) & (vm_count[i] != 0u);
    cls[i] = live ? band : std::uint8_t{0};
  }
}

}  // namespace detail

/// Classify servers [begin, end) through the best kernel this host
/// supports (AVX2 when built in and the CPU has it, scalar otherwise; the
/// ECOCLOUD_FORCE_SCALAR_KERNEL environment variable — checked once, at
/// first call — pins the scalar build). Writes u_eff[i] and cls[i] for
/// every i in the range; cls values are MonitorClass bytes.
void monitor_classify(const ServerSoA& soa, std::size_t begin, std::size_t end,
                      double tl, double th, double* u_eff, std::uint8_t* cls);

/// The portable reference kernel, always scalar-compiled. The lockstep
/// property test compares monitor_classify against this bit for bit.
void monitor_classify_scalar(const ServerSoA& soa, std::size_t begin,
                             std::size_t end, double tl, double th,
                             double* u_eff, std::uint8_t* cls);

/// Name of the kernel monitor_classify dispatches to on this host:
/// "avx2" or "scalar". Recorded by bench_perf_engine next to the CPU
/// model so BENCH_engine.json rows are interpretable across hosts.
[[nodiscard]] const char* monitor_kernel_name();

}  // namespace ecocloud::dc
