#pragma once

/// \file ids.hpp
/// \brief Identifier types for servers and virtual machines.

#include <cstdint>
#include <limits>

namespace ecocloud::dc {

using ServerId = std::uint32_t;
using VmId = std::uint32_t;

/// Sentinel for "no server" (e.g. an unplaced VM).
inline constexpr ServerId kNoServer = std::numeric_limits<ServerId>::max();

/// Sentinel for "no VM".
inline constexpr VmId kNoVm = std::numeric_limits<VmId>::max();

}  // namespace ecocloud::dc
