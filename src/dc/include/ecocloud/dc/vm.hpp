#pragma once

/// \file vm.hpp
/// \brief Virtual machine record.
///
/// A VM is characterised by its instantaneous CPU demand in MHz (updated
/// from the workload trace every sampling period) and an optional RAM
/// footprint used by the multi-resource extension. Placement state is owned
/// by the DataCenter, which keeps these records consistent.

#include <cstdint>

#include "ecocloud/dc/ids.hpp"

namespace ecocloud::dc {

struct Vm {
  VmId id = kNoVm;

  /// Instantaneous CPU demand in MHz (>= 0).
  double demand_mhz = 0.0;

  /// RAM footprint in MB (used by the multi-resource extension; the core
  /// CPU-only algorithm ignores it).
  double ram_mb = 0.0;

  /// Hosting server, or kNoServer when unplaced.
  ServerId host = kNoServer;

  /// Destination server while a live migration is in flight, else kNoServer.
  ServerId migrating_to = kNoServer;

  /// Capacity currently reserved at the migration destination (tracked so
  /// the exact amount is released even if demand changes mid-flight).
  double reserved_at_dest_mhz = 0.0;

  /// Per-VM SLA attribution (maintained by DataCenter): seconds this VM
  /// spent on overloaded servers across past placements, plus the host's
  /// cumulative-overload baseline at the current placement.
  double overload_total_s = 0.0;
  double overload_baseline_s = 0.0;

  [[nodiscard]] bool placed() const { return host != kNoServer; }
  [[nodiscard]] bool migrating() const { return migrating_to != kNoServer; }
};

}  // namespace ecocloud::dc
