#pragma once

/// \file vm.hpp
/// \brief Virtual machine records, stored as parallel columns.
///
/// A VM is characterised by its instantaneous CPU demand in MHz (updated
/// from the workload trace every sampling period) and an optional RAM
/// footprint used by the multi-resource extension. Placement state is owned
/// by the DataCenter, which keeps these records consistent.
///
/// Storage is structure-of-arrays (VmSoA): the trace tick — the dominant
/// event type — sweeps only the demand and host columns instead of striding
/// over whole records, and a 15M-VM fleet costs 48 bytes per VM with no
/// padding. `Vm` remains a plain value struct for callers: DataCenter::vm()
/// assembles a *snapshot* of one VM from the columns. Snapshots do not track
/// later mutations; hot paths read the columns through DataCenter's
/// vm_demand_mhz()/vm_host()/... accessors instead.

#include <cstdint>
#include <vector>

#include "ecocloud/dc/ids.hpp"

namespace ecocloud::dc {

struct Vm {
  VmId id = kNoVm;

  /// Instantaneous CPU demand in MHz (>= 0).
  double demand_mhz = 0.0;

  /// RAM footprint in MB (used by the multi-resource extension; the core
  /// CPU-only algorithm ignores it).
  double ram_mb = 0.0;

  /// Hosting server, or kNoServer when unplaced.
  ServerId host = kNoServer;

  /// Destination server while a live migration is in flight, else kNoServer.
  ServerId migrating_to = kNoServer;

  /// Capacity currently reserved at the migration destination (tracked so
  /// the exact amount is released even if demand changes mid-flight).
  double reserved_at_dest_mhz = 0.0;

  /// Per-VM SLA attribution (maintained by DataCenter): seconds this VM
  /// spent on overloaded servers across past placements, plus the host's
  /// cumulative-overload baseline at the current placement.
  double overload_total_s = 0.0;
  double overload_baseline_s = 0.0;

  [[nodiscard]] bool placed() const { return host != kNoServer; }
  [[nodiscard]] bool migrating() const { return migrating_to != kNoServer; }
};

/// Parallel POD columns of all VMs, indexed by VmId.
struct VmSoA {
  std::vector<double> demand_mhz;
  std::vector<double> ram_mb;
  std::vector<ServerId> host;
  std::vector<ServerId> migrating_to;
  std::vector<double> reserved_at_dest_mhz;
  std::vector<double> overload_total_s;
  std::vector<double> overload_baseline_s;

  [[nodiscard]] std::size_t size() const { return demand_mhz.size(); }

  VmId add(double demand, double ram) {
    const auto id = static_cast<VmId>(size());
    demand_mhz.push_back(demand);
    ram_mb.push_back(ram);
    host.push_back(kNoServer);
    migrating_to.push_back(kNoServer);
    reserved_at_dest_mhz.push_back(0.0);
    overload_total_s.push_back(0.0);
    overload_baseline_s.push_back(0.0);
    return id;
  }

  void clear() {
    demand_mhz.clear();
    ram_mb.clear();
    host.clear();
    migrating_to.clear();
    reserved_at_dest_mhz.clear();
    overload_total_s.clear();
    overload_baseline_s.clear();
  }

  void reserve(std::size_t n) {
    demand_mhz.reserve(n);
    ram_mb.reserve(n);
    host.reserve(n);
    migrating_to.reserve(n);
    reserved_at_dest_mhz.reserve(n);
    overload_total_s.reserve(n);
    overload_baseline_s.reserve(n);
  }

  /// Assemble a snapshot of VM \p v (no bounds check; callers validate).
  [[nodiscard]] Vm get(VmId v) const {
    Vm out;
    out.id = v;
    out.demand_mhz = demand_mhz[v];
    out.ram_mb = ram_mb[v];
    out.host = host[v];
    out.migrating_to = migrating_to[v];
    out.reserved_at_dest_mhz = reserved_at_dest_mhz[v];
    out.overload_total_s = overload_total_s[v];
    out.overload_baseline_s = overload_baseline_s[v];
    return out;
  }
};

}  // namespace ecocloud::dc
