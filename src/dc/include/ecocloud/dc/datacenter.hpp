#pragma once

/// \file datacenter.hpp
/// \brief Data-center state: servers, VMs, placement, exact accounting.
///
/// DataCenter is the single owner of placement state. Every mutator takes
/// the current simulation time and first integrates the piecewise-constant
/// quantities (power -> energy, overload VM-time, VM-time) over the elapsed
/// interval, so energy and QoS metrics are exact rather than sampled.
///
/// The class is deliberately policy-free: ecoCloud and the centralized
/// baselines drive it through the same interface, which is what makes the
/// comparison benches apples-to-apples.
///
/// Fleet storage is structure-of-arrays (ServerSoA / VmSoA, see server.hpp
/// and vm.hpp): server(s)/vm(v) hand out views/snapshots over parallel POD
/// columns. Per-state membership is a dense swap-erase index set per state
/// (O(1) transitions, contiguous walks for the O(1) samplers); the sorted
/// ascending-id view that pins the legacy RNG draw order is materialized
/// lazily and cached until the next transition (DESIGN.md §14).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ecocloud/dc/ids.hpp"
#include "ecocloud/dc/power.hpp"
#include "ecocloud/dc/server.hpp"
#include "ecocloud/dc/vm.hpp"
#include "ecocloud/sim/time.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::dc {

/// One completed overload episode on a server (for the paper's Sec. III
/// claim that >98% of violations last under 30 s with >=98% CPU granted).
struct OverloadEpisode {
  ServerId server = kNoServer;
  sim::SimTime start = 0.0;
  double duration_s = 0.0;
  /// Worst (lowest) fraction of demanded CPU granted during the episode.
  double min_granted_fraction = 1.0;
};

/// Iterable fleet view: yields a Server view per id, ascending. Replaces
/// the former `const std::vector<Server>&` (the records no longer exist as
/// contiguous structs); every call site was already a range-for.
class ServerRange {
 public:
  class iterator {
   public:
    iterator(ServerSoA* soa, ServerId id) : soa_(soa), id_(id) {}
    Server operator*() const { return Server(*soa_, id_); }
    iterator& operator++() {
      ++id_;
      return *this;
    }
    bool operator==(const iterator& other) const { return id_ == other.id_; }
    bool operator!=(const iterator& other) const { return id_ != other.id_; }

   private:
    ServerSoA* soa_;
    ServerId id_;
  };

  explicit ServerRange(ServerSoA* soa) : soa_(soa) {}
  [[nodiscard]] std::size_t size() const { return soa_->size(); }
  [[nodiscard]] iterator begin() const { return iterator(soa_, 0); }
  [[nodiscard]] iterator end() const {
    return iterator(soa_, static_cast<ServerId>(soa_->size()));
  }
  [[nodiscard]] Server operator[](std::size_t i) const {
    return Server(*soa_, static_cast<ServerId>(i));
  }

 private:
  ServerSoA* soa_;
};

class DataCenter {
 public:
  explicit DataCenter(PowerModel power_model = PowerModel{});

  // --- Construction -------------------------------------------------------

  /// Add a server (initially hibernated). Returns its id.
  ServerId add_server(unsigned num_cores, double core_mhz, double ram_mb = 0.0);

  /// Create an unplaced VM. Returns its id.
  VmId create_vm(double demand_mhz, double ram_mb = 0.0);

  /// Pre-size the VM columns (planet-scale fleets know their VM count).
  void reserve_vms(std::size_t n) { vms_.reserve(n); }

  // --- Queries -------------------------------------------------------------

  [[nodiscard]] std::size_t num_servers() const { return servers_.size(); }
  [[nodiscard]] std::size_t num_vms() const { return vms_.size(); }
  /// View of one server. Views read/write the columns live; the const
  /// qualifier here guards the *DataCenter* API surface (aggregate caches),
  /// not the view itself — mutate servers only through DataCenter, or
  /// through server_mutable() for the cooldown/grace fields it owns.
  [[nodiscard]] Server server(ServerId s) const {
    util::require(s < servers_.size(), "DataCenter::server: unknown server");
    return Server(const_cast<ServerSoA&>(servers_), s);
  }
  [[nodiscard]] Server server_mutable(ServerId s) {
    util::require(s < servers_.size(),
                  "DataCenter::server_mutable: unknown server");
    return Server(servers_, s);
  }
  /// Snapshot of one VM's record, assembled from the columns. Does NOT
  /// track later mutations — hot paths use the vm_*() column accessors.
  [[nodiscard]] Vm vm(VmId v) const {
    util::require(v < vms_.size(), "DataCenter::vm: unknown VM");
    return vms_.get(v);
  }
  [[nodiscard]] ServerRange servers() const {
    return ServerRange(const_cast<ServerSoA*>(&servers_));
  }
  /// Raw column storage of the fleet, read-only: the batched monitor
  /// kernel (monitor_kernel.hpp) sweeps these columns directly instead of
  /// going through one Server view per row.
  [[nodiscard]] const ServerSoA& servers_soa() const { return servers_; }
  [[nodiscard]] const PowerModel& power_model() const { return power_model_; }

  // O(1) column reads for the hot paths (trace ticks, migration checks).
  [[nodiscard]] double vm_demand_mhz(VmId v) const { return vms_.demand_mhz[v]; }
  [[nodiscard]] double vm_ram_mb(VmId v) const { return vms_.ram_mb[v]; }
  [[nodiscard]] ServerId vm_host(VmId v) const { return vms_.host[v]; }
  [[nodiscard]] ServerId vm_migrating_to(VmId v) const {
    return vms_.migrating_to[v];
  }
  [[nodiscard]] bool vm_placed(VmId v) const { return vms_.host[v] != kNoServer; }
  [[nodiscard]] bool vm_migrating(VmId v) const {
    return vms_.migrating_to[v] != kNoServer;
  }

  [[nodiscard]] std::size_t active_server_count() const {
    return state_members(ServerState::kActive).size();
  }
  [[nodiscard]] std::size_t booting_server_count() const {
    return state_members(ServerState::kBooting).size();
  }
  [[nodiscard]] std::size_t placed_vm_count() const { return placed_vm_count_; }

  /// Sum of all server capacities (MHz), regardless of state.
  [[nodiscard]] double total_capacity_mhz() const { return total_capacity_mhz_; }

  /// Sum of demands of placed VMs (MHz).
  [[nodiscard]] double total_demand_mhz() const { return total_demand_mhz_; }

  /// Overall load: placed demand / total capacity (the paper's reference
  /// curve in Figs. 6 and 12).
  [[nodiscard]] double overall_load() const;

  /// Instantaneous total power draw (W) over all servers.
  [[nodiscard]] double total_power_w() const { return total_power_w_; }

  /// Ids of servers currently in the given state, ascending by id. The
  /// ascending order matches what a full scan would produce, which pins
  /// the RNG draw sequence of every legacy consumer (invitation rounds,
  /// wake-up picks). Materialized lazily from the dense membership set and
  /// cached until the next state transition, so repeated reads between
  /// transitions cost nothing. The reference is invalidated by any state
  /// transition; copy it before mutating.
  [[nodiscard]] const std::vector<ServerId>& servers_with(ServerState state) const;

  /// Ids of servers currently in the given state, in *membership* order:
  /// dense, contiguous, swap-erase maintained — the order servers entered
  /// the state, with unordered O(1) removal. Deterministic given the event
  /// history (and checkpointed verbatim), but NOT sorted; this is what the
  /// O(1)/O(k) samplers draw from. The reference is invalidated by any
  /// state transition.
  [[nodiscard]] const std::vector<ServerId>& state_members(ServerState state) const {
    return state_members_[static_cast<std::size_t>(state)];
  }

  /// Position of server \p s inside state_members(<its current state>).
  /// Lets samplers exclude a specific server in O(1): a draw over
  /// [0, members-1) is remapped around this slot instead of copying the
  /// membership set without it.
  [[nodiscard]] std::uint32_t position_in_state(ServerId s) const {
    return state_pos_[s];
  }

  /// Ids of servers currently in the given state (owning copy, ascending).
  [[nodiscard]] std::vector<ServerId> servers_in_state(ServerState state) const;

  /// Utilizations of all active servers (ascending server id).
  [[nodiscard]] std::vector<double> active_utilizations() const;

  // --- Accounting (integrated exactly between events) ----------------------

  [[nodiscard]] sim::SimTime last_update_time() const { return last_time_; }

  /// Integrate power/overload/VM-time up to time \p t (monotone).
  void advance_to(sim::SimTime t);

  /// Total electrical energy consumed so far, in joules.
  [[nodiscard]] double energy_joules() const { return energy_j_; }

  /// Integral of (#VMs on overloaded servers) dt, in VM-seconds.
  [[nodiscard]] double overload_vm_seconds() const { return overload_vm_seconds_; }

  /// Integral of (#placed VMs) dt, in VM-seconds.
  [[nodiscard]] double vm_seconds() const { return vm_seconds_; }

  /// Completed overload episodes (open episodes are not included).
  [[nodiscard]] const std::vector<OverloadEpisode>& overload_episodes() const {
    return overload_episodes_;
  }

  /// Cumulative seconds server \p s has spent overloaded up to time \p t
  /// (t must be >= the last accounting update).
  [[nodiscard]] double server_overload_seconds(ServerId s, sim::SimTime t) const;

  /// Exact seconds VM \p v has spent hosted on overloaded servers — the
  /// per-VM reading of Fig. 11's "time in which the CPU demanded by a VM
  /// cannot be completely granted". O(1); maintained across migrations.
  [[nodiscard]] double vm_overload_seconds(VmId v, sim::SimTime t) const;

  /// Reset the energy/overload accumulators (used to skip warm-up periods).
  void reset_accounting(sim::SimTime t);

  // --- Mutators (all advance accounting to \p t first) ----------------------

  /// Place an unplaced VM on an active server.
  void place_vm(sim::SimTime t, VmId v, ServerId s);

  /// Remove a placed, non-migrating VM from its server (e.g. VM departure).
  void unplace_vm(sim::SimTime t, VmId v);

  /// Update a VM's CPU demand from the trace; adjusts its host's load.
  void set_vm_demand(sim::SimTime t, VmId v, double demand_mhz);

  /// Start a live migration: reserves capacity at \p dest. The VM keeps
  /// running on its source until complete_migration().
  void begin_migration(sim::SimTime t, VmId v, ServerId dest);

  /// Finish an in-flight migration: moves the VM and releases the
  /// reservation. The destination must still be active.
  void complete_migration(sim::SimTime t, VmId v);

  /// Abort an in-flight migration, releasing the destination reservation.
  void cancel_migration(sim::SimTime t, VmId v);

  /// Hibernated -> Booting (the controller schedules boot completion).
  void start_booting(sim::SimTime t, ServerId s);

  /// Booting -> Active.
  void finish_booting(sim::SimTime t, ServerId s);

  /// Active & empty -> Hibernated.
  void hibernate(sim::SimTime t, ServerId s);

  /// Fail-stop crash: any non-failed state -> Failed. Every hosted VM is
  /// unplaced (demand removed, SLA attribution settled) and returned so the
  /// caller can drive re-deployment. The caller must first roll back every
  /// in-flight migration touching the server — a failed server may hold
  /// neither reservations nor migrating VMs.
  std::vector<VmId> fail_server(sim::SimTime t, ServerId s);

  /// Repair a failed server: Failed -> Hibernated (it comes back powered
  /// off and rejoins through the normal wake-up path).
  void repair_server(sim::SimTime t, ServerId s);

  // --- Lifetime switch counters --------------------------------------------

  [[nodiscard]] std::uint64_t total_activations() const { return activations_; }
  [[nodiscard]] std::uint64_t total_hibernations() const { return hibernations_; }
  [[nodiscard]] std::uint64_t total_migrations() const { return migrations_; }
  [[nodiscard]] std::uint64_t total_failures() const { return failures_; }
  [[nodiscard]] std::uint64_t total_repairs() const { return repairs_; }
  [[nodiscard]] std::size_t failed_server_count() const {
    return state_members(ServerState::kFailed).size();
  }

  /// Migrations currently in flight, and the historical maximum — the
  /// paper's "simultaneous migration of many VMs" criticism of centralized
  /// reallocation, quantified.
  [[nodiscard]] std::size_t inflight_migrations() const { return inflight_; }
  [[nodiscard]] std::size_t max_inflight_migrations() const { return max_inflight_; }

  // --- Checkpoint / audit ---------------------------------------------------

  /// Serialize the complete mutable state: every server and VM record, the
  /// per-server contribution caches, the dense state-membership sets (in
  /// membership order — the samplers' draw order is part of the state), and
  /// the incrementally accumulated aggregates — the latter verbatim, never
  /// re-summed, because a different summation order would round differently
  /// and break bit-exact resume.
  void save_state(util::BinWriter& w) const;

  /// Restore a snapshot into a fleet built from the same configuration.
  /// Verifies that server count and per-server capacities match the
  /// snapshot and throws std::runtime_error on any mismatch.
  void load_state(util::BinReader& r);

  /// Conservation-invariant audit: per-server load == sum of hosted VM
  /// demands, every VM placed on exactly the server that lists it, dense
  /// state membership == brute-force scan (as a set, plus position-map
  /// consistency), cached aggregates == recomputation (within \p tolerance
  /// for floating-point accumulators). Returns one human-readable string
  /// per violation; empty means consistent.
  [[nodiscard]] std::vector<std::string> audit_invariants(double tolerance) const;

  /// Rebuild derived caches (state membership sets, per-server power and
  /// overload contributions, aggregate totals) from the ground-truth server
  /// and VM records. Returns the number of cache groups that changed. This
  /// *can* change subsequent behavior relative to an unhealed run — it is
  /// the `heal` audit action's repair step, not a no-op.
  std::size_t heal_caches();

  // --- Monitor dirty journal ------------------------------------------------
  //
  // The batched monitor kernel (core::EcoCloudController) caches a per-server
  // classification of the monitor-relevant state: power state, hosted-VM
  // count, demand, and migrating-out count. DataCenter records which servers
  // changed any of those since the controller last drained, so the cache is
  // refreshed incrementally instead of recomputed fleet-wide per event.
  // Grace/cooldown stamps are deliberately NOT journaled: the controller
  // reads them from the columns at fire time. Once the journal grows past
  // ~1/8 of the fleet it collapses to "everything dirty", which the drain
  // turns into one vectorizable full rebuild.

  /// True when the journal overflowed (or state was bulk-replaced by
  /// load_state/heal_caches) and the whole fleet must be re-classified.
  [[nodiscard]] bool monitor_all_dirty() const { return monitor_all_dirty_; }
  /// Ids marked dirty since the last clear; meaningless while
  /// monitor_all_dirty() is true. Unordered, duplicate-free.
  [[nodiscard]] const std::vector<ServerId>& monitor_dirty_ids() const {
    return monitor_dirty_ids_;
  }
  /// Reset the journal after a drain (controller only).
  void clear_monitor_dirty();

 private:
  /// Refresh cached per-server contributions (power, overloaded VM count)
  /// after server \p s changed; updates overload episode tracking at time t.
  void refresh_server(sim::SimTime t, ServerId s);

  /// Move \p s between dense state sets: swap-erase from \p from, append to
  /// \p to, O(1); invalidates the sorted views of both states.
  void move_server_state(ServerId s, ServerState from, ServerState to);

  /// Journal a monitor-relevant change on server \p s (see the public
  /// journal accessors). O(1); collapses to all-dirty past the threshold.
  void mark_monitor_dirty(ServerId s);
  void mark_all_monitor_dirty();

  PowerModel power_model_;
  ServerSoA servers_;
  VmSoA vms_;

  // Cached per-server contributions to the aggregates.
  std::vector<double> power_contrib_w_;
  std::vector<std::size_t> overload_vm_contrib_;
  // Open overload episode per server: start time, min granted; start < 0
  // means "not overloaded".
  std::vector<double> overload_since_;
  std::vector<double> overload_min_granted_;
  // Closed-episode overload seconds per server (open episode added lazily).
  std::vector<double> overload_accum_s_;

  // Dense per-state membership (one slot per ServerState enumerator):
  // membership order with swap-erase removal, plus each server's position
  // in its state's set. All "which servers are <state>" reads go through
  // these; the sorted ascending-id view consumed by the legacy (compat)
  // sampler is cached per state and re-derived only after a transition
  // dirtied it.
  std::array<std::vector<ServerId>, 4> state_members_;
  std::vector<std::uint32_t> state_pos_;
  mutable std::array<std::vector<ServerId>, 4> sorted_view_;
  mutable std::array<bool, 4> sorted_dirty_{};

  std::size_t placed_vm_count_ = 0;
  double total_capacity_mhz_ = 0.0;
  double total_demand_mhz_ = 0.0;
  double total_power_w_ = 0.0;
  std::size_t overloaded_vm_count_ = 0;

  sim::SimTime last_time_ = 0.0;
  double energy_j_ = 0.0;
  double overload_vm_seconds_ = 0.0;
  double vm_seconds_ = 0.0;
  std::vector<OverloadEpisode> overload_episodes_;

  std::uint64_t activations_ = 0;
  std::uint64_t hibernations_ = 0;
  std::uint64_t migrations_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t repairs_ = 0;
  std::size_t inflight_ = 0;
  std::size_t max_inflight_ = 0;

  // Monitor dirty journal (not checkpointed: restore marks everything
  // dirty, so the first drain rebuilds the classification from scratch).
  std::vector<std::uint8_t> monitor_dirty_flag_;
  std::vector<ServerId> monitor_dirty_ids_;
  bool monitor_all_dirty_ = true;
};

}  // namespace ecocloud::dc
