#pragma once

/// \file server.hpp
/// \brief Physical server model: capacity, power state, hosted VMs.
///
/// Utilization is total hosted CPU demand divided by capacity; the *demand
/// ratio* may exceed 1 (overload), in which case the hypervisor grants CPU
/// proportionally (see DataCenter overload accounting). Decision-time
/// utilization additionally counts capacity reserved for in-flight inbound
/// migrations so concurrent decisions do not oversubscribe a server.
///
/// Storage is structure-of-arrays (ServerSoA): each attribute lives in its
/// own dense column indexed by ServerId, so fleet-wide walks (invitation
/// rounds, power/overload scans) touch only the columns they need instead
/// of striding over 150-byte records. `Server` is a lightweight *view* —
/// a (columns, id) pair — that keeps the member-function API every policy
/// and test was written against. Views are cheap to copy but never own
/// storage; they are invalidated only by destroying the ServerSoA.

#include <cstdint>
#include <vector>

#include "ecocloud/dc/ids.hpp"
#include "ecocloud/sim/time.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::dc {

/// Power state of a server.
enum class ServerState {
  kHibernated,  ///< Low-power sleep; hosts nothing.
  kBooting,     ///< Waking up; draws peak power, cannot host yet.
  kActive,      ///< Running; hosts VMs.
  kFailed,      ///< Fail-stop crash; draws nothing, hosts nothing, awaiting repair.
};

[[nodiscard]] const char* to_string(ServerState state);

class Server;

/// Parallel POD columns of the whole fleet, indexed by ServerId. The
/// immutable identity columns (cores, frequency, capacity, RAM) are set by
/// add(); everything else is mutated through Server views. Kept as a plain
/// aggregate so DataCenter (and tests) can build fleets without ceremony.
struct ServerSoA {
  // Identity / capacity (immutable after add()).
  std::vector<std::uint32_t> num_cores;
  std::vector<double> core_mhz;
  std::vector<double> capacity_mhz;
  std::vector<double> ram_capacity_mb;

  // Power/placement state (hot columns; see DESIGN.md §14).
  std::vector<std::uint8_t> state;
  std::vector<double> demand_mhz;
  std::vector<double> ram_used_mb;
  std::vector<double> reserved_mhz;
  std::vector<std::uint32_t> reservation_count;
  std::vector<std::uint32_t> migrating_out_count;
  std::vector<sim::SimTime> grace_until;
  std::vector<sim::SimTime> migration_cooldown_until;
  std::vector<std::vector<VmId>> vms;
  /// Mirror of vms[id].size() as a dense integer column so fleet-wide
  /// emptiness checks (the batched monitor kernel) never chase the
  /// per-server vector headers. Derivable state: snapshots do not carry
  /// it; Server::load_state resets it from the restored VM list.
  std::vector<std::uint32_t> vm_count;

  [[nodiscard]] std::size_t size() const { return state.size(); }

  /// Append a server (initially hibernated) and return a view of it.
  /// Validates like the old Server constructor: cores > 0, core_mhz > 0,
  /// ram_mb >= 0 (throws std::invalid_argument otherwise).
  Server add(unsigned cores, double mhz, double ram_mb = 0.0);
};

/// A view of one server's row across the ServerSoA columns. Same public
/// API as the former array-of-structs Server class; copyable, pointer-sized
/// twice over, never owning.
class Server {
 public:
  Server(ServerSoA& soa, ServerId id) : soa_(&soa), id_(id) {}

  [[nodiscard]] ServerId id() const { return id_; }
  [[nodiscard]] unsigned num_cores() const { return soa_->num_cores[id_]; }
  [[nodiscard]] double core_mhz() const { return soa_->core_mhz[id_]; }
  [[nodiscard]] double capacity_mhz() const { return soa_->capacity_mhz[id_]; }
  [[nodiscard]] double ram_capacity_mb() const {
    return soa_->ram_capacity_mb[id_];
  }

  [[nodiscard]] ServerState state() const {
    return static_cast<ServerState>(soa_->state[id_]);
  }
  [[nodiscard]] bool active() const { return state() == ServerState::kActive; }
  [[nodiscard]] bool hibernated() const {
    return state() == ServerState::kHibernated;
  }
  [[nodiscard]] bool booting() const { return state() == ServerState::kBooting; }
  [[nodiscard]] bool failed() const { return state() == ServerState::kFailed; }

  /// Total CPU demand of hosted VMs, in MHz.
  [[nodiscard]] double demand_mhz() const { return soa_->demand_mhz[id_]; }

  /// Total RAM of hosted VMs, in MB.
  [[nodiscard]] double ram_used_mb() const { return soa_->ram_used_mb[id_]; }

  /// CPU demand reserved for in-flight inbound migrations, in MHz.
  [[nodiscard]] double reserved_mhz() const { return soa_->reserved_mhz[id_]; }

  /// Demand ratio: hosted demand / capacity; may exceed 1 under overload.
  [[nodiscard]] double demand_ratio() const {
    return demand_mhz() / capacity_mhz();
  }

  /// CPU utilization u in [0, 1]: demand ratio clamped to 1. This is the
  /// quantity the paper's probability functions take as input.
  [[nodiscard]] double utilization() const;

  /// Utilization including reservations, used for admission decisions.
  [[nodiscard]] double decision_utilization() const;

  /// True when hosted demand exceeds capacity.
  [[nodiscard]] bool overloaded() const {
    return demand_mhz() > capacity_mhz();
  }

  /// Fraction of demanded CPU actually granted (1 when not overloaded).
  [[nodiscard]] double granted_fraction() const;

  /// Hosted VM ids (unordered).
  [[nodiscard]] const std::vector<VmId>& vms() const { return soa_->vms[id_]; }
  [[nodiscard]] std::size_t vm_count() const { return soa_->vm_count[id_]; }
  [[nodiscard]] bool empty() const { return soa_->vm_count[id_] == 0; }

  /// End of the post-boot grace period during which the server accepts all
  /// assignment invitations unconditionally (paper Sec. IV); -inf when none.
  [[nodiscard]] sim::SimTime grace_until() const {
    return soa_->grace_until[id_];
  }
  void set_grace_until(sim::SimTime t) { soa_->grace_until[id_] = t; }
  [[nodiscard]] bool in_grace(sim::SimTime now) const {
    return now < soa_->grace_until[id_];
  }

  /// Earliest time this server may issue another migration request
  /// (request-storm cooldown); -inf when unrestricted.
  [[nodiscard]] sim::SimTime migration_cooldown_until() const {
    return soa_->migration_cooldown_until[id_];
  }
  void set_migration_cooldown_until(sim::SimTime t) {
    soa_->migration_cooldown_until[id_] = t;
  }

  // --- Mutators used by DataCenter (keep aggregates in sync there) ---

  void set_state(ServerState state) {
    soa_->state[id_] = static_cast<std::uint8_t>(state);
  }
  void host_vm(VmId vm, double demand_mhz, double ram_mb);
  void unhost_vm(VmId vm, double demand_mhz, double ram_mb);
  void change_demand(double delta_mhz);
  void add_reservation(double mhz) {
    soa_->reserved_mhz[id_] += mhz;
    ++soa_->reservation_count[id_];
  }
  void remove_reservation(double mhz);
  /// Open reservations backing reserved_mhz. The float sum can carry
  /// sub-epsilon residue when concurrent reservations release out of
  /// order, so exact "no inbound migration" checks must use this count.
  [[nodiscard]] std::size_t reservation_count() const {
    return soa_->reservation_count[id_];
  }
  /// Hosted VMs currently migrating out. Zero means every hosted VM's
  /// demand counts fully here, so effective utilization equals demand
  /// ratio exactly — the fast path the load evaluator relies on.
  [[nodiscard]] std::size_t migrating_out_count() const {
    return soa_->migrating_out_count[id_];
  }
  void add_migrating_out() { ++soa_->migrating_out_count[id_]; }
  void remove_migrating_out() { --soa_->migrating_out_count[id_]; }
  /// Drop all reservations, residue included (fail-stop teardown only).
  void clear_reservations() {
    soa_->reserved_mhz[id_] = 0.0;
    soa_->reservation_count[id_] = 0;
  }

  /// Checkpoint surface: mutable state only. Identity and capacity come
  /// from configuration; DataCenter::load_state verifies they match the
  /// snapshot. Accumulated doubles (demand, reservations) are restored
  /// verbatim rather than re-summed, preserving bit-exact resume.
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);

 private:
  ServerSoA* soa_;
  ServerId id_;
};

}  // namespace ecocloud::dc
