#pragma once

/// \file server.hpp
/// \brief Physical server model: capacity, power state, hosted VMs.
///
/// Utilization is total hosted CPU demand divided by capacity; the *demand
/// ratio* may exceed 1 (overload), in which case the hypervisor grants CPU
/// proportionally (see DataCenter overload accounting). Decision-time
/// utilization additionally counts capacity reserved for in-flight inbound
/// migrations so concurrent decisions do not oversubscribe a server.

#include <vector>

#include "ecocloud/dc/ids.hpp"
#include "ecocloud/sim/time.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::dc {

/// Power state of a server.
enum class ServerState {
  kHibernated,  ///< Low-power sleep; hosts nothing.
  kBooting,     ///< Waking up; draws peak power, cannot host yet.
  kActive,      ///< Running; hosts VMs.
  kFailed,      ///< Fail-stop crash; draws nothing, hosts nothing, awaiting repair.
};

[[nodiscard]] const char* to_string(ServerState state);

class Server {
 public:
  /// \param id        server identifier.
  /// \param num_cores number of CPU cores (> 0).
  /// \param core_mhz  per-core frequency in MHz (> 0).
  /// \param ram_mb    RAM capacity in MB (>= 0; multi-resource extension).
  Server(ServerId id, unsigned num_cores, double core_mhz, double ram_mb = 0.0);

  [[nodiscard]] ServerId id() const { return id_; }
  [[nodiscard]] unsigned num_cores() const { return num_cores_; }
  [[nodiscard]] double core_mhz() const { return core_mhz_; }
  [[nodiscard]] double capacity_mhz() const { return capacity_mhz_; }
  [[nodiscard]] double ram_capacity_mb() const { return ram_mb_; }

  [[nodiscard]] ServerState state() const { return state_; }
  [[nodiscard]] bool active() const { return state_ == ServerState::kActive; }
  [[nodiscard]] bool hibernated() const { return state_ == ServerState::kHibernated; }
  [[nodiscard]] bool booting() const { return state_ == ServerState::kBooting; }
  [[nodiscard]] bool failed() const { return state_ == ServerState::kFailed; }

  /// Total CPU demand of hosted VMs, in MHz.
  [[nodiscard]] double demand_mhz() const { return demand_mhz_; }

  /// Total RAM of hosted VMs, in MB.
  [[nodiscard]] double ram_used_mb() const { return ram_used_mb_; }

  /// CPU demand reserved for in-flight inbound migrations, in MHz.
  [[nodiscard]] double reserved_mhz() const { return reserved_mhz_; }

  /// Demand ratio: hosted demand / capacity; may exceed 1 under overload.
  [[nodiscard]] double demand_ratio() const { return demand_mhz_ / capacity_mhz_; }

  /// CPU utilization u in [0, 1]: demand ratio clamped to 1. This is the
  /// quantity the paper's probability functions take as input.
  [[nodiscard]] double utilization() const;

  /// Utilization including reservations, used for admission decisions.
  [[nodiscard]] double decision_utilization() const;

  /// True when hosted demand exceeds capacity.
  [[nodiscard]] bool overloaded() const { return demand_mhz_ > capacity_mhz_; }

  /// Fraction of demanded CPU actually granted (1 when not overloaded).
  [[nodiscard]] double granted_fraction() const;

  /// Hosted VM ids (unordered).
  [[nodiscard]] const std::vector<VmId>& vms() const { return vms_; }
  [[nodiscard]] std::size_t vm_count() const { return vms_.size(); }
  [[nodiscard]] bool empty() const { return vms_.empty(); }

  /// End of the post-boot grace period during which the server accepts all
  /// assignment invitations unconditionally (paper Sec. IV); -inf when none.
  [[nodiscard]] sim::SimTime grace_until() const { return grace_until_; }
  void set_grace_until(sim::SimTime t) { grace_until_ = t; }
  [[nodiscard]] bool in_grace(sim::SimTime now) const { return now < grace_until_; }

  /// Earliest time this server may issue another migration request
  /// (request-storm cooldown); -inf when unrestricted.
  [[nodiscard]] sim::SimTime migration_cooldown_until() const {
    return migration_cooldown_until_;
  }
  void set_migration_cooldown_until(sim::SimTime t) { migration_cooldown_until_ = t; }

  // --- Mutators used by DataCenter (keep aggregates in sync there) ---

  void set_state(ServerState state) { state_ = state; }
  void host_vm(VmId vm, double demand_mhz, double ram_mb);
  void unhost_vm(VmId vm, double demand_mhz, double ram_mb);
  void change_demand(double delta_mhz);
  void add_reservation(double mhz) {
    reserved_mhz_ += mhz;
    ++reservation_count_;
  }
  void remove_reservation(double mhz);
  /// Open reservations backing reserved_mhz_. The float sum can carry
  /// sub-epsilon residue when concurrent reservations release out of
  /// order, so exact "no inbound migration" checks must use this count.
  [[nodiscard]] std::size_t reservation_count() const { return reservation_count_; }
  /// Hosted VMs currently migrating out. Zero means every hosted VM's
  /// demand counts fully here, so effective utilization equals demand
  /// ratio exactly — the fast path the load evaluator relies on.
  [[nodiscard]] std::size_t migrating_out_count() const { return migrating_out_count_; }
  void add_migrating_out() { ++migrating_out_count_; }
  void remove_migrating_out() { --migrating_out_count_; }
  /// Drop all reservations, residue included (fail-stop teardown only).
  void clear_reservations() {
    reserved_mhz_ = 0.0;
    reservation_count_ = 0;
  }

  /// Checkpoint surface: mutable state only. Identity and capacity come
  /// from configuration; DataCenter::load_state verifies they match the
  /// snapshot. Accumulated doubles (demand, reservations) are restored
  /// verbatim rather than re-summed, preserving bit-exact resume.
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);

 private:
  ServerId id_;
  unsigned num_cores_;
  double core_mhz_;
  double capacity_mhz_;
  double ram_mb_;
  ServerState state_ = ServerState::kHibernated;
  double demand_mhz_ = 0.0;
  double ram_used_mb_ = 0.0;
  double reserved_mhz_ = 0.0;
  std::size_t reservation_count_ = 0;
  std::size_t migrating_out_count_ = 0;
  std::vector<VmId> vms_;
  sim::SimTime grace_until_ = -1.0;
  sim::SimTime migration_cooldown_until_ = -1.0;
};

}  // namespace ecocloud::dc
