#pragma once

/// \file power.hpp
/// \brief Linear server power model.
///
/// Active power grows linearly with utilization between an idle floor and a
/// peak: P(u) = P_idle + (P_peak - P_idle) * u. The paper (Sec. I, citing
/// Greenberg et al.) notes an active-but-idle server draws 65-70% of peak;
/// the default idle fraction is 0.70. Booting servers draw peak power,
/// hibernated servers a small standby wattage.

#include "ecocloud/dc/server.hpp"

namespace ecocloud::dc {

class PowerModel {
 public:
  /// \param idle_fraction  P_idle / P_peak, in [0, 1].
  /// \param sleep_w        standby draw of a hibernated server (>= 0).
  /// \param peak_w_per_core  peak watts contributed per core; a server's
  ///        P_peak = base_w + peak_w_per_core * cores.
  /// \param base_w         per-server fixed component of P_peak (>= 0).
  explicit PowerModel(double idle_fraction = 0.70, double sleep_w = 3.0,
                      double peak_w_per_core = 20.0, double base_w = 100.0);

  [[nodiscard]] double idle_fraction() const { return idle_fraction_; }
  [[nodiscard]] double sleep_w() const { return sleep_w_; }

  /// Peak power of a server with the given core count.
  [[nodiscard]] double peak_w(unsigned num_cores) const;

  /// Idle power of a server with the given core count.
  [[nodiscard]] double idle_w(unsigned num_cores) const;

  /// Instantaneous power of \p server given its state and utilization.
  [[nodiscard]] double power_w(const Server& server) const;

  /// Power of an active server with \p num_cores at utilization \p u.
  [[nodiscard]] double active_power_w(unsigned num_cores, double u) const;

 private:
  double idle_fraction_;
  double sleep_w_;
  double peak_w_per_core_;
  double base_w_;
};

}  // namespace ecocloud::dc
