#include "ecocloud/ckpt/watchdog.hpp"

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "ecocloud/util/exit_codes.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::ckpt {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Watchdog::Watchdog(Config config) : config_(config) {
  util::require(config_.stall_seconds > 0.0,
                "Watchdog: stall_seconds must be > 0");
  last_beat_ns_.store(steady_ns(), std::memory_order_relaxed);
  monitor_ = std::thread([this] { monitor_loop(); });
}

Watchdog::~Watchdog() {
  shutdown_.store(true, std::memory_order_relaxed);
  if (monitor_.joinable()) monitor_.join();
}

void Watchdog::beat(std::uint64_t executed_events, double sim_now) {
  executed_.store(executed_events, std::memory_order_relaxed);
  sim_now_bits_.store(std::bit_cast<std::uint64_t>(sim_now),
                      std::memory_order_relaxed);
  last_beat_ns_.store(steady_ns(), std::memory_order_release);
}

void Watchdog::arm() {
  last_beat_ns_.store(steady_ns(), std::memory_order_release);
  armed_.store(true, std::memory_order_release);
}

void Watchdog::disarm() { armed_.store(false, std::memory_order_release); }

void Watchdog::monitor_loop() {
  using namespace std::chrono_literals;
  while (!shutdown_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(100ms);
    if (!armed_.load(std::memory_order_acquire)) continue;
    const std::int64_t last = last_beat_ns_.load(std::memory_order_acquire);
    const double silent = static_cast<double>(steady_ns() - last) * 1e-9;
    if (silent > config_.stall_seconds) report_stall(silent);
  }
}

void Watchdog::report_stall(double silent_seconds) {
  const std::uint64_t executed = executed_.load(std::memory_order_relaxed);
  const double sim_now = std::bit_cast<double>(
      sim_now_bits_.load(std::memory_order_relaxed));
  char report[512];
  std::snprintf(report, sizeof(report),
                "[watchdog] event loop stalled: no beat for %.1f s "
                "(limit %.1f s)\n"
                "[watchdog] last observed progress: sim_time=%.3f "
                "executed_events=%llu\n"
                "[watchdog] the loop is livelocked or an event storm is not "
                "advancing sim time; exiting with the stall code\n",
                silent_seconds, config_.stall_seconds, sim_now,
                static_cast<unsigned long long>(executed));
  std::fputs(report, stderr);
  if (!config_.report_path.empty()) {
    if (std::FILE* file = std::fopen(config_.report_path.c_str(), "w")) {
      std::fputs(report, file);
      std::fclose(file);
    }
  }
  // _Exit keeps the distinct exit code (abort would report SIGABRT) and
  // avoids running static destructors from the monitor thread while the
  // stalled simulation thread may still hold them.
  std::_Exit(util::exit_code::kWatchdogStall);
}

}  // namespace ecocloud::ckpt
