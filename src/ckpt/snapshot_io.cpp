#include "ecocloud/ckpt/snapshot_io.hpp"

#include <array>
#include <cstdio>
#include <cstring>

namespace ecocloud::ckpt {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// True on a little-endian machine (BinWriter emits LE byte-by-byte, so
/// the file itself is portable; the tag records it anyway as the cheapest
/// possible canary for exotic platforms).
bool little_endian() {
  const std::uint16_t probe = 1;
  std::uint8_t first = 0;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string abi_tag() {
  std::string tag;
  tag += little_endian() ? "le" : "be";
  tag += "/ptr" + std::to_string(sizeof(void*) * 8);
  // Restoring unordered_map iteration order bit-exactly relies on the
  // standard library's hashtable layout (see util/snapshot.hpp).
#if defined(__GLIBCXX__)
  tag += "/libstdc++";
#elif defined(_LIBCPP_VERSION)
  tag += "/libc++";
#else
  tag += "/unknown-stl";
#endif
  return tag;
}

void Snapshot::add(std::string name, std::string payload) {
  if (find(name) != nullptr) {
    throw SnapshotError("snapshot: duplicate section '" + name + "'");
  }
  sections.push_back(SnapshotSection{std::move(name), std::move(payload)});
}

const SnapshotSection* Snapshot::find(const std::string& name) const {
  for (const SnapshotSection& section : sections) {
    if (section.name == name) return &section;
  }
  return nullptr;
}

void write_snapshot_file(const Snapshot& snapshot, const std::string& path) {
  util::BinWriter w;
  w.bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.u32(kFormatVersion);
  w.str(abi_tag());
  w.u32(static_cast<std::uint32_t>(snapshot.sections.size()));
  for (const SnapshotSection& section : snapshot.sections) {
    w.str(section.name);
    w.u64(section.payload.size());
    w.u32(crc32(section.payload.data(), section.payload.size()));
    w.bytes(section.payload.data(), section.payload.size());
  }
  const std::string& bytes = w.buffer();

  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    throw SnapshotError("snapshot: cannot open '" + tmp + "' for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw SnapshotError("snapshot: short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("snapshot: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

Snapshot read_snapshot_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw SnapshotError("snapshot: cannot open '" + path + "'");
  }
  std::string bytes;
  std::array<char, 1 << 16> chunk;
  std::size_t got = 0;
  while ((got = std::fread(chunk.data(), 1, chunk.size(), file)) > 0) {
    bytes.append(chunk.data(), got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) throw SnapshotError("snapshot: read error on '" + path + "'");

  try {
    util::BinReader r(bytes);
    std::array<char, sizeof(kSnapshotMagic)> magic{};
    r.bytes(magic.data(), magic.size());
    if (std::memcmp(magic.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
      throw SnapshotError("snapshot: '" + path + "' is not an ecocloud snapshot "
                          "(bad magic)");
    }
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion) {
      throw SnapshotError("snapshot: '" + path + "' has format version " +
                          std::to_string(version) + ", this build reads version " +
                          std::to_string(kFormatVersion));
    }
    const std::string tag = r.str();
    if (tag != abi_tag()) {
      throw SnapshotError("snapshot: '" + path + "' was written under ABI '" + tag +
                          "' but this process is '" + abi_tag() +
                          "' (bit-exact restore is not possible)");
    }
    const std::uint32_t count = r.u32();
    Snapshot snapshot;
    for (std::uint32_t i = 0; i < count; ++i) {
      SnapshotSection section;
      section.name = r.str();
      const std::uint64_t length = r.u64();
      const std::uint32_t expected_crc = r.u32();
      if (length > r.remaining()) {
        throw SnapshotError("snapshot: '" + path + "' section '" + section.name +
                            "' is truncated");
      }
      section.payload.resize(static_cast<std::size_t>(length));
      r.bytes(section.payload.data(), section.payload.size());
      const std::uint32_t actual_crc =
          crc32(section.payload.data(), section.payload.size());
      if (actual_crc != expected_crc) {
        throw SnapshotError("snapshot: '" + path + "' section '" + section.name +
                            "' failed its CRC32 check (file is corrupted)");
      }
      snapshot.add(std::move(section.name), std::move(section.payload));
    }
    r.expect_exhausted("snapshot file");
    return snapshot;
  } catch (const SnapshotError&) {
    throw;
  } catch (const std::exception& error) {
    // BinReader truncation and duplicate-section errors, rewrapped with
    // the file name for actionable diagnostics.
    throw SnapshotError("snapshot: '" + path + "' is malformed: " + error.what());
  }
}

}  // namespace ecocloud::ckpt
