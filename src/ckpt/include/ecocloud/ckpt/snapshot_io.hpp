#pragma once

/// \file snapshot_io.hpp
/// \brief Versioned, checksummed snapshot container (DESIGN.md Sec. 11).
///
/// A snapshot is a flat sequence of named sections, each carrying an
/// opaque payload produced by one component's save_state. The container
/// layer owns everything a corrupted or foreign file could break on:
///
///  * magic + format version up front, so a stale or truncated file is
///    rejected before any payload is interpreted;
///  * a CRC32 per section, so flipped bits surface as a named section
///    failure rather than as garbage state;
///  * an ABI tag (pointer width, endianness, hashtable implementation),
///    because bit-exact resume depends on restoring unordered_map
///    iteration order, which is a property of the standard library;
///  * atomic write: the snapshot is written to `path + ".tmp"` and
///    renamed into place, so a crash mid-write never clobbers the
///    previous good snapshot.
///
/// Every failure throws SnapshotError with the file, section, and cause —
/// never undefined behavior (payload reads are bounds-checked by
/// util::BinReader).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ecocloud/util/binio.hpp"

namespace ecocloud::ckpt {

/// Any structural problem with a snapshot file: bad magic, unsupported
/// version, checksum mismatch, truncation, missing/duplicate sections,
/// or an ABI/config mismatch with the restoring process.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// File format constants. Bump kFormatVersion on any layout change; old
/// versions are rejected, never reinterpreted.
inline constexpr char kSnapshotMagic[8] = {'E', 'C', 'O', 'C', 'K', 'P', 'T', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Identifies everything the byte layout silently depends on. Snapshots
/// only restore into a process with an identical tag.
[[nodiscard]] std::string abi_tag();

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of \p size bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

struct SnapshotSection {
  std::string name;
  std::string payload;  ///< Opaque BinWriter output.
};

/// In-memory snapshot: ordered named sections.
struct Snapshot {
  std::vector<SnapshotSection> sections;

  /// Add a section; duplicate names throw SnapshotError.
  void add(std::string name, std::string payload);

  /// Find a section by name; nullptr when absent.
  [[nodiscard]] const SnapshotSection* find(const std::string& name) const;
};

/// Serialize and write atomically: the bytes go to `path + ".tmp"`,
/// fsync'd, then renamed over \p path. Throws SnapshotError on any I/O
/// failure (the temporary is removed on error).
void write_snapshot_file(const Snapshot& snapshot, const std::string& path);

/// Read and fully validate (magic, version, ABI tag, per-section CRC).
/// Throws SnapshotError naming the file and the failing section.
[[nodiscard]] Snapshot read_snapshot_file(const std::string& path);

}  // namespace ecocloud::ckpt
