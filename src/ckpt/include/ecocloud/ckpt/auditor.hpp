#pragma once

/// \file auditor.hpp
/// \brief Runtime conservation-invariant auditor.
///
/// RuntimeAuditor periodically cross-checks the simulation's derived
/// state against ground truth that can be recomputed brute-force:
///
///  * engine integrity (sim::Simulator::check_integrity): heap order,
///    ring sortedness, slab free-list uniqueness, queue_refs accounting;
///  * fleet conservation (dc::DataCenter::audit_invariants): per-server
///    load == sum of hosted VM demands, state indices == brute-force
///    scan, cached totals == recomputed totals, outbound-migration
///    counts == in-flight scan;
///  * VM ownership: no VM simultaneously placed, waiting in a boot
///    queue, and pending redeploy; in strict mode every live VM is
///    owned exactly once (daily scenario — the consolidation scenario
///    has departed VMs that are legitimately unowned forever).
///
/// A failed audit runs the configured response: kLog writes the failure
/// list to stderr and keeps going; kAbort prints a diagnostic report and
/// aborts (CI mode — corruption must not produce publishable numbers);
/// kHeal rebuilds the derived caches from ground truth and re-audits
/// (repairs only what is derivable; a conservation violation that
/// survives healing is then reported). Healing changes subsequent
/// behavior when the caches really were wrong — it is a repair action,
/// not an observer.
///
/// The audit event is tagged, so checkpoint/resume preserves auditing
/// cadence and its seq consumption like every other periodic service.

#include <cstdint>
#include <string>
#include <vector>

#include "ecocloud/core/controller.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/faults/recovery.hpp"
#include "ecocloud/sim/simulator.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::ckpt {

class Watchdog;

enum class AuditAction : std::uint8_t { kLog, kAbort, kHeal };

/// Parse "log" | "abort" | "heal"; throws std::invalid_argument otherwise.
[[nodiscard]] AuditAction parse_audit_action(const std::string& text);
[[nodiscard]] const char* to_string(AuditAction action);

struct AuditorConfig {
  /// Sim-time between audits; <= 0 disables the periodic event (run_audit
  /// can still be called manually).
  sim::SimTime period_s = 0.0;

  AuditAction action = AuditAction::kLog;

  /// Relative tolerance for floating-point conservation checks.
  double tolerance = 1e-6;

  /// Require every live VM to be owned exactly once (placed XOR
  /// boot-queued XOR redeploy-pending). Disable for open-system runs
  /// where departed VMs stay unowned.
  bool strict_vm_accounting = true;
};

class RuntimeAuditor {
 public:
  /// Snapshot-stable event kinds (tag_owner::kAuditor). Append only.
  enum EventKind : std::uint16_t { kEvAudit = 1 };

  RuntimeAuditor(sim::Simulator& simulator, dc::DataCenter& datacenter,
                 AuditorConfig config);

  /// Optional deeper checks; pass nullptr to skip. Attach before start().
  void attach_controller(const core::EcoCloudController* controller) {
    controller_ = controller;
  }
  void attach_redeploy(const faults::RedeployQueue* queue) { redeploy_ = queue; }

  /// Feed a watchdog: every audit beats it (nullptr detaches).
  void set_watchdog(Watchdog* watchdog) { watchdog_ = watchdog; }

  /// Schedule the periodic audit event. Call once; a resumed run re-arms
  /// from the snapshot instead.
  void start();

  /// Run every check now. Returns the failure list (empty = clean) after
  /// applying the configured action; kAbort does not return on failure.
  std::vector<std::string> run_audit();

  [[nodiscard]] sim::Simulator::Callback rebuild_event(const sim::EventTag& tag);

  /// Checkpoint surface (counters + started flag).
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);

  struct Stats {
    std::uint64_t audits_run = 0;
    std::uint64_t audits_failed = 0;
    std::uint64_t failures_total = 0;  ///< Individual findings across audits.
    std::uint64_t heals_applied = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const AuditorConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::vector<std::string> collect_failures() const;
  void check_vm_ownership(std::vector<std::string>& failures) const;

  sim::Simulator& sim_;
  dc::DataCenter& dc_;
  AuditorConfig config_;
  const core::EcoCloudController* controller_ = nullptr;
  const faults::RedeployQueue* redeploy_ = nullptr;
  Watchdog* watchdog_ = nullptr;
  Stats stats_;
  bool started_ = false;
};

}  // namespace ecocloud::ckpt
