#pragma once

/// \file checkpoint.hpp
/// \brief Crash-safe checkpoint/restore of a whole simulation.
///
/// CheckpointManager gathers the complete mutable state of a run into one
/// snapshot file and restores it so the resumed run is bit-identical —
/// same event stream, same metrics — to an uninterrupted run from the
/// same seed (pinned by tests/ckpt_test.cpp). Participants register two
/// things:
///
///  * a named **section** (save/load callbacks over util::BinWriter /
///    BinReader) for their plain state: counters, maps, RNG streams,
///    incrementally accumulated floats (always saved verbatim — see the
///    component save_state docs);
///  * an **owner** (rebuild/bind callbacks keyed by sim::tag_owner) that
///    recreates the std::function callback of each pending calendar
///    entry from its EventTag at import, and re-links EventHandles
///    (boot events, migration completions, redeploy retries).
///
/// Save order is registration order with a "meta" section first and the
/// engine calendar last; restore loads sections in the same order, then
/// imports the calendar into the still-fresh Simulator (which enforces
/// that nothing ran yet). The meta section carries a config digest: a
/// snapshot only restores into a scenario built from the same
/// configuration, because immutable state (fleet, traces, parameters) is
/// reconstructed from the config rather than stored.
///
/// The periodic checkpoint event is itself part of the calendar, so its
/// seq-number consumption is identical between an uninterrupted run and
/// any chain of resumes — cadence never perturbs determinism. With no
/// checkpointing requested the manager schedules nothing and the run is
/// bit-identical to a build without this subsystem.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ecocloud/sim/simulator.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::ckpt {

struct Snapshot;

class CheckpointManager {
 public:
  /// Snapshot-stable event kinds (tag_owner::kCheckpoint). Append only.
  enum EventKind : std::uint16_t { kEvCheckpoint = 1 };

  using SaveFn = std::function<void(util::BinWriter&)>;
  using LoadFn = std::function<void(util::BinReader&)>;

  explicit CheckpointManager(sim::Simulator& simulator);

  /// Register a state section. Sections are saved and restored in
  /// registration order; names must be unique and stable across builds.
  void add_section(std::string name, SaveFn save, LoadFn load);

  /// Register the rebuild (and optional handle re-link) callbacks for one
  /// sim::tag_owner. Every owner that can have pending calendar entries
  /// at checkpoint time must be registered before restore().
  void add_owner(std::uint16_t owner, sim::Simulator::RebuildFn rebuild,
                 sim::Simulator::BindFn bind = {});

  /// Fingerprint of the immutable configuration (fleet, seed, horizon,
  /// parameters). Stored in the snapshot and required to match at
  /// restore(); mismatch throws SnapshotError instead of silently
  /// resuming into a different experiment.
  void set_config_digest(std::string digest);

  /// Write a snapshot of the current state to \p path (atomic
  /// write-rename; the previous snapshot survives a crash mid-write).
  void save(const std::string& path);

  /// Restore a snapshot into a freshly constructed scenario: all
  /// registered sections load in order, then the event calendar is
  /// imported (the Simulator must not have run yet). Throws SnapshotError
  /// on any structural, version, CRC, digest, or section mismatch.
  void restore(const std::string& path);

  /// Append every registered section (named \p prefix + name) plus the
  /// engine calendar (\p prefix + "engine") to \p snapshot, without meta
  /// or file I/O. The sharded coordinator collects one manager per shard
  /// (prefix "s<k>.") into a single atomically written snapshot.
  void collect(Snapshot& snapshot, const std::string& prefix);

  /// Counterpart of collect(): load the prefixed sections out of an
  /// already-read snapshot and import the engine calendar. \p context
  /// names the snapshot in error messages. Leaves meta/digest checking
  /// and foreign-section detection to the caller.
  void restore_from(const Snapshot& snapshot, const std::string& prefix,
                    const std::string& context);

  /// Number of registered sections (excluding meta and the engine).
  [[nodiscard]] std::size_t num_sections() const { return sections_.size(); }

  /// Schedule the periodic snapshot event (sim-time cadence). Do NOT call
  /// on a resumed run: the event comes back with the imported calendar,
  /// which is exactly what keeps seq numbers identical.
  void start_periodic(sim::SimTime period_s, std::string path);

  /// Default output path for checkpoint events restored from a snapshot
  /// (the original run's --checkpoint-out is not stored). Empty disables
  /// writing while keeping the event's seq consumption intact.
  void set_output_path(std::string path) { path_ = std::move(path); }

  /// Rebuild callback for the manager's own periodic event.
  [[nodiscard]] sim::Simulator::Callback rebuild_event(const sim::EventTag& tag);

  /// Test hook: called after every successful save() with the path.
  std::function<void(const std::string&)> on_saved;

  /// Observability of the checkpoint path itself.
  struct Stats {
    std::uint64_t checkpoints_written = 0;
    std::uint64_t snapshot_bytes_last = 0;
    double save_wall_seconds_last = 0.0;
    double save_wall_seconds_total = 0.0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] bool restored() const { return restored_; }

 private:
  struct Section {
    std::string name;
    SaveFn save;
    LoadFn load;
  };
  struct Owner {
    sim::Simulator::RebuildFn rebuild;
    sim::Simulator::BindFn bind;
  };

  void periodic_tick();
  [[nodiscard]] const Owner& owner_for(const sim::EventTag& tag) const;

  sim::Simulator& sim_;
  std::vector<Section> sections_;
  std::vector<std::pair<std::uint16_t, Owner>> owners_;
  std::string digest_;
  std::string path_;
  Stats stats_;
  bool restored_ = false;
};

}  // namespace ecocloud::ckpt
