#pragma once

/// \file watchdog.hpp
/// \brief Wall-clock stall detector for the event loop.
///
/// The simulator is single-threaded and cooperative: if a callback
/// livelocks (or the calendar degenerates into a zero-advance event
/// storm), the process spins forever with no output. Watchdog runs a
/// tiny monitor thread that expects a beat() — delivered from periodic
/// in-simulation events such as the auditor or checkpoint tick — at
/// least every stall_seconds of *wall* time. A missed deadline emits a
/// diagnostic report (last observed sim time, executed-event count, and
/// how long the loop has been silent) to stderr and optionally a report
/// file, then aborts so CI surfaces a backtrace instead of a timeout.
///
/// The monitor thread never touches simulator state: beat() publishes
/// plain atomics and the thread reads only those. arm()/disarm() bracket
/// the phases where silence is expected (setup, final I/O).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace ecocloud::ckpt {

class Watchdog {
 public:
  struct Config {
    /// Wall-clock seconds of event-loop silence tolerated while armed.
    double stall_seconds = 60.0;
    /// Optional file that receives a copy of the stall report.
    std::string report_path;
  };

  explicit Watchdog(Config config);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Record progress. Safe to call from the simulation thread only;
  /// values are published atomically for the monitor.
  void beat(std::uint64_t executed_events, double sim_now);

  /// Start/stop enforcing the deadline. arm() also counts as a beat.
  void arm();
  void disarm();

  [[nodiscard]] bool armed() const { return armed_.load(std::memory_order_relaxed); }

 private:
  void monitor_loop();
  [[noreturn]] void report_stall(double silent_seconds);

  Config config_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> shutdown_{false};
  /// steady_clock nanoseconds of the last beat.
  std::atomic<std::int64_t> last_beat_ns_{0};
  std::atomic<std::uint64_t> executed_{0};
  /// Bit pattern of the last observed sim time (atomic<double> is not
  /// guaranteed lock-free; the bit_cast round-trip always is).
  std::atomic<std::uint64_t> sim_now_bits_{0};
  std::thread monitor_;
};

}  // namespace ecocloud::ckpt
