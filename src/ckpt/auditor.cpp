#include "ecocloud/ckpt/auditor.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "ecocloud/ckpt/watchdog.hpp"
#include "ecocloud/util/exit_codes.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::ckpt {

AuditAction parse_audit_action(const std::string& text) {
  if (text == "log") return AuditAction::kLog;
  if (text == "abort") return AuditAction::kAbort;
  if (text == "heal") return AuditAction::kHeal;
  throw std::invalid_argument("bad audit action '" + text +
                              "' (want log|abort|heal)");
}

const char* to_string(AuditAction action) {
  switch (action) {
    case AuditAction::kLog:
      return "log";
    case AuditAction::kAbort:
      return "abort";
    case AuditAction::kHeal:
      return "heal";
  }
  return "?";
}

RuntimeAuditor::RuntimeAuditor(sim::Simulator& simulator, dc::DataCenter& datacenter,
                               AuditorConfig config)
    : sim_(simulator), dc_(datacenter), config_(config) {
  util::require(config_.tolerance >= 0.0, "RuntimeAuditor: negative tolerance");
}

void RuntimeAuditor::start() {
  util::ensure(!started_, "RuntimeAuditor::start called twice");
  started_ = true;
  if (config_.period_s <= 0.0) return;
  sim_.schedule_periodic(config_.period_s,
                         sim::EventTag{sim::tag_owner::kAuditor, kEvAudit, 0, 0},
                         [this] { run_audit(); }, config_.period_s);
}

sim::Simulator::Callback RuntimeAuditor::rebuild_event(const sim::EventTag& tag) {
  if (tag.kind == kEvAudit) return [this] { run_audit(); };
  throw std::runtime_error("RuntimeAuditor: snapshot contains an unknown event "
                           "kind " +
                           std::to_string(tag.kind));
}

void RuntimeAuditor::save_state(util::BinWriter& w) const {
  w.boolean(started_);
  w.u64(stats_.audits_run);
  w.u64(stats_.audits_failed);
  w.u64(stats_.failures_total);
  w.u64(stats_.heals_applied);
}

void RuntimeAuditor::load_state(util::BinReader& r) {
  started_ = r.boolean();
  stats_.audits_run = r.u64();
  stats_.audits_failed = r.u64();
  stats_.failures_total = r.u64();
  stats_.heals_applied = r.u64();
}

void RuntimeAuditor::check_vm_ownership(std::vector<std::string>& failures) const {
  if (controller_ == nullptr) return;
  const auto& queued = controller_->queued_vms();
  const std::size_t n = dc_.num_vms();
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<dc::VmId>(i);
    const bool placed = dc_.vm(id).host != dc::kNoServer;
    const bool boot_queued = queued.find(id) != queued.end();
    const bool redeploy_pending = redeploy_ != nullptr && redeploy_->tracks(id);
    const int owners = (placed ? 1 : 0) + (boot_queued ? 1 : 0) +
                       (redeploy_pending ? 1 : 0);
    if (owners > 1) {
      failures.push_back("vm " + std::to_string(id) + " owned " +
                         std::to_string(owners) +
                         " times (placed=" + std::to_string(placed) +
                         " boot_queued=" + std::to_string(boot_queued) +
                         " redeploy=" + std::to_string(redeploy_pending) + ")");
    } else if (owners == 0 && config_.strict_vm_accounting) {
      failures.push_back("vm " + std::to_string(id) +
                         " is neither placed, boot-queued, nor pending redeploy");
    }
    // A migrating VM must stay placed on its source until completion.
    if (controller_->tracks_inflight(id) && !placed) {
      failures.push_back("vm " + std::to_string(id) +
                         " has an in-flight migration but no placement");
    }
  }
}

std::vector<std::string> RuntimeAuditor::collect_failures() const {
  std::vector<std::string> failures;
  const std::string engine = sim_.check_integrity();
  if (!engine.empty()) failures.push_back("engine: " + engine);
  for (std::string& failure : dc_.audit_invariants(config_.tolerance)) {
    failures.push_back("datacenter: " + std::move(failure));
  }
  check_vm_ownership(failures);
  return failures;
}

std::vector<std::string> RuntimeAuditor::run_audit() {
  if (watchdog_ != nullptr) watchdog_->beat(sim_.executed_events(), sim_.now());
  ++stats_.audits_run;
  std::vector<std::string> failures = collect_failures();
  if (failures.empty()) return failures;

  ++stats_.audits_failed;
  stats_.failures_total += failures.size();
  std::fprintf(stderr, "[audit] t=%.3f: %zu invariant violation(s):\n", sim_.now(),
               failures.size());
  for (const std::string& failure : failures) {
    std::fprintf(stderr, "[audit]   %s\n", failure.c_str());
  }

  switch (config_.action) {
    case AuditAction::kLog:
      break;
    case AuditAction::kAbort:
      std::fprintf(stderr,
                   "[audit] aborting (action=abort): sim_time=%.3f "
                   "executed_events=%llu pending_events=%zu\n",
                   sim_.now(),
                   static_cast<unsigned long long>(sim_.executed_events()),
                   sim_.pending_events());
      // _Exit, not abort: a distinct exit code lets CI and the nemesis
      // harness tell an audit violation from a crash, and skipping static
      // destructors avoids racing a live watchdog monitor thread.
      std::_Exit(util::exit_code::kAuditViolation);
    case AuditAction::kHeal: {
      const std::size_t repaired = dc_.heal_caches();
      ++stats_.heals_applied;
      std::fprintf(stderr, "[audit] heal: rebuilt %zu cache group(s)\n", repaired);
      failures = collect_failures();
      if (!failures.empty()) {
        std::fprintf(stderr,
                     "[audit] %zu violation(s) survive healing (true state "
                     "corruption, not cache drift):\n",
                     failures.size());
        for (const std::string& failure : failures) {
          std::fprintf(stderr, "[audit]   %s\n", failure.c_str());
        }
      }
      break;
    }
  }
  return failures;
}

}  // namespace ecocloud::ckpt
