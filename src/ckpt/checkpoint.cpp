#include "ecocloud/ckpt/checkpoint.hpp"

#include <chrono>
#include <utility>

#include "ecocloud/ckpt/snapshot_io.hpp"
#include "ecocloud/sim/event_tag.hpp"
#include "ecocloud/util/phase_profiler.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::ckpt {

namespace {

constexpr const char* kMetaSection = "meta";
constexpr const char* kEngineSection = "engine";

std::string save_engine(const sim::Simulator& sim) {
  const sim::EngineCheckpoint ck = sim.export_calendar();
  util::BinWriter w;
  w.f64(ck.now);
  w.u64(ck.next_seq);
  w.u64(ck.executed);
  w.u64(ck.stats.scheduled_one_shot);
  w.u64(ck.stats.scheduled_periodic);
  w.u64(ck.stats.fired_from_heap);
  w.u64(ck.stats.fired_from_ring);
  w.u64(ck.stats.fired_one_shot);
  w.u64(ck.stats.fired_periodic);
  w.u64(ck.stats.cancels);
  w.u64(ck.stats.stale_cancels);
  w.u64(ck.stats.dropped_cancelled);
  w.u32(ck.stats.slab_high_water);
  w.u64(ck.ring_periods.size());
  for (sim::SimTime period : ck.ring_periods) w.f64(period);
  w.u64(ck.entries.size());
  for (const sim::CalendarEntry& entry : ck.entries) {
    w.f64(entry.time);
    w.u64(entry.seq);
    w.f64(entry.period);
    w.i64(entry.source);
    w.boolean(entry.cancelled);
    w.u16(entry.tag.owner);
    w.u16(entry.tag.kind);
    w.u32(entry.tag.a);
    w.u64(entry.tag.b);
  }
  return w.take();
}

sim::EngineCheckpoint load_engine(util::BinReader& r) {
  sim::EngineCheckpoint ck;
  ck.now = r.f64();
  ck.next_seq = r.u64();
  ck.executed = r.u64();
  ck.stats.scheduled_one_shot = r.u64();
  ck.stats.scheduled_periodic = r.u64();
  ck.stats.fired_from_heap = r.u64();
  ck.stats.fired_from_ring = r.u64();
  ck.stats.fired_one_shot = r.u64();
  ck.stats.fired_periodic = r.u64();
  ck.stats.cancels = r.u64();
  ck.stats.stale_cancels = r.u64();
  ck.stats.dropped_cancelled = r.u64();
  ck.stats.slab_high_water = r.u32();
  ck.ring_periods.assign(static_cast<std::size_t>(r.u64()), 0.0);
  for (sim::SimTime& period : ck.ring_periods) period = r.f64();
  ck.entries.assign(static_cast<std::size_t>(r.u64()), sim::CalendarEntry{});
  for (sim::CalendarEntry& entry : ck.entries) {
    entry.time = r.f64();
    entry.seq = r.u64();
    entry.period = r.f64();
    entry.source = static_cast<std::int32_t>(r.i64());
    entry.cancelled = r.boolean();
    entry.tag.owner = r.u16();
    entry.tag.kind = r.u16();
    entry.tag.a = r.u32();
    entry.tag.b = r.u64();
  }
  return ck;
}

}  // namespace

CheckpointManager::CheckpointManager(sim::Simulator& simulator) : sim_(simulator) {
  // The manager owns its own periodic event's rebuild.
  add_owner(sim::tag_owner::kCheckpoint,
            [this](const sim::EventTag& tag) { return rebuild_event(tag); });
}

void CheckpointManager::add_section(std::string name, SaveFn save, LoadFn load) {
  util::require(static_cast<bool>(save) && static_cast<bool>(load),
                "CheckpointManager: section callbacks must be non-empty");
  for (const Section& section : sections_) {
    util::require(section.name != name,
                  "CheckpointManager: duplicate section '" + name + "'");
  }
  sections_.push_back(Section{std::move(name), std::move(save), std::move(load)});
}

void CheckpointManager::add_owner(std::uint16_t owner,
                                  sim::Simulator::RebuildFn rebuild,
                                  sim::Simulator::BindFn bind) {
  util::require(static_cast<bool>(rebuild),
                "CheckpointManager: owner rebuild must be non-empty");
  for (const auto& [existing, callbacks] : owners_) {
    util::require(existing != owner, "CheckpointManager: duplicate owner " +
                                         std::to_string(owner));
  }
  owners_.emplace_back(owner, Owner{std::move(rebuild), std::move(bind)});
}

void CheckpointManager::set_config_digest(std::string digest) {
  digest_ = std::move(digest);
}

const CheckpointManager::Owner& CheckpointManager::owner_for(
    const sim::EventTag& tag) const {
  for (const auto& [owner, callbacks] : owners_) {
    if (owner == tag.owner) return callbacks;
  }
  throw SnapshotError(
      "snapshot: calendar entry owned by unregistered participant " +
      std::to_string(tag.owner) +
      " — the resumed run must enable the same subsystems (faults, "
      "telemetry, auditing) as the run that wrote the snapshot");
}

void CheckpointManager::collect(Snapshot& snapshot, const std::string& prefix) {
  for (const Section& section : sections_) {
    util::BinWriter w;
    section.save(w);
    snapshot.add(prefix + section.name, w.take());
  }
  snapshot.add(prefix + kEngineSection, save_engine(sim_));
}

void CheckpointManager::save(const std::string& path) {
  util::ScopedPhase profile(util::Phase::kCheckpointWrite);
  const auto t0 = std::chrono::steady_clock::now();

  Snapshot snapshot;
  {
    util::BinWriter w;
    w.str(digest_);
    snapshot.add(kMetaSection, w.take());
  }
  collect(snapshot, "");
  write_snapshot_file(snapshot, path);

  const auto t1 = std::chrono::steady_clock::now();
  ++stats_.checkpoints_written;
  std::uint64_t total = 0;
  for (const SnapshotSection& section : snapshot.sections) {
    total += section.payload.size();
  }
  stats_.snapshot_bytes_last = total;
  stats_.save_wall_seconds_last = std::chrono::duration<double>(t1 - t0).count();
  stats_.save_wall_seconds_total += stats_.save_wall_seconds_last;
  if (on_saved) on_saved(path);
}

void CheckpointManager::restore_from(const Snapshot& snapshot,
                                     const std::string& prefix,
                                     const std::string& context) {
  util::require(!restored_, "CheckpointManager: restore called twice");

  for (const Section& section : sections_) {
    const std::string name = prefix + section.name;
    const SnapshotSection* stored = snapshot.find(name);
    if (stored == nullptr) {
      throw SnapshotError("snapshot: '" + context + "' is missing section '" +
                          name + "'");
    }
    util::BinReader r(stored->payload);
    try {
      section.load(r);
      r.expect_exhausted(name);
    } catch (const SnapshotError&) {
      throw;
    } catch (const std::exception& error) {
      throw SnapshotError("snapshot: '" + context + "' section '" + name +
                          "' failed to load: " + error.what());
    }
  }

  const std::string engine_name = prefix + kEngineSection;
  const SnapshotSection* engine = snapshot.find(engine_name);
  if (engine == nullptr) {
    throw SnapshotError("snapshot: '" + context + "' has no '" + engine_name +
                        "' section");
  }
  util::BinReader r(engine->payload);
  sim::EngineCheckpoint ck;
  try {
    ck = load_engine(r);
    r.expect_exhausted(engine_name);
  } catch (const std::exception& error) {
    throw SnapshotError("snapshot: '" + context + "' section '" + engine_name +
                        "' failed to load: " + error.what());
  }
  sim_.import_calendar(
      ck,
      [this](const sim::EventTag& tag) { return owner_for(tag).rebuild(tag); },
      [this](const sim::EventTag& tag, sim::EventHandle handle) {
        const Owner& owner = owner_for(tag);
        if (owner.bind) owner.bind(tag, handle);
      });
  restored_ = true;
}

void CheckpointManager::restore(const std::string& path) {
  const Snapshot snapshot = read_snapshot_file(path);

  const SnapshotSection* meta = snapshot.find(kMetaSection);
  if (meta == nullptr) {
    throw SnapshotError("snapshot: '" + path + "' has no meta section");
  }
  {
    util::BinReader r(meta->payload);
    const std::string stored = r.str();
    r.expect_exhausted(kMetaSection);
    if (stored != digest_) {
      throw SnapshotError("snapshot: '" + path +
                          "' was written for a different configuration\n  stored:  " +
                          stored + "\n  current: " + digest_);
    }
  }

  // Every non-registered section except the engine is a mismatch between
  // the writing and restoring wiring — refuse rather than silently drop
  // state (e.g. a run that recorded an event log resumed without one).
  for (const SnapshotSection& stored : snapshot.sections) {
    if (stored.name == kMetaSection || stored.name == kEngineSection) continue;
    bool registered = false;
    for (const Section& section : sections_) {
      if (section.name == stored.name) {
        registered = true;
        break;
      }
    }
    if (!registered) {
      throw SnapshotError("snapshot: '" + path + "' carries section '" +
                          stored.name +
                          "' which no registered participant loads");
    }
  }

  restore_from(snapshot, "", path);
}

void CheckpointManager::start_periodic(sim::SimTime period_s, std::string path) {
  util::require(period_s > 0.0, "CheckpointManager: period must be > 0");
  util::require(!path.empty(), "CheckpointManager: empty checkpoint path");
  util::require(!restored_,
                "CheckpointManager: a resumed run re-arms its checkpoint "
                "event from the snapshot; do not call start_periodic");
  path_ = std::move(path);
  sim_.schedule_periodic(period_s,
                         sim::EventTag{sim::tag_owner::kCheckpoint, kEvCheckpoint,
                                       0, 0},
                         [this] { periodic_tick(); }, period_s);
}

sim::Simulator::Callback CheckpointManager::rebuild_event(const sim::EventTag& tag) {
  if (tag.kind == kEvCheckpoint) return [this] { periodic_tick(); };
  throw SnapshotError("snapshot: unknown checkpoint event kind " +
                      std::to_string(tag.kind));
}

void CheckpointManager::periodic_tick() {
  // The event always runs (keeping seq consumption identical across
  // resume chains); writing is skipped only when no output is configured.
  if (!path_.empty()) save(path_);
}

}  // namespace ecocloud::ckpt
