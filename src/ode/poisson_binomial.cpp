#include "ecocloud/ode/poisson_binomial.hpp"

#include <algorithm>
#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::ode {

std::vector<double> poisson_binomial_pmf(const std::vector<double>& probs) {
  std::vector<double> pmf{1.0};
  pmf.reserve(probs.size() + 1);
  for (double f : probs) {
    util::require(f >= 0.0 && f <= 1.0,
                  "poisson_binomial_pmf: probabilities must be in [0,1]");
    pmf.push_back(0.0);
    // In-place convolution with (1-f, f), highest coefficient first.
    for (std::size_t k = pmf.size(); k-- > 0;) {
      const double lower = k > 0 ? pmf[k - 1] : 0.0;
      pmf[k] = pmf[k] * (1.0 - f) + lower * f;
    }
  }
  return pmf;
}

std::vector<double> remove_factor(const std::vector<double>& pmf, double f) {
  util::require(pmf.size() >= 2, "remove_factor: pmf must have >= 2 entries");
  util::require(f >= 0.0 && f <= 1.0, "remove_factor: f must be in [0,1]");
  const std::size_t n = pmf.size() - 1;  // number of factors in pmf
  std::vector<double> out(n, 0.0);

  if (f < 0.5) {
    // Forward: pmf[k] = (1-f) out[k] + f out[k-1]  =>  out[k] from below.
    const double q = 1.0 - f;
    out[0] = pmf[0] / q;
    for (std::size_t k = 1; k < n; ++k) {
      out[k] = (pmf[k] - f * out[k - 1]) / q;
    }
  } else {
    // Backward: pmf[k] = (1-f) out[k] + f out[k-1]  =>  out[k-1] from top.
    out[n - 1] = pmf[n] / f;
    for (std::size_t k = n - 1; k-- > 0;) {
      out[k] = (pmf[k + 1] - (1.0 - f) * out[k + 1]) / f;
    }
  }
  // Clean tiny negative values produced by cancellation.
  for (double& x : out) {
    if (x < 0.0 && x > -1e-9) x = 0.0;
  }
  return out;
}

double expected_inverse_one_plus(const std::vector<double>& pmf) {
  double acc = 0.0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    acc += pmf[k] / static_cast<double>(k + 1);
  }
  return acc;
}

}  // namespace ecocloud::ode
