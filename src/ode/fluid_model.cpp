#include "ecocloud/ode/fluid_model.hpp"

#include <cmath>

#include "ecocloud/ode/poisson_binomial.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::ode {

FluidModel::FluidModel(FluidModelConfig config)
    : config_(std::move(config)), fa_(config_.ta, config_.p) {
  util::require(config_.num_servers > 0, "FluidModel: num_servers must be > 0");
  util::require(static_cast<bool>(config_.lambda), "FluidModel: lambda is empty");
  util::require(static_cast<bool>(config_.nu), "FluidModel: nu is empty");
  util::require(config_.vm_share.size() == config_.num_servers,
                "FluidModel: vm_share must have one entry per server");
  for (double share : config_.vm_share) {
    util::require(share > 0.0, "FluidModel: vm_share entries must be > 0");
  }
}

std::vector<double> FluidModel::shares_simplified(
    const std::vector<double>& fa_values) const {
  double total = 0.0;
  for (double f : fa_values) total += f;
  std::vector<double> shares(fa_values.size(), 0.0);
  if (total <= 0.0) return shares;  // nobody accepts: arrivals are refused
  for (std::size_t s = 0; s < fa_values.size(); ++s) {
    shares[s] = fa_values[s] / total;
  }
  return shares;
}

std::vector<double> FluidModel::shares_exact(
    const std::vector<double>& fa_values) const {
  const std::size_t n = fa_values.size();
  std::vector<double> shares(n, 0.0);

  const std::vector<double> full_pmf = poisson_binomial_pmf(fa_values);
  // P(nobody accepts) is the k = 0 coefficient of the full product.
  const double p_none = full_pmf[0];
  const double p_some = 1.0 - p_none;
  if (p_some <= 1e-300) return shares;

  for (std::size_t s = 0; s < n; ++s) {
    if (fa_values[s] <= 0.0) continue;
    // Distribution of the number of rivals that also accept.
    const std::vector<double> rivals = remove_factor(full_pmf, fa_values[s]);
    shares[s] = fa_values[s] * expected_inverse_one_plus(rivals) / p_some;
  }
  return shares;
}

std::vector<double> FluidModel::assignment_shares(const std::vector<double>& u) const {
  util::require(u.size() == config_.num_servers,
                "FluidModel::assignment_shares: state size mismatch");
  std::vector<double> fa_values(u.size());
  for (std::size_t s = 0; s < u.size(); ++s) fa_values[s] = fa_(u[s]);
  return config_.exact ? shares_exact(fa_values) : shares_simplified(fa_values);
}

void FluidModel::derivative(double t, const std::vector<double>& u,
                            std::vector<double>& dudt) const {
  util::require(u.size() == config_.num_servers,
                "FluidModel::derivative: state size mismatch");
  dudt.resize(u.size());

  const double lambda = config_.lambda(t);
  const double nu = config_.nu(t);
  const std::vector<double> shares = assignment_shares(u);

  for (std::size_t s = 0; s < u.size(); ++s) {
    // Clamp the fluid at the boundaries: utilization cannot go negative,
    // and f_a already prevents growth above Ta.
    const double us = std::max(0.0, u[s]);
    dudt[s] = -nu * us + lambda * shares[s] * config_.vm_share[s];
    if (u[s] <= 0.0 && dudt[s] < 0.0) dudt[s] = 0.0;
  }
}

Rhs FluidModel::rhs() const {
  return [this](double t, const std::vector<double>& y, std::vector<double>& dydt) {
    derivative(t, y, dydt);
  };
}

std::size_t FluidModel::count_active(const std::vector<double>& u, double threshold) {
  std::size_t count = 0;
  for (double x : u) {
    if (x > threshold) ++count;
  }
  return count;
}

}  // namespace ecocloud::ode
