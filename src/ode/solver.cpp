#include "ecocloud/ode/solver.hpp"

#include <algorithm>
#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::ode {

namespace {

void axpy(std::vector<double>& out, const std::vector<double>& y, double a,
          const std::vector<double>& k) {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = y[i] + a * k[i];
}

}  // namespace

std::vector<double> integrate_rk4(const Rhs& rhs, std::vector<double> y0, double t0,
                                  double t1, double dt, const Observer& observe) {
  util::require(dt > 0.0, "integrate_rk4: dt must be > 0");
  util::require(t1 >= t0, "integrate_rk4: t1 must be >= t0");

  const std::size_t n = y0.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  std::vector<double> y = std::move(y0);

  double t = t0;
  if (observe) observe(t, y);
  while (t < t1) {
    const double h = std::min(dt, t1 - t);
    rhs(t, y, k1);
    axpy(tmp, y, 0.5 * h, k1);
    rhs(t + 0.5 * h, tmp, k2);
    axpy(tmp, y, 0.5 * h, k2);
    rhs(t + 0.5 * h, tmp, k3);
    axpy(tmp, y, h, k3);
    rhs(t + h, tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    t += h;
    if (observe) observe(t, y);
  }
  return y;
}

std::vector<double> integrate_rkf45(const Rhs& rhs, std::vector<double> y0, double t0,
                                    double t1, const Rkf45Options& options,
                                    const Observer& observe, Rkf45Stats* stats) {
  util::require(t1 >= t0, "integrate_rkf45: t1 must be >= t0");
  util::require(options.dt_init > 0.0 && options.dt_min > 0.0,
                "integrate_rkf45: step sizes must be > 0");

  // Fehlberg coefficients.
  constexpr double a2 = 1.0 / 4, a3 = 3.0 / 8, a4 = 12.0 / 13, a5 = 1.0, a6 = 1.0 / 2;
  constexpr double b21 = 1.0 / 4;
  constexpr double b31 = 3.0 / 32, b32 = 9.0 / 32;
  constexpr double b41 = 1932.0 / 2197, b42 = -7200.0 / 2197, b43 = 7296.0 / 2197;
  constexpr double b51 = 439.0 / 216, b52 = -8.0, b53 = 3680.0 / 513,
                   b54 = -845.0 / 4104;
  constexpr double b61 = -8.0 / 27, b62 = 2.0, b63 = -3544.0 / 2565,
                   b64 = 1859.0 / 4104, b65 = -11.0 / 40;
  // 5th-order solution weights.
  constexpr double c1 = 16.0 / 135, c3 = 6656.0 / 12825, c4 = 28561.0 / 56430,
                   c5 = -9.0 / 50, c6 = 2.0 / 55;
  // Error weights (5th minus 4th).
  constexpr double e1 = 16.0 / 135 - 25.0 / 216, e3 = 6656.0 / 12825 - 1408.0 / 2565,
                   e4 = 28561.0 / 56430 - 2197.0 / 4104, e5 = -9.0 / 50 + 1.0 / 5,
                   e6 = 2.0 / 55;

  const std::size_t n = y0.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), tmp(n), ynew(n);
  std::vector<double> y = std::move(y0);

  double t = t0;
  double h = std::min(options.dt_init, std::max(t1 - t0, options.dt_min));
  if (observe) observe(t, y);

  while (t < t1) {
    h = std::min(h, t1 - t);
    rhs(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * b21 * k1[i];
    rhs(t + a2 * h, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * (b31 * k1[i] + b32 * k2[i]);
    rhs(t + a3 * h, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (b41 * k1[i] + b42 * k2[i] + b43 * k3[i]);
    }
    rhs(t + a4 * h, tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (b51 * k1[i] + b52 * k2[i] + b53 * k3[i] + b54 * k4[i]);
    }
    rhs(t + a5 * h, tmp, k5);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (b61 * k1[i] + b62 * k2[i] + b63 * k3[i] + b64 * k4[i] +
                           b65 * k5[i]);
    }
    rhs(t + a6 * h, tmp, k6);

    double err_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ynew[i] = y[i] + h * (c1 * k1[i] + c3 * k3[i] + c4 * k4[i] + c5 * k5[i] +
                            c6 * k6[i]);
      const double err = h * (e1 * k1[i] + e3 * k3[i] + e4 * k4[i] + e5 * k5[i] +
                              e6 * k6[i]);
      const double scale =
          options.abs_tol + options.rel_tol * std::max(std::fabs(y[i]), std::fabs(ynew[i]));
      err_norm = std::max(err_norm, std::fabs(err) / scale);
    }

    if (err_norm <= 1.0 || h <= options.dt_min) {
      t += h;
      y.swap(ynew);
      if (stats) ++stats->accepted_steps;
      if (observe) observe(t, y);
    } else if (stats) {
      ++stats->rejected_steps;
    }

    const double factor =
        err_norm > 0.0 ? options.safety * std::pow(err_norm, -0.2) : 2.0;
    h = std::clamp(h * std::clamp(factor, 0.2, 5.0), options.dt_min, options.dt_max);
  }
  return y;
}

}  // namespace ecocloud::ode
