#pragma once

/// \file solver.hpp
/// \brief Explicit ODE integrators: fixed-step RK4 and adaptive RKF45.
///
/// Both integrate y' = f(t, y) for a vector state. The right-hand side is
/// a callable writing the derivative in place (no per-step allocation).

#include <functional>
#include <vector>

namespace ecocloud::ode {

/// Right-hand side: fills dydt (same size as y).
using Rhs =
    std::function<void(double t, const std::vector<double>& y, std::vector<double>& dydt)>;

/// Observer invoked after each accepted step with (t, y). May be empty.
using Observer = std::function<void(double t, const std::vector<double>& y)>;

/// Classic fourth-order Runge-Kutta with fixed step.
///
/// Integrates from t0 to t1 with step dt (the final step is shortened to
/// land exactly on t1). Returns the final state.
std::vector<double> integrate_rk4(const Rhs& rhs, std::vector<double> y0, double t0,
                                  double t1, double dt, const Observer& observe = {});

/// Runge-Kutta-Fehlberg 4(5) with adaptive step-size control.
struct Rkf45Options {
  double abs_tol = 1e-8;
  double rel_tol = 1e-6;
  double dt_init = 1.0;
  double dt_min = 1e-8;
  double dt_max = 1e9;
  /// Safety factor for step-size updates.
  double safety = 0.9;
};

struct Rkf45Stats {
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
};

std::vector<double> integrate_rkf45(const Rhs& rhs, std::vector<double> y0, double t0,
                                    double t1, const Rkf45Options& options = {},
                                    const Observer& observe = {},
                                    Rkf45Stats* stats = nullptr);

}  // namespace ecocloud::ode
