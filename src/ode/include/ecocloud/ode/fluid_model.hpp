#pragma once

/// \file fluid_model.hpp
/// \brief The paper's differential-equation model of the assignment
///        procedure (Sec. IV, Eqs. (5)-(11)).
///
/// State: u_s(t), the utilization of each server, treated as a fluid.
///
///   du_s/dt = -Nc * mu(t) * u_s + lambda(t) * share_s(t) * vm_share_s
///
/// where share_s is the probability that an arriving VM lands on server s:
///  * exact model (Eqs. 5-9):
///      share_s = f_a(u_s) * E[1/(1+K_s)] / (1 - prod_i (1 - f_a(u_i)))
///    with K_s ~ PoissonBinomial(f_a(u_i), i != s), computed in O(Ns^2)
///    per evaluation via polynomial deconvolution;
///  * simplified model (Eq. 11):
///      share_s = f_a(u_s) / sum_i f_a(u_i).
///
/// vm_share_s converts "one VM" into utilization on server s: the mean VM
/// demand divided by the server's capacity (the paper's fluid assumption
/// that VM load is constant). The -Nc*mu*u term matches a per-VM
/// departure rate nu = Nc * mu (each VM leaves independently).
///
/// Note on Eq. (6): the paper's sum runs to Ns-2 although a server has
/// Ns-1 potential rivals; we sum over the full support k = 0..Ns-1, which
/// is the mathematically consistent reading (Eq. (9)'s "all rivals accept"
/// term is the k = Ns-1 case).

#include <vector>

#include "ecocloud/core/probability.hpp"
#include "ecocloud/ode/solver.hpp"
#include "ecocloud/trace/arrivals.hpp"

namespace ecocloud::ode {

struct FluidModelConfig {
  /// Number of servers Ns (> 0).
  std::size_t num_servers = 100;

  /// Assignment function parameters (paper: Ta = 0.9, p = 3).
  double ta = 0.9;
  double p = 3.0;

  /// VM arrival rate lambda(t), VMs per second.
  trace::RateFn lambda;

  /// Per-VM departure rate nu(t) = Nc * mu(t), 1/seconds.
  trace::RateFn nu;

  /// Utilization one VM adds to server s (mean demand / capacity_s).
  std::vector<double> vm_share;

  /// Use the exact assignment share (Eqs. 5-9) instead of Eq. (11).
  bool exact = false;
};

class FluidModel {
 public:
  explicit FluidModel(FluidModelConfig config);

  [[nodiscard]] const FluidModelConfig& config() const { return config_; }

  /// Per-server VM-landing shares at the given utilizations (sums to 1
  /// when anyone accepts). Exposed for validation against simulation.
  [[nodiscard]] std::vector<double> assignment_shares(
      const std::vector<double>& u) const;

  /// ODE right-hand side (adapts to solver.hpp's Rhs signature).
  void derivative(double t, const std::vector<double>& u,
                  std::vector<double>& dudt) const;

  /// Convenience: an Rhs bound to this model (model must outlive it).
  [[nodiscard]] Rhs rhs() const;

  /// Servers with utilization above \p threshold (the ODE analogue of
  /// "active"; fluid servers never hibernate exactly).
  [[nodiscard]] static std::size_t count_active(const std::vector<double>& u,
                                                double threshold = 0.01);

 private:
  std::vector<double> shares_exact(const std::vector<double>& fa_values) const;
  std::vector<double> shares_simplified(const std::vector<double>& fa_values) const;

  FluidModelConfig config_;
  core::AssignmentFunction fa_;
};

}  // namespace ecocloud::ode
