#pragma once

/// \file poisson_binomial.hpp
/// \brief Poisson-binomial distribution machinery for the exact fluid model.
///
/// Equations (7)-(9) of the paper define P_s^(k): the probability that
/// exactly k of the *other* servers volunteer for a VM, where server i
/// volunteers independently with probability f_i = f_a(u_i). That is a
/// Poisson-binomial distribution. The naive combinatorial evaluation is
/// exponential; here it is computed exactly in polynomial time:
///  * pmf(probs)   — O(n^2) convolution DP over (1 - f_i + f_i x) factors;
///  * remove_factor(pmf, f) — O(n) stable deconvolution of one factor, so
///    all Ns leave-one-out distributions cost O(Ns^2) total per RHS
///    evaluation instead of O(Ns^3).

#include <vector>

namespace ecocloud::ode {

/// Probability mass function of the number of successes among independent
/// Bernoulli trials with the given probabilities. Result has size
/// probs.size() + 1.
[[nodiscard]] std::vector<double> poisson_binomial_pmf(const std::vector<double>& probs);

/// Given the pmf of sum of n trials, return the pmf with the trial of
/// probability \p f removed (size shrinks by one). Uses the forward
/// recurrence when f < 0.5 and the backward recurrence otherwise, which
/// keeps the deconvolution numerically stable for f near 0 or 1.
/// Precondition: \p f was genuinely one of the factors.
[[nodiscard]] std::vector<double> remove_factor(const std::vector<double>& pmf, double f);

/// E[1/(1+K)] for a pmf of K: sum pmf[k] / (k+1). This is the expected
/// share of a VM granted to a volunteering server when K rivals also
/// volunteered (Eq. 6).
[[nodiscard]] double expected_inverse_one_plus(const std::vector<double>& pmf);

}  // namespace ecocloud::ode
