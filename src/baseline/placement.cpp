#include "ecocloud/baseline/placement.hpp"

#include <algorithm>
#include <limits>

#include "ecocloud/util/rng.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::baseline {

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kBestFitDecreasing: return "MBFD";
    case PlacementPolicy::kFirstFitDecreasing: return "FFD";
    case PlacementPolicy::kRandomFit: return "RandomFit";
  }
  return "unknown";
}

std::optional<dc::ServerId> choose_server(const dc::DataCenter& datacenter,
                                          double vm_demand_mhz, double utilization_cap,
                                          PlacementPolicy policy,
                                          std::uint64_t random_tiebreak) {
  util::require(vm_demand_mhz >= 0.0, "choose_server: negative demand");
  util::require(utilization_cap > 0.0 && utilization_cap <= 1.0,
                "choose_server: utilization_cap must be in (0,1]");

  const auto fits = [&](const dc::Server& server) {
    if (!server.active()) return false;
    const double committed = server.demand_mhz() + server.reserved_mhz();
    return (committed + vm_demand_mhz) / server.capacity_mhz() <= utilization_cap;
  };

  switch (policy) {
    case PlacementPolicy::kFirstFitDecreasing: {
      for (const dc::Server& server : datacenter.servers()) {
        if (fits(server)) return server.id();
      }
      return std::nullopt;
    }
    case PlacementPolicy::kRandomFit: {
      std::vector<dc::ServerId> candidates;
      for (const dc::Server& server : datacenter.servers()) {
        if (fits(server)) candidates.push_back(server.id());
      }
      if (candidates.empty()) return std::nullopt;
      util::Rng rng(random_tiebreak);
      return candidates[rng.index(candidates.size())];
    }
    case PlacementPolicy::kBestFitDecreasing: {
      // MBFD: minimize the increase in power draw caused by hosting the VM.
      const dc::PowerModel& power = datacenter.power_model();
      std::optional<dc::ServerId> best;
      double best_delta = std::numeric_limits<double>::infinity();
      double best_util = -1.0;
      for (const dc::Server& server : datacenter.servers()) {
        if (!fits(server)) continue;
        const double committed = server.demand_mhz() + server.reserved_mhz();
        const double u_before = committed / server.capacity_mhz();
        const double u_after = (committed + vm_demand_mhz) / server.capacity_mhz();
        const double delta = power.active_power_w(server.num_cores(), u_after) -
                             power.active_power_w(server.num_cores(), u_before);
        if (delta < best_delta - 1e-12 ||
            (delta < best_delta + 1e-12 && u_before > best_util)) {
          best = server.id();
          best_delta = delta;
          best_util = u_before;
        }
      }
      return best;
    }
  }
  return std::nullopt;
}

std::vector<dc::VmId> sort_by_demand_decreasing(const dc::DataCenter& datacenter,
                                                std::vector<dc::VmId> vms) {
  std::stable_sort(vms.begin(), vms.end(), [&](dc::VmId a, dc::VmId b) {
    return datacenter.vm(a).demand_mhz > datacenter.vm(b).demand_mhz;
  });
  return vms;
}

}  // namespace ecocloud::baseline
