#include "ecocloud/baseline/mm_selection.hpp"

#include <algorithm>
#include <limits>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::baseline {

std::vector<dc::VmId> select_vms_mm(const dc::DataCenter& datacenter,
                                    dc::ServerId server_id, double upper_threshold) {
  util::require(upper_threshold > 0.0 && upper_threshold <= 1.0,
                "select_vms_mm: threshold must be in (0,1]");
  const dc::Server& server = datacenter.server(server_id);

  // Working copy of (vm, demand) for the iterative selection. The excess is
  // measured against the server's *total* hosted demand; only non-migrating
  // VMs are candidates for eviction.
  std::vector<std::pair<dc::VmId, double>> pool;
  double demand = server.demand_mhz();
  for (dc::VmId v : server.vms()) {
    const dc::Vm& vm = datacenter.vm(v);
    if (vm.migrating()) continue;
    pool.emplace_back(v, vm.demand_mhz);
  }

  const double capacity = server.capacity_mhz();
  std::vector<dc::VmId> selected;
  while (demand / capacity > upper_threshold && !pool.empty()) {
    const double needed = demand - upper_threshold * capacity;

    // Cheapest single VM that covers the excess, if any.
    std::size_t best = pool.size();
    double best_overshoot = std::numeric_limits<double>::infinity();
    std::size_t largest = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (pool[i].second > pool[largest].second) largest = i;
      if (pool[i].second >= needed) {
        const double overshoot = pool[i].second - needed;
        if (overshoot < best_overshoot) {
          best_overshoot = overshoot;
          best = i;
        }
      }
    }
    const std::size_t pick = best < pool.size() ? best : largest;
    selected.push_back(pool[pick].first);
    demand -= pool[pick].second;
    pool[pick] = pool.back();
    pool.pop_back();
  }
  return selected;
}

}  // namespace ecocloud::baseline
