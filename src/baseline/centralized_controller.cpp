#include "ecocloud/baseline/centralized_controller.hpp"

#include <algorithm>

#include "ecocloud/baseline/mm_selection.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::baseline {

void CentralizedParams::validate() const {
  util::require(utilization_cap > 0.0 && utilization_cap <= 1.0,
                "CentralizedParams: utilization_cap must be in (0,1]");
  util::require(lower_threshold > 0.0 && lower_threshold < upper_threshold,
                "CentralizedParams: need 0 < lower < upper");
  util::require(upper_threshold <= 1.0, "CentralizedParams: upper must be <= 1");
  util::require(reopt_period_s > 0.0, "CentralizedParams: reopt period must be > 0");
  util::require(boot_time_s >= 0.0, "CentralizedParams: boot time must be >= 0");
  util::require(migration_latency_s >= 0.0,
                "CentralizedParams: migration latency must be >= 0");
}

CentralizedController::CentralizedController(sim::Simulator& simulator,
                                             dc::DataCenter& datacenter,
                                             CentralizedParams params, util::Rng rng)
    : sim_(simulator), dc_(datacenter), params_(params), rng_(rng) {
  params_.validate();
}

void CentralizedController::start() {
  util::ensure(!started_, "CentralizedController::start called twice");
  started_ = true;
  sim_.schedule_periodic(params_.reopt_period_s, [this] { reoptimize(); },
                         params_.reopt_period_s);
}

std::optional<dc::ServerId> CentralizedController::wake_one_server() {
  const auto sleeping = dc_.servers_in_state(dc::ServerState::kHibernated);
  if (sleeping.empty()) return std::nullopt;
  // Deterministic: wake the largest sleeping server (fastest way to add
  // capacity); ties by id.
  dc::ServerId best = sleeping.front();
  for (dc::ServerId s : sleeping) {
    if (dc_.server(s).capacity_mhz() > dc_.server(best).capacity_mhz()) best = s;
  }
  dc_.start_booting(sim_.now(), best);
  boot_queues_[best];
  sim_.schedule_after(params_.boot_time_s, [this, best] {
    dc_.finish_booting(sim_.now(), best);
    auto it = boot_queues_.find(best);
    if (it == boot_queues_.end()) return;
    const std::vector<dc::VmId> queued = std::move(it->second);
    boot_queues_.erase(it);
    for (dc::VmId vm : queued) {
      // A queued VM may have departed while the server booted.
      if (!dc_.vm(vm).placed() && dc_.vm(vm).demand_mhz >= 0.0) {
        dc_.place_vm(sim_.now(), vm, best);
      }
    }
  });
  return best;
}

bool CentralizedController::deploy_vm(dc::VmId vm) {
  const dc::Vm& machine = dc_.vm(vm);
  util::require(!machine.placed(), "CentralizedController::deploy_vm: already placed");
  const auto chosen = choose_server(dc_, machine.demand_mhz, params_.utilization_cap,
                                    params_.policy, rng_());
  if (chosen) {
    dc_.place_vm(sim_.now(), vm, *chosen);
    return true;
  }
  // Queue on a booting server if one exists, else wake one.
  for (auto& [server_id, queue] : boot_queues_) {
    if (dc_.server(server_id).booting()) {
      queue.push_back(vm);
      return true;
    }
  }
  if (auto woken = wake_one_server()) {
    boot_queues_[*woken].push_back(vm);
    return true;
  }
  ++assignment_failures_;
  return false;
}

void CentralizedController::depart_vm(dc::VmId vm) {
  const dc::Vm& machine = dc_.vm(vm);
  // Remove from any boot queue.
  for (auto& [server_id, queue] : boot_queues_) {
    const auto it = std::find(queue.begin(), queue.end(), vm);
    if (it != queue.end()) {
      queue.erase(it);
      return;
    }
  }
  if (machine.migrating()) dc_.cancel_migration(sim_.now(), vm);
  if (machine.placed()) {
    const dc::ServerId host = machine.host;
    dc_.unplace_vm(sim_.now(), vm);
    hibernate_if_empty(host);
  }
}

void CentralizedController::migrate(dc::VmId vm, dc::ServerId dest) {
  const sim::SimTime now = sim_.now();
  dc_.begin_migration(now, vm, dest);
  sim_.schedule_after(params_.migration_latency_s, [this, vm, dest] {
    const dc::Vm& machine = dc_.vm(vm);
    if (!machine.migrating() || machine.migrating_to != dest) return;
    const dc::ServerId source = machine.host;
    dc_.complete_migration(sim_.now(), vm);
    ++migrations_;
    hibernate_if_empty(source);
  });
}

void CentralizedController::hibernate_if_empty(dc::ServerId s) {
  const dc::Server& server = dc_.server(s);
  if (server.active() && server.empty() && server.reserved_mhz() == 0.0) {
    dc_.hibernate(sim_.now(), s);
  }
}

void CentralizedController::reoptimize() {
  const sim::SimTime now = sim_.now();

  // Pass 1: relieve overloaded servers (upper threshold), MM selection.
  for (const dc::Server& server : dc_.servers()) {
    if (!server.active()) continue;
    if (server.demand_ratio() <= params_.upper_threshold) continue;
    const auto evict = select_vms_mm(dc_, server.id(), params_.upper_threshold);
    for (dc::VmId vm : evict) {
      auto dest = choose_server(dc_, dc_.vm(vm).demand_mhz, params_.utilization_cap,
                                params_.policy, rng_());
      if (dest && *dest != server.id()) {
        migrate(vm, *dest);
      } else if (!dest) {
        // Overload with nowhere to go: add capacity (and retry next pass).
        wake_one_server();
        break;
      }
    }
  }

  // Pass 2: evacuate under-utilized servers, least-loaded first.
  std::vector<dc::ServerId> underloaded;
  for (const dc::Server& server : dc_.servers()) {
    if (server.active() && !server.empty() &&
        server.demand_ratio() < params_.lower_threshold &&
        server.reserved_mhz() == 0.0) {
      underloaded.push_back(server.id());
    }
  }
  std::sort(underloaded.begin(), underloaded.end(), [&](dc::ServerId a, dc::ServerId b) {
    return dc_.server(a).demand_ratio() < dc_.server(b).demand_ratio();
  });

  for (dc::ServerId s : underloaded) {
    const dc::Server& server = dc_.server(s);
    // Tentatively find a destination for every VM; commit only if all fit.
    // Reservations made by earlier commits in this pass are visible through
    // Server::reserved_mhz(), so commitments do not oversubscribe.
    std::vector<std::pair<dc::VmId, dc::ServerId>> moves;
    std::unordered_map<dc::ServerId, double> extra;  // planned additions
    bool all_fit = true;
    for (dc::VmId vm : server.vms()) {
      if (dc_.vm(vm).migrating()) {
        all_fit = false;
        break;
      }
      const double demand = dc_.vm(vm).demand_mhz;
      // Choose among active servers accounting for planned additions.
      std::optional<dc::ServerId> best;
      double best_metric = -1.0;
      for (const dc::Server& cand : dc_.servers()) {
        if (!cand.active() || cand.id() == s) continue;
        const double committed =
            cand.demand_mhz() + cand.reserved_mhz() + extra[cand.id()];
        const double u_after = (committed + demand) / cand.capacity_mhz();
        if (u_after > params_.utilization_cap) continue;
        // Best-fit: tightest remaining space after placement.
        if (u_after > best_metric) {
          best_metric = u_after;
          best = cand.id();
        }
      }
      if (!best) {
        all_fit = false;
        break;
      }
      moves.emplace_back(vm, *best);
      extra[*best] += demand;
    }
    if (all_fit && !moves.empty()) {
      for (const auto& [vm, dest] : moves) migrate(vm, dest);
    }
  }
  (void)now;
}

}  // namespace ecocloud::baseline
