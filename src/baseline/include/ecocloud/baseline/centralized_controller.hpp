#pragma once

/// \file centralized_controller.hpp
/// \brief Centralized consolidation controller (the paper's comparator).
///
/// Periodically runs a global reoptimization pass over the whole data
/// center, in the style of Beloglazov & Buyya's double-threshold policy:
///  1. every server above the upper threshold sheds VMs chosen by
///     Minimization-of-Migrations, re-placed with the configured placement
///     heuristic (waking servers when necessary);
///  2. every server below the lower threshold attempts full evacuation —
///     all its VMs are migrated (if they fit elsewhere under the cap) and
///     the server is hibernated.
///
/// Migrations triggered by one pass execute simultaneously — the mass-
/// migration behaviour the paper's Sec. V criticizes, and what the
/// comparison benches quantify against ecoCloud's gradual process.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ecocloud/baseline/placement.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/sim/simulator.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::baseline {

struct CentralizedParams {
  /// Placement heuristic for both new VMs and migrating VMs.
  PlacementPolicy policy = PlacementPolicy::kBestFitDecreasing;

  /// Post-placement utilization cap (compare to ecoCloud's Ta).
  double utilization_cap = 0.90;

  /// Reallocation thresholds (Beloglazov's double-threshold policy).
  double lower_threshold = 0.50;
  double upper_threshold = 0.95;

  /// Period of the global reoptimization pass.
  sim::SimTime reopt_period_s = 300.0;

  /// Server wake-up latency (matched to the ecoCloud configuration so the
  /// comparison is fair).
  sim::SimTime boot_time_s = 120.0;

  /// Live-migration completion latency.
  sim::SimTime migration_latency_s = 30.0;

  void validate() const;
};

class CentralizedController {
 public:
  CentralizedController(sim::Simulator& simulator, dc::DataCenter& datacenter,
                        CentralizedParams params, util::Rng rng);

  /// Schedule the periodic reoptimization. Call once.
  void start();

  /// Place a new VM with the configured heuristic; wakes a server if no
  /// active one fits. Returns false when the data center is saturated.
  bool deploy_vm(dc::VmId vm);

  /// Remove a VM from the system.
  void depart_vm(dc::VmId vm);

  /// Run one reoptimization pass now (also called by the periodic timer).
  void reoptimize();

  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] std::uint64_t assignment_failures() const {
    return assignment_failures_;
  }
  [[nodiscard]] const CentralizedParams& params() const { return params_; }

 private:
  /// Migrate \p vm to \p dest with the configured latency.
  void migrate(dc::VmId vm, dc::ServerId dest);
  std::optional<dc::ServerId> wake_one_server();
  void hibernate_if_empty(dc::ServerId s);

  sim::Simulator& sim_;
  dc::DataCenter& dc_;
  CentralizedParams params_;
  util::Rng rng_;
  std::uint64_t migrations_ = 0;
  std::uint64_t assignment_failures_ = 0;
  /// VMs queued for a booting server, placed when it becomes active.
  std::unordered_map<dc::ServerId, std::vector<dc::VmId>> boot_queues_;
  bool started_ = false;
};

}  // namespace ecocloud::baseline
