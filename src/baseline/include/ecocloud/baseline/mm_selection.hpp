#pragma once

/// \file mm_selection.hpp
/// \brief Minimization-of-Migrations VM selection (Beloglazov & Buyya).
///
/// Given an overloaded server, MM chooses the smallest set of VMs whose
/// removal brings utilization back under the upper threshold, preferring —
/// among VMs that individually suffice — the one with the least demand
/// above the required reduction (migrating it is cheapest). When no single
/// VM suffices, the largest VM is evicted and the selection repeats.

#include <vector>

#include "ecocloud/dc/datacenter.hpp"

namespace ecocloud::baseline {

/// VMs to evict from \p server so that its post-eviction utilization is
/// <= \p upper_threshold. Returns an empty vector when the server is not
/// above the threshold. VMs already migrating are not considered.
[[nodiscard]] std::vector<dc::VmId> select_vms_mm(const dc::DataCenter& datacenter,
                                                  dc::ServerId server,
                                                  double upper_threshold);

}  // namespace ecocloud::baseline
