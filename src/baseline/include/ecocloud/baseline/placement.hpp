#pragma once

/// \file placement.hpp
/// \brief Centralized single-VM placement heuristics.
///
/// Implements the comparators the paper cites (Sec. V): the Modified
/// Best-Fit-Decreasing family of Beloglazov & Buyya (CCGrid'10) and the
/// First-Fit-Decreasing variant of Quan et al. (ISCIS'11), plus a
/// random-fit strawman. All of them are *centralized*: they inspect every
/// server's state to make one globally informed decision — exactly the
/// coupling ecoCloud avoids.

#include <optional>
#include <vector>

#include "ecocloud/dc/datacenter.hpp"

namespace ecocloud::baseline {

enum class PlacementPolicy {
  kBestFitDecreasing,   ///< minimize power increase (MBFD)
  kFirstFitDecreasing,  ///< first active server that fits
  kRandomFit,           ///< uniformly random among servers that fit
};

[[nodiscard]] const char* to_string(PlacementPolicy policy);

/// Find a server for a VM of the given demand among *active* servers whose
/// post-placement utilization stays <= \p utilization_cap.
///
/// kBestFitDecreasing picks the server whose power draw increases least
/// (Beloglazov & Buyya's MBFD criterion); ties break toward the higher
/// utilization (tighter packing). Returns std::nullopt when no active
/// server fits.
[[nodiscard]] std::optional<dc::ServerId> choose_server(
    const dc::DataCenter& datacenter, double vm_demand_mhz, double utilization_cap,
    PlacementPolicy policy, std::uint64_t random_tiebreak = 0);

/// Sort VM ids by decreasing demand (the "decreasing" half of BFD/FFD).
[[nodiscard]] std::vector<dc::VmId> sort_by_demand_decreasing(
    const dc::DataCenter& datacenter, std::vector<dc::VmId> vms);

}  // namespace ecocloud::baseline
