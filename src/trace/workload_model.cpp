#include "ecocloud/trace/workload_model.hpp"

#include <cmath>

#include "ecocloud/util/math.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::trace {

WorkloadModel::WorkloadModel(WorkloadConfig config) : config_(config) {
  util::require(config_.reference_mhz > 0.0, "WorkloadModel: reference_mhz must be > 0");
  util::require(config_.sample_period_s > 0.0,
                "WorkloadModel: sample_period_s must be > 0");
  util::require(config_.ar1_rho >= 0.0 && config_.ar1_rho < 1.0,
                "WorkloadModel: ar1_rho must be in [0,1)");
  util::require(config_.dev_base >= 0.0 && config_.dev_slope >= 0.0,
                "WorkloadModel: deviation scale must be non-negative");
  util::require(config_.ram_min_mb >= 0.0 && config_.ram_max_mb >= config_.ram_min_mb,
                "WorkloadModel: invalid RAM range");
}

const std::vector<double>& WorkloadModel::average_bin_weights() {
  // 5%-wide bins over [0, 100): calibrated by eye against the paper's
  // Fig. 4 (decreasing from ~0.2 below 10%, long thin tail to 100%).
  static const std::vector<double> kWeights = {
      0.220, 0.250, 0.160, 0.100, 0.070,   //  0-25 %
      0.050, 0.035, 0.025, 0.020, 0.015,   // 25-50 %
      0.012, 0.009, 0.007, 0.005, 0.004,   // 50-75 %
      0.003, 0.002, 0.002, 0.0015, 0.0005  // 75-100 %
  };
  return kWeights;
}

double WorkloadModel::sample_average_percent(util::Rng& rng) const {
  const auto& weights = average_bin_weights();
  const std::size_t bin = rng.discrete(weights);
  const double width = 100.0 / static_cast<double>(weights.size());
  return rng.uniform(static_cast<double>(bin) * width,
                     static_cast<double>(bin + 1) * width);
}

double WorkloadModel::sample_ram_mb(util::Rng& rng) const {
  return rng.uniform(config_.ram_min_mb, config_.ram_max_mb);
}

double WorkloadModel::expected_average_percent() {
  const auto& weights = average_bin_weights();
  const double width = 100.0 / static_cast<double>(weights.size());
  double total = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    total += weights[i];
    acc += weights[i] * (static_cast<double>(i) + 0.5) * width;
  }
  return acc / total;
}

std::vector<float> WorkloadModel::generate_series(util::Rng& rng, double avg_percent,
                                                  std::size_t num_steps,
                                                  sim::SimTime start_time) const {
  util::require(avg_percent >= 0.0 && avg_percent <= 100.0,
                "WorkloadModel::generate_series: avg must be in [0,100]");
  std::vector<float> series;
  series.reserve(num_steps);

  const double sigma = config_.dev_base + config_.dev_slope * avg_percent;
  const double rho = config_.ar1_rho;
  const double innovation_scale = sigma * std::sqrt(1.0 - rho * rho);

  // Start the AR(1) from its stationary distribution so the series has no
  // warm-up transient.
  double dev = rng.normal(0.0, sigma);
  for (std::size_t k = 0; k < num_steps; ++k) {
    const sim::SimTime t = start_time + static_cast<double>(k) * config_.sample_period_s;
    const double base = avg_percent * config_.diurnal.value(t);
    const double value = std::clamp(base + dev, 0.0, 100.0);
    series.push_back(static_cast<float>(value));
    dev = rho * dev + rng.normal(0.0, innovation_scale);
  }
  return series;
}

}  // namespace ecocloud::trace
