#include "ecocloud/trace/diurnal.hpp"

#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::trace {

DiurnalPattern::DiurnalPattern(double amplitude, double peak_hour)
    : amplitude_(amplitude), peak_hour_(peak_hour) {
  util::require(amplitude >= 0.0 && amplitude < 1.0,
                "DiurnalPattern: amplitude must be in [0,1)");
  util::require(peak_hour >= 0.0 && peak_hour < 24.0,
                "DiurnalPattern: peak_hour must be in [0,24)");
}

double DiurnalPattern::value(sim::SimTime t) const {
  const double hours = t / sim::kHour;
  // sin is maximal when its argument is pi/2; shift so that happens at
  // peak_hour_ (mod 24).
  const double phase = 2.0 * M_PI * (hours - peak_hour_) / 24.0 + M_PI / 2.0;
  return 1.0 + amplitude_ * std::sin(phase);
}

}  // namespace ecocloud::trace
