#include "ecocloud/trace/streaming_traces.hpp"

#include <algorithm>
#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::trace {

StreamingTraces StreamingTraces::generate(const WorkloadModel& model,
                                          std::size_t num_vms,
                                          std::size_t num_steps,
                                          util::Rng& rng) {
  util::require(num_vms > 0, "StreamingTraces::generate: num_vms must be > 0");
  util::require(num_steps > 0, "StreamingTraces::generate: num_steps must be > 0");
  const WorkloadConfig& config = model.config();

  StreamingTraces set;
  set.num_steps_ = num_steps;
  set.sample_period_s_ = config.sample_period_s;
  set.reference_mhz_ = config.reference_mhz;
  set.ar1_rho_ = config.ar1_rho;
  set.dev_base_ = config.dev_base;
  set.dev_slope_ = config.dev_slope;
  set.diurnal_ = config.diurnal;
  set.averages_.reserve(num_vms);
  set.ram_mb_.reserve(num_vms);
  set.dev_.reserve(num_vms);
  set.values_.reserve(num_vms);
  set.cursors_.reserve(num_vms);

  const double rho = config.ar1_rho;
  // Computed exactly as WorkloadModel::generate_series computes it, so the
  // lazily drawn samples match the materialized ones bit for bit.
  const double stationary_to_innovation = std::sqrt(1.0 - rho * rho);

  for (std::size_t v = 0; v < num_vms; ++v) {
    const double avg = model.sample_average_percent(rng);
    set.averages_.push_back(avg);
    set.ram_mb_.push_back(model.sample_ram_mb(rng));

    const double sigma = config.dev_base + config.dev_slope * avg;
    const double innovation_scale = sigma * stationary_to_innovation;

    // Capture this VM's cursor at the start of its series block, then
    // advance the shared stream past the block by replaying the exact
    // draws TraceSet::generate would burn (1 stationary + num_steps
    // innovations), keeping VM v+1's average/ram/series draws aligned
    // with the materialized generator.
    set.cursors_.push_back(rng);
    (void)rng.normal(0.0, sigma);
    for (std::size_t k = 0; k < num_steps; ++k) {
      (void)rng.normal(0.0, innovation_scale);
    }

    // Position the lazy state at step 0 from the private cursor: after the
    // stationary draw it is ready to produce the step-1 innovation.
    const double dev0 = set.cursors_.back().normal(0.0, sigma);
    set.dev_.push_back(dev0);
    const double base = avg * set.diurnal_.value(0.0);
    set.values_.push_back(static_cast<float>(std::clamp(base + dev0, 0.0, 100.0)));
  }
  return set;
}

std::size_t StreamingTraces::step_at(sim::SimTime t) const {
  util::require(t >= 0.0, "StreamingTraces::step_at: negative time");
  return static_cast<std::size_t>(t / sample_period_s_);
}

void StreamingTraces::advance_to(std::size_t step) {
  util::require(step >= current_step_,
                "StreamingTraces::advance_to: cursors cannot rewind");
  util::require(step < num_steps_,
                "StreamingTraces::advance_to: step beyond generated horizon");
  const double rho = ar1_rho_;
  const double stationary_to_innovation = std::sqrt(1.0 - rho * rho);
  const std::size_t n = averages_.size();
  while (current_step_ < step) {
    ++current_step_;
    const sim::SimTime t =
        static_cast<double>(current_step_) * sample_period_s_;
    for (std::size_t v = 0; v < n; ++v) {
      const double avg = averages_[v];
      const double sigma = dev_base_ + dev_slope_ * avg;
      const double innovation_scale = sigma * stationary_to_innovation;
      const double dev =
          rho * dev_[v] + cursors_[v].normal(0.0, innovation_scale);
      dev_[v] = dev;
      const double base = avg * diurnal_.value(t);
      values_[v] = static_cast<float>(std::clamp(base + dev, 0.0, 100.0));
    }
  }
}

}  // namespace ecocloud::trace
