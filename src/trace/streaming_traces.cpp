#include "ecocloud/trace/streaming_traces.hpp"

#include <algorithm>
#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::trace {

StreamingTraces StreamingTraces::generate(const WorkloadModel& model,
                                          std::size_t num_vms,
                                          std::size_t num_steps,
                                          util::Rng& rng) {
  util::require(num_vms > 0, "StreamingTraces::generate: num_vms must be > 0");
  util::require(num_steps > 0, "StreamingTraces::generate: num_steps must be > 0");
  const WorkloadConfig& config = model.config();

  StreamingTraces set;
  set.num_steps_ = num_steps;
  set.sample_period_s_ = config.sample_period_s;
  set.reference_mhz_ = config.reference_mhz;
  set.ar1_rho_ = config.ar1_rho;
  set.dev_base_ = config.dev_base;
  set.dev_slope_ = config.dev_slope;
  set.diurnal_ = config.diurnal;
  set.total_vms_ = num_vms;
  set.averages_.reserve(num_vms);
  set.ram_mb_.reserve(num_vms);
  set.dev_.reserve(num_vms);
  set.values_.reserve(num_vms);
  set.cursors_.reserve(num_vms);

  const double rho = config.ar1_rho;
  // Computed exactly as WorkloadModel::generate_series computes it, so the
  // lazily drawn samples match the materialized ones bit for bit.
  const double stationary_to_innovation = std::sqrt(1.0 - rho * rho);

  for (std::size_t v = 0; v < num_vms; ++v) {
    const double avg = model.sample_average_percent(rng);
    set.averages_.push_back(avg);
    set.ram_mb_.push_back(model.sample_ram_mb(rng));

    const double sigma = config.dev_base + config.dev_slope * avg;
    const double innovation_scale = sigma * stationary_to_innovation;

    // Capture this VM's cursor at the start of its series block, then
    // advance the shared stream past the block by replaying the exact
    // draws TraceSet::generate would burn (1 stationary + num_steps
    // innovations), keeping VM v+1's average/ram/series draws aligned
    // with the materialized generator.
    set.cursors_.push_back(rng);
    (void)rng.normal(0.0, sigma);
    for (std::size_t k = 0; k < num_steps; ++k) {
      (void)rng.normal(0.0, innovation_scale);
    }

    // Position the lazy state at step 0 from the private cursor: after the
    // stationary draw it is ready to produce the step-1 innovation.
    const double dev0 = set.cursors_.back().normal(0.0, sigma);
    set.dev_.push_back(dev0);
    const double base = avg * set.diurnal_.value(0.0);
    set.values_.push_back(static_cast<float>(std::clamp(base + dev0, 0.0, 100.0)));
  }
  return set;
}

std::vector<StreamingTraces> StreamingTraces::generate_partitioned(
    const WorkloadModel& model, std::size_t num_vms, std::size_t num_steps,
    util::Rng& rng, std::size_t num_banks) {
  util::require(num_banks > 0,
                "StreamingTraces::generate_partitioned: num_banks must be > 0");
  util::require(num_vms > 0,
                "StreamingTraces::generate_partitioned: num_vms must be > 0");
  util::require(num_steps > 0,
                "StreamingTraces::generate_partitioned: num_steps must be > 0");
  const WorkloadConfig& config = model.config();

  std::vector<StreamingTraces> banks;
  banks.reserve(num_banks);
  for (std::size_t k = 0; k < num_banks; ++k) {
    StreamingTraces bank;
    bank.num_steps_ = num_steps;
    bank.sample_period_s_ = config.sample_period_s;
    bank.reference_mhz_ = config.reference_mhz;
    bank.ar1_rho_ = config.ar1_rho;
    bank.dev_base_ = config.dev_base;
    bank.dev_slope_ = config.dev_slope;
    bank.diurnal_ = config.diurnal;
    bank.stride_ = num_banks;
    bank.offset_ = k;
    bank.total_vms_ = num_vms;
    const std::size_t owned =
        num_vms / num_banks + (k < num_vms % num_banks ? 1 : 0);
    bank.averages_.reserve(owned);
    bank.ram_mb_.reserve(owned);
    bank.dev_.reserve(owned);
    bank.values_.reserve(owned);
    bank.cursors_.reserve(owned);
    banks.push_back(std::move(bank));
  }

  const double rho = config.ar1_rho;
  const double stationary_to_innovation = std::sqrt(1.0 - rho * rho);

  // One pass over the shared stream in generate()'s exact draw order; only
  // the bank each row's columns land in differs. Row v is stored at slot
  // v / num_banks of bank v % num_banks, so the per-bank append order is
  // the global row order restricted to the bank — slot() stays arithmetic.
  for (std::size_t v = 0; v < num_vms; ++v) {
    StreamingTraces& bank = banks[v % num_banks];
    const double avg = model.sample_average_percent(rng);
    bank.averages_.push_back(avg);
    bank.ram_mb_.push_back(model.sample_ram_mb(rng));

    const double sigma = config.dev_base + config.dev_slope * avg;
    const double innovation_scale = sigma * stationary_to_innovation;

    bank.cursors_.push_back(rng);
    (void)rng.normal(0.0, sigma);
    for (std::size_t k = 0; k < num_steps; ++k) {
      (void)rng.normal(0.0, innovation_scale);
    }

    const double dev0 = bank.cursors_.back().normal(0.0, sigma);
    bank.dev_.push_back(dev0);
    const double base = avg * bank.diurnal_.value(0.0);
    bank.values_.push_back(
        static_cast<float>(std::clamp(base + dev0, 0.0, 100.0)));
  }
  return banks;
}

std::size_t StreamingTraces::slot(std::size_t v) const {
  if (stride_ == 1) return v;
  if (v % stride_ == offset_) return v / stride_;
  const auto it = foreign_.find(v);
  util::require(it != foreign_.end(),
                "StreamingTraces: trace row is resident in another bank — "
                "adopt_row it before driving it from this shard");
  return it->second;
}

bool StreamingTraces::has_row(std::size_t v) const {
  if (v >= total_vms_) return false;
  if (stride_ == 1) return true;
  return v % stride_ == offset_ || foreign_.find(v) != foreign_.end();
}

void StreamingTraces::adopt_row(std::size_t v, const StreamingTraces& home) {
  if (has_row(v)) return;
  util::require(v < total_vms_,
                "StreamingTraces::adopt_row: row index out of range");
  util::require(home.has_row(v),
                "StreamingTraces::adopt_row: source bank does not hold the row");
  util::require(home.current_step_ == current_step_,
                "StreamingTraces::adopt_row: banks sit at different steps — "
                "adoption is only exact at a barrier, where every bank has "
                "advanced to the same sample");
  const std::size_t s = home.slot(v);
  foreign_.emplace(v, averages_.size());
  averages_.push_back(home.averages_[s]);
  ram_mb_.push_back(home.ram_mb_[s]);
  dev_.push_back(home.dev_[s]);
  values_.push_back(home.values_[s]);
  cursors_.push_back(home.cursors_[s]);
}

std::size_t StreamingTraces::step_at(sim::SimTime t) const {
  util::require(t >= 0.0, "StreamingTraces::step_at: negative time");
  return static_cast<std::size_t>(t / sample_period_s_);
}

void StreamingTraces::advance_to(std::size_t step) {
  util::require(step >= current_step_,
                "StreamingTraces::advance_to: cursors cannot rewind");
  util::require(step < num_steps_,
                "StreamingTraces::advance_to: step beyond generated horizon");
  const double rho = ar1_rho_;
  const double stationary_to_innovation = std::sqrt(1.0 - rho * rho);
  const std::size_t n = averages_.size();
  while (current_step_ < step) {
    ++current_step_;
    const sim::SimTime t =
        static_cast<double>(current_step_) * sample_period_s_;
    for (std::size_t v = 0; v < n; ++v) {
      const double avg = averages_[v];
      const double sigma = dev_base_ + dev_slope_ * avg;
      const double innovation_scale = sigma * stationary_to_innovation;
      const double dev =
          rho * dev_[v] + cursors_[v].normal(0.0, innovation_scale);
      dev_[v] = dev;
      const double base = avg * diurnal_.value(t);
      values_[v] = static_cast<float>(std::clamp(base + dev, 0.0, 100.0));
    }
  }
}

}  // namespace ecocloud::trace
