#include "ecocloud/trace/planetlab_io.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <string>

#include "ecocloud/util/string_util.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::trace {

std::vector<float> parse_planetlab_file(std::istream& in) {
  std::vector<float> samples;
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const double value = util::parse_double(trimmed);
    samples.push_back(static_cast<float>(std::clamp(value, 0.0, 100.0)));
  }
  return samples;
}

TraceSet read_planetlab_dir(const std::filesystem::path& dir,
                            double sample_period_s, double reference_mhz) {
  util::require(std::filesystem::is_directory(dir),
                "read_planetlab_dir: not a directory: " + dir.string());

  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  util::require(!files.empty(), "read_planetlab_dir: no trace files in " +
                                    dir.string());
  std::sort(files.begin(), files.end());

  std::vector<std::vector<float>> series;
  std::size_t longest = 0;
  for (const auto& file : files) {
    std::ifstream in(file);
    util::require(in.good(), "read_planetlab_dir: cannot open " + file.string());
    auto samples = parse_planetlab_file(in);
    util::require(!samples.empty(),
                  "read_planetlab_dir: empty trace file " + file.string());
    longest = std::max(longest, samples.size());
    series.push_back(std::move(samples));
  }
  // Equalize lengths by wrap-around so the set is rectangular.
  for (auto& s : series) {
    const std::size_t original = s.size();
    while (s.size() < longest) s.push_back(s[s.size() % original]);
  }
  return TraceSet::from_series(std::move(series), sample_period_s, reference_mhz);
}

void write_planetlab_dir(const TraceSet& set, const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  for (std::size_t v = 0; v < set.num_vms(); ++v) {
    char name[16];
    std::snprintf(name, sizeof(name), "vm_%05zu", v);
    std::ofstream out(dir / name);
    util::require(out.good(),
                  "write_planetlab_dir: cannot create file in " + dir.string());
    for (std::size_t k = 0; k < set.num_steps(); ++k) {
      out << set.percent_at(v, k) << '\n';
    }
  }
}

}  // namespace ecocloud::trace
