#pragma once

/// \file diurnal.hpp
/// \brief Daily load modulation shared by all VMs.
///
/// The paper's 48-hour experiment follows "the normal daily pattern, with
/// increasing load in the morning and decreasing load in the evening"
/// (Sec. III). We model this as a sinusoid with a 24-hour period:
///   g(t) = 1 + amplitude * sin(2*pi*(t - peak_offset)/24h)
/// phased so the minimum falls in the small hours and the peak in the
/// early afternoon.

#include "ecocloud/sim/time.hpp"

namespace ecocloud::trace {

class DiurnalPattern {
 public:
  /// \param amplitude  relative swing around 1 (in [0, 1)).
  /// \param peak_hour  hour of day at which g is maximal (default 14:00).
  explicit DiurnalPattern(double amplitude = 0.22, double peak_hour = 14.0);

  /// Modulation factor at simulation time \p t (seconds since midnight of
  /// day 0). Mean over a full day is exactly 1.
  [[nodiscard]] double value(sim::SimTime t) const;

  [[nodiscard]] double amplitude() const { return amplitude_; }
  [[nodiscard]] double peak_hour() const { return peak_hour_; }

  /// Minimum / maximum over a day.
  [[nodiscard]] double min() const { return 1.0 - amplitude_; }
  [[nodiscard]] double max() const { return 1.0 + amplitude_; }

 private:
  double amplitude_;
  double peak_hour_;
};

}  // namespace ecocloud::trace
