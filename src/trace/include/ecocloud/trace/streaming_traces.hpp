#pragma once

/// \file streaming_traces.hpp
/// \brief Lazily generated per-VM demand cursors — TraceSet without the
///        O(VMs x horizon) sample matrix.
///
/// TraceSet::generate materializes every 5-minute sample of every VM up
/// front: 4 bytes x num_vms x num_steps, which is gigabytes at planet scale
/// (DESIGN.md §14). StreamingTraces keeps only O(1) state per VM — the
/// drawn average, the RAM footprint, the current AR(1) deviation, and a
/// private RNG cursor positioned at the VM's slice of the generation
/// stream — and advances all cursors one sampling step at a time as the
/// simulation progresses.
///
/// Bit-compatibility contract: generate() consumes the shared RNG in
/// EXACTLY the order TraceSet::generate does (avg, ram, then the series
/// block of 1 + num_steps normal draws per VM), and the lazily produced
/// demand at (v, k) equals TraceSet's series value bit for bit (same
/// draws, same arithmetic, same clamp). A scenario that swaps TraceSet
/// for StreamingTraces therefore produces the identical event stream —
/// pinned by tests/engine_regression_test.
///
/// Access is monotone: advance_to(k) may only move forward. Rewinds throw,
/// and the wrap-around replay TraceSet::percent_at offers for steps beyond
/// num_steps is not supported — scenarios generate enough steps to cover
/// their horizon, so neither limitation is reachable from DailyScenario.
/// After a checkpoint restore the bank starts over at step 0 and the first
/// advance_to fast-forwards deterministically; no cursor state needs to be
/// part of the snapshot.
///
/// Sharding (DESIGN.md §17): generate_partitioned() cuts the generation
/// stream into K banks, bank k owning the rows congruent to k modulo K —
/// the same row->shard rule as par::ShardPlan::shard_of_trace — while
/// consuming the shared RNG in exactly generate()'s order, so K banks
/// advanced in lockstep produce the same samples as one bank. Rows are
/// addressed by their GLOBAL index everywhere; a bank can additionally
/// adopt_row() a copy of a sibling bank's row (cross-shard VM hand-off),
/// after which it advances the copy itself. A row's state at step T is a
/// pure function of its captured cursor and T, so copies never diverge
/// from the original.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "ecocloud/sim/time.hpp"
#include "ecocloud/trace/workload_model.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::trace {

class StreamingTraces {
 public:
  /// Set up cursors for \p num_vms VMs of \p num_steps samples each,
  /// consuming \p rng exactly as TraceSet::generate(model, num_vms,
  /// num_steps, rng) would. O(num_vms x num_steps) time (the generation
  /// draws must be replayed to keep the stream aligned) but O(num_vms)
  /// memory.
  static StreamingTraces generate(const WorkloadModel& model,
                                  std::size_t num_vms, std::size_t num_steps,
                                  util::Rng& rng);

  /// generate(), cut into \p num_banks banks: bank k holds the cursors of
  /// the rows congruent to k modulo num_banks. One pass over the shared
  /// RNG in exactly generate()'s draw order, so the union of the banks is
  /// bit-identical to a single generate() bank (and to TraceSet). Every
  /// accessor keeps taking GLOBAL row indices.
  static std::vector<StreamingTraces> generate_partitioned(
      const WorkloadModel& model, std::size_t num_vms, std::size_t num_steps,
      util::Rng& rng, std::size_t num_banks);

  /// Total rows of the generation run, NOT the resident count: partitioned
  /// banks answer for the whole row space so global indices validate
  /// uniformly (accessing a non-resident row still throws).
  [[nodiscard]] std::size_t num_vms() const { return total_vms_; }

  /// True when row \p v is resident here: owned by this bank's stride
  /// class, or previously copied in with adopt_row().
  [[nodiscard]] bool has_row(std::size_t v) const;

  /// Copy row \p v from \p home into this bank so it can be driven (and
  /// advanced) locally. No-op when already resident. Both banks must sit
  /// at the same current step — at that instant the copy is exact, and it
  /// stays exact afterwards because each row evolves from its own private
  /// cursor. Draws no shared randomness.
  void adopt_row(std::size_t v, const StreamingTraces& home);
  [[nodiscard]] std::size_t num_steps() const { return num_steps_; }
  [[nodiscard]] sim::SimTime sample_period_s() const { return sample_period_s_; }
  [[nodiscard]] double reference_mhz() const { return reference_mhz_; }

  /// Average utilization (percent) drawn for VM \p v.
  [[nodiscard]] double average_percent(std::size_t v) const {
    return averages_.at(slot(v));
  }

  /// RAM footprint of VM \p v (MB).
  [[nodiscard]] double ram_mb(std::size_t v) const {
    return ram_mb_.at(slot(v));
  }

  /// Step index active at simulation time \p t (floor(t / period)).
  [[nodiscard]] std::size_t step_at(sim::SimTime t) const;

  /// The step all cursors are currently positioned at.
  [[nodiscard]] std::size_t current_step() const { return current_step_; }

  /// Advance every cursor to \p step (forward only; throws on rewind or
  /// past num_steps). O(num_vms x steps advanced).
  void advance_to(std::size_t step);

  /// Punctual utilization (percent) of VM \p v at the current step —
  /// bit-identical to TraceSet::percent_at(v, current_step()).
  [[nodiscard]] double percent_current(std::size_t v) const {
    return static_cast<double>(values_.at(slot(v)));
  }

  /// Demand (MHz) of VM \p v at the current step.
  [[nodiscard]] double demand_mhz_current(std::size_t v) const {
    return percent_current(v) / 100.0 * reference_mhz_;
  }

 private:
  StreamingTraces() = default;

  /// Storage index of global row \p v. Owned rows live at v / stride_;
  /// adopted rows are found through foreign_. Throws (with the shard
  /// hand-off contract spelled out) for rows resident elsewhere.
  [[nodiscard]] std::size_t slot(std::size_t v) const;

  /// Bank partitioning: this bank owns the rows with v % stride_ ==
  /// offset_ of total_vms_ global rows (stride 1 = the unpartitioned
  /// single bank of generate()).
  std::size_t stride_ = 1;
  std::size_t offset_ = 0;
  std::size_t total_vms_ = 0;
  /// Adopted rows: global index -> storage slot appended past the owned
  /// block. Grows by at most one per distinct handed-off row.
  std::unordered_map<std::size_t, std::size_t> foreign_;

  std::size_t num_steps_ = 0;
  std::size_t current_step_ = 0;
  sim::SimTime sample_period_s_ = 300.0;
  double reference_mhz_ = 2000.0;
  // AR(1) parameters shared by all cursors (from WorkloadConfig).
  double ar1_rho_ = 0.0;
  double dev_base_ = 0.0;
  double dev_slope_ = 0.0;
  DiurnalPattern diurnal_{};

  // Per-VM columns (DESIGN.md §14: ~76 bytes/VM, horizon-independent).
  std::vector<double> averages_;
  std::vector<double> ram_mb_;
  std::vector<double> dev_;        ///< AR(1) deviation at current_step_.
  std::vector<float> values_;      ///< Clamped percent at current_step_.
  std::vector<util::Rng> cursors_; ///< Positioned to draw the next innovation.
};

}  // namespace ecocloud::trace
