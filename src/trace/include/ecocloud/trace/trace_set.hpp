#pragma once

/// \file trace_set.hpp
/// \brief A generated (or loaded) set of per-VM CPU utilization traces.
///
/// Mirrors the paper's data: N VMs, each a series of utilization
/// percentages sampled every 5 minutes. The set can be synthesised from a
/// WorkloadModel or round-tripped through CSV (header row, then one row
/// per VM: id, avg, ram_mb, sample_0, sample_1, ...).

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "ecocloud/sim/time.hpp"
#include "ecocloud/trace/workload_model.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::trace {

class TraceSet {
 public:
  /// Synthesize \p num_vms traces of \p num_steps samples each.
  static TraceSet generate(const WorkloadModel& model, std::size_t num_vms,
                           std::size_t num_steps, util::Rng& rng);

  /// Load from CSV previously written by write_csv().
  static TraceSet read_csv(std::istream& in);

  /// Build a set from raw per-VM utilization series (percent). Averages
  /// are computed from the data; RAM footprints default to \p ram_mb.
  /// All series must have the same non-zero length.
  static TraceSet from_series(std::vector<std::vector<float>> series,
                              double sample_period_s, double reference_mhz,
                              double ram_mb = 0.0);

  void write_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t num_vms() const { return series_.size(); }
  [[nodiscard]] std::size_t num_steps() const { return num_steps_; }
  [[nodiscard]] sim::SimTime sample_period_s() const { return sample_period_s_; }
  [[nodiscard]] double reference_mhz() const { return reference_mhz_; }

  /// Average utilization (percent) declared for VM \p v.
  [[nodiscard]] double average_percent(std::size_t v) const;

  /// RAM footprint of VM \p v (MB).
  [[nodiscard]] double ram_mb(std::size_t v) const;

  /// Punctual utilization (percent) of VM \p v at step \p k; steps beyond
  /// the series length wrap around (traces repeat), matching how finite
  /// logs are replayed over longer horizons. Inline and modulo-free in the
  /// in-range case: the trace driver calls this once per VM per sample
  /// step, and an integer division there is measurable at fleet scale.
  [[nodiscard]] double percent_at(std::size_t v, std::size_t k) const {
    const std::vector<float>& s = series_.at(v);
    if (k >= s.size()) [[unlikely]] k %= s.size();
    return static_cast<double>(s[k]);
  }

  /// Demand in MHz of VM \p v at step \p k.
  [[nodiscard]] double demand_mhz_at(std::size_t v, std::size_t k) const {
    return percent_at(v, k) / 100.0 * reference_mhz_;
  }

  /// Step index active at simulation time \p t (floor(t / period)).
  [[nodiscard]] std::size_t step_at(sim::SimTime t) const;

  /// Mean demand (MHz) over all VMs at step \p k.
  [[nodiscard]] double total_demand_mhz_at(std::size_t k) const;

 private:
  TraceSet() = default;

  std::size_t num_steps_ = 0;
  sim::SimTime sample_period_s_ = 300.0;
  double reference_mhz_ = 2000.0;
  std::vector<double> averages_;
  std::vector<double> ram_mb_;
  std::vector<std::vector<float>> series_;
};

}  // namespace ecocloud::trace
