#pragma once

/// \file rate_estimator.hpp
/// \brief Estimate lambda(t) and the per-VM departure rate from event logs.
///
/// The paper (Sec. IV) computes lambda(t) and mu(t) "from the traces" and
/// feeds them to the differential equations. RateEstimator performs the
/// same step on simulated arrival/departure events: it bins events into
/// fixed windows and exposes piecewise-constant rate functions.

#include <vector>

#include "ecocloud/sim/time.hpp"
#include "ecocloud/trace/arrivals.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::trace {

class RateEstimator {
 public:
  /// \param window_s  estimation window width in seconds (> 0).
  explicit RateEstimator(double window_s);

  /// Record a VM arrival at time \p t.
  void record_arrival(sim::SimTime t);

  /// Record a VM departure at time \p t while \p population VMs were in the
  /// system (population before the departure, >= 1).
  void record_departure(sim::SimTime t, std::size_t population);

  /// Arrivals per second in the window containing \p t (0 outside data).
  [[nodiscard]] double lambda(sim::SimTime t) const;

  /// Per-VM departure rate in the window containing \p t: departures in the
  /// window divided by the integral of the population (approximated by the
  /// mean population at departure instants times the window length).
  [[nodiscard]] double nu(sim::SimTime t) const;

  /// Piecewise-constant rate functions for feeding PoissonArrivals / ODEs.
  [[nodiscard]] RateFn lambda_fn() const;
  [[nodiscard]] RateFn nu_fn() const;

  /// Upper bound on lambda over all windows (for thinning).
  [[nodiscard]] double lambda_max() const;

  [[nodiscard]] double window_s() const { return window_; }
  [[nodiscard]] std::size_t num_windows() const { return arrivals_.size(); }

  /// Checkpoint surface (window width comes from the constructor).
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);

 private:
  void grow_to(std::size_t idx);

  double window_;
  std::vector<std::size_t> arrivals_;
  std::vector<std::size_t> departures_;
  std::vector<double> population_sum_;  // sum of populations at departures
};

}  // namespace ecocloud::trace
