#pragma once

/// \file planetlab_io.hpp
/// \brief Import/export of PlanetLab/CoMon-style trace directories.
///
/// The paper's traces come from the CoMon monitoring of PlanetLab
/// (Sec. III). The widely circulated form of that dataset — also shipped
/// with CloudSim — is a directory with one plain-text file per VM, holding
/// one integer CPU-utilization percentage per line, sampled every 5
/// minutes. These helpers read such a directory into a TraceSet (so users
/// who do have the real logs can replay them through every experiment in
/// this repository) and write a TraceSet back out in the same format.

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "ecocloud/trace/trace_set.hpp"

namespace ecocloud::trace {

/// Parse one per-VM file: one utilization percentage per line (integers or
/// decimals; blank lines ignored). Values are clamped to [0, 100].
/// Throws std::invalid_argument on non-numeric content.
[[nodiscard]] std::vector<float> parse_planetlab_file(std::istream& in);

/// Read every regular file in \p dir (sorted by filename for determinism)
/// as one VM trace. Files shorter than the longest one are extended by
/// wrapping around, mirroring how finite logs are replayed.
///
/// \param sample_period_s  sampling period of the logs (CoMon: 300 s).
/// \param reference_mhz    capacity the percentages refer to.
[[nodiscard]] TraceSet read_planetlab_dir(const std::filesystem::path& dir,
                                          double sample_period_s = 300.0,
                                          double reference_mhz = 2000.0);

/// Write \p set as a PlanetLab-style directory: one file per VM named
/// vm_00000, vm_00001, ... (created if needed; existing files overwritten).
void write_planetlab_dir(const TraceSet& set, const std::filesystem::path& dir);

}  // namespace ecocloud::trace
