#pragma once

/// \file workload_model.hpp
/// \brief Statistical model of PlanetLab-like VM CPU demand.
///
/// The paper's traces (CoMon/PlanetLab, 6,000 VMs, 5-minute samples) are
/// characterised by two published marginals:
///  * Fig. 4 — distribution of each VM's *average* CPU utilization
///    (percent of a reference capacity): mass concentrated below 20%, a
///    long thin tail up to 100%.
///  * Fig. 5 — distribution of punctual-minus-average deviations: sharply
///    peaked at 0, with about 94% of deviations within +-10 points.
///
/// WorkloadModel reproduces both: per-VM averages are drawn from a bin
/// table calibrated to Fig. 4, and the punctual demand follows
///   v(t) = clamp(avg * g(t) + d(t), 0, 100)
/// where g is the shared diurnal factor and d an AR(1) noise whose scale
/// grows with the VM's average (big VMs fluctuate more, as in the traces).

#include <cstddef>
#include <vector>

#include "ecocloud/sim/time.hpp"
#include "ecocloud/trace/diurnal.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::trace {

/// Tunable parameters of the synthetic workload.
struct WorkloadConfig {
  /// CPU capacity, in MHz, that utilization percentages refer to. The
  /// PlanetLab convention is "percent of the hosting machine"; we pin the
  /// reference to one 2 GHz core so demands are portable across the
  /// heterogeneous fleet (DESIGN.md Sec. 5).
  double reference_mhz = 2000.0;

  /// Trace sampling period (paper: 5 minutes).
  sim::SimTime sample_period_s = 300.0;

  /// Diurnal modulation.
  DiurnalPattern diurnal{};

  /// AR(1) deviation: correlation between consecutive 5-min samples.
  double ar1_rho = 0.7;

  /// Deviation scale: stddev (percent points) = dev_base + dev_slope * avg.
  double dev_base = 1.0;
  double dev_slope = 0.15;

  /// RAM footprint per VM (MB), uniform in [ram_min_mb, ram_max_mb]
  /// (exercised by the multi-resource extension only).
  double ram_min_mb = 512.0;
  double ram_max_mb = 4096.0;
};

/// Samples per-VM averages and generates punctual utilization series.
class WorkloadModel {
 public:
  explicit WorkloadModel(WorkloadConfig config = WorkloadConfig{});

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }

  /// The Fig.-4 calibration table: relative weight of each 5%-wide average
  /// utilization bin over [0, 100).
  [[nodiscard]] static const std::vector<double>& average_bin_weights();

  /// Draw one VM average utilization (percent of reference capacity).
  [[nodiscard]] double sample_average_percent(util::Rng& rng) const;

  /// Draw a RAM footprint (MB).
  [[nodiscard]] double sample_ram_mb(util::Rng& rng) const;

  /// Expected mean of the average-utilization distribution (percent),
  /// computed from the bin table (useful for sizing experiments).
  [[nodiscard]] static double expected_average_percent();

  /// Generate a punctual utilization series (percent) of \p num_steps
  /// samples for a VM with the given average, starting at \p start_time.
  /// Deviations evolve as AR(1); values are clamped to [0, 100].
  [[nodiscard]] std::vector<float> generate_series(util::Rng& rng,
                                                   double avg_percent,
                                                   std::size_t num_steps,
                                                   sim::SimTime start_time = 0.0) const;

  /// Convert a utilization percentage to MHz demand under this model.
  [[nodiscard]] double percent_to_mhz(double percent) const {
    return percent / 100.0 * config_.reference_mhz;
  }

 private:
  WorkloadConfig config_;
};

}  // namespace ecocloud::trace
