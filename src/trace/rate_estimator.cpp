#include "ecocloud/trace/rate_estimator.hpp"

#include <algorithm>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::trace {

RateEstimator::RateEstimator(double window_s) : window_(window_s) {
  util::require(window_s > 0.0, "RateEstimator: window must be > 0");
}

void RateEstimator::grow_to(std::size_t idx) {
  if (idx >= arrivals_.size()) {
    arrivals_.resize(idx + 1, 0);
    departures_.resize(idx + 1, 0);
    population_sum_.resize(idx + 1, 0.0);
  }
}

void RateEstimator::record_arrival(sim::SimTime t) {
  util::require(t >= 0.0, "RateEstimator::record_arrival: negative time");
  const auto idx = static_cast<std::size_t>(t / window_);
  grow_to(idx);
  ++arrivals_[idx];
}

void RateEstimator::record_departure(sim::SimTime t, std::size_t population) {
  util::require(t >= 0.0, "RateEstimator::record_departure: negative time");
  util::require(population >= 1, "RateEstimator::record_departure: empty system");
  const auto idx = static_cast<std::size_t>(t / window_);
  grow_to(idx);
  ++departures_[idx];
  population_sum_[idx] += static_cast<double>(population);
}

double RateEstimator::lambda(sim::SimTime t) const {
  if (t < 0.0 || arrivals_.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(t / window_);
  if (idx >= arrivals_.size()) return 0.0;
  return static_cast<double>(arrivals_[idx]) / window_;
}

double RateEstimator::nu(sim::SimTime t) const {
  if (t < 0.0 || departures_.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(t / window_);
  if (idx >= departures_.size() || departures_[idx] == 0) return 0.0;
  const double mean_population =
      population_sum_[idx] / static_cast<double>(departures_[idx]);
  if (mean_population <= 0.0) return 0.0;
  return static_cast<double>(departures_[idx]) / (window_ * mean_population);
}

RateFn RateEstimator::lambda_fn() const {
  return [copy = *this](sim::SimTime t) { return copy.lambda(t); };
}

RateFn RateEstimator::nu_fn() const {
  return [copy = *this](sim::SimTime t) { return copy.nu(t); };
}

double RateEstimator::lambda_max() const {
  double best = 0.0;
  for (std::size_t n : arrivals_) {
    best = std::max(best, static_cast<double>(n) / window_);
  }
  return best;
}

void RateEstimator::save_state(util::BinWriter& w) const {
  w.u64(arrivals_.size());
  for (std::size_t n : arrivals_) w.u64(n);
  w.u64(departures_.size());
  for (std::size_t n : departures_) w.u64(n);
  w.u64(population_sum_.size());
  for (double v : population_sum_) w.f64(v);
}

void RateEstimator::load_state(util::BinReader& r) {
  const auto load_sizes = [&r](std::vector<std::size_t>& out) {
    out.assign(static_cast<std::size_t>(r.u64()), 0);
    for (std::size_t& n : out) n = static_cast<std::size_t>(r.u64());
  };
  load_sizes(arrivals_);
  load_sizes(departures_);
  population_sum_.assign(static_cast<std::size_t>(r.u64()), 0.0);
  for (double& v : population_sum_) v = r.f64();
}

}  // namespace ecocloud::trace
