#include "ecocloud/trace/arrivals.hpp"

#include "ecocloud/util/validation.hpp"

namespace ecocloud::trace {

PoissonArrivals::PoissonArrivals(RateFn rate, double rate_max)
    : rate_(std::move(rate)), rate_max_(rate_max) {
  util::require(static_cast<bool>(rate_), "PoissonArrivals: empty rate function");
  util::require(rate_max > 0.0, "PoissonArrivals: rate_max must be > 0");
}

sim::SimTime PoissonArrivals::next_after(sim::SimTime after, util::Rng& rng) const {
  sim::SimTime t = after;
  for (;;) {
    t += rng.exponential(rate_max_);
    const double lambda = rate_(t);
    util::require(lambda <= rate_max_ * (1.0 + 1e-12),
                  "PoissonArrivals: rate exceeds declared rate_max");
    if (lambda > 0.0 && rng.uniform() * rate_max_ < lambda) {
      return t;
    }
  }
}

sim::SimTime exponential_lifetime(double nu, util::Rng& rng) {
  util::require(nu > 0.0, "exponential_lifetime: rate must be > 0");
  return rng.exponential(nu);
}

}  // namespace ecocloud::trace
