#include "ecocloud/trace/trace_set.hpp"

#include <istream>
#include <ostream>

#include "ecocloud/util/csv.hpp"
#include "ecocloud/util/string_util.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::trace {

TraceSet TraceSet::generate(const WorkloadModel& model, std::size_t num_vms,
                            std::size_t num_steps, util::Rng& rng) {
  util::require(num_vms > 0, "TraceSet::generate: num_vms must be > 0");
  util::require(num_steps > 0, "TraceSet::generate: num_steps must be > 0");
  TraceSet set;
  set.num_steps_ = num_steps;
  set.sample_period_s_ = model.config().sample_period_s;
  set.reference_mhz_ = model.config().reference_mhz;
  set.averages_.reserve(num_vms);
  set.ram_mb_.reserve(num_vms);
  set.series_.reserve(num_vms);
  for (std::size_t v = 0; v < num_vms; ++v) {
    const double avg = model.sample_average_percent(rng);
    set.averages_.push_back(avg);
    set.ram_mb_.push_back(model.sample_ram_mb(rng));
    set.series_.push_back(model.generate_series(rng, avg, num_steps));
  }
  return set;
}

TraceSet TraceSet::from_series(std::vector<std::vector<float>> series,
                               double sample_period_s, double reference_mhz,
                               double ram_mb) {
  util::require(!series.empty(), "TraceSet::from_series: no series");
  util::require(sample_period_s > 0.0, "TraceSet::from_series: bad period");
  util::require(reference_mhz > 0.0, "TraceSet::from_series: bad reference");
  const std::size_t steps = series.front().size();
  util::require(steps > 0, "TraceSet::from_series: empty series");
  TraceSet set;
  set.num_steps_ = steps;
  set.sample_period_s_ = sample_period_s;
  set.reference_mhz_ = reference_mhz;
  for (auto& s : series) {
    util::require(s.size() == steps, "TraceSet::from_series: ragged series");
    double total = 0.0;
    for (float x : s) {
      util::require(x >= 0.0f && x <= 100.0f,
                    "TraceSet::from_series: samples must be in [0,100]");
      total += static_cast<double>(x);
    }
    set.averages_.push_back(total / static_cast<double>(steps));
    set.ram_mb_.push_back(ram_mb);
    set.series_.push_back(std::move(s));
  }
  return set;
}

double TraceSet::average_percent(std::size_t v) const { return averages_.at(v); }

double TraceSet::ram_mb(std::size_t v) const { return ram_mb_.at(v); }

std::size_t TraceSet::step_at(sim::SimTime t) const {
  util::require(t >= 0.0, "TraceSet::step_at: negative time");
  return static_cast<std::size_t>(t / sample_period_s_);
}

double TraceSet::total_demand_mhz_at(std::size_t k) const {
  double acc = 0.0;
  for (std::size_t v = 0; v < series_.size(); ++v) acc += demand_mhz_at(v, k);
  return acc;
}

void TraceSet::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out, 6);
  writer.comment("ecocloud trace set");
  writer.field(static_cast<long long>(num_vms()))
      .field(static_cast<long long>(num_steps_))
      .field(sample_period_s_)
      .field(reference_mhz_);
  writer.end_row();
  for (std::size_t v = 0; v < series_.size(); ++v) {
    writer.field(static_cast<long long>(v)).field(averages_[v]).field(ram_mb_[v]);
    for (float x : series_[v]) writer.field(static_cast<double>(x));
    writer.end_row();
  }
}

TraceSet TraceSet::read_csv(std::istream& in) {
  const auto rows = util::read_csv(in);
  util::require(!rows.empty(), "TraceSet::read_csv: empty input");
  const auto& head = rows.front();
  util::require(head.size() == 4, "TraceSet::read_csv: malformed header row");
  const auto num_vms = static_cast<std::size_t>(util::parse_int(head[0]));
  const auto num_steps = static_cast<std::size_t>(util::parse_int(head[1]));
  TraceSet set;
  set.num_steps_ = num_steps;
  set.sample_period_s_ = util::parse_double(head[2]);
  set.reference_mhz_ = util::parse_double(head[3]);
  util::require(rows.size() == num_vms + 1, "TraceSet::read_csv: row count mismatch");
  for (std::size_t v = 0; v < num_vms; ++v) {
    const auto& row = rows[v + 1];
    util::require(row.size() == 3 + num_steps,
                  "TraceSet::read_csv: sample count mismatch");
    set.averages_.push_back(util::parse_double(row[1]));
    set.ram_mb_.push_back(util::parse_double(row[2]));
    std::vector<float> series;
    series.reserve(num_steps);
    for (std::size_t k = 0; k < num_steps; ++k) {
      series.push_back(static_cast<float>(util::parse_double(row[3 + k])));
    }
    set.series_.push_back(std::move(series));
  }
  return set;
}

}  // namespace ecocloud::trace
