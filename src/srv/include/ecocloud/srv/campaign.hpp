#pragma once

/// \file campaign.hpp
/// \brief Campaign lifecycle: states, quotas, the per-campaign watchdog,
/// and submission parsing (DESIGN.md Sec. 16).
///
/// A campaign is one accepted scenario submission. Its state machine:
///
///     queued ──► running ──► done | failed
///        ▲          │
///        │          ├──► paused   (drain / memory pressure; auto-requeued)
///        │          └──► evicted  (quota exceeded; resumable on request)
///        ├──────────┴──── cancelled (DELETE, from any non-terminal state)
///        └── paused / evicted re-enter queued
///
/// done/failed/cancelled are terminal. paused and evicted both mean "the
/// campaign was checkpointed at a safe point and can continue
/// bit-identically"; they differ in who resumes them — the server resumes
/// paused campaigns on its own (pressure cleared, restart after drain),
/// while an evicted campaign burned through a client-declared budget and
/// waits for an explicit resume request, which opens a fresh budget
/// window. Nothing is ever killed silently: every exit from `running`
/// lands in a state a client can observe and act on.

#include <cstdint>
#include <string>

#include "ecocloud/scenario/scenario.hpp"

namespace ecocloud::srv {

/// Snapshot-stable numeric values (they appear in the journal): append
/// only, never renumber.
enum class CampaignState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kPaused = 2,
  kEvicted = 3,
  kDone = 4,
  kFailed = 5,
  kCancelled = 6,
};

[[nodiscard]] const char* to_string(CampaignState state);

/// done, failed, or cancelled: the campaign will never run again.
[[nodiscard]] bool is_terminal(CampaignState state);

/// Budgets declared at submit time; 0 means unlimited. Budgets bound one
/// *budget window* — submit-to-eviction or resume-to-eviction — not the
/// campaign's lifetime, so an explicit resume grants a fresh window.
struct CampaignQuota {
  double wall_budget_s = 0.0;       ///< wall-clock seconds of execution
  std::uint64_t event_budget = 0;   ///< simulation events executed
  double rss_budget_mb = 0.0;       ///< process RSS high-water while running
};

/// Resources consumed in the current budget window.
struct CampaignUsage {
  double wall_s = 0.0;
  std::uint64_t events = 0;
  double max_rss_mb = 0.0;
};

/// Per-campaign quota ledger, fed at every slice boundary. The watchdog
/// never interrupts a slice: enforcement happens at safe points, which is
/// what makes "evicted" a checkpointable state rather than a kill.
class Watchdog {
 public:
  Watchdog() = default;
  explicit Watchdog(CampaignQuota quota) : quota_(quota) {}

  /// Open a fresh budget window: usage resets, \p events_base is the
  /// simulator's executed-event count at the window start (non-zero when
  /// resuming from a checkpoint).
  void begin_window(std::uint64_t events_base) {
    usage_ = {};
    events_base_ = events_base;
  }

  /// Record one finished slice: \p slice_wall_s of wall time, the
  /// simulator's absolute \p executed_events, and current process RSS.
  void record(double slice_wall_s, std::uint64_t executed_events,
              double rss_mb) {
    usage_.wall_s += slice_wall_s;
    usage_.events = executed_events > events_base_
                        ? executed_events - events_base_
                        : 0;
    if (rss_mb > usage_.max_rss_mb) usage_.max_rss_mb = rss_mb;
  }

  /// Human-readable description of the first exceeded budget, or empty
  /// when the campaign is within quota.
  [[nodiscard]] std::string violation() const;

  [[nodiscard]] const CampaignQuota& quota() const { return quota_; }
  [[nodiscard]] const CampaignUsage& usage() const { return usage_; }
  void set_quota(CampaignQuota quota) { quota_ = quota; }

 private:
  CampaignQuota quota_;
  CampaignUsage usage_;
  std::uint64_t events_base_ = 0;
};

/// A parsed, validated submission. config_text is the submitted body with
/// every campaign.* line blanked to a comment **in place** (line numbers
/// preserved, so config errors reported later still point at the client's
/// own line numbers); it is what the journal stores and what the scenario
/// is rebuilt from on every (re)start.
struct CampaignSpec {
  std::string client = "default";
  std::string idem_key;  ///< optional client idempotency key
  CampaignQuota quota;
  std::string config_text;
  scenario::DailyConfig config;
};

/// Parse a POST /campaigns body: `campaign.*` keys (client, key,
/// wall_budget_s, event_budget, rss_budget_mb — either `campaign.`-
/// prefixed or under a `[campaign]` section) configure the lease; the
/// remaining lines must form a valid daily-scenario config. Throws
/// std::invalid_argument with the line-numbered KeyValueConfig message on
/// any malformed input. The scenario's RunControl is cleared: the server
/// owns checkpointing and auditing, clients cannot schedule their own.
[[nodiscard]] CampaignSpec parse_submission(const std::string& body);

}  // namespace ecocloud::srv
