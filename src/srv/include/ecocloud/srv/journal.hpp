#pragma once

/// \file journal.hpp
/// \brief Append-only fsync'd submission journal (DESIGN.md Sec. 16).
///
/// The campaign server's source of truth for "which campaigns were ever
/// accepted and where did each one get to". Two record types:
///
///  * **submit** — a campaign was admitted: id, client, idempotency key,
///    quota, and the full config text. Written (and fsync'd) before the
///    202 response leaves the server, so an accepted campaign is durable
///    by the time the client learns its id.
///  * **state** — a durable state transition: paused, evicted, done,
///    failed, cancelled, or re-queued. `running` is deliberately never
///    journaled — a crash mid-run must replay as "was queued/paused,
///    restart or resume it", never as a phantom in-flight campaign.
///
/// On-disk format: each record is framed as
///
///     u32 magic 'ECJL' | u32 payload_len | u32 crc32(payload) | payload
///
/// with the payload serialized by util::BinWriter. Appends are a single
/// write(2) followed by fsync(2). Recovery reads the longest valid prefix
/// and truncates the file to it: a SIGKILL mid-append leaves a torn tail,
/// which is detected by the length/CRC checks and discarded — the record
/// being written was by definition not yet acknowledged. Any corruption
/// *before* the tail also stops the replay there; the journal never
/// resynchronizes past a bad frame, because record boundaries after it
/// are untrustworthy.
///
/// The journal is a log, not a database: state is reconstructed by
/// replaying every record in order (last state per id wins). Compaction
/// is not needed at campaign-server scale and is deliberately absent.

#include <cstdint>
#include <string>
#include <vector>

#include "ecocloud/srv/campaign.hpp"

namespace ecocloud::srv {

enum class JournalRecordType : std::uint8_t {
  kSubmit = 1,
  kState = 2,
};

/// One replayed record; fields beyond `type` and `campaign_id` are
/// meaningful per type (submit: client/idem_key/quota/config_text,
/// state: state/detail).
struct JournalRecord {
  JournalRecordType type = JournalRecordType::kSubmit;
  std::uint64_t campaign_id = 0;
  // kSubmit
  std::string client;
  std::string idem_key;
  CampaignQuota quota;
  std::string config_text;
  // kState
  CampaignState state = CampaignState::kQueued;
  std::string detail;
};

class SubmissionJournal {
 public:
  /// Opens (creating if absent) \p path, replays the longest valid prefix,
  /// truncates any torn tail, and positions for appending. Throws
  /// std::runtime_error on I/O failure (not on torn/corrupt records —
  /// those are survivable and merely end the replay).
  explicit SubmissionJournal(std::string path);
  ~SubmissionJournal();

  SubmissionJournal(const SubmissionJournal&) = delete;
  SubmissionJournal& operator=(const SubmissionJournal&) = delete;

  /// The records recovered at open time, in append order.
  [[nodiscard]] const std::vector<JournalRecord>& recovered() const {
    return recovered_;
  }

  /// Bytes of torn/corrupt tail discarded at open time (0 on a clean
  /// journal).
  [[nodiscard]] std::size_t truncated_bytes() const { return truncated_bytes_; }

  /// Append one record and fsync. Throws std::runtime_error on I/O
  /// failure — the caller must not acknowledge the campaign if this
  /// throws.
  void append(const JournalRecord& record);

  void append_submit(std::uint64_t id, const std::string& client,
                     const std::string& idem_key, const CampaignQuota& quota,
                     const std::string& config_text);
  void append_state(std::uint64_t id, CampaignState state,
                    const std::string& detail = {});

  /// fsync without appending (drain's final flush).
  void flush();

  /// Close the fd early (the destructor also closes). Idempotent.
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Parse every valid record out of raw journal \p bytes; stops at the
  /// first bad frame and reports how many bytes were valid. Exposed for
  /// tests and offline inspection.
  [[nodiscard]] static std::vector<JournalRecord> parse(
      const std::string& bytes, std::size_t* valid_bytes = nullptr);

 private:
  std::string path_;
  int fd_ = -1;
  std::vector<JournalRecord> recovered_;
  std::size_t truncated_bytes_ = 0;
};

}  // namespace ecocloud::srv
