#pragma once

/// \file server.hpp
/// \brief The campaign server: a crash-tolerant sim-as-a-service control
/// plane (DESIGN.md Sec. 16).
///
/// CampaignServer multiplexes many scenario runs onto one resident
/// process. Robustness is the organizing principle; every mechanism here
/// exists to survive something:
///
///  * **bad clients** — submissions are parsed and validated before
///    admission (400 with the client's own line numbers), bounded by a
///    submission queue (429 + Retry-After when full), and scheduled
///    fairly FIFO-per-client so one chatty client cannot starve others;
///  * **runaway campaigns** — wall-clock/event/RSS budgets declared at
///    submit time are enforced by a per-campaign Watchdog at every slice
///    boundary; an over-budget campaign is checkpointed and marked
///    `evicted`, never killed silently, and an explicit resume grants a
///    fresh budget window;
///  * **memory pressure** — when process RSS crosses the high-water mark
///    the largest running campaign is checkpointed to disk and paused,
///    and transparently re-queued (bit-identical resume) once RSS falls
///    below the low-water mark;
///  * **its own death** — every accepted submission is journaled (fsync'd
///    append, torn-tail tolerant) before the client is acknowledged, so a
///    SIGKILL'd server replays the journal on restart and resumes (from
///    the latest periodic checkpoint) or restarts every accepted campaign
///    exactly once;
///  * **orderly shutdown** — drain() stops admission (503), checkpoints
///    every in-flight campaign at its next slice boundary, flushes the
///    journal, and returns only when no worker is running.
///
/// Execution model: campaigns run on a util::ThreadPool, each advanced in
/// sim-time slices via DailyScenario::run_slice. Slice boundaries are the
/// safe points — quota checks, pause/cancel requests, and periodic
/// checkpoints all happen between slices, and slicing is invisible to the
/// event stream, so a campaign's event log is byte-identical to the same
/// scenario run in one shot by the CLI (pinned by tests and CI).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ecocloud/obs/http_server.hpp"
#include "ecocloud/obs/metric_registry.hpp"
#include "ecocloud/srv/campaign.hpp"
#include "ecocloud/srv/journal.hpp"
#include "ecocloud/util/thread_pool.hpp"

namespace ecocloud::srv {

struct ServerConfig {
  /// TCP port for the campaign API (0 binds an ephemeral port).
  std::uint16_t port = 0;
  /// Concurrent campaign executions (thread-pool width), >= 1.
  std::size_t workers = 2;
  /// Maximum campaigns waiting in the submission queue (running campaigns
  /// do not count); submissions beyond it get 429.
  std::size_t queue_capacity = 8;
  /// Journal, checkpoints, and event logs live here; created on start().
  std::string data_dir = "campaigns";
  /// Retry-After header value on 429 responses.
  int retry_after_s = 5;
  /// Sim-seconds advanced per slice; slice boundaries are the safe points
  /// for quota enforcement, pause, cancel, and checkpointing.
  double slice_s = 1800.0;
  /// Periodic durability: checkpoint a running campaign every N slices
  /// (0 disables; pause/evict still checkpoint). Bounds how much progress
  /// a SIGKILL can cost.
  std::size_t checkpoint_every_slices = 4;
  /// Memory-pressure high-water mark in MB (0 disables eviction).
  double rss_high_mb = 0.0;
  /// Pressure clears below this; defaults to 0.9 * rss_high_mb when 0.
  double rss_low_mb = 0.0;
  /// RSS sampler; defaults to obs::current_rss_mb. Injectable so tests
  /// can drive the pressure controller deterministically.
  std::function<double()> rss_probe;
  /// Pressure-controller poll interval.
  int pressure_poll_ms = 100;
  obs::HttpLimits http_limits;
};

/// HTTP API (all JSON unless noted):
///   POST   /campaigns              submit a config body -> 202 {id,state}
///                                  (400 malformed, 429 over capacity,
///                                   503 draining, 200 duplicate key)
///   GET    /campaigns              list every campaign + server state
///   GET    /campaigns/<id>         one campaign's status document
///   POST   /campaigns/<id>/resume  re-queue an evicted campaign with a
///                                  fresh budget window
///   DELETE /campaigns/<id>         cancel (from any non-terminal state)
///   GET    /metrics                Prometheus text exposition
///   GET    /healthz                "ok"
class CampaignServer {
 public:
  explicit CampaignServer(ServerConfig config);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Create the data dir, open + replay the journal (re-queueing every
  /// non-terminal campaign), start the workers, the pressure controller,
  /// and the HTTP listener. Throws on unrecoverable setup failure.
  void start();

  /// Graceful shutdown: stop admission (new submits get 503 while status
  /// endpoints keep answering), request a pause at the next safe point of
  /// every running campaign, wait until no worker is running, stop the
  /// pool, flush the journal, then stop the HTTP listener. Idempotent.
  void drain();

  [[nodiscard]] bool draining() const;

  /// Bound API port (valid after start()).
  [[nodiscard]] std::uint16_t port() const;

  /// Process one API request. The HTTP listener dispatches here; tests
  /// call it directly to exercise the control plane in-process.
  [[nodiscard]] obs::HttpResponse handle(const obs::HttpRequest& request);

  /// Block until nothing is queued or running (paused/evicted/terminal
  /// campaigns do not count), or \p timeout_s elapses. Returns true when
  /// idle was reached.
  [[nodiscard]] bool wait_idle(double timeout_s);

  /// Current state of a campaign; nullopt for unknown ids.
  [[nodiscard]] std::optional<CampaignState> state_of(std::uint64_t id) const;

  /// Campaigns recovered from the journal by start().
  [[nodiscard]] std::size_t recovered_campaigns() const;

  /// Where campaign \p id's event log lands when it completes.
  [[nodiscard]] std::string events_path(std::uint64_t id) const;
  /// Where campaign \p id's checkpoint snapshot lives.
  [[nodiscard]] std::string checkpoint_path(std::uint64_t id) const;

 private:
  struct Campaign {
    std::uint64_t id = 0;
    CampaignSpec spec;
    CampaignState state = CampaignState::kQueued;
    std::string detail;
    Watchdog watchdog;
    /// True until the next run opens a budget window (set at admission,
    /// explicit resume, and server restart).
    bool fresh_window = true;
    double sim_now_s = 0.0;
    std::uint64_t executed_events = 0;
    bool has_checkpoint = false;
    bool pause_requested = false;
    bool memory_paused = false;
    bool cancel_requested = false;
    /// Size proxy for memory-pressure victim selection.
    std::size_t footprint = 0;
  };

  // All *_locked members require mutex_ held.
  obs::HttpResponse submit(const obs::HttpRequest& request);
  obs::HttpResponse status_doc(std::uint64_t id);
  obs::HttpResponse list_campaigns();
  obs::HttpResponse cancel(std::uint64_t id);
  obs::HttpResponse resume(std::uint64_t id);
  obs::HttpResponse metrics_text();

  void run_campaign(std::uint64_t id);
  void recover_locked();
  void enqueue_locked(std::uint64_t id);
  void remove_from_queue_locked(const Campaign& campaign);
  void dispatch_locked();
  void set_state_locked(Campaign& campaign, CampaignState state,
                        const std::string& detail, bool journal = true);
  void finish_run_locked();
  void update_campaign_metrics_locked(const Campaign& campaign);
  void refresh_state_gauges_locked();
  [[nodiscard]] std::string campaign_json_locked(const Campaign& campaign) const;
  void pressure_loop();

  ServerConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Campaign> campaigns_;
  /// (client, idempotency key) -> campaign id.
  std::map<std::pair<std::string, std::string>, std::uint64_t> idem_index_;
  /// Fair scheduling: one FIFO per client, clients served round-robin.
  std::map<std::string, std::deque<std::uint64_t>> client_queues_;
  std::deque<std::string> client_rr_;
  std::size_t queued_count_ = 0;
  std::size_t running_count_ = 0;
  std::uint64_t next_id_ = 1;
  bool draining_ = false;
  bool started_ = false;
  std::size_t recovered_ = 0;

  std::optional<SubmissionJournal> journal_;
  std::optional<util::ThreadPool> pool_;
  std::optional<obs::HttpServer> http_;
  obs::MetricRegistry registry_;

  std::thread pressure_thread_;
  std::condition_variable pressure_cv_;
  bool stop_pressure_ = false;
  bool memory_pressure_ = false;
};

}  // namespace ecocloud::srv
