#include "ecocloud/srv/campaign.hpp"

#include <cstdio>
#include <optional>
#include <sstream>

#include "ecocloud/scenario/config_io.hpp"
#include "ecocloud/util/key_value.hpp"
#include "ecocloud/util/string_util.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::srv {

const char* to_string(CampaignState state) {
  switch (state) {
    case CampaignState::kQueued: return "queued";
    case CampaignState::kRunning: return "running";
    case CampaignState::kPaused: return "paused";
    case CampaignState::kEvicted: return "evicted";
    case CampaignState::kDone: return "done";
    case CampaignState::kFailed: return "failed";
    case CampaignState::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool is_terminal(CampaignState state) {
  return state == CampaignState::kDone || state == CampaignState::kFailed ||
         state == CampaignState::kCancelled;
}

std::string Watchdog::violation() const {
  char buf[160];
  if (quota_.wall_budget_s > 0.0 && usage_.wall_s > quota_.wall_budget_s) {
    std::snprintf(buf, sizeof(buf),
                  "wall-clock budget exceeded: %.1f s used of %.1f s",
                  usage_.wall_s, quota_.wall_budget_s);
    return buf;
  }
  if (quota_.event_budget > 0 && usage_.events > quota_.event_budget) {
    std::snprintf(buf, sizeof(buf),
                  "event budget exceeded: %llu events of %llu",
                  static_cast<unsigned long long>(usage_.events),
                  static_cast<unsigned long long>(quota_.event_budget));
    return buf;
  }
  if (quota_.rss_budget_mb > 0.0 && usage_.max_rss_mb > quota_.rss_budget_mb) {
    std::snprintf(buf, sizeof(buf),
                  "RSS budget exceeded: %.0f MB observed of %.0f MB",
                  usage_.max_rss_mb, quota_.rss_budget_mb);
    return buf;
  }
  return {};
}

namespace {

/// Does this line (comments stripped, trimmed) open a section? Returns
/// the section name, or nullopt for non-header lines.
std::optional<std::string> section_of(const std::string& raw) {
  std::string line = raw;
  for (const char* marker : {"#", ";"}) {
    const auto pos = line.find(marker);
    if (pos != std::string::npos) line.erase(pos);
  }
  const std::string trimmed = util::trim(line);
  if (trimmed.size() >= 2 && trimmed.front() == '[' && trimmed.back() == ']') {
    return util::trim(trimmed.substr(1, trimmed.size() - 2));
  }
  return std::nullopt;
}

/// Is this a top-level `campaign.key = ...` assignment line?
bool is_campaign_assignment(const std::string& raw) {
  const std::string trimmed = util::trim(raw);
  return trimmed.rfind("campaign.", 0) == 0;
}

/// Blank every campaign.* line to a bare comment, preserving line count
/// and therefore the line numbers in any scenario-config error.
std::string blank_campaign_lines(const std::string& body) {
  std::istringstream in(body);
  std::string out;
  std::string line;
  bool in_campaign_section = false;
  while (std::getline(in, line)) {
    const auto section = section_of(line);
    if (section) in_campaign_section = (*section == "campaign");
    const bool blank = (section && *section == "campaign") ||
                       (!section && in_campaign_section) ||
                       (!section && is_campaign_assignment(line));
    out += blank ? "#" : line;
    out += '\n';
  }
  return out;
}

}  // namespace

CampaignSpec parse_submission(const std::string& body) {
  util::require(!body.empty(), "empty submission body");

  // First pass over the raw body: pull the campaign.* lease keys out with
  // their line numbers intact. Scenario keys are deliberately left
  // "unused" here — the second pass owns their validation.
  const auto kv = util::KeyValueConfig::parse_string(body);
  CampaignSpec spec;
  spec.client = kv.get_string("campaign.client", spec.client);
  spec.idem_key = kv.get_string("campaign.key", "");
  spec.quota.wall_budget_s = kv.get_double("campaign.wall_budget_s", 0.0);
  spec.quota.event_budget = static_cast<std::uint64_t>(
      kv.get_int("campaign.event_budget", 0));
  spec.quota.rss_budget_mb = kv.get_double("campaign.rss_budget_mb", 0.0);
  util::require(!spec.client.empty(), "campaign.client must not be empty");
  util::require(spec.quota.wall_budget_s >= 0.0,
                "campaign.wall_budget_s must be >= 0");
  util::require(spec.quota.rss_budget_mb >= 0.0,
                "campaign.rss_budget_mb must be >= 0");
  for (const auto& key : kv.unused_keys()) {
    if (key.rfind("campaign.", 0) == 0) {
      throw std::invalid_argument(
          "unknown campaign key '" + key + "' (line " +
          std::to_string(kv.line_of(key)) + ")");
    }
  }

  // Second pass: the body with campaign.* lines blanked in place must be
  // a valid daily config. Unknown keys and bad values throw line-numbered
  // std::invalid_argument from the KeyValueConfig layer, and those line
  // numbers match the client's submission because blanking preserved
  // every line.
  spec.config_text = blank_campaign_lines(body);
  std::istringstream scenario_in(spec.config_text);
  spec.config = scenario::load_daily_config(scenario_in);

  // The server owns robustness: campaigns never schedule their own
  // checkpoint/audit calendar events, which is also what keeps a server
  // campaign's event stream byte-identical to a bare one-shot CLI run.
  spec.config.run = {};
  return spec;
}

}  // namespace ecocloud::srv
