#include "ecocloud/srv/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "ecocloud/ckpt/snapshot_io.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::srv {

namespace {

constexpr std::uint32_t kFrameMagic = 0x4C4A4345;  // "ECJL" little-endian
/// Upper bound on a single record (a submit carries a config file; 16 MiB
/// is orders of magnitude above any real one). A length field beyond this
/// is treated as corruption, not as a request to allocate.
constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

std::string serialize_payload(const JournalRecord& record) {
  util::BinWriter w;
  w.u8(static_cast<std::uint8_t>(record.type));
  w.u64(record.campaign_id);
  switch (record.type) {
    case JournalRecordType::kSubmit:
      w.str(record.client);
      w.str(record.idem_key);
      w.f64(record.quota.wall_budget_s);
      w.u64(record.quota.event_budget);
      w.f64(record.quota.rss_budget_mb);
      w.str(record.config_text);
      break;
    case JournalRecordType::kState:
      w.u8(static_cast<std::uint8_t>(record.state));
      w.str(record.detail);
      break;
  }
  return w.take();
}

JournalRecord parse_payload(const std::string& payload) {
  util::BinReader r(payload);
  JournalRecord record;
  const std::uint8_t type = r.u8();
  record.campaign_id = r.u64();
  switch (type) {
    case static_cast<std::uint8_t>(JournalRecordType::kSubmit):
      record.type = JournalRecordType::kSubmit;
      record.client = r.str();
      record.idem_key = r.str();
      record.quota.wall_budget_s = r.f64();
      record.quota.event_budget = r.u64();
      record.quota.rss_budget_mb = r.f64();
      record.config_text = r.str();
      break;
    case static_cast<std::uint8_t>(JournalRecordType::kState): {
      record.type = JournalRecordType::kState;
      const std::uint8_t state = r.u8();
      if (state > static_cast<std::uint8_t>(CampaignState::kCancelled)) {
        throw std::runtime_error("journal: unknown campaign state");
      }
      record.state = static_cast<CampaignState>(state);
      record.detail = r.str();
      break;
    }
    default:
      throw std::runtime_error("journal: unknown record type");
  }
  return record;
}

std::uint32_t read_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

void write_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

std::vector<JournalRecord> SubmissionJournal::parse(const std::string& bytes,
                                                    std::size_t* valid_bytes) {
  std::vector<JournalRecord> records;
  std::size_t pos = 0;
  while (bytes.size() - pos >= 12) {
    const char* frame = bytes.data() + pos;
    if (read_u32le(frame) != kFrameMagic) break;
    const std::uint32_t length = read_u32le(frame + 4);
    const std::uint32_t crc = read_u32le(frame + 8);
    if (length > kMaxPayloadBytes) break;
    if (bytes.size() - pos - 12 < length) break;  // torn tail
    const std::string payload(frame + 12, length);
    if (ckpt::crc32(payload.data(), payload.size()) != crc) break;
    try {
      records.push_back(parse_payload(payload));
    } catch (const std::exception&) {
      break;  // structurally invalid payload: stop, don't resync
    }
    pos += 12 + length;
  }
  if (valid_bytes != nullptr) *valid_bytes = pos;
  return records;
}

SubmissionJournal::SubmissionJournal(std::string path)
    : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("journal: cannot read " + path_ + ": " + err);
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<std::size_t>(n));
  }

  std::size_t valid = 0;
  recovered_ = parse(bytes, &valid);
  truncated_bytes_ = bytes.size() - valid;
  if (truncated_bytes_ > 0) {
    // A torn tail is the expected signature of a crash mid-append; the
    // record was never acknowledged, so discarding it is correct. New
    // appends must start at the valid prefix, not after the garbage.
    if (::ftruncate(fd_, static_cast<off_t>(valid)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("journal: cannot truncate torn tail of " +
                               path_ + ": " + err);
    }
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("journal: cannot seek " + path_ + ": " + err);
  }
}

SubmissionJournal::~SubmissionJournal() { close(); }

void SubmissionJournal::close() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void SubmissionJournal::append(const JournalRecord& record) {
  if (fd_ < 0) {
    throw std::runtime_error("journal: append after close");
  }
  const std::string payload = serialize_payload(record);
  std::string frame;
  frame.reserve(12 + payload.size());
  write_u32le(frame, kFrameMagic);
  write_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  write_u32le(frame, ckpt::crc32(payload.data(), payload.size()));
  frame += payload;

  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("journal: write to " + path_ + " failed: " +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("journal: fsync of " + path_ + " failed: " +
                             std::strerror(errno));
  }
}

void SubmissionJournal::append_submit(std::uint64_t id,
                                      const std::string& client,
                                      const std::string& idem_key,
                                      const CampaignQuota& quota,
                                      const std::string& config_text) {
  JournalRecord record;
  record.type = JournalRecordType::kSubmit;
  record.campaign_id = id;
  record.client = client;
  record.idem_key = idem_key;
  record.quota = quota;
  record.config_text = config_text;
  append(record);
}

void SubmissionJournal::append_state(std::uint64_t id, CampaignState state,
                                     const std::string& detail) {
  JournalRecord record;
  record.type = JournalRecordType::kState;
  record.campaign_id = id;
  record.state = state;
  record.detail = detail;
  append(record);
}

void SubmissionJournal::flush() {
  if (fd_ >= 0) ::fsync(fd_);
}

}  // namespace ecocloud::srv
