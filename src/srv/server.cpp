#include "ecocloud/srv/server.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ecocloud/ckpt/checkpoint.hpp"
#include "ecocloud/ckpt/snapshot_io.hpp"
#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/obs/exporters.hpp"
#include "ecocloud/obs/progress.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::srv {

namespace {

using Clock = std::chrono::steady_clock;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_error(const std::string& message) {
  return "{\"error\":\"" + json_escape(message) + "\"}\n";
}

/// Parse "/campaigns/<id>[/suffix]". Returns nullopt when the path does
/// not carry a well-formed id.
std::optional<std::uint64_t> parse_campaign_id(const std::string& target,
                                               std::string* suffix) {
  constexpr const char kPrefix[] = "/campaigns/";
  if (target.rfind(kPrefix, 0) != 0) return std::nullopt;
  const std::string rest = target.substr(sizeof(kPrefix) - 1);
  const std::size_t slash = rest.find('/');
  const std::string id_str = rest.substr(0, slash);
  if (suffix != nullptr) {
    *suffix = slash == std::string::npos ? "" : rest.substr(slash);
  }
  if (id_str.empty()) return std::nullopt;
  std::uint64_t id = 0;
  for (const char ch : id_str) {
    if (ch < '0' || ch > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return id;
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

CampaignServer::CampaignServer(ServerConfig config)
    : config_(std::move(config)) {
  util::require(config_.workers >= 1, "campaign server needs >= 1 worker");
  util::require(config_.queue_capacity >= 1,
                "campaign server needs queue capacity >= 1");
  util::require(config_.slice_s > 0.0,
                "campaign server slice must be positive sim-seconds");
  util::require(!config_.data_dir.empty(),
                "campaign server needs a data dir");
  if (!config_.rss_probe) config_.rss_probe = [] { return obs::current_rss_mb(); };
  if (config_.rss_high_mb > 0.0 && config_.rss_low_mb <= 0.0) {
    config_.rss_low_mb = 0.9 * config_.rss_high_mb;
  }
}

CampaignServer::~CampaignServer() {
  if (started_) {
    drain();
    return;
  }
  // start() threw midway (or was never called): tear down whatever
  // partial machinery exists without the drain protocol.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_pressure_ = true;
  }
  pressure_cv_.notify_all();
  if (pressure_thread_.joinable()) pressure_thread_.join();
}

std::string CampaignServer::events_path(std::uint64_t id) const {
  return config_.data_dir + "/campaign_" + std::to_string(id) + ".events.csv";
}

std::string CampaignServer::checkpoint_path(std::uint64_t id) const {
  return config_.data_dir + "/campaign_" + std::to_string(id) + ".ckpt";
}

void CampaignServer::start() {
  util::require(!started_, "CampaignServer::start called twice");
  if (::mkdir(config_.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::runtime_error("cannot create data dir " + config_.data_dir +
                             ": " + std::strerror(errno));
  }

  registry_.counter("ecocloud_server_submissions_total",
                    {{"result", "accepted"}},
                    "Campaign submissions by admission outcome");
  for (const char* result : {"duplicate", "rejected_invalid",
                             "rejected_capacity", "rejected_draining"}) {
    registry_.counter("ecocloud_server_submissions_total",
                      {{"result", result}});
  }
  registry_.counter("ecocloud_server_evictions_total", {{"reason", "quota"}},
                    "Campaigns checkpointed and evicted, by reason");
  registry_.counter("ecocloud_server_evictions_total", {{"reason", "memory"}});
  registry_.counter("ecocloud_server_checkpoints_total", {},
                    "Campaign checkpoint snapshots written");
  registry_.gauge_fn("ecocloud_server_rss_mb", config_.rss_probe, {},
                     "Resident set size of the server process");

  {
    std::lock_guard<std::mutex> lock(mutex_);
    journal_.emplace(config_.data_dir + "/journal.bin");
    recover_locked();
    refresh_state_gauges_locked();
  }
  pool_.emplace(config_.workers);
  pressure_thread_ = std::thread([this] { pressure_loop(); });
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dispatch_locked();
  }
  http_.emplace([this](const obs::HttpRequest& req) { return handle(req); },
                config_.port, config_.http_limits);
  started_ = true;
}

void CampaignServer::recover_locked() {
  for (const JournalRecord& record : journal_->recovered()) {
    if (record.type == JournalRecordType::kSubmit) {
      Campaign campaign;
      campaign.id = record.campaign_id;
      try {
        campaign.spec = parse_submission(record.config_text);
      } catch (const std::exception& ex) {
        // The config was parseable when accepted; failing to re-parse it
        // means the parser changed underneath a live journal. Surface as
        // a failed campaign instead of dropping the accepted submission.
        campaign.state = CampaignState::kFailed;
        campaign.detail = std::string("journal replay: ") + ex.what();
      }
      // The journaled lease fields are authoritative.
      campaign.spec.client = record.client;
      campaign.spec.idem_key = record.idem_key;
      campaign.spec.quota = record.quota;
      campaign.watchdog.set_quota(record.quota);
      campaign.footprint = campaign.spec.config.num_vms;
      campaigns_[campaign.id] = std::move(campaign);
      if (record.campaign_id >= next_id_) next_id_ = record.campaign_id + 1;
    } else {
      const auto it = campaigns_.find(record.campaign_id);
      if (it == campaigns_.end()) continue;  // never possible on our own journal
      it->second.state = record.state;
      it->second.detail = record.detail;
    }
  }

  recovered_ = campaigns_.size();
  for (auto& [id, campaign] : campaigns_) {
    if (!campaign.spec.idem_key.empty()) {
      idem_index_[{campaign.spec.client, campaign.spec.idem_key}] = id;
    }
    if (is_terminal(campaign.state)) continue;
    campaign.has_checkpoint = file_exists(checkpoint_path(id));
    campaign.fresh_window = true;  // budget windows do not survive restarts
    if (campaign.state == CampaignState::kEvicted) {
      continue;  // stays evicted until a client resumes it
    }
    // queued, paused, or (never journaled, but belt-and-braces) running:
    // re-queue. With a checkpoint on disk the campaign resumes
    // bit-identically; without one it restarts from scratch — either way
    // it runs exactly once from the client's point of view.
    campaign.state = CampaignState::kQueued;
    campaign.pause_requested = false;
    campaign.memory_paused = false;
    enqueue_locked(id);
  }

  // Publish labeled gauges for everything we recovered. Campaigns that are
  // already terminal never run another slice, so this is their only chance
  // to appear on /metrics after a restart.
  for (const auto& [id, campaign] : campaigns_) {
    update_campaign_metrics_locked(campaign);
  }
}

void CampaignServer::drain() {
  bool stop_pool = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!draining_) {
      draining_ = true;
      for (auto& [id, campaign] : campaigns_) {
        if (campaign.state == CampaignState::kRunning) {
          campaign.pause_requested = true;
        }
      }
      stop_pool = true;
    }
    cv_.wait(lock, [this] { return running_count_ == 0; });
    stop_pressure_ = true;
  }
  pressure_cv_.notify_all();
  if (pressure_thread_.joinable()) pressure_thread_.join();
  if (stop_pool && pool_) pool_->stop();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (journal_) journal_->flush();
  }
  if (http_) http_->stop();
}

bool CampaignServer::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

std::uint16_t CampaignServer::port() const {
  util::ensure(http_.has_value(), "CampaignServer::port before start()");
  return http_->port();
}

bool CampaignServer::wait_idle(double timeout_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), [this] {
    return queued_count_ == 0 && running_count_ == 0;
  });
}

std::optional<CampaignState> CampaignServer::state_of(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = campaigns_.find(id);
  if (it == campaigns_.end()) return std::nullopt;
  return it->second.state;
}

std::size_t CampaignServer::recovered_campaigns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovered_;
}

// ---------------------------------------------------------------------------
// HTTP API

obs::HttpResponse CampaignServer::handle(const obs::HttpRequest& request) {
  if (request.target == "/healthz" && request.method == "GET") {
    return obs::HttpResponse::text(200, "ok\n");
  }
  if (request.target == "/metrics" && request.method == "GET") {
    return metrics_text();
  }
  if (request.target == "/campaigns") {
    if (request.method == "POST") return submit(request);
    if (request.method == "GET") return list_campaigns();
    obs::HttpResponse resp =
        obs::HttpResponse::text(405, "method not allowed\n");
    resp.extra_headers.push_back("Allow: GET, POST");
    return resp;
  }
  std::string suffix;
  if (const auto id = parse_campaign_id(request.target, &suffix)) {
    if (suffix.empty()) {
      if (request.method == "GET") return status_doc(*id);
      if (request.method == "DELETE") return cancel(*id);
      obs::HttpResponse resp =
          obs::HttpResponse::text(405, "method not allowed\n");
      resp.extra_headers.push_back("Allow: GET, DELETE");
      return resp;
    }
    if (suffix == "/resume") {
      if (request.method == "POST") return resume(*id);
      obs::HttpResponse resp =
          obs::HttpResponse::text(405, "method not allowed\n");
      resp.extra_headers.push_back("Allow: POST");
      return resp;
    }
  }
  return obs::HttpResponse::json(404, json_error("not found"));
}

obs::HttpResponse CampaignServer::metrics_text() {
  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    obs::write_prometheus(registry_, out);
  }
  obs::HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = out.str();
  return resp;
}

obs::HttpResponse CampaignServer::submit(const obs::HttpRequest& request) {
  CampaignSpec spec;
  try {
    spec = parse_submission(request.body);
  } catch (const std::exception& ex) {
    std::lock_guard<std::mutex> lock(mutex_);
    registry_.counter("ecocloud_server_submissions_total",
                      {{"result", "rejected_invalid"}})
        .inc();
    return obs::HttpResponse::json(400, json_error(ex.what()));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    registry_.counter("ecocloud_server_submissions_total",
                      {{"result", "rejected_draining"}})
        .inc();
    return obs::HttpResponse::json(
        503, json_error("server is draining; resubmit after restart"));
  }
  if (!spec.idem_key.empty()) {
    const auto it = idem_index_.find({spec.client, spec.idem_key});
    if (it != idem_index_.end()) {
      registry_.counter("ecocloud_server_submissions_total",
                        {{"result", "duplicate"}})
          .inc();
      const Campaign& existing = campaigns_.at(it->second);
      return obs::HttpResponse::json(
          200, "{\"id\":" + std::to_string(existing.id) + ",\"state\":\"" +
                   to_string(existing.state) + "\",\"duplicate\":true}\n");
    }
  }
  if (queued_count_ >= config_.queue_capacity) {
    registry_.counter("ecocloud_server_submissions_total",
                      {{"result", "rejected_capacity"}})
        .inc();
    obs::HttpResponse resp = obs::HttpResponse::json(
        429, json_error("submission queue full; retry later"));
    resp.extra_headers.push_back("Retry-After: " +
                                 std::to_string(config_.retry_after_s));
    return resp;
  }

  const std::uint64_t id = next_id_++;
  // Durability before acknowledgment: the fsync'd journal record is what
  // makes "202 Accepted" a promise that survives SIGKILL.
  journal_->append_submit(id, spec.client, spec.idem_key, spec.quota,
                          request.body);

  Campaign campaign;
  campaign.id = id;
  campaign.watchdog.set_quota(spec.quota);
  campaign.footprint = spec.config.num_vms;
  campaign.spec = std::move(spec);
  if (!campaign.spec.idem_key.empty()) {
    idem_index_[{campaign.spec.client, campaign.spec.idem_key}] = id;
  }
  campaigns_[id] = std::move(campaign);
  registry_.counter("ecocloud_server_submissions_total",
                    {{"result", "accepted"}})
      .inc();
  enqueue_locked(id);
  update_campaign_metrics_locked(campaigns_.at(id));
  dispatch_locked();
  refresh_state_gauges_locked();
  return obs::HttpResponse::json(
      202, "{\"id\":" + std::to_string(id) + ",\"state\":\"" +
               to_string(campaigns_.at(id).state) + "\"}\n");
}

std::string CampaignServer::campaign_json_locked(
    const Campaign& campaign) const {
  const double horizon = campaign.spec.config.horizon_s;
  const double percent =
      horizon > 0.0 ? 100.0 * campaign.sim_now_s / horizon : 0.0;
  char buf[256];
  std::string out = "{\"id\":" + std::to_string(campaign.id) +
                    ",\"client\":\"" + json_escape(campaign.spec.client) +
                    "\",\"state\":\"" + to_string(campaign.state) + "\"";
  std::snprintf(buf, sizeof(buf),
                ",\"sim_time_s\":%.3f,\"horizon_s\":%.3f,"
                "\"percent\":%.3f,\"events_executed\":%llu",
                campaign.sim_now_s, horizon, percent,
                static_cast<unsigned long long>(campaign.executed_events));
  out += buf;
  const CampaignUsage& usage = campaign.watchdog.usage();
  const CampaignQuota& quota = campaign.watchdog.quota();
  std::snprintf(buf, sizeof(buf),
                ",\"usage\":{\"wall_s\":%.3f,\"events\":%llu,"
                "\"max_rss_mb\":%.1f}",
                usage.wall_s, static_cast<unsigned long long>(usage.events),
                usage.max_rss_mb);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"quota\":{\"wall_budget_s\":%.3f,\"event_budget\":%llu,"
                "\"rss_budget_mb\":%.1f}",
                quota.wall_budget_s,
                static_cast<unsigned long long>(quota.event_budget),
                quota.rss_budget_mb);
  out += buf;
  out += ",\"has_checkpoint\":";
  out += campaign.has_checkpoint ? "true" : "false";
  if (!campaign.detail.empty()) {
    out += ",\"detail\":\"" + json_escape(campaign.detail) + "\"";
  }
  if (campaign.state == CampaignState::kDone) {
    out += ",\"events_path\":\"" + json_escape(events_path(campaign.id)) +
           "\"";
  }
  out += "}";
  return out;
}

obs::HttpResponse CampaignServer::status_doc(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    return obs::HttpResponse::json(404, json_error("no such campaign"));
  }
  return obs::HttpResponse::json(200, campaign_json_locked(it->second) + "\n");
}

obs::HttpResponse CampaignServer::list_campaigns() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string body = "{\"draining\":";
  body += draining_ ? "true" : "false";
  body += ",\"queued\":" + std::to_string(queued_count_) +
          ",\"running\":" + std::to_string(running_count_) +
          ",\"campaigns\":[";
  bool first = true;
  for (const auto& [id, campaign] : campaigns_) {
    if (!first) body += ",";
    first = false;
    body += campaign_json_locked(campaign);
  }
  body += "]}\n";
  return obs::HttpResponse::json(200, body);
}

obs::HttpResponse CampaignServer::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    return obs::HttpResponse::json(404, json_error("no such campaign"));
  }
  Campaign& campaign = it->second;
  if (is_terminal(campaign.state)) {
    return obs::HttpResponse::json(
        409, json_error(std::string("campaign is already ") +
                        to_string(campaign.state)));
  }
  if (campaign.state == CampaignState::kRunning) {
    // The worker cancels at its next safe point.
    campaign.cancel_requested = true;
    return obs::HttpResponse::json(
        202, "{\"id\":" + std::to_string(id) +
                 ",\"state\":\"running\",\"cancel_requested\":true}\n");
  }
  if (campaign.state == CampaignState::kQueued) {
    remove_from_queue_locked(campaign);
  }
  set_state_locked(campaign, CampaignState::kCancelled,
                   "cancelled by client");
  refresh_state_gauges_locked();
  return obs::HttpResponse::json(
      200, "{\"id\":" + std::to_string(id) + ",\"state\":\"cancelled\"}\n");
}

obs::HttpResponse CampaignServer::resume(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    return obs::HttpResponse::json(503, json_error("server is draining"));
  }
  const auto it = campaigns_.find(id);
  if (it == campaigns_.end()) {
    return obs::HttpResponse::json(404, json_error("no such campaign"));
  }
  Campaign& campaign = it->second;
  if (campaign.state != CampaignState::kEvicted) {
    return obs::HttpResponse::json(
        409, json_error(std::string("only evicted campaigns can be resumed "
                                    "(state is ") +
                        to_string(campaign.state) + ")"));
  }
  campaign.fresh_window = true;  // a resume grants a fresh budget window
  // Journaled so a crash between resume and completion replays as
  // "queued", not as "still evicted".
  set_state_locked(campaign, CampaignState::kQueued, "resumed by client");
  enqueue_locked(id);
  dispatch_locked();
  refresh_state_gauges_locked();
  return obs::HttpResponse::json(
      202, "{\"id\":" + std::to_string(id) + ",\"state\":\"queued\"}\n");
}

// ---------------------------------------------------------------------------
// Scheduling

void CampaignServer::enqueue_locked(std::uint64_t id) {
  const Campaign& campaign = campaigns_.at(id);
  auto& queue = client_queues_[campaign.spec.client];
  if (queue.empty()) client_rr_.push_back(campaign.spec.client);
  queue.push_back(id);
  ++queued_count_;
}

void CampaignServer::remove_from_queue_locked(const Campaign& campaign) {
  const auto it = client_queues_.find(campaign.spec.client);
  if (it == client_queues_.end()) return;
  auto& queue = it->second;
  for (auto q = queue.begin(); q != queue.end(); ++q) {
    if (*q == campaign.id) {
      queue.erase(q);
      --queued_count_;
      break;
    }
  }
  if (queue.empty()) {
    for (auto r = client_rr_.begin(); r != client_rr_.end(); ++r) {
      if (*r == campaign.spec.client) {
        client_rr_.erase(r);
        break;
      }
    }
  }
}

void CampaignServer::dispatch_locked() {
  while (!draining_ && running_count_ < config_.workers &&
         queued_count_ > 0) {
    // Round-robin over clients: take the head client's oldest campaign,
    // then rotate the client to the back if it still has work — one
    // client with a deep backlog cannot starve the others.
    const std::string client = client_rr_.front();
    client_rr_.pop_front();
    auto& queue = client_queues_.at(client);
    const std::uint64_t id = queue.front();
    queue.pop_front();
    --queued_count_;
    if (!queue.empty()) client_rr_.push_back(client);
    Campaign& campaign = campaigns_.at(id);
    if (campaign.state != CampaignState::kQueued) continue;
    campaign.state = CampaignState::kRunning;  // never journaled
    // A fresh run owns its pause flags. The pressure controller can set
    // pause_requested on a "running" victim during the unlocked window
    // while the previous pause was saving its checkpoint; without this
    // reset that stale request would instantly re-pause the resumed run
    // and strand it (memory_paused was already consumed by the requeue).
    campaign.pause_requested = false;
    campaign.memory_paused = false;
    ++running_count_;
    pool_->submit([this, id] { run_campaign(id); });
  }
  refresh_state_gauges_locked();
}

void CampaignServer::finish_run_locked() {
  --running_count_;
  dispatch_locked();
  cv_.notify_all();
}

void CampaignServer::set_state_locked(Campaign& campaign, CampaignState state,
                                      const std::string& detail,
                                      bool journal) {
  campaign.state = state;
  campaign.detail = detail;
  if (journal) journal_->append_state(campaign.id, state, detail);
  update_campaign_metrics_locked(campaign);
  cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Campaign execution (worker threads)

void CampaignServer::run_campaign(std::uint64_t id) {
  CampaignSpec spec;
  bool resume_from_checkpoint = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    Campaign& campaign = campaigns_.at(id);
    if (draining_ || campaign.cancel_requested) {
      if (campaign.cancel_requested) {
        set_state_locked(campaign, CampaignState::kCancelled,
                         "cancelled by client");
      } else {
        // Drain won the race to this worker: put the campaign back as
        // queued (no journal record needed — a submit with no later state
        // already replays as queued).
        campaign.state = CampaignState::kQueued;
        enqueue_locked(id);
      }
      refresh_state_gauges_locked();
      finish_run_locked();
      return;
    }
    spec = campaign.spec;
    resume_from_checkpoint = campaign.has_checkpoint;
    refresh_state_gauges_locked();
  }

  const std::string ckpt = checkpoint_path(id);
  try {
    // The scenario is rebuilt from the config on every (re)start; mutable
    // state comes back from the checkpoint. Registering the event log as
    // a snapshot section is what makes an evicted-then-resumed campaign's
    // event log byte-identical to an uninterrupted run.
    scenario::DailyScenario daily(spec.config);
    metrics::EventLog event_log;
    event_log.attach(*daily.ecocloud());
    ckpt::CheckpointManager manager(daily.simulator());
    daily.register_checkpoint(manager);
    manager.add_section(
        "event_log",
        [&event_log](util::BinWriter& w) { event_log.save_state(w); },
        [&event_log](util::BinReader& r) { event_log.load_state(r); });
    if (resume_from_checkpoint) {
      manager.restore(ckpt);
    } else {
      daily.start();
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      Campaign& campaign = campaigns_.at(id);
      campaign.sim_now_s = daily.simulator().now();
      campaign.executed_events = daily.simulator().executed_events();
      if (campaign.fresh_window) {
        campaign.watchdog.begin_window(daily.simulator().executed_events());
        campaign.fresh_window = false;
      }
    }

    // Slice loop: every boundary is a safe point. Checkpoint saves only
    // serialize state — they schedule nothing — so neither slicing nor
    // checkpointing perturbs the event stream.
    std::size_t slices_since_checkpoint = 0;
    bool done = false;
    while (!done) {
      const auto slice_start = Clock::now();
      done = daily.run_slice(daily.simulator().now() + config_.slice_s);
      const double slice_wall =
          std::chrono::duration<double>(Clock::now() - slice_start).count();

      std::unique_lock<std::mutex> lock(mutex_);
      Campaign& campaign = campaigns_.at(id);
      campaign.sim_now_s = daily.simulator().now();
      campaign.executed_events = daily.simulator().executed_events();
      campaign.watchdog.record(slice_wall, campaign.executed_events,
                               config_.rss_probe());
      update_campaign_metrics_locked(campaign);
      if (done) break;

      if (campaign.cancel_requested) {
        set_state_locked(campaign, CampaignState::kCancelled,
                         "cancelled by client");
        refresh_state_gauges_locked();
        finish_run_locked();
        return;
      }
      const std::string violation = campaign.watchdog.violation();
      if (!violation.empty()) {
        lock.unlock();
        manager.save(ckpt);  // serialize outside the server lock
        lock.lock();
        Campaign& evicted = campaigns_.at(id);
        evicted.has_checkpoint = true;
        registry_.counter("ecocloud_server_evictions_total",
                          {{"reason", "quota"}})
            .inc();
        registry_.counter("ecocloud_server_checkpoints_total").inc();
        set_state_locked(evicted, CampaignState::kEvicted, violation);
        refresh_state_gauges_locked();
        finish_run_locked();
        return;
      }
      if (campaign.pause_requested) {
        campaign.pause_requested = false;
        lock.unlock();
        manager.save(ckpt);
        lock.lock();
        Campaign& paused = campaigns_.at(id);
        // Read the reason after relocking: a pressure tick during the
        // save may have re-marked this still-"running" campaign, and the
        // label must agree with the memory_paused flag the requeue path
        // keys on.
        const bool memory = paused.memory_paused;
        paused.has_checkpoint = true;
        registry_.counter("ecocloud_server_checkpoints_total").inc();
        if (memory) {
          registry_.counter("ecocloud_server_evictions_total",
                            {{"reason", "memory"}})
              .inc();
        }
        set_state_locked(paused, CampaignState::kPaused,
                         memory ? "paused under memory pressure"
                                : "paused for drain");
        refresh_state_gauges_locked();
        finish_run_locked();
        return;
      }
      lock.unlock();

      if (config_.checkpoint_every_slices > 0 &&
          ++slices_since_checkpoint >= config_.checkpoint_every_slices) {
        slices_since_checkpoint = 0;
        manager.save(ckpt);
        std::lock_guard<std::mutex> guard(mutex_);
        campaigns_.at(id).has_checkpoint = true;
        registry_.counter("ecocloud_server_checkpoints_total").inc();
      }
    }
    daily.finish();

    // Atomic event-log publication: tmp + rename, same discipline as
    // snapshots, so a crash mid-write never leaves a half CSV behind.
    const std::string out_path = events_path(id);
    const std::string tmp_path = out_path + ".tmp";
    {
      std::ofstream out(tmp_path);
      util::require(out.good(), "cannot open " + tmp_path);
      event_log.write_csv(out);
      out.flush();
      util::require(out.good(), "cannot write " + tmp_path);
    }
    if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
      std::remove(tmp_path.c_str());
      throw std::runtime_error("cannot rename " + tmp_path + " to " +
                               out_path);
    }
    std::remove(ckpt.c_str());  // the run is complete; the log is the artifact

    std::lock_guard<std::mutex> lock(mutex_);
    Campaign& campaign = campaigns_.at(id);
    campaign.has_checkpoint = false;
    set_state_locked(campaign, CampaignState::kDone, "");
    refresh_state_gauges_locked();
    finish_run_locked();
  } catch (const std::exception& ex) {
    std::lock_guard<std::mutex> lock(mutex_);
    Campaign& campaign = campaigns_.at(id);
    set_state_locked(campaign, CampaignState::kFailed, ex.what());
    refresh_state_gauges_locked();
    finish_run_locked();
  }
}

// ---------------------------------------------------------------------------
// Memory pressure

void CampaignServer::pressure_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_pressure_) {
    pressure_cv_.wait_for(
        lock, std::chrono::milliseconds(config_.pressure_poll_ms));
    if (stop_pressure_ || draining_) continue;
    if (config_.rss_high_mb <= 0.0) continue;

    lock.unlock();
    const double rss = config_.rss_probe();
    lock.lock();
    if (stop_pressure_ || draining_) continue;

    if (rss >= config_.rss_high_mb) {
      memory_pressure_ = true;
      // Checkpoint-and-pause the largest running campaign that is not
      // already on its way out; one victim per poll tick, so pressure
      // relief is incremental rather than a stampede.
      Campaign* victim = nullptr;
      for (auto& [id, campaign] : campaigns_) {
        if (campaign.state != CampaignState::kRunning) continue;
        if (campaign.pause_requested || campaign.cancel_requested) continue;
        if (victim == nullptr || campaign.footprint > victim->footprint) {
          victim = &campaign;
        }
      }
      if (victim != nullptr) {
        victim->pause_requested = true;
        victim->memory_paused = true;
      }
    } else if (memory_pressure_ && rss <= config_.rss_low_mb) {
      memory_pressure_ = false;
      // Pressure cleared: every memory-paused campaign re-enters the
      // queue and resumes from its checkpoint, bit-identically.
      for (auto& [id, campaign] : campaigns_) {
        if (campaign.state == CampaignState::kPaused &&
            campaign.memory_paused) {
          campaign.memory_paused = false;
          campaign.state = CampaignState::kQueued;
          enqueue_locked(id);
        }
      }
      dispatch_locked();
    }
  }
}

// ---------------------------------------------------------------------------
// Metrics

void CampaignServer::update_campaign_metrics_locked(const Campaign& campaign) {
  const obs::Labels labels = {{"campaign", std::to_string(campaign.id)}};
  registry_
      .gauge("ecocloud_campaign_sim_time_seconds", labels,
             "Simulated seconds completed per campaign")
      .set(campaign.sim_now_s);
  registry_
      .gauge("ecocloud_campaign_events_executed", labels,
             "Simulation events executed per campaign")
      .set(static_cast<double>(campaign.executed_events));
  registry_
      .gauge("ecocloud_campaign_state", labels,
             "Campaign state code (0 queued, 1 running, 2 paused, "
             "3 evicted, 4 done, 5 failed, 6 cancelled)")
      .set(static_cast<double>(static_cast<std::uint8_t>(campaign.state)));
}

void CampaignServer::refresh_state_gauges_locked() {
  std::size_t counts[7] = {};
  for (const auto& [id, campaign] : campaigns_) {
    counts[static_cast<std::uint8_t>(campaign.state)]++;
  }
  for (std::uint8_t s = 0; s <= 6; ++s) {
    registry_
        .gauge("ecocloud_server_campaigns",
               {{"state", to_string(static_cast<CampaignState>(s))}},
               "Campaigns per lifecycle state")
        .set(static_cast<double>(counts[s]));
  }
}

}  // namespace ecocloud::srv
