#pragma once

/// \file topology.hpp
/// \brief Rack-level data-center network topology.
///
/// The paper's footnote 1: "Data centers are equipped with high-bandwidth
/// networks that naturally support broadcast messaging. In very large data
/// centers, the servers may be distributed among several groups of
/// servers: in this case, the invitation message may be broadcast to one
/// of such groups only." Topology models those groups as racks behind
/// top-of-rack switches with oversubscribed uplinks: invitations can be
/// scoped to one rack, and live-migration transfer time depends on whether
/// source and destination share a rack.

#include <cstddef>
#include <vector>

#include "ecocloud/dc/ids.hpp"

namespace ecocloud::net {

struct TopologyConfig {
  /// Number of racks (> 0); servers are assigned round-robin.
  std::size_t num_racks = 8;

  /// Server NIC / intra-rack bandwidth (through the ToR switch), Gbit/s.
  double intra_rack_gbps = 10.0;

  /// Effective per-flow bandwidth across the aggregation layer, Gbit/s
  /// (lower than intra-rack: uplinks are oversubscribed).
  double inter_rack_gbps = 4.0;
};

class Topology {
 public:
  /// Lay out \p num_servers across the configured racks, round-robin (the
  /// same order build_fleet assigns core counts, so every rack gets the
  /// same capacity mix).
  Topology(std::size_t num_servers, TopologyConfig config = TopologyConfig{});

  [[nodiscard]] std::size_t num_servers() const { return rack_of_.size(); }
  [[nodiscard]] std::size_t num_racks() const { return racks_.size(); }
  [[nodiscard]] const TopologyConfig& config() const { return config_; }

  [[nodiscard]] std::size_t rack_of(dc::ServerId server) const;
  [[nodiscard]] const std::vector<dc::ServerId>& servers_in_rack(
      std::size_t rack) const;
  [[nodiscard]] bool same_rack(dc::ServerId a, dc::ServerId b) const;

  /// Per-flow bandwidth between two servers, MB/s.
  [[nodiscard]] double bandwidth_mb_per_s(dc::ServerId src, dc::ServerId dest) const;

  /// Time to copy \p ram_mb of VM state from \p src to \p dest (seconds).
  /// Pre-copy rounds and dirtying are folded into the controller's fixed
  /// latency floor; this is the bulk-transfer component.
  [[nodiscard]] double transfer_time_s(dc::ServerId src, dc::ServerId dest,
                                       double ram_mb) const;

 private:
  TopologyConfig config_;
  std::vector<std::size_t> rack_of_;
  std::vector<std::vector<dc::ServerId>> racks_;
};

}  // namespace ecocloud::net
