#include "ecocloud/net/topology.hpp"

#include "ecocloud/util/validation.hpp"

namespace ecocloud::net {

Topology::Topology(std::size_t num_servers, TopologyConfig config)
    : config_(config) {
  util::require(num_servers > 0, "Topology: need at least one server");
  util::require(config.num_racks > 0, "Topology: need at least one rack");
  util::require(config.intra_rack_gbps > 0.0 && config.inter_rack_gbps > 0.0,
                "Topology: bandwidths must be > 0");

  const std::size_t racks = std::min(config.num_racks, num_servers);
  racks_.resize(racks);
  rack_of_.resize(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) {
    const std::size_t rack = s % racks;
    rack_of_[s] = rack;
    racks_[rack].push_back(static_cast<dc::ServerId>(s));
  }
}

std::size_t Topology::rack_of(dc::ServerId server) const {
  util::require(server < rack_of_.size(), "Topology::rack_of: unknown server");
  return rack_of_[server];
}

const std::vector<dc::ServerId>& Topology::servers_in_rack(std::size_t rack) const {
  util::require(rack < racks_.size(), "Topology::servers_in_rack: bad rack");
  return racks_[rack];
}

bool Topology::same_rack(dc::ServerId a, dc::ServerId b) const {
  return rack_of(a) == rack_of(b);
}

double Topology::bandwidth_mb_per_s(dc::ServerId src, dc::ServerId dest) const {
  const double gbps =
      same_rack(src, dest) ? config_.intra_rack_gbps : config_.inter_rack_gbps;
  return gbps * 1000.0 / 8.0;  // Gbit/s -> MB/s
}

double Topology::transfer_time_s(dc::ServerId src, dc::ServerId dest,
                                 double ram_mb) const {
  util::require(ram_mb >= 0.0, "Topology::transfer_time_s: negative size");
  return ram_mb / bandwidth_mb_per_s(src, dest);
}

}  // namespace ecocloud::net
