#pragma once

/// \file multi_resource.hpp
/// \brief Multi-resource extension of the assignment procedure.
///
/// The paper's Sec. V sketches two ways to extend the Bernoulli approach
/// beyond CPU (e.g. to RAM), both implemented here:
///  * kAllTrials     — run one Bernoulli trial per resource (f_a on each
///    resource's utilization) and volunteer only when *all* succeed;
///  * kCriticalTrial — run a single trial on the most utilized (critical)
///    resource and treat the others as hard feasibility constraints
///    (u_after <= Ta per resource).
///
/// Only CPU and RAM are modelled (the two resources DataCenter tracks),
/// which is enough to reproduce the trade-off the paper hypothesizes:
/// kAllTrials consolidates more cautiously (product of probabilities),
/// kCriticalTrial packs tighter but leans on the constraints.

#include <optional>

#include "ecocloud/core/params.hpp"
#include "ecocloud/core/probability.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::multires {

enum class Strategy {
  kAllTrials,      ///< one Bernoulli trial per resource, AND-ed
  kCriticalTrial,  ///< single trial on the critical resource + constraints
};

[[nodiscard]] const char* to_string(Strategy strategy);

struct MultiResourceResult {
  std::optional<dc::ServerId> server;
  std::size_t volunteers = 0;
  std::size_t contacted = 0;
};

/// Invitation round where servers consider both CPU and RAM.
class MultiResourceAssignment {
 public:
  MultiResourceAssignment(const core::EcoCloudParams& params, Strategy strategy,
                          util::Rng& rng);

  [[nodiscard]] Strategy strategy() const { return strategy_; }

  /// One server's answer for a VM demanding (cpu_mhz, ram_mb).
  [[nodiscard]] bool server_accepts(const dc::Server& server, double vm_cpu_mhz,
                                    double vm_ram_mb) const;

  /// Full invitation round over all active servers.
  [[nodiscard]] MultiResourceResult invite(const dc::DataCenter& datacenter,
                                           double vm_cpu_mhz, double vm_ram_mb) const;

 private:
  /// RAM utilization of a server (0 when it has no RAM configured).
  [[nodiscard]] static double ram_utilization(const dc::Server& server);

  const core::EcoCloudParams& params_;
  Strategy strategy_;
  util::Rng& rng_;
  core::AssignmentFunction fa_;
};

}  // namespace ecocloud::multires
