#include "ecocloud/multires/multi_resource.hpp"

#include <vector>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::multires {

const char* to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kAllTrials: return "all-trials";
    case Strategy::kCriticalTrial: return "critical-trial";
  }
  return "unknown";
}

MultiResourceAssignment::MultiResourceAssignment(const core::EcoCloudParams& params,
                                                 Strategy strategy, util::Rng& rng)
    : params_(params), strategy_(strategy), rng_(rng), fa_(params.ta, params.p) {
  params.validate();
}

double MultiResourceAssignment::ram_utilization(const dc::Server& server) {
  return server.ram_capacity_mb() > 0.0
             ? server.ram_used_mb() / server.ram_capacity_mb()
             : 0.0;
}

bool MultiResourceAssignment::server_accepts(const dc::Server& server,
                                             double vm_cpu_mhz,
                                             double vm_ram_mb) const {
  if (!server.active()) return false;

  const double cpu_after =
      (server.demand_mhz() + server.reserved_mhz() + vm_cpu_mhz) /
      server.capacity_mhz();
  const double ram_capacity = server.ram_capacity_mb();
  const double ram_after = ram_capacity > 0.0
                               ? (server.ram_used_mb() + vm_ram_mb) / ram_capacity
                               : 0.0;

  // Hard feasibility: the VM must physically fit either way.
  if (cpu_after > 1.0 || ram_after > 1.0) return false;

  const double u_cpu = server.decision_utilization();
  const double u_ram = ram_utilization(server);

  switch (strategy_) {
    case Strategy::kAllTrials:
      // Independent trials, all must succeed (Sec. V, first avenue).
      return rng_.bernoulli(fa_(u_cpu)) && rng_.bernoulli(fa_(u_ram));
    case Strategy::kCriticalTrial: {
      // Single trial on the most utilized resource; the other resource is
      // only a constraint (Sec. V, second avenue).
      const double u_critical = u_cpu >= u_ram ? u_cpu : u_ram;
      if (cpu_after > params_.ta || ram_after > params_.ta) return false;
      return rng_.bernoulli(fa_(u_critical));
    }
  }
  return false;
}

MultiResourceResult MultiResourceAssignment::invite(const dc::DataCenter& datacenter,
                                                    double vm_cpu_mhz,
                                                    double vm_ram_mb) const {
  util::require(vm_cpu_mhz >= 0.0 && vm_ram_mb >= 0.0,
                "MultiResourceAssignment::invite: negative demand");
  MultiResourceResult result;
  std::vector<dc::ServerId> volunteers;
  for (const dc::Server& server : datacenter.servers()) {
    if (!server.active()) continue;
    ++result.contacted;
    if (server_accepts(server, vm_cpu_mhz, vm_ram_mb)) {
      volunteers.push_back(server.id());
    }
  }
  result.volunteers = volunteers.size();
  if (!volunteers.empty()) {
    result.server = volunteers[rng_.index(volunteers.size())];
  }
  return result;
}

}  // namespace ecocloud::multires
