#include "ecocloud/par/sharded_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <utility>

#include "ecocloud/ckpt/auditor.hpp"
#include "ecocloud/ckpt/checkpoint.hpp"
#include "ecocloud/ckpt/snapshot_io.hpp"
#include "ecocloud/ckpt/watchdog.hpp"
#include "ecocloud/core/migration.hpp"
#include "ecocloud/metrics/event_log_binary.hpp"
#include "ecocloud/par/event_merge.hpp"
#include "ecocloud/util/exit_codes.hpp"
#include "ecocloud/util/rng.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::par {

ShardedDailyRun::ShardedDailyRun(scenario::DailyConfig config, ParConfig par)
    : config_(std::move(config)),
      par_(std::move(par)),
      plan_(par_.shards, config_.fleet.num_servers, config_.num_vms) {
  config_.params.validate();
  config_.faults.validate();
  util::require(par_.sync_interval_s > 0.0,
                "ShardedDailyRun: sync interval must be > 0");
  util::require(!config_.topology,
                "ShardedDailyRun: rack topology is not supported in sharded "
                "mode (invitations would need cross-shard rack scoping)");
  warmup_done_ = config_.warmup_s <= 0.0;

  // The trace source is generated once from the bare seed — exactly as
  // DailyScenario does — so the workload is a function of the config
  // alone, not of K. Materialized mode shares one read-only TraceSet
  // across the shards; streaming mode (DESIGN.md §17) hands each shard
  // the owned cursor bank of its trace rows, generated from the same
  // stream, so the demand samples are bit-identical either way.
  //
  // streaming_traces is honored, never silently downgraded: every option
  // the sharded engine supports composes with the cursor banks (snapshots
  // regenerate and re-adopt them, audits read only the VM->row map,
  // faults never sample demand). The one config that cannot shard at all
  // — rack topology — is rejected above; any future option that requires
  // the materialized sample matrix must fail fast here, in the CLI's
  // util::require style, rather than fall back to O(VMs x horizon)
  // memory behind the operator's back.
  util::Rng rng(config_.seed);
  const auto num_steps =
      static_cast<std::size_t>(config_.horizon_s /
                               config_.workload.sample_period_s) +
      2;
  trace::WorkloadModel model(config_.workload);
  shards_.reserve(par_.shards);
  if (config_.streaming_traces) {
    std::vector<trace::StreamingTraces> banks =
        trace::StreamingTraces::generate_partitioned(
            model, config_.num_vms, num_steps, rng, par_.shards);
    for (std::size_t k = 0; k < par_.shards; ++k) {
      shards_.push_back(
          std::make_unique<Shard>(config_, plan_, k, std::move(banks[k])));
    }
  } else {
    traces_ = std::make_unique<trace::TraceSet>(
        trace::TraceSet::generate(model, config_.num_vms, num_steps, rng));
    for (std::size_t k = 0; k < par_.shards; ++k) {
      shards_.push_back(std::make_unique<Shard>(config_, plan_, k, *traces_));
    }
  }
  pool_ = std::make_unique<util::ThreadPool>(par_.threads);
}

ShardedDailyRun::~ShardedDailyRun() = default;

void ShardedDailyRun::ensure_managers() {
  if (!managers_.empty()) return;
  managers_.reserve(shards_.size());
  for (auto& shard : shards_) {
    auto manager = std::make_unique<ckpt::CheckpointManager>(shard->simulator());
    shard->register_checkpoint(*manager);
    managers_.push_back(std::move(manager));
  }
}

std::string ShardedDailyRun::config_digest() const {
  std::string digest = scenario::daily_config_digest(config_, "eco");
  digest += " shards=" + std::to_string(plan_.num_shards());
  char buf[48];
  std::snprintf(buf, sizeof(buf), " sync=%.17g", par_.sync_interval_s);
  digest += buf;
  return digest;
}

void ShardedDailyRun::set_profiler(util::PhaseProfiler* profiler) {
  if (profiler != nullptr) {
    util::require(profiler->num_domains() == shards_.size() + 1,
                  "ShardedDailyRun::set_profiler: expected K+1 domains");
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      profiler->set_domain_name(k, "shard" + std::to_string(k));
    }
    profiler->set_domain_name(shards_.size(), "coordinator");
  }
  profiler_ = profiler;
}

void ShardedDailyRun::save_snapshot(const std::string& path) {
  util::ScopedPhase profile(util::Phase::kCheckpointWrite);
  ensure_managers();
  ckpt::Snapshot snapshot;
  {
    util::BinWriter w;
    w.str(config_digest());
    snapshot.add("meta", w.take());
  }
  {
    // Coordinator state. Snapshots are written after barrier_handoff, so
    // the wish queue is empty by construction; what remains is the epoch
    // clock and the cross-shard accounting.
    util::BinWriter w;
    w.f64(t_);
    w.boolean(warmup_done_);
    w.u64(stats_.barriers);
    w.u64(stats_.stranded_wishes);
    w.u64(stats_.handoff_attempts);
    w.u64(stats_.cross_shard_migrations);
    w.u64(cross_low_);
    w.u64(cross_high_);
    w.u64(coordinator_events_.size());
    for (const metrics::Event& e : coordinator_events_) {
      w.f64(e.time);
      w.u16(static_cast<std::uint16_t>(e.kind));
      w.u64(static_cast<std::uint64_t>(e.vm));
      w.u64(static_cast<std::uint64_t>(e.server));
      w.boolean(e.is_high);
    }
    snapshot.add("coordinator", w.take());
  }
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    managers_[k]->collect(snapshot, "s" + std::to_string(k) + ".");
  }
  ckpt::write_snapshot_file(snapshot, path);
  ++stats_.checkpoints_written;
  if (on_checkpoint) on_checkpoint(path);
}

void ShardedDailyRun::restore_snapshot(const std::string& path) {
  util::require(!ran_, "ShardedDailyRun: restore_snapshot after run");
  util::require(!resumed_, "ShardedDailyRun: restore_snapshot called twice");
  ensure_managers();
  const ckpt::Snapshot snapshot = ckpt::read_snapshot_file(path);

  const ckpt::SnapshotSection* meta = snapshot.find("meta");
  if (meta == nullptr) {
    throw ckpt::SnapshotError("snapshot: '" + path + "' has no meta section");
  }
  {
    util::BinReader r(meta->payload);
    const std::string stored = r.str();
    r.expect_exhausted("meta");
    if (stored != config_digest()) {
      throw ckpt::SnapshotError(
          "snapshot: '" + path +
          "' was written for a different configuration\n  stored:  " + stored +
          "\n  current: " + config_digest());
    }
  }

  const ckpt::SnapshotSection* coord = snapshot.find("coordinator");
  if (coord == nullptr) {
    throw ckpt::SnapshotError("snapshot: '" + path +
                              "' has no coordinator section");
  }
  {
    util::BinReader r(coord->payload);
    t_ = r.f64();
    warmup_done_ = r.boolean();
    stats_.barriers = r.u64();
    stats_.stranded_wishes = r.u64();
    stats_.handoff_attempts = r.u64();
    stats_.cross_shard_migrations = r.u64();
    cross_low_ = r.u64();
    cross_high_ = r.u64();
    coordinator_events_.assign(static_cast<std::size_t>(r.u64()),
                               metrics::Event{});
    for (metrics::Event& e : coordinator_events_) {
      e.time = r.f64();
      e.kind = static_cast<metrics::EventKind>(r.u16());
      e.vm = static_cast<dc::VmId>(r.u64());
      e.server = static_cast<dc::ServerId>(r.u64());
      e.is_high = r.boolean();
    }
    r.expect_exhausted("coordinator");
  }

  std::size_t expected = 2;  // meta + coordinator
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    managers_[k]->restore_from(snapshot, "s" + std::to_string(k) + ".", path);
    expected += managers_[k]->num_sections() + 1;  // sections + engine
  }
  if (snapshot.sections.size() != expected) {
    throw ckpt::SnapshotError(
        "snapshot: '" + path + "' has " +
        std::to_string(snapshot.sections.size()) + " sections, expected " +
        std::to_string(expected) +
        " — the resumed run must enable the same subsystems (faults) and "
        "shard count as the run that wrote the snapshot");
  }
  if (config_.streaming_traces) {
    // Streaming banks carry no snapshot sections: they were regenerated at
    // step 0 by the constructor and will fast-forward deterministically on
    // the first tick. What the fresh banks lack is the rows handed off
    // across shards before the snapshot — re-adopt every mapped row that
    // lives away from its owner bank (order-independent: adoption copies
    // owner-bank state and draws nothing).
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      for (const auto& [vm, row] : shards_[k]->trace_driver().mapped_vms()) {
        (void)vm;
        const std::size_t home = plan_.shard_of_trace(row);
        if (home != k) shards_[k]->adopt_trace_row(row, *shards_[home]);
      }
    }
  }
  resume_path_ = path;
  resumed_ = true;
}

void ShardedDailyRun::run() {
  util::ensure(!ran_, "ShardedDailyRun::run called twice");
  ran_ = true;
  const std::size_t K = shards_.size();

  // Operability wiring from config_.run. All of it is barrier-driven —
  // none of it schedules calendar events — so enabling checkpoints,
  // audits, or the watchdog never perturbs the simulated trajectory.
  const scenario::RunControl& rc = config_.run;
  ckpt_path_ = rc.checkpoint_out;
  if (ckpt_path_.empty() && resumed_) ckpt_path_ = resume_path_;
  if (!ckpt_path_.empty() && rc.checkpoint_every_s > 0.0) {
    ensure_managers();
    next_ckpt_due_ =
        (std::floor(t_ / rc.checkpoint_every_s) + 1.0) * rc.checkpoint_every_s;
  } else {
    ckpt_path_.clear();
  }
  if (rc.audit_every_s > 0.0) {
    const ckpt::AuditAction action = ckpt::parse_audit_action(rc.audit_action);
    auditors_.reserve(K);
    for (auto& shard : shards_) {
      ckpt::AuditorConfig ac;
      ac.period_s = 0.0;  // manual mode: the coordinator drives run_audit
      ac.action = action;
      ac.tolerance = rc.audit_tolerance;
      // Handed-off VMs are departed (unowned) on their source shard, so
      // strict ownership only holds for K=1.
      ac.strict_vm_accounting = rc.audit_strict && K == 1;
      auto auditor = std::make_unique<ckpt::RuntimeAuditor>(
          shard->simulator(), shard->datacenter(), ac);
      auditor->attach_controller(&shard->controller());
      if (shard->fault_injector() != nullptr) {
        auditor->attach_redeploy(&shard->fault_injector()->redeploy());
      }
      auditors_.push_back(std::move(auditor));
    }
    last_energy_.assign(K, 0.0);
    next_audit_due_ =
        (std::floor(t_ / rc.audit_every_s) + 1.0) * rc.audit_every_s;
  }
  if (rc.watchdog_stall_s > 0.0) {
    watchdog_ = std::make_unique<ckpt::Watchdog>(
        ckpt::Watchdog::Config{rc.watchdog_stall_s, {}});
  }

  if (!resumed_) {
    // Fault hooks must be live before the first deployment: message loss
    // applies to the initial placement wave (DailyScenario ordering).
    for (auto& shard : shards_) shard->start_faults();

    // t=0 deployment wave, in global trace order. A VM refused by its
    // owner shard (saturation) is retried on the remaining shards in
    // order; with K=1 there is nobody to retry on and the behavior is
    // DailyScenario's.
    {
      util::ScopedPhase profile(util::Phase::kVmLifecycle);
      for (std::size_t i = 0; i < plan_.num_traces(); ++i) {
        const std::size_t owner = plan_.shard_of_trace(i);
        if (shards_[owner]->deploy(i) || K == 1) continue;
        shards_[owner]->abandon_last_deploy();
        for (std::size_t off = 1; off < K; ++off) {
          Shard& next = *shards_[(owner + off) % K];
          // Streaming banks hold only the owner's rows: the retry shard
          // adopts a copy of the cursor (all banks sit at step 0 here)
          // before it can price and drive the VM.
          if (config_.streaming_traces) {
            next.adopt_trace_row(i, *shards_[owner]);
          }
          if (next.deploy(i)) break;
          next.abandon_last_deploy();
        }
      }
    }

    for (auto& shard : shards_) shard->start_services();
  }

  if (watchdog_) watchdog_->arm();

  // Epoch loop. Barrier times are multiples of the sync interval clipped
  // to the warmup boundary and the horizon, so the accounting reset and
  // the final settle happen at exactly the single-threaded times. On a
  // resumed run t_ starts at the snapshot's barrier and the loop simply
  // continues.
  const sim::SimTime horizon = config_.horizon_s;
  const sim::SimTime warmup = config_.warmup_s;
  last_epoch_wall_s_.assign(K, 0.0);
  last_barrier_lag_s_.assign(K, 0.0);
  // Coordinator-side samples (hand-off, checkpoints, barrier lag) go to
  // the profiler's extra domain; without a profiler this re-installs the
  // thread's current domain, a no-op.
  util::DomainScope coordinator_scope(
      profiler_ != nullptr ? &profiler_->domain(K) : util::current_domain());
  // Each worker writes only its own shard's slot; the pool join makes the
  // writes visible to the coordinator before it reads them.
  const auto run_shard_epoch = [&](std::size_t k, sim::SimTime until) {
    util::DomainScope scope(profiler_ != nullptr ? &profiler_->domain(k)
                                                 : util::current_domain());
    const std::uint64_t t0 = util::monotonic_ns();
    shards_[k]->run_until(until);
    last_epoch_wall_s_[k] =
        static_cast<double>(util::monotonic_ns() - t0) * 1e-9;
  };
  while (t_ < horizon) {
    sim::SimTime next = t_ + par_.sync_interval_s;
    if (!warmup_done_ && warmup > t_) next = std::min(next, warmup);
    next = std::min(next, horizon);

    if (par_.epoch_order) {
      const std::vector<std::size_t> order =
          par_.epoch_order(stats_.barriers, K);
      util::require(order.size() == K,
                    "ShardedDailyRun: epoch_order must return a permutation "
                    "of the shard indices");
      std::vector<std::uint8_t> seen(K, 0);
      for (std::size_t k : order) {
        util::require(k < K && seen[k] == 0,
                      "ShardedDailyRun: epoch_order must return a "
                      "permutation of the shard indices");
        seen[k] = 1;
        run_shard_epoch(k, next);
      }
    } else {
      pool_->parallel_for(0, K,
                          [&](std::size_t k) { run_shard_epoch(k, next); });
    }
    const double slowest = *std::max_element(last_epoch_wall_s_.begin(),
                                             last_epoch_wall_s_.end());
    for (std::size_t k = 0; k < K; ++k) {
      last_barrier_lag_s_[k] = slowest - last_epoch_wall_s_[k];
      if (profiler_ != nullptr) {
        // Attributed to the shard that sat idle, not to the coordinator.
        profiler_->domain(k).add(
            util::Phase::kBarrierWait,
            static_cast<std::uint64_t>(last_barrier_lag_s_[k] * 1e9));
      }
    }

    if (!warmup_done_ && next >= warmup) {
      for (auto& shard : shards_) shard->warmup_reset();
      last_energy_.assign(last_energy_.size(), 0.0);
      warmup_done_ = true;
    }
    {
      util::ScopedPhase profile(util::Phase::kHandoff);
      barrier_handoff(next);
    }
    ++stats_.barriers;
    t_ = next;
    at_barrier();
  }
  if (watchdog_) watchdog_->disarm();
  for (auto& shard : shards_) shard->finish(horizon);

  for (auto& shard : shards_) {
    stats_.executed_events += shard->simulator().executed_events();
    const dc::DataCenter& sdc = shard->datacenter();
    stats_.migrations += sdc.total_migrations();
    stats_.activations += sdc.total_activations();
    stats_.hibernations += sdc.total_hibernations();
    stats_.energy_joules += sdc.energy_joules();
    const core::EcoCloudController& eco = shard->controller();
    stats_.low_migrations += eco.low_migrations();
    stats_.high_migrations += eco.high_migrations();
    stats_.wake_ups += eco.wake_ups();
    stats_.assignment_failures += eco.assignment_failures();
  }
  stats_.migrations += stats_.cross_shard_migrations;
  stats_.low_migrations += cross_low_;
  stats_.high_migrations += cross_high_;
}

void ShardedDailyRun::barrier_handoff(sim::SimTime now) {
  // Serial and in shard order: the ONLY place where shards interact, and
  // the order never depends on thread scheduling.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const std::vector<MigrationWish> wishes = shards_[k]->take_wishes();
    stats_.stranded_wishes += wishes.size();
    if (shards_.size() == 1) continue;  // nowhere to hand off
    for (const MigrationWish& wish : wishes) resolve_wish(k, wish, now);
  }
}

void ShardedDailyRun::resolve_wish(std::size_t source_shard,
                                   const MigrationWish& wish,
                                   sim::SimTime now) {
  Shard& src = *shards_[source_shard];
  const dc::DataCenter& sdc = src.datacenter();
  const dc::Server& server = sdc.server(wish.server);
  if (!server.active() || server.empty()) return;

  // Re-validate against the band: the epoch may have resolved the excess
  // (or the deficit) locally since the wish was recorded.
  const core::EcoCloudParams& p = config_.params;
  const double u_eff =
      core::MigrationProcedure::effective_utilization(sdc, server);
  const bool is_high = u_eff > p.th;
  if (!is_high && u_eff >= p.tl) return;
  ++stats_.handoff_attempts;

  // VM selection mirrors MigrationProcedure's rules (share > u - Th for
  // high, any movable VM for low) but replaces the uniform draw with a
  // (demand, id) order: the coordinator must not consume any shard's RNG,
  // or a K=1 run would diverge from the single-threaded engine.
  dc::VmId pick = dc::kNoVm;
  if (is_high) {
    const double share_needed = u_eff - p.th;
    dc::VmId smallest_fit = dc::kNoVm;
    double smallest_fit_demand = std::numeric_limits<double>::infinity();
    dc::VmId largest = dc::kNoVm;
    double largest_demand = -1.0;
    for (dc::VmId v : server.vms()) {
      const dc::Vm& vm = sdc.vm(v);
      if (vm.migrating()) continue;
      const double share = vm.demand_mhz / server.capacity_mhz();
      if (share > share_needed &&
          (vm.demand_mhz < smallest_fit_demand ||
           (vm.demand_mhz == smallest_fit_demand && v < smallest_fit))) {
        smallest_fit = v;
        smallest_fit_demand = vm.demand_mhz;
      }
      if (vm.demand_mhz > largest_demand ||
          (vm.demand_mhz == largest_demand && v < largest)) {
        largest = v;
        largest_demand = vm.demand_mhz;
      }
    }
    // Smallest sufficient shedding, else the largest VM (footnote 3).
    pick = smallest_fit != dc::kNoVm ? smallest_fit : largest;
  } else {
    double smallest_demand = std::numeric_limits<double>::infinity();
    for (dc::VmId v : server.vms()) {
      const dc::Vm& vm = sdc.vm(v);
      if (vm.migrating()) continue;
      if (vm.demand_mhz < smallest_demand ||
          (vm.demand_mhz == smallest_demand && v < pick)) {
        pick = v;
        smallest_demand = vm.demand_mhz;
      }
    }
  }
  if (pick == dc::kNoVm) return;  // everything is already leaving

  const double demand_mhz = sdc.vm(pick).demand_mhz;
  const double ram_mb = sdc.vm(pick).ram_mb;
  const double ta_override =
      is_high ? std::min(1.0, p.high_dest_factor * server.utilization()) : -1.0;

  // Destination search over the OTHER shards, starting after the source
  // and wrapping: each destination shard answers with its own invitation
  // round (its controller's RNG — drawn serially, so deterministic).
  for (std::size_t off = 1; off < shards_.size(); ++off) {
    const std::size_t d = (source_shard + off) % shards_.size();
    const std::optional<dc::ServerId> dest =
        shards_[d]->invite(now, demand_mhz, ram_mb, ta_override);
    if (!dest) continue;

    const std::size_t row = src.trace_of(pick);
    if (config_.streaming_traces) {
      // Copy the row's cursor from its OWNER bank (not necessarily the
      // source shard: the VM may be on its second hand-off, but the
      // owner's copy is identical — a row's state is a pure function of
      // its captured cursor and the step, and every bank sits at this
      // barrier's step). Draws no RNG, so materialized runs are unchanged.
      shards_[d]->adopt_trace_row(row, *shards_[plan_.shard_of_trace(row)]);
    }
    src.release_vm(pick);
    shards_[d]->accept_transfer(now, row, *dest);

    ++stats_.cross_shard_migrations;
    ++(is_high ? cross_high_ : cross_low_);
    const auto global_vm = static_cast<dc::VmId>(row);
    coordinator_events_.push_back(metrics::Event{
        now, metrics::EventKind::kMigrationStart, global_vm, dc::kNoServer,
        is_high});
    coordinator_events_.push_back(metrics::Event{
        now, metrics::EventKind::kMigrationComplete, global_vm, dc::kNoServer,
        is_high});
    return;
  }
}

std::vector<metrics::Sample> ShardedDailyRun::merged_samples() const {
  // K=1: hand back shard 0's samples verbatim — no re-derivation, so the
  // bytes a CSV writer produces match the single-threaded run exactly.
  if (shards_.size() == 1) return shards_[0]->collector().samples();

  const std::size_t n = shards_[0]->collector().samples().size();
  for (const auto& shard : shards_) {
    util::ensure(shard->collector().samples().size() == n,
                 "ShardedDailyRun: shards sampled different window counts");
  }
  std::vector<metrics::Sample> merged(n);
  for (std::size_t i = 0; i < n; ++i) {
    metrics::Sample& m = merged[i];
    m.time = shards_[0]->collector().samples()[i].time;
    double capacity = 0.0;
    double demand = 0.0;
    for (const auto& shard : shards_) {
      const metrics::Sample& s = shard->collector().samples()[i];
      m.active_servers += s.active_servers;
      m.booting_servers += s.booting_servers;
      m.power_w += s.power_w;
      m.window_energy_j += s.window_energy_j;
      m.window_vm_seconds += s.window_vm_seconds;
      m.window_overload_vm_seconds += s.window_overload_vm_seconds;
      const double cap = shard->datacenter().total_capacity_mhz();
      capacity += cap;
      demand += s.overall_load * cap;
    }
    // Capacity-weighted mean == global demand / global capacity, the
    // single-datacenter definition of overall_load.
    m.overall_load = capacity > 0.0 ? demand / capacity : 0.0;
    m.overload_percent =
        m.window_vm_seconds > 0.0
            ? 100.0 * m.window_overload_vm_seconds / m.window_vm_seconds
            : 0.0;
  }
  return merged;
}

void ShardedDailyRun::at_barrier() {
  if (!auditors_.empty() && t_ >= next_audit_due_) {
    run_audits();
    next_audit_due_ = (std::floor(t_ / config_.run.audit_every_s) + 1.0) *
                      config_.run.audit_every_s;
  }
  if (!ckpt_path_.empty() && t_ >= next_ckpt_due_) {
    save_snapshot(ckpt_path_);
    next_ckpt_due_ = (std::floor(t_ / config_.run.checkpoint_every_s) + 1.0) *
                     config_.run.checkpoint_every_s;
  }
  if (watchdog_) {
    std::uint64_t executed = 0;
    for (const auto& shard : shards_) {
      executed += shard->simulator().executed_events();
    }
    watchdog_->beat(executed, t_);
  }
  if (on_barrier) on_barrier(t_);
}

void ShardedDailyRun::run_audits() {
  ++stats_.audits_run;
  // Per-shard invariants first (calendar integrity, fleet accounting, VM
  // ownership vs controller/redeploy tracking) — each shard's auditor
  // applies the configured action itself (log/heal/abort).
  for (auto& auditor : auditors_) {
    if (!auditor->run_audit().empty()) ++stats_.audit_failures;
  }
  // Then the invariants no single shard can see.
  const std::vector<std::string> cross = cross_shard_failures();
  if (cross.empty()) return;
  stats_.audit_failures += cross.size();
  std::fprintf(stderr, "[audit] t=%.3f: %zu cross-shard violation(s):\n", t_,
               cross.size());
  for (const std::string& failure : cross) {
    std::fprintf(stderr, "[audit]   %s\n", failure.c_str());
  }
  // kHeal has no cross-shard remedy (nothing cacheable spans shards), so
  // it degrades to logging; abort keeps its distinct exit code.
  if (ckpt::parse_audit_action(config_.run.audit_action) ==
      ckpt::AuditAction::kAbort) {
    std::fprintf(stderr, "[audit] aborting (action=abort)\n");
    std::_Exit(util::exit_code::kAuditViolation);
  }
}

std::vector<std::string> ShardedDailyRun::cross_shard_failures() {
  std::vector<std::string> failures;

  // Every global trace row must be driven by at most one shard: a row
  // driven twice means a cross-shard hand-off duplicated a VM instead of
  // moving it.
  std::vector<std::uint8_t> driven(plan_.num_traces(), 0);
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const Shard& shard = *shards_[k];
    for (const auto& [vm, row] : shard.trace_driver().mapped_vms()) {
      (void)vm;
      if (driven[row]++ != 0) {
        failures.push_back("trace row " + std::to_string(row) +
                           " is driven by more than one shard (duplicate VM "
                           "after hand-off; last seen on shard " +
                           std::to_string(k) + ")");
      }
    }
  }

  // Fleet capacity conservation: the shards must partition the configured
  // fleet exactly — capacity can neither appear nor vanish at hand-offs.
  double capacity = 0.0;
  for (const auto& shard : shards_) {
    capacity += shard->datacenter().total_capacity_mhz();
  }
  double expected = 0.0;
  const scenario::FleetConfig& fleet = config_.fleet;
  for (std::size_t i = 0; i < fleet.num_servers; ++i) {
    expected += static_cast<double>(fleet.core_mix[i % fleet.core_mix.size()]) *
                fleet.core_mhz;
  }
  if (std::abs(capacity - expected) >
      config_.run.audit_tolerance * expected) {
    failures.push_back("fleet capacity is " + std::to_string(capacity) +
                       " MHz across shards, expected " +
                       std::to_string(expected) + " MHz from the config");
  }

  // Energy conservation: each shard's cumulative energy integral must be
  // non-decreasing between barriers (it only resets at the warmup
  // boundary, where last_energy_ is cleared too).
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const double energy = shards_[k]->datacenter().energy_joules();
    if (energy < last_energy_[k]) {
      failures.push_back("shard " + std::to_string(k) +
                         " energy integral went backwards: " +
                         std::to_string(last_energy_[k]) + " J -> " +
                         std::to_string(energy) + " J");
    }
    last_energy_[k] = energy;
  }
  return failures;
}

std::vector<metrics::Event> ShardedDailyRun::merged_events() const {
  // (K+1)-way merge over per-shard segments (each already time-ordered)
  // plus the coordinator's cross-shard rows, keyed by (time, stream) with
  // the coordinator last, with local ids translated to global — K=1
  // reproduces a single-threaded run's stream exactly.
  std::vector<EventStream> streams;
  streams.reserve(shards_.size() + 1);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard* shard = shards_[s].get();
    streams.push_back(EventStream{
        &shard->event_log().events(), [this, shard, s](const metrics::Event& raw) {
          metrics::Event e = raw;
          if (e.vm != dc::kNoVm) {
            e.vm = static_cast<dc::VmId>(shard->trace_of(e.vm));
          }
          if (e.server != dc::kNoServer) {
            e.server = plan_.global_server(s, e.server);
          }
          return e;
        }});
  }
  streams.push_back(EventStream{&coordinator_events_, {}});
  return merge_event_streams(streams);
}

void ShardedDailyRun::write_events_csv(std::ostream& out) const {
  write_merged_events_csv(out, merged_events());
}

void ShardedDailyRun::write_events_binary(std::ostream& out) const {
  metrics::write_binary_events(out, merged_events());
}

}  // namespace ecocloud::par
