#include "ecocloud/par/sharded_runner.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <utility>

#include "ecocloud/core/migration.hpp"
#include "ecocloud/util/csv.hpp"
#include "ecocloud/util/rng.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::par {

ShardedDailyRun::ShardedDailyRun(scenario::DailyConfig config, ParConfig par)
    : config_(std::move(config)),
      par_(par),
      plan_(par.shards, config_.fleet.num_servers, config_.num_vms) {
  config_.params.validate();
  util::require(par_.sync_interval_s > 0.0,
                "ShardedDailyRun: sync interval must be > 0");
  util::require(!config_.topology,
                "ShardedDailyRun: rack topology is not supported in sharded "
                "mode (invitations would need cross-shard rack scoping)");
  util::require(!config_.faults.enabled(),
                "ShardedDailyRun: fault injection is not supported in "
                "sharded mode");
  util::require(config_.run.checkpoint_out.empty() &&
                    config_.run.checkpoint_every_s <= 0.0 &&
                    config_.run.audit_every_s <= 0.0 &&
                    config_.run.watchdog_stall_s <= 0.0,
                "ShardedDailyRun: checkpoint/audit/watchdog wiring is not "
                "supported in sharded mode");

  // The trace set is generated once from the bare seed — exactly as
  // DailyScenario does — and shared read-only by every shard, so the
  // workload is a function of the config alone, not of K.
  util::Rng rng(config_.seed);
  const auto num_steps =
      static_cast<std::size_t>(config_.horizon_s /
                               config_.workload.sample_period_s) +
      2;
  trace::WorkloadModel model(config_.workload);
  traces_ = std::make_unique<trace::TraceSet>(
      trace::TraceSet::generate(model, config_.num_vms, num_steps, rng));

  shards_.reserve(par_.shards);
  for (std::size_t k = 0; k < par_.shards; ++k) {
    shards_.push_back(std::make_unique<Shard>(config_, plan_, k, *traces_));
  }
  pool_ = std::make_unique<util::ThreadPool>(par_.threads);
}

ShardedDailyRun::~ShardedDailyRun() = default;

void ShardedDailyRun::run() {
  util::ensure(!ran_, "ShardedDailyRun::run called twice");
  ran_ = true;
  const std::size_t K = shards_.size();

  // t=0 deployment wave, in global trace order. A VM refused by its owner
  // shard (saturation) is retried on the remaining shards in order; with
  // K=1 there is nobody to retry on and the behavior is DailyScenario's.
  for (std::size_t i = 0; i < plan_.num_traces(); ++i) {
    const std::size_t owner = plan_.shard_of_trace(i);
    if (shards_[owner]->deploy(i) || K == 1) continue;
    shards_[owner]->abandon_last_deploy();
    for (std::size_t off = 1; off < K; ++off) {
      Shard& next = *shards_[(owner + off) % K];
      if (next.deploy(i)) break;
      next.abandon_last_deploy();
    }
  }

  for (auto& shard : shards_) shard->start_services();

  // Epoch loop. Barrier times are multiples of the sync interval clipped
  // to the warmup boundary and the horizon, so the accounting reset and
  // the final settle happen at exactly the single-threaded times.
  const sim::SimTime horizon = config_.horizon_s;
  const sim::SimTime warmup = config_.warmup_s;
  bool warmup_done = warmup <= 0.0;
  sim::SimTime t = 0.0;
  while (t < horizon) {
    sim::SimTime next = t + par_.sync_interval_s;
    if (!warmup_done && warmup > t) next = std::min(next, warmup);
    next = std::min(next, horizon);

    pool_->parallel_for(0, K,
                        [&](std::size_t k) { shards_[k]->run_until(next); });

    if (!warmup_done && next >= warmup) {
      for (auto& shard : shards_) shard->warmup_reset();
      warmup_done = true;
    }
    barrier_handoff(next);
    ++stats_.barriers;
    t = next;
  }
  for (auto& shard : shards_) shard->finish(horizon);

  for (auto& shard : shards_) {
    stats_.executed_events += shard->simulator().executed_events();
    const dc::DataCenter& sdc = shard->datacenter();
    stats_.migrations += sdc.total_migrations();
    stats_.activations += sdc.total_activations();
    stats_.hibernations += sdc.total_hibernations();
    stats_.energy_joules += sdc.energy_joules();
    const core::EcoCloudController& eco = shard->controller();
    stats_.low_migrations += eco.low_migrations();
    stats_.high_migrations += eco.high_migrations();
    stats_.wake_ups += eco.wake_ups();
    stats_.assignment_failures += eco.assignment_failures();
  }
  stats_.migrations += stats_.cross_shard_migrations;
  stats_.low_migrations += cross_low_;
  stats_.high_migrations += cross_high_;
}

void ShardedDailyRun::barrier_handoff(sim::SimTime now) {
  // Serial and in shard order: the ONLY place where shards interact, and
  // the order never depends on thread scheduling.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const std::vector<MigrationWish> wishes = shards_[k]->take_wishes();
    stats_.stranded_wishes += wishes.size();
    if (shards_.size() == 1) continue;  // nowhere to hand off
    for (const MigrationWish& wish : wishes) resolve_wish(k, wish, now);
  }
}

void ShardedDailyRun::resolve_wish(std::size_t source_shard,
                                   const MigrationWish& wish,
                                   sim::SimTime now) {
  Shard& src = *shards_[source_shard];
  const dc::DataCenter& sdc = src.datacenter();
  const dc::Server& server = sdc.server(wish.server);
  if (!server.active() || server.empty()) return;

  // Re-validate against the band: the epoch may have resolved the excess
  // (or the deficit) locally since the wish was recorded.
  const core::EcoCloudParams& p = config_.params;
  const double u_eff =
      core::MigrationProcedure::effective_utilization(sdc, server);
  const bool is_high = u_eff > p.th;
  if (!is_high && u_eff >= p.tl) return;
  ++stats_.handoff_attempts;

  // VM selection mirrors MigrationProcedure's rules (share > u - Th for
  // high, any movable VM for low) but replaces the uniform draw with a
  // (demand, id) order: the coordinator must not consume any shard's RNG,
  // or a K=1 run would diverge from the single-threaded engine.
  dc::VmId pick = dc::kNoVm;
  if (is_high) {
    const double share_needed = u_eff - p.th;
    dc::VmId smallest_fit = dc::kNoVm;
    double smallest_fit_demand = std::numeric_limits<double>::infinity();
    dc::VmId largest = dc::kNoVm;
    double largest_demand = -1.0;
    for (dc::VmId v : server.vms()) {
      const dc::Vm& vm = sdc.vm(v);
      if (vm.migrating()) continue;
      const double share = vm.demand_mhz / server.capacity_mhz();
      if (share > share_needed &&
          (vm.demand_mhz < smallest_fit_demand ||
           (vm.demand_mhz == smallest_fit_demand && v < smallest_fit))) {
        smallest_fit = v;
        smallest_fit_demand = vm.demand_mhz;
      }
      if (vm.demand_mhz > largest_demand ||
          (vm.demand_mhz == largest_demand && v < largest)) {
        largest = v;
        largest_demand = vm.demand_mhz;
      }
    }
    // Smallest sufficient shedding, else the largest VM (footnote 3).
    pick = smallest_fit != dc::kNoVm ? smallest_fit : largest;
  } else {
    double smallest_demand = std::numeric_limits<double>::infinity();
    for (dc::VmId v : server.vms()) {
      const dc::Vm& vm = sdc.vm(v);
      if (vm.migrating()) continue;
      if (vm.demand_mhz < smallest_demand ||
          (vm.demand_mhz == smallest_demand && v < pick)) {
        pick = v;
        smallest_demand = vm.demand_mhz;
      }
    }
  }
  if (pick == dc::kNoVm) return;  // everything is already leaving

  const double demand_mhz = sdc.vm(pick).demand_mhz;
  const double ram_mb = sdc.vm(pick).ram_mb;
  const double ta_override =
      is_high ? std::min(1.0, p.high_dest_factor * server.utilization()) : -1.0;

  // Destination search over the OTHER shards, starting after the source
  // and wrapping: each destination shard answers with its own invitation
  // round (its controller's RNG — drawn serially, so deterministic).
  for (std::size_t off = 1; off < shards_.size(); ++off) {
    const std::size_t d = (source_shard + off) % shards_.size();
    const std::optional<dc::ServerId> dest =
        shards_[d]->invite(now, demand_mhz, ram_mb, ta_override);
    if (!dest) continue;

    const std::size_t row = src.trace_of(pick);
    src.release_vm(pick);
    shards_[d]->accept_transfer(now, row, *dest);

    ++stats_.cross_shard_migrations;
    ++(is_high ? cross_high_ : cross_low_);
    const auto global_vm = static_cast<dc::VmId>(row);
    coordinator_events_.push_back(metrics::Event{
        now, metrics::EventKind::kMigrationStart, global_vm, dc::kNoServer,
        is_high});
    coordinator_events_.push_back(metrics::Event{
        now, metrics::EventKind::kMigrationComplete, global_vm, dc::kNoServer,
        is_high});
    return;
  }
}

std::vector<metrics::Sample> ShardedDailyRun::merged_samples() const {
  // K=1: hand back shard 0's samples verbatim — no re-derivation, so the
  // bytes a CSV writer produces match the single-threaded run exactly.
  if (shards_.size() == 1) return shards_[0]->collector().samples();

  const std::size_t n = shards_[0]->collector().samples().size();
  for (const auto& shard : shards_) {
    util::ensure(shard->collector().samples().size() == n,
                 "ShardedDailyRun: shards sampled different window counts");
  }
  std::vector<metrics::Sample> merged(n);
  for (std::size_t i = 0; i < n; ++i) {
    metrics::Sample& m = merged[i];
    m.time = shards_[0]->collector().samples()[i].time;
    double capacity = 0.0;
    double demand = 0.0;
    for (const auto& shard : shards_) {
      const metrics::Sample& s = shard->collector().samples()[i];
      m.active_servers += s.active_servers;
      m.booting_servers += s.booting_servers;
      m.power_w += s.power_w;
      m.window_energy_j += s.window_energy_j;
      m.window_vm_seconds += s.window_vm_seconds;
      m.window_overload_vm_seconds += s.window_overload_vm_seconds;
      const double cap = shard->datacenter().total_capacity_mhz();
      capacity += cap;
      demand += s.overall_load * cap;
    }
    // Capacity-weighted mean == global demand / global capacity, the
    // single-datacenter definition of overall_load.
    m.overall_load = capacity > 0.0 ? demand / capacity : 0.0;
    m.overload_percent =
        m.window_vm_seconds > 0.0
            ? 100.0 * m.window_overload_vm_seconds / m.window_vm_seconds
            : 0.0;
  }
  return merged;
}

void ShardedDailyRun::write_events_csv(std::ostream& out) const {
  // (K+1)-way merge over per-shard segments (each already time-ordered)
  // plus the coordinator's cross-shard rows, keyed by (time, source) with
  // the coordinator last. Row format is EventLog::write_csv's, with local
  // ids translated to global — K=1 reproduces its bytes exactly.
  const std::size_t K = shards_.size();
  std::vector<std::size_t> pos(K + 1, 0);
  const auto size_of = [&](std::size_t s) {
    return s < K ? shards_[s]->event_log().events().size()
                 : coordinator_events_.size();
  };
  const auto translated = [&](std::size_t s) {
    if (s == K) return coordinator_events_[pos[s]];
    metrics::Event e = shards_[s]->event_log().events()[pos[s]];
    if (e.vm != dc::kNoVm) {
      e.vm = static_cast<dc::VmId>(shards_[s]->trace_of(e.vm));
    }
    if (e.server != dc::kNoServer) {
      e.server = plan_.global_server(s, e.server);
    }
    return e;
  };

  util::CsvWriter csv(out, 10);
  csv.header({"time_s", "kind", "vm", "server", "is_high"});
  for (;;) {
    std::size_t best = K + 1;
    double best_time = 0.0;
    for (std::size_t s = 0; s <= K; ++s) {
      if (pos[s] >= size_of(s)) continue;
      const double time = s < K ? shards_[s]->event_log().events()[pos[s]].time
                                : coordinator_events_[pos[s]].time;
      if (best == K + 1 || time < best_time) {
        best = s;
        best_time = time;
      }
    }
    if (best == K + 1) break;
    const metrics::Event e = translated(best);
    ++pos[best];
    csv.field(e.time)
        .field(metrics::to_string(e.kind))
        .field(static_cast<long long>(
            e.vm == dc::kNoVm ? -1 : static_cast<long long>(e.vm)))
        .field(static_cast<long long>(
            e.server == dc::kNoServer ? -1
                                      : static_cast<long long>(e.server)))
        .field(static_cast<long long>(e.is_high ? 1 : 0));
    csv.end_row();
  }
}

}  // namespace ecocloud::par
