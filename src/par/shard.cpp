#include "ecocloud/par/shard.hpp"

#include "ecocloud/ckpt/checkpoint.hpp"
#include "ecocloud/util/rng.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::par {

namespace {

/// Seed derivation for shard k: XOR with k spread over the full 64 bits
/// (multiples of the golden-ratio increment, as in splitmix64). Shard 0's
/// term is zero, so its stream is exactly the single-threaded engine's.
std::uint64_t shard_seed(std::uint64_t seed, std::size_t shard_id) {
  return seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(shard_id));
}

/// Restrict a global fault schedule to the servers shard \p id owns and
/// rewrite the ranges into local ids. Entries whose [first, last] range
/// contains no server of this shard are dropped, so every scripted crash
/// fires on exactly one shard and a K=1 schedule is unchanged.
faults::FaultParams localize_faults(const faults::FaultParams& global,
                                    const ShardPlan& plan, std::size_t id) {
  faults::FaultParams local = global;
  local.schedule.clear();
  const auto k = static_cast<dc::ServerId>(plan.num_shards());
  const auto self = static_cast<dc::ServerId>(id);
  for (faults::ScriptedFault fault : global.schedule) {
    // Smallest/largest global server in [first, last] congruent to id
    // modulo K; empty intersections are skipped.
    const dc::ServerId g0 =
        fault.first + ((self + k - fault.first % k) % k);
    if (g0 > fault.last) continue;
    const dc::ServerId g1 = fault.last - ((fault.last % k + k - self) % k);
    fault.first = g0 / k;
    fault.last = g1 / k;
    local.schedule.push_back(fault);
  }
  return local;
}

}  // namespace

Shard::Shard(const scenario::DailyConfig& config, const ShardPlan& plan,
             std::size_t shard_id, const trace::TraceSet& traces)
    : plan_(plan), id_(shard_id), traces_(&traces) {
  init(config);
}

Shard::Shard(const scenario::DailyConfig& config, const ShardPlan& plan,
             std::size_t shard_id, trace::StreamingTraces bank)
    : plan_(plan),
      id_(shard_id),
      streaming_(
          std::make_unique<trace::StreamingTraces>(std::move(bank))) {
  init(config);
}

void Shard::init(const scenario::DailyConfig& config) {
  // Mirror DailyScenario's construction exactly (scenario.cpp): fleet,
  // trace driver, controller from Rng(seed).split(1), collector, log. Any
  // divergence here breaks the K=1 bit-identity pin.
  dc_ = std::make_unique<dc::DataCenter>();
  const scenario::FleetConfig& fleet = config.fleet;
  util::require(!fleet.core_mix.empty(), "Shard: empty core mix");
  const std::size_t locals = plan_.servers_in(id_);
  for (std::size_t l = 0; l < locals; ++l) {
    // The class mix follows the *global* index, so every shard inherits
    // the fleet's 4/6/8-core round-robin proportions.
    const auto global = static_cast<std::size_t>(
        plan_.global_server(id_, static_cast<dc::ServerId>(l)));
    const unsigned cores = fleet.core_mix[global % fleet.core_mix.size()];
    dc_->add_server(cores, fleet.core_mhz,
                    fleet.ram_per_core_mb * static_cast<double>(cores));
  }

  if (streaming_) {
    trace_driver_ = std::make_unique<core::TraceDriver>(sim_, *dc_, *streaming_);
  } else {
    trace_driver_ = std::make_unique<core::TraceDriver>(sim_, *dc_, *traces_);
  }

  util::Rng rng(shard_seed(config.seed, id_));
  eco_ = std::make_unique<core::EcoCloudController>(sim_, *dc_, config.params,
                                                    rng.split(1));

  collector_ = std::make_unique<metrics::MetricsCollector>(sim_, *dc_);
  collector_->attach(*eco_);
  log_ = std::make_unique<metrics::EventLog>();
  log_->attach(*eco_);

  if (config.faults.enabled()) {
    // Stream 7 mirrors DailyScenario: fault draws stay out of the
    // controller stream (split 1), and shard 0's stream is exactly the
    // single-threaded injector's. Every shard gets an injector even when
    // its localized schedule is empty, so the stochastic processes and
    // snapshot section layout are uniform across shards.
    injector_ = std::make_unique<faults::FaultInjector>(
        sim_, *dc_, *eco_, localize_faults(config.faults, plan_, id_),
        rng.split(7));
  }

  wished_.assign(locals, 0);
  eco_->events().on_migration_stranded = [this](sim::SimTime t,
                                                dc::ServerId server,
                                                bool is_high) {
    // Record-only: no RNG draw, no state change, so single-threaded
    // behavior is untouched whether or not anyone drains the wishes.
    if (wished_[server]) return;
    wished_[server] = 1;
    wishes_.push_back(MigrationWish{t, server, is_high});
  };
}

double Shard::trace_ram_mb(std::size_t trace_index) const {
  return streaming_ ? streaming_->ram_mb(trace_index)
                    : traces_->ram_mb(trace_index);
}

void Shard::adopt_trace_row(std::size_t trace_index, const Shard& home) {
  util::require(streaming_ != nullptr && home.streaming_ != nullptr,
                "Shard::adopt_trace_row: both shards must be streaming-mode");
  streaming_->adopt_row(trace_index, *home.streaming_);
}

bool Shard::deploy(std::size_t trace_index) {
  const dc::VmId vm = dc_->create_vm(0.0, trace_ram_mb(trace_index));
  vm_trace_.push_back(trace_index);
  trace_driver_->map_vm(trace_index, vm);
  last_deployed_ = vm;
  return eco_->deploy_vm(vm);
}

void Shard::abandon_last_deploy() {
  util::require(last_deployed_ != dc::kNoVm,
                "Shard::abandon_last_deploy: nothing to abandon");
  trace_driver_->unmap_vm(last_deployed_);
  last_deployed_ = dc::kNoVm;
}

void Shard::start_faults() {
  if (injector_) injector_->start();
}

void Shard::start_services() {
  trace_driver_->start();
  eco_->start();
  collector_->start();
}

void Shard::run_until(sim::SimTime t) { sim_.run_until(t); }

void Shard::warmup_reset() {
  dc_->reset_accounting(sim_.now());
  collector_->rebase();
  eco_->reset_counters();
}

void Shard::finish(sim::SimTime horizon) {
  dc_->advance_to(horizon);
  if (injector_) injector_->finalize(horizon);
}

void Shard::save_state(util::BinWriter& w) const {
  w.u64(vm_trace_.size());
  for (std::size_t trace : vm_trace_) w.u64(trace);
  w.u64(static_cast<std::uint64_t>(last_deployed_));
  w.u64(wishes_.size());
  for (const MigrationWish& wish : wishes_) {
    w.f64(wish.time);
    w.u64(static_cast<std::uint64_t>(wish.server));
    w.boolean(wish.is_high);
  }
  w.u64(wished_.size());
  for (std::uint8_t flag : wished_) w.boolean(flag != 0);
}

void Shard::load_state(util::BinReader& r) {
  vm_trace_.assign(static_cast<std::size_t>(r.u64()), 0);
  for (std::size_t& trace : vm_trace_) trace = static_cast<std::size_t>(r.u64());
  last_deployed_ = static_cast<dc::VmId>(r.u64());
  wishes_.assign(static_cast<std::size_t>(r.u64()), MigrationWish{});
  for (MigrationWish& wish : wishes_) {
    wish.time = r.f64();
    wish.server = static_cast<dc::ServerId>(r.u64());
    wish.is_high = r.boolean();
  }
  wished_.assign(static_cast<std::size_t>(r.u64()), 0);
  for (std::uint8_t& flag : wished_) flag = r.boolean() ? 1 : 0;
}

void Shard::register_checkpoint(ckpt::CheckpointManager& manager) {
  manager.add_section(
      "shard", [this](util::BinWriter& w) { save_state(w); },
      [this](util::BinReader& r) { load_state(r); });
  manager.add_section(
      "datacenter", [this](util::BinWriter& w) { dc_->save_state(w); },
      [this](util::BinReader& r) { dc_->load_state(r); });
  manager.add_section(
      "controller", [this](util::BinWriter& w) { eco_->save_state(w); },
      [this](util::BinReader& r) { eco_->load_state(r); });
  manager.add_section(
      "trace_driver",
      [this](util::BinWriter& w) { trace_driver_->save_state(w); },
      [this](util::BinReader& r) { trace_driver_->load_state(r); });
  manager.add_section(
      "collector", [this](util::BinWriter& w) { collector_->save_state(w); },
      [this](util::BinReader& r) { collector_->load_state(r); });
  manager.add_section(
      "event_log", [this](util::BinWriter& w) { log_->save_state(w); },
      [this](util::BinReader& r) { log_->load_state(r); });
  if (injector_) {
    manager.add_section(
        "faults", [this](util::BinWriter& w) { injector_->save_state(w); },
        [this](util::BinReader& r) { injector_->load_state(r); });
  }

  manager.add_owner(
      sim::tag_owner::kController,
      [this](const sim::EventTag& tag) { return eco_->rebuild_event(tag); },
      [this](const sim::EventTag& tag, sim::EventHandle handle) {
        eco_->bind_event(tag, handle);
      });
  manager.add_owner(sim::tag_owner::kTraceDriver,
                    [this](const sim::EventTag& tag) {
                      return trace_driver_->rebuild_event(tag);
                    });
  manager.add_owner(sim::tag_owner::kCollector,
                    [this](const sim::EventTag& tag) {
                      return collector_->rebuild_event(tag);
                    });
  if (injector_) {
    manager.add_owner(sim::tag_owner::kFaults,
                      [this](const sim::EventTag& tag) {
                        return injector_->rebuild_event(tag);
                      });
    manager.add_owner(
        sim::tag_owner::kRedeploy,
        [this](const sim::EventTag& tag) {
          return injector_->redeploy().rebuild_event(tag);
        },
        [this](const sim::EventTag& tag, sim::EventHandle handle) {
          injector_->redeploy().bind_event(tag, handle);
        });
  }
}

std::optional<dc::ServerId> Shard::invite(sim::SimTime now, double demand_mhz,
                                          double ram_mb, double ta_override) {
  return eco_->assignment()
      .invite(*dc_, now, demand_mhz, ram_mb, ta_override)
      .server;
}

dc::VmId Shard::accept_transfer(sim::SimTime t, std::size_t trace_index,
                                dc::ServerId dest) {
  const dc::VmId vm = dc_->create_vm(0.0, trace_ram_mb(trace_index));
  vm_trace_.push_back(trace_index);
  trace_driver_->map_vm(trace_index, vm);  // sets the live trace demand
  dc_->place_vm(t, vm, dest);
  return vm;
}

void Shard::release_vm(dc::VmId vm) {
  trace_driver_->unmap_vm(vm);
  // The normal departure path: unplaces, settles accounting, and
  // re-evaluates hibernation of the (possibly now empty) source server.
  eco_->depart_vm(vm);
}

std::vector<MigrationWish> Shard::take_wishes() {
  std::vector<MigrationWish> out = std::move(wishes_);
  wishes_.clear();
  for (const MigrationWish& wish : out) wished_[wish.server] = 0;
  return out;
}

}  // namespace ecocloud::par
