#include "ecocloud/par/shard.hpp"

#include "ecocloud/util/rng.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::par {

namespace {

/// Seed derivation for shard k: XOR with k spread over the full 64 bits
/// (multiples of the golden-ratio increment, as in splitmix64). Shard 0's
/// term is zero, so its stream is exactly the single-threaded engine's.
std::uint64_t shard_seed(std::uint64_t seed, std::size_t shard_id) {
  return seed ^ (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(shard_id));
}

}  // namespace

Shard::Shard(const scenario::DailyConfig& config, const ShardPlan& plan,
             std::size_t shard_id, const trace::TraceSet& traces)
    : plan_(plan), id_(shard_id), traces_(traces) {
  // Mirror DailyScenario's construction exactly (scenario.cpp): fleet,
  // trace driver, controller from Rng(seed).split(1), collector, log. Any
  // divergence here breaks the K=1 bit-identity pin.
  dc_ = std::make_unique<dc::DataCenter>();
  const scenario::FleetConfig& fleet = config.fleet;
  util::require(!fleet.core_mix.empty(), "Shard: empty core mix");
  const std::size_t locals = plan_.servers_in(id_);
  for (std::size_t l = 0; l < locals; ++l) {
    // The class mix follows the *global* index, so every shard inherits
    // the fleet's 4/6/8-core round-robin proportions.
    const auto global = static_cast<std::size_t>(
        plan_.global_server(id_, static_cast<dc::ServerId>(l)));
    const unsigned cores = fleet.core_mix[global % fleet.core_mix.size()];
    dc_->add_server(cores, fleet.core_mhz,
                    fleet.ram_per_core_mb * static_cast<double>(cores));
  }

  trace_driver_ = std::make_unique<core::TraceDriver>(sim_, *dc_, traces_);

  util::Rng rng(shard_seed(config.seed, id_));
  eco_ = std::make_unique<core::EcoCloudController>(sim_, *dc_, config.params,
                                                    rng.split(1));

  collector_ = std::make_unique<metrics::MetricsCollector>(sim_, *dc_);
  collector_->attach(*eco_);
  log_ = std::make_unique<metrics::EventLog>();
  log_->attach(*eco_);

  wished_.assign(locals, 0);
  eco_->events().on_migration_stranded = [this](sim::SimTime t,
                                                dc::ServerId server,
                                                bool is_high) {
    // Record-only: no RNG draw, no state change, so single-threaded
    // behavior is untouched whether or not anyone drains the wishes.
    if (wished_[server]) return;
    wished_[server] = 1;
    wishes_.push_back(MigrationWish{t, server, is_high});
  };
}

bool Shard::deploy(std::size_t trace_index) {
  const dc::VmId vm = dc_->create_vm(0.0, traces_.ram_mb(trace_index));
  vm_trace_.push_back(trace_index);
  trace_driver_->map_vm(trace_index, vm);
  last_deployed_ = vm;
  return eco_->deploy_vm(vm);
}

void Shard::abandon_last_deploy() {
  util::require(last_deployed_ != dc::kNoVm,
                "Shard::abandon_last_deploy: nothing to abandon");
  trace_driver_->unmap_vm(last_deployed_);
  last_deployed_ = dc::kNoVm;
}

void Shard::start_services() {
  trace_driver_->start();
  eco_->start();
  collector_->start();
}

void Shard::run_until(sim::SimTime t) { sim_.run_until(t); }

void Shard::warmup_reset() {
  dc_->reset_accounting(sim_.now());
  collector_->rebase();
  eco_->reset_counters();
}

void Shard::finish(sim::SimTime horizon) { dc_->advance_to(horizon); }

std::optional<dc::ServerId> Shard::invite(sim::SimTime now, double demand_mhz,
                                          double ram_mb, double ta_override) {
  return eco_->assignment()
      .invite(*dc_, now, demand_mhz, ram_mb, ta_override)
      .server;
}

dc::VmId Shard::accept_transfer(sim::SimTime t, std::size_t trace_index,
                                dc::ServerId dest) {
  const dc::VmId vm = dc_->create_vm(0.0, traces_.ram_mb(trace_index));
  vm_trace_.push_back(trace_index);
  trace_driver_->map_vm(trace_index, vm);  // sets the live trace demand
  dc_->place_vm(t, vm, dest);
  return vm;
}

void Shard::release_vm(dc::VmId vm) {
  trace_driver_->unmap_vm(vm);
  // The normal departure path: unplaces, settles accounting, and
  // re-evaluates hibernation of the (possibly now empty) source server.
  eco_->depart_vm(vm);
}

std::vector<MigrationWish> Shard::take_wishes() {
  std::vector<MigrationWish> out = std::move(wishes_);
  wishes_.clear();
  for (const MigrationWish& wish : out) wished_[wish.server] = 0;
  return out;
}

}  // namespace ecocloud::par
