#include "ecocloud/par/event_merge.hpp"

#include <ostream>

#include "ecocloud/util/csv.hpp"

namespace ecocloud::par {

std::vector<metrics::Event> merge_event_streams(
    const std::vector<EventStream>& streams) {
  std::size_t total = 0;
  for (const EventStream& stream : streams) total += stream.events->size();

  std::vector<metrics::Event> merged;
  merged.reserve(total);
  std::vector<std::size_t> pos(streams.size(), 0);
  for (;;) {
    std::size_t best = streams.size();
    double best_time = 0.0;
    for (std::size_t s = 0; s < streams.size(); ++s) {
      if (pos[s] >= streams[s].events->size()) continue;
      const double time = (*streams[s].events)[pos[s]].time;
      // Strict <: on equal timestamps the earliest stream index wins, so
      // the order never depends on scan direction or input sizes.
      if (best == streams.size() || time < best_time) {
        best = s;
        best_time = time;
      }
    }
    if (best == streams.size()) break;
    const metrics::Event& raw = (*streams[best].events)[pos[best]];
    merged.push_back(streams[best].translate ? streams[best].translate(raw)
                                             : raw);
    ++pos[best];
  }
  return merged;
}

void write_merged_events_csv(std::ostream& out,
                             const std::vector<metrics::Event>& events) {
  metrics::write_events_csv(out, events);
}

}  // namespace ecocloud::par
