#include "ecocloud/par/sharded_telemetry.hpp"

#include <cstdlib>
#include <ostream>
#include <string_view>
#include <utility>

namespace ecocloud::par {

namespace {

/// ts_sim of a JSONL record; every Logger line starts {"ts_sim":<num>.
double ts_of(std::string_view line) {
  constexpr std::string_view kPrefix = "{\"ts_sim\":";
  if (line.substr(0, kPrefix.size()) != kPrefix) return 0.0;
  return std::strtod(line.data() + kPrefix.size(), nullptr);
}

}  // namespace

ShardedTelemetry::ShardedTelemetry(ShardedDailyRun& run, Options options)
    : run_(run) {
  const std::size_t K = run_.num_shards();
  const ShardPlan& plan = run_.plan();
  stacks_.reserve(K);
  for (std::size_t k = 0; k < K; ++k) {
    auto stack = std::make_unique<ShardStack>();
    Shard& shard = run_.shard(k);
    const Shard* shard_ptr = &shard;

    stack->logger = std::make_unique<obs::Logger>();
    if (options.log_level != obs::LogLevel::kOff) {
      stack->logger->set_sink(&stack->log_sink);
      stack->logger->set_level(options.log_level);
      stack->logger->set_clock(
          [shard_ptr] { return shard_ptr->simulator().now(); });
      if (K > 1) stack->logger->bind_field("shard", k);
    }
    if (options.trace) {
      stack->trace = std::make_unique<obs::ChromeTraceWriter>();
    }

    obs::ShardContext ctx;
    ctx.sharded = K > 1;
    ctx.shard = k;
    if (K > 1) {
      ctx.global_server = [&plan, k](std::uint64_t local) {
        return static_cast<std::uint64_t>(
            plan.global_server(k, static_cast<dc::ServerId>(local)));
      };
      ctx.global_vm = [shard_ptr](std::uint64_t local) {
        return static_cast<std::uint64_t>(
            shard_ptr->trace_of(static_cast<dc::VmId>(local)));
      };
    }
    stack->instrumentation = std::make_unique<obs::Instrumentation>(
        registry_, *stack->logger, stack->trace.get(), std::move(ctx));

    stack->instrumentation->attach_engine(shard.simulator());
    stack->instrumentation->attach_datacenter(shard.datacenter());
    stack->instrumentation->attach_controller(shard.controller());
    if (shard.fault_injector() != nullptr) {
      stack->instrumentation->attach_faults(*shard.fault_injector());
    }
    stacks_.push_back(std::move(stack));
  }

  // Coordinator-level series (pull-mode over the run's stats; sampled
  // only at export time, so no data race with the epoch workers).
  const ParStats* stats = &run_.stats();
  registry_.counter_fn(
      "ecocloud_par_barriers_total", [stats] { return stats->barriers; }, {},
      "Epoch barriers completed by the sharded coordinator");
  registry_.counter_fn(
      "ecocloud_par_stranded_wishes_total",
      [stats] { return stats->stranded_wishes; }, {},
      "Migration wishes drained at barriers");
  registry_.counter_fn(
      "ecocloud_par_handoff_attempts_total",
      [stats] { return stats->handoff_attempts; }, {},
      "Wishes still valid at the barrier (hand-off attempted)");
  registry_.counter_fn(
      "ecocloud_par_cross_shard_migrations_total",
      [stats] { return stats->cross_shard_migrations; }, {},
      "VMs transferred between shards at barriers");
  registry_.counter_fn(
      "ecocloud_par_audits_run_total", [stats] { return stats->audits_run; },
      {}, "Barrier audit rounds executed");
  registry_.counter_fn(
      "ecocloud_par_audit_failures_total",
      [stats] { return stats->audit_failures; }, {},
      "Failed audit checks (per-shard and cross-shard) across all rounds");
  registry_.counter_fn(
      "ecocloud_par_checkpoints_written_total",
      [stats] { return stats->checkpoints_written; }, {},
      "Sharded snapshots written at barriers");

  // Barrier-driven flush, chained so an existing hook keeps firing.
  run_.on_barrier = [this, prev = std::move(run_.on_barrier)](sim::SimTime t) {
    if (prev) prev(t);
    for (auto& stack : stacks_) stack->instrumentation->flush_now(t);
  };
}

void ShardedTelemetry::finalize(sim::SimTime end) {
  for (auto& stack : stacks_) stack->instrumentation->finalize(end);
}

void ShardedTelemetry::write_log(std::ostream& out) {
  // Materialize each shard's sink once, then K-way merge line-by-line:
  // strictly smaller ts_sim first, ties to the lower shard index. Records
  // within a shard are already time-ordered (the clock is its simulator).
  const std::size_t K = stacks_.size();
  std::vector<std::string> text(K);
  std::vector<std::size_t> pos(K, 0);
  for (std::size_t k = 0; k < K; ++k) text[k] = stacks_[k]->log_sink.str();

  const auto next_line = [&](std::size_t k) -> std::string_view {
    const std::string& s = text[k];
    const std::size_t end = s.find('\n', pos[k]);
    const std::size_t stop = end == std::string::npos ? s.size() : end + 1;
    return std::string_view(s).substr(pos[k], stop - pos[k]);
  };

  for (;;) {
    std::size_t best = K;
    double best_ts = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      if (pos[k] >= text[k].size()) continue;
      const double ts = ts_of(next_line(k));
      if (best == K || ts < best_ts) {
        best = k;
        best_ts = ts;
      }
    }
    if (best == K) break;
    const std::string_view line = next_line(best);
    out << line;
    pos[best] += line.size();
  }
}

void ShardedTelemetry::write_trace(std::ostream& out) {
  obs::ChromeTraceWriter merged;
  for (auto& stack : stacks_) {
    if (stack->trace) merged.absorb(std::move(*stack->trace));
  }
  merged.write(out);
}

std::uint64_t ShardedTelemetry::log_lines() const {
  std::uint64_t total = 0;
  for (const auto& stack : stacks_) total += stack->logger->lines_written();
  return total;
}

}  // namespace ecocloud::par
