#pragma once

/// \file sharded_telemetry.hpp
/// \brief Telemetry over a sharded run: one registry, K observer stacks.
///
/// Each shard gets its own Instrumentation (logger + trace writer) so the
/// hot path never crosses a shard boundary; everything merges
/// deterministically at the edges:
///
///  * **Metrics**: ONE shared MetricRegistry. Registration happens
///    serially at attach time, per-shard instances are distinct series via
///    the {"shard", k} label, and pull callbacks only fire when an
///    exporter samples the registry (after run(), single-threaded). For
///    K=1 the label is omitted, so the exported series are exactly the
///    single-threaded run's.
///  * **Logs**: one Logger per shard writing JSONL into an in-memory
///    sink, each record tagged with its shard; write_log() K-way merges
///    the streams by ts_sim with ties broken in shard order.
///  * **Traces**: one ChromeTraceWriter per shard with pid offsets
///    (3 tracks per shard), absorbed into one trace in shard order.
///
/// Flushing is driven by the coordinator's barrier hook, NOT by calendar
/// events: a sharded run with telemetry executes the exact same event
/// sequence as one without (stronger than the single-threaded layer's
/// "same decisions, shifted seq numbers" guarantee).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "ecocloud/obs/chrome_trace.hpp"
#include "ecocloud/obs/instrumentation.hpp"
#include "ecocloud/obs/logger.hpp"
#include "ecocloud/obs/metric_registry.hpp"
#include "ecocloud/par/sharded_runner.hpp"

namespace ecocloud::par {

class ShardedTelemetry {
 public:
  struct Options {
    /// Build per-shard trace timelines (memory-heavy on long runs).
    bool trace = false;
    /// Per-shard structured-log threshold; kOff disables the loggers.
    obs::LogLevel log_level = obs::LogLevel::kOff;
  };

  /// Attaches observer stacks to every shard of \p run and chains the
  /// run's on_barrier hook with the flush. Call after construction (and
  /// after restore_snapshot, if resuming) but before run(); \p run must
  /// outlive this object.
  ShardedTelemetry(ShardedDailyRun& run, Options options);

  ShardedTelemetry(const ShardedTelemetry&) = delete;
  ShardedTelemetry& operator=(const ShardedTelemetry&) = delete;

  /// The shared registry, for the Prometheus/JSON exporters.
  [[nodiscard]] obs::MetricRegistry& registry() { return registry_; }

  /// Close open trace spans and flush every logger at \p end (the
  /// horizon). Call once, after run().
  void finalize(sim::SimTime end);

  /// K-way merge of the per-shard JSONL logs by ts_sim (ties in shard
  /// order, within-shard order preserved). Call after finalize().
  void write_log(std::ostream& out);

  /// Merge the per-shard timelines (shard order) into one Chrome trace
  /// and serialize it. Consumes the per-shard events; call once.
  void write_trace(std::ostream& out);

  /// Total log records across all shards.
  [[nodiscard]] std::uint64_t log_lines() const;

 private:
  struct ShardStack {
    std::ostringstream log_sink;
    std::unique_ptr<obs::Logger> logger;
    std::unique_ptr<obs::ChromeTraceWriter> trace;
    std::unique_ptr<obs::Instrumentation> instrumentation;
  };

  ShardedDailyRun& run_;
  obs::MetricRegistry registry_;
  std::vector<std::unique_ptr<ShardStack>> stacks_;
};

}  // namespace ecocloud::par
