#pragma once

/// \file partition.hpp
/// \brief Deterministic round-robin partition of a daily run into K shards.
///
/// ecoCloud's fleet mix is itself assigned round-robin (one third each of
/// 4/6/8-core servers, scenario::build_fleet), so a round-robin partition
/// gives every shard the same class mix: global server g lives in shard
/// g mod K as local server g / K, and trace row (VM) i is owned by shard
/// i mod K. Both maps are pure arithmetic — no tables, no RNG — and reduce
/// to the identity when K = 1, which is what pins the K=1 sharded engine
/// bit-identical to the single-threaded DailyScenario.

#include <cstddef>

#include "ecocloud/dc/ids.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::par {

class ShardPlan {
 public:
  ShardPlan(std::size_t num_shards, std::size_t num_servers,
            std::size_t num_traces)
      : k_(num_shards), servers_(num_servers), traces_(num_traces) {
    util::require(k_ >= 1, "ShardPlan: need at least one shard");
    util::require(k_ <= servers_, "ShardPlan: more shards than servers");
    // Global ids are 32-bit (dc/ids.hpp) with the max value reserved as
    // the kNoServer/kNoVm sentinel. A plan beyond that would mint ids
    // that silently wrap through the ServerId/VmId casts below — refuse
    // loudly instead (planet-scale fleets are still far below 4.29e9).
    util::require(servers_ < static_cast<std::size_t>(dc::kNoServer),
                  "ShardPlan: num_servers exceeds the 32-bit server id space");
    util::require(traces_ < static_cast<std::size_t>(dc::kNoVm),
                  "ShardPlan: num_traces exceeds the 32-bit VM id space");
  }

  [[nodiscard]] std::size_t num_shards() const { return k_; }
  [[nodiscard]] std::size_t num_servers() const { return servers_; }
  [[nodiscard]] std::size_t num_traces() const { return traces_; }

  // --- Servers ---
  [[nodiscard]] std::size_t shard_of_server(dc::ServerId global) const {
    return static_cast<std::size_t>(global) % k_;
  }
  [[nodiscard]] dc::ServerId local_server(dc::ServerId global) const {
    return static_cast<dc::ServerId>(static_cast<std::size_t>(global) / k_);
  }
  [[nodiscard]] dc::ServerId global_server(std::size_t shard,
                                           dc::ServerId local) const {
    // Widened arithmetic + range check: a stale or corrupt local id must
    // fail here, not truncate through the 32-bit cast.
    const std::size_t global = static_cast<std::size_t>(local) * k_ + shard;
    util::require(global < servers_,
                  "ShardPlan::global_server: id outside the plan");
    return static_cast<dc::ServerId>(global);
  }
  /// Count of global servers owned by \p shard (|{g < N : g mod K == shard}|).
  [[nodiscard]] std::size_t servers_in(std::size_t shard) const {
    return shard < servers_ ? (servers_ - shard - 1) / k_ + 1 : 0;
  }

  // --- Traces / VMs (trace row doubles as the global VM id) ---
  [[nodiscard]] std::size_t shard_of_trace(std::size_t trace_index) const {
    return trace_index % k_;
  }

 private:
  std::size_t k_;
  std::size_t servers_;
  std::size_t traces_;
};

}  // namespace ecocloud::par
