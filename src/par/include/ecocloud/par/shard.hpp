#pragma once

/// \file shard.hpp
/// \brief One shard of a sharded daily run: a complete, self-contained
/// single-threaded simulation of its slice of the fleet.
///
/// A shard owns everything the single-threaded engine owns — slab event
/// calendar (sim::Simulator), datacenter subset, trace driver, ecoCloud
/// controller with its own RNG streams, metrics collector, event-log
/// segment — and its workload source is one of two (DESIGN.md §14/§17):
///  * materialized: all shards share one immutable TraceSet (read-only,
///    so thread-safe);
///  * streaming: each shard OWNS the trace::StreamingTraces cursor bank
///    of its trace rows (ShardPlan::shard_of_trace partitioning) and
///    advances it privately — O(VMs/K) memory per shard, no sharing.
/// Between epoch barriers a shard never touches another shard's state;
/// everything cross-shard goes through the coordinator (sharded_runner),
/// which runs serially — including adopt_trace_row, which copies a
/// handed-off VM's cursor from its owner bank into the destination bank.
///
/// RNG partitioning: shard k draws from Rng(seed ^ k * golden).split(1),
/// mirroring DailyScenario's Rng(seed).split(1) — the XOR term vanishes
/// for shard 0, so a K=1 run replays the single-threaded stream exactly.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ecocloud/core/controller.hpp"
#include "ecocloud/core/trace_driver.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/faults/fault_injector.hpp"
#include "ecocloud/metrics/collector.hpp"
#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/par/partition.hpp"
#include "ecocloud/scenario/scenario.hpp"
#include "ecocloud/sim/simulator.hpp"
#include "ecocloud/trace/streaming_traces.hpp"
#include "ecocloud/trace/trace_set.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::ckpt {
class CheckpointManager;
}

namespace ecocloud::par {

/// A server whose migration trial fired with no local destination; recorded
/// during an epoch, resolved (or dropped) by the coordinator at the next
/// barrier. Deduplicated per server per epoch.
struct MigrationWish {
  sim::SimTime time = 0.0;
  dc::ServerId server = dc::kNoServer;  ///< local id within the shard
  bool is_high = false;
};

class Shard {
 public:
  /// Materialized-mode shard: drives its VMs from the shared read-only
  /// \p traces, which must outlive the shard.
  Shard(const scenario::DailyConfig& config, const ShardPlan& plan,
        std::size_t shard_id, const trace::TraceSet& traces);

  /// Streaming-mode shard: takes ownership of \p bank, this shard's slice
  /// of a StreamingTraces::generate_partitioned run (bank k for shard k —
  /// the partition rule and ShardPlan::shard_of_trace agree by
  /// construction).
  Shard(const scenario::DailyConfig& config, const ShardPlan& plan,
        std::size_t shard_id, trace::StreamingTraces bank);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  [[nodiscard]] std::size_t id() const { return id_; }

  /// Create + map + deploy the VM of global trace row \p trace_index at
  /// t = 0. Returns false when the shard is saturated (assignment failed);
  /// the VM stays created and mapped, exactly as in DailyScenario.
  bool deploy(std::size_t trace_index);

  /// Undo the trace mapping of the last failed deploy so the runner can
  /// retry the VM on another shard without this one double-driving it.
  void abandon_last_deploy();

  /// Install fault hooks and schedule this shard's fault processes. Call
  /// once, BEFORE the first deploy (message loss applies to the initial
  /// placement wave, exactly as in DailyScenario). No-op without faults.
  void start_faults();

  /// Start the periodic services (trace ticks, monitors, sampling). Call
  /// once, after the t=0 deployment wave.
  void start_services();

  /// Advance this shard's calendar to \p t (inclusive, like
  /// Simulator::run_until). Safe to call concurrently with other shards.
  void run_until(sim::SimTime t);

  /// End-of-warmup accounting reset (DailyScenario semantics).
  void warmup_reset();

  /// Settle energy/SLA integrals (and open orphan downtime) at the horizon.
  void finish(sim::SimTime horizon);

  /// Checkpoint surface for the shard's own coordination state: the
  /// VM->trace map, the pending migration wishes, and the dedup flags.
  /// Everything else (datacenter, controller, collector, ...) registers
  /// its own section via register_checkpoint.
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);

  /// Register every stateful component of this shard (sections and
  /// calendar-event owners) with \p manager — the per-shard mirror of
  /// DailyScenario::register_checkpoint plus the shard coordination
  /// section and the event-log segment.
  void register_checkpoint(ckpt::CheckpointManager& manager);

  // --- Coordinator surface (serial, between epochs) ---

  /// One invitation round over this shard's fleet for an incoming migrant.
  /// Draws from this shard's own controller RNG — callable only from the
  /// serial barrier, in shard order, or determinism is lost.
  [[nodiscard]] std::optional<dc::ServerId> invite(sim::SimTime now,
                                                   double demand_mhz,
                                                   double ram_mb,
                                                   double ta_override);

  /// Materialize the VM of \p trace_index on \p dest (an active local
  /// server that volunteered) and start driving it from the trace.
  dc::VmId accept_transfer(sim::SimTime t, std::size_t trace_index,
                           dc::ServerId dest);

  /// Remove a VM handed off to another shard: stop driving it and run the
  /// normal departure path (which also re-evaluates hibernation).
  void release_vm(dc::VmId vm);

  /// Streaming mode only: copy global trace row \p trace_index from
  /// \p home's bank into this shard's bank so deploy/accept_transfer can
  /// drive it here. No-op when already resident; serial coordinator code
  /// only, at a barrier (both banks at the same step).
  void adopt_trace_row(std::size_t trace_index, const Shard& home);

  /// Drain the wishes recorded since the previous barrier.
  [[nodiscard]] std::vector<MigrationWish> take_wishes();

  /// Global trace row of a local VM (valid for every VM ever created here).
  [[nodiscard]] std::size_t trace_of(dc::VmId vm) const {
    return vm_trace_[vm];
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] dc::DataCenter& datacenter() { return *dc_; }
  [[nodiscard]] const dc::DataCenter& datacenter() const { return *dc_; }
  [[nodiscard]] core::EcoCloudController& controller() { return *eco_; }
  [[nodiscard]] const core::EcoCloudController& controller() const {
    return *eco_;
  }
  [[nodiscard]] const metrics::MetricsCollector& collector() const {
    return *collector_;
  }
  [[nodiscard]] const metrics::EventLog& event_log() const { return *log_; }
  [[nodiscard]] const core::TraceDriver& trace_driver() const {
    return *trace_driver_;
  }
  /// Non-null only when the run's FaultParams are enabled.
  [[nodiscard]] faults::FaultInjector* fault_injector() {
    return injector_.get();
  }
  [[nodiscard]] const faults::FaultInjector* fault_injector() const {
    return injector_.get();
  }
  /// The owned cursor bank of a streaming-mode shard; null when the shard
  /// reads from a shared materialized TraceSet.
  [[nodiscard]] const trace::StreamingTraces* streaming_bank() const {
    return streaming_.get();
  }

 private:
  /// Shared construction once the trace source is set: fleet, driver,
  /// controller, collector, faults — mirroring DailyScenario exactly.
  void init(const scenario::DailyConfig& config);
  /// RAM footprint of a global trace row, whichever source backs us.
  [[nodiscard]] double trace_ram_mb(std::size_t trace_index) const;

  const ShardPlan& plan_;
  std::size_t id_;
  /// Exactly one of the two sources is set.
  const trace::TraceSet* traces_ = nullptr;
  std::unique_ptr<trace::StreamingTraces> streaming_;

  sim::Simulator sim_;
  std::unique_ptr<dc::DataCenter> dc_;
  std::unique_ptr<core::TraceDriver> trace_driver_;
  std::unique_ptr<core::EcoCloudController> eco_;
  std::unique_ptr<metrics::MetricsCollector> collector_;
  std::unique_ptr<metrics::EventLog> log_;
  std::unique_ptr<faults::FaultInjector> injector_;

  /// Local VmId -> global trace row; append-only, so event rows translate
  /// even for VMs that have since been handed off.
  std::vector<std::size_t> vm_trace_;
  dc::VmId last_deployed_ = dc::kNoVm;

  std::vector<MigrationWish> wishes_;
  std::vector<std::uint8_t> wished_;  ///< per local server, dedup flag
};

}  // namespace ecocloud::par
