#pragma once

/// \file sharded_runner.hpp
/// \brief Coordinator of a sharded daily run: conservative epoch
/// synchronization over K independent shards.
///
/// Execution model (DESIGN.md Sec. 12):
///  * the horizon is cut into epochs of sync_interval_s (aligned so the
///    warmup boundary and the horizon are barrier times);
///  * within an epoch every shard advances its own calendar independently
///    — a ThreadPool runs them concurrently, but nothing they touch is
///    shared, so any interleaving computes the same states;
///  * at the barrier the coordinator runs SERIALLY, in shard order: it
///    drains each shard's migration wishes (trials that fired with no
///    local destination) and re-runs the destination search over the
///    other shards' fleets, transferring the VM when someone volunteers.
///
/// Determinism for a fixed K: shard streams never interleave (each shard
/// owns its RNG, calendar, and fleet slice), barrier decisions are made in
/// shard order by serial code, and output merging orders rows by
/// (time, shard). None of that depends on how many worker threads execute
/// the epochs, so 1, 2, or 16 threads produce identical bytes.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ecocloud/metrics/collector.hpp"
#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/par/partition.hpp"
#include "ecocloud/par/shard.hpp"
#include "ecocloud/scenario/scenario.hpp"
#include "ecocloud/trace/trace_set.hpp"
#include "ecocloud/util/phase_profiler.hpp"
#include "ecocloud/util/thread_pool.hpp"

namespace ecocloud::ckpt {
class CheckpointManager;
class RuntimeAuditor;
class Watchdog;
}  // namespace ecocloud::ckpt

namespace ecocloud::par {

struct ParConfig {
  /// Number of shards K. Fixed K fixes the trajectory; the thread count
  /// only changes wall-clock time.
  std::size_t shards = 1;
  /// Worker threads (0 -> hardware concurrency).
  std::size_t threads = 0;
  /// Epoch length between barriers. The default matches the 5-minute
  /// trace tick: cross-shard relief then reacts on the same timescale as
  /// the demand changes that cause it.
  sim::SimTime sync_interval_s = 300.0;
  /// Interleaving-explorer hook: when set, each epoch runs its shards
  /// SERIALLY in the permutation this returns for (epoch, K) instead of
  /// on the thread pool. The correctness harness sweeps permutations to
  /// prove the epoch execution order cannot influence the trajectory.
  std::function<std::vector<std::size_t>(std::uint64_t, std::size_t)>
      epoch_order = {};
};

/// Aggregate results of a sharded run (sums over shards + coordinator).
struct ParStats {
  std::uint64_t executed_events = 0;
  std::uint64_t migrations = 0;      ///< intra-shard + cross-shard
  std::uint64_t low_migrations = 0;  ///< ditto
  std::uint64_t high_migrations = 0;
  std::uint64_t cross_shard_migrations = 0;
  std::uint64_t activations = 0;
  std::uint64_t hibernations = 0;
  std::uint64_t wake_ups = 0;
  std::uint64_t assignment_failures = 0;
  std::uint64_t stranded_wishes = 0;   ///< wishes drained at barriers
  std::uint64_t handoff_attempts = 0;  ///< wishes still valid at the barrier
  std::uint64_t barriers = 0;
  std::uint64_t audits_run = 0;       ///< barrier audit rounds
  std::uint64_t audit_failures = 0;   ///< failed checks across all rounds
  std::uint64_t checkpoints_written = 0;
  double energy_joules = 0.0;
};

class ShardedDailyRun {
 public:
  /// Builds the K shards. Rejects the one config the sharded engine does
  /// not support: rack topology (invitations would need cross-shard rack
  /// scoping). Faults, checkpointing, auditing, the watchdog, and
  /// telemetry all compose with sharding.
  ShardedDailyRun(scenario::DailyConfig config, ParConfig par);
  ~ShardedDailyRun();

  ShardedDailyRun(const ShardedDailyRun&) = delete;
  ShardedDailyRun& operator=(const ShardedDailyRun&) = delete;

  /// Deploy all VMs at t=0 (skipped on a resumed run) and simulate to the
  /// horizon, honoring config.run: barrier-aligned checkpoints, audits,
  /// and watchdog beats. Call once.
  void run();

  /// Write one atomic snapshot of the whole sharded run (coordinator
  /// state plus every shard's sections) to \p path. Normally driven by
  /// config.run at barriers; public for tests and manual checkpoints.
  /// Snapshots are only taken at barriers, where the hand-off queue is
  /// empty and every shard sits at the same sim time.
  void save_snapshot(const std::string& path);

  /// Restore a snapshot written by save_snapshot into this freshly
  /// constructed run (same config, same K, same sync interval — enforced
  /// via the stored digest; the thread count is free). run() then
  /// continues from the snapshot's barrier and produces byte-identical
  /// output to the uninterrupted run.
  void restore_snapshot(const std::string& path);

  [[nodiscard]] bool resumed() const { return resumed_; }

  /// Called after each barrier's hand-off/audit/checkpoint work with the
  /// barrier time — the telemetry layer flushes its per-shard streams
  /// here instead of scheduling calendar events (which would perturb seq
  /// numbers and break the telemetry-off bit-identity).
  std::function<void(sim::SimTime)> on_barrier;

  /// Called after every successful snapshot write with the path.
  std::function<void(const std::string&)> on_checkpoint;

  /// Attach a phase profiler with K+1 domains: domain k receives shard
  /// k's samples (installed on whichever worker runs the shard's epoch),
  /// domain K the coordinator's (hand-off, checkpoint writes, and the
  /// per-shard barrier lag). Pure observer — attach/detach freely.
  void set_profiler(util::PhaseProfiler* profiler);

  /// Wall seconds each shard spent on the most recent epoch, and how far
  /// behind the slowest shard each one finished (max epoch wall minus
  /// own). Measured every epoch regardless of profiling; read them from
  /// the on_barrier hook.
  [[nodiscard]] const std::vector<double>& last_epoch_wall_s() const {
    return last_epoch_wall_s_;
  }
  [[nodiscard]] const std::vector<double>& last_barrier_lag_s() const {
    return last_barrier_lag_s_;
  }

  [[nodiscard]] const ParStats& stats() const { return stats_; }
  [[nodiscard]] double total_energy_kwh() const {
    return stats_.energy_joules / 3.6e6;
  }

  /// Per-window samples merged across shards: counts, power and energy
  /// add; overall load is the capacity-weighted mean; overload percent is
  /// recomputed from the summed VM-time integrals. For K=1 the samples are
  /// shard 0's verbatim (bit-identical to the single-threaded collector).
  [[nodiscard]] std::vector<metrics::Sample> merged_samples() const;

  /// Decision event log stitched across shards in (time, shard) order with
  /// ids translated to global: byte-identical to EventLog::write_csv
  /// format, and to the single-threaded log when K=1.
  void write_events_csv(std::ostream& out) const;

  /// The stitched global event rows behind write_events_csv.
  [[nodiscard]] std::vector<metrics::Event> merged_events() const;

  /// merged_events() in the compact binary format (event_log_binary.hpp);
  /// eventlog2csv converts it back to write_events_csv's exact bytes.
  void write_events_binary(std::ostream& out) const;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const Shard& shard(std::size_t k) const { return *shards_[k]; }
  [[nodiscard]] Shard& shard(std::size_t k) { return *shards_[k]; }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] const scenario::DailyConfig& config() const { return config_; }

 private:
  void barrier_handoff(sim::SimTime now);
  void resolve_wish(std::size_t source_shard, const MigrationWish& wish,
                    sim::SimTime now);
  /// Lazily build one CheckpointManager per shard (sections + owners).
  void ensure_managers();
  /// Digest stored in snapshots: the daily digest plus shard count and
  /// sync interval, so snapshots only restore into the same trajectory.
  [[nodiscard]] std::string config_digest() const;
  /// Audits, checkpoint, watchdog beat, and the on_barrier hook — runs
  /// serially after the hand-off with t_ already at the barrier time.
  void at_barrier();
  void run_audits();
  /// Cross-shard invariants: unique trace-row ownership, fleet capacity
  /// conservation, per-shard energy monotonicity.
  [[nodiscard]] std::vector<std::string> cross_shard_failures();

  scenario::DailyConfig config_;
  ParConfig par_;
  ShardPlan plan_;
  /// Materialized mode only: the one TraceSet all shards share read-only.
  /// In streaming mode (config.streaming_traces) this stays null — each
  /// shard owns the cursor bank of its rows instead (Shard::streaming_bank).
  std::unique_ptr<trace::TraceSet> traces_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<util::ThreadPool> pool_;

  /// Cross-shard migrations recorded by the coordinator with GLOBAL ids
  /// (the shard logs never see them; dc unplace/place is not a migration
  /// to either side's accounting).
  std::vector<metrics::Event> coordinator_events_;
  std::uint64_t cross_low_ = 0;
  std::uint64_t cross_high_ = 0;

  /// Operability wiring (built on demand from config_.run).
  std::vector<std::unique_ptr<ckpt::CheckpointManager>> managers_;
  std::vector<std::unique_ptr<ckpt::RuntimeAuditor>> auditors_;
  std::unique_ptr<ckpt::Watchdog> watchdog_;
  std::vector<double> last_energy_;  ///< per shard, for the monotonicity check
  std::string ckpt_path_;
  std::string resume_path_;
  double next_ckpt_due_ = 0.0;
  double next_audit_due_ = 0.0;

  /// Coordinator clock: the last completed barrier time. Persisted, so a
  /// resumed run continues the epoch loop exactly where the snapshot was
  /// taken.
  sim::SimTime t_ = 0.0;
  bool warmup_done_ = false;

  util::PhaseProfiler* profiler_ = nullptr;
  std::vector<double> last_epoch_wall_s_;
  std::vector<double> last_barrier_lag_s_;

  ParStats stats_;
  bool ran_ = false;
  bool resumed_ = false;
};

}  // namespace ecocloud::par
