#pragma once

/// \file sharded_runner.hpp
/// \brief Coordinator of a sharded daily run: conservative epoch
/// synchronization over K independent shards.
///
/// Execution model (DESIGN.md Sec. 12):
///  * the horizon is cut into epochs of sync_interval_s (aligned so the
///    warmup boundary and the horizon are barrier times);
///  * within an epoch every shard advances its own calendar independently
///    — a ThreadPool runs them concurrently, but nothing they touch is
///    shared, so any interleaving computes the same states;
///  * at the barrier the coordinator runs SERIALLY, in shard order: it
///    drains each shard's migration wishes (trials that fired with no
///    local destination) and re-runs the destination search over the
///    other shards' fleets, transferring the VM when someone volunteers.
///
/// Determinism for a fixed K: shard streams never interleave (each shard
/// owns its RNG, calendar, and fleet slice), barrier decisions are made in
/// shard order by serial code, and output merging orders rows by
/// (time, shard). None of that depends on how many worker threads execute
/// the epochs, so 1, 2, or 16 threads produce identical bytes.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "ecocloud/metrics/collector.hpp"
#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/par/partition.hpp"
#include "ecocloud/par/shard.hpp"
#include "ecocloud/scenario/scenario.hpp"
#include "ecocloud/trace/trace_set.hpp"
#include "ecocloud/util/thread_pool.hpp"

namespace ecocloud::par {

struct ParConfig {
  /// Number of shards K. Fixed K fixes the trajectory; the thread count
  /// only changes wall-clock time.
  std::size_t shards = 1;
  /// Worker threads (0 -> hardware concurrency).
  std::size_t threads = 0;
  /// Epoch length between barriers. The default matches the 5-minute
  /// trace tick: cross-shard relief then reacts on the same timescale as
  /// the demand changes that cause it.
  sim::SimTime sync_interval_s = 300.0;
};

/// Aggregate results of a sharded run (sums over shards + coordinator).
struct ParStats {
  std::uint64_t executed_events = 0;
  std::uint64_t migrations = 0;      ///< intra-shard + cross-shard
  std::uint64_t low_migrations = 0;  ///< ditto
  std::uint64_t high_migrations = 0;
  std::uint64_t cross_shard_migrations = 0;
  std::uint64_t activations = 0;
  std::uint64_t hibernations = 0;
  std::uint64_t wake_ups = 0;
  std::uint64_t assignment_failures = 0;
  std::uint64_t stranded_wishes = 0;   ///< wishes drained at barriers
  std::uint64_t handoff_attempts = 0;  ///< wishes still valid at the barrier
  std::uint64_t barriers = 0;
  double energy_joules = 0.0;
};

class ShardedDailyRun {
 public:
  /// Builds the K shards. Rejects configs the sharded engine does not
  /// support: topology, fault injection, and checkpoint/audit wiring.
  ShardedDailyRun(scenario::DailyConfig config, ParConfig par);
  ~ShardedDailyRun();

  ShardedDailyRun(const ShardedDailyRun&) = delete;
  ShardedDailyRun& operator=(const ShardedDailyRun&) = delete;

  /// Deploy all VMs at t=0 and simulate the full horizon. Call once.
  void run();

  [[nodiscard]] const ParStats& stats() const { return stats_; }
  [[nodiscard]] double total_energy_kwh() const {
    return stats_.energy_joules / 3.6e6;
  }

  /// Per-window samples merged across shards: counts, power and energy
  /// add; overall load is the capacity-weighted mean; overload percent is
  /// recomputed from the summed VM-time integrals. For K=1 the samples are
  /// shard 0's verbatim (bit-identical to the single-threaded collector).
  [[nodiscard]] std::vector<metrics::Sample> merged_samples() const;

  /// Decision event log stitched across shards in (time, shard) order with
  /// ids translated to global: byte-identical to EventLog::write_csv
  /// format, and to the single-threaded log when K=1.
  void write_events_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const Shard& shard(std::size_t k) const { return *shards_[k]; }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] const scenario::DailyConfig& config() const { return config_; }

 private:
  void barrier_handoff(sim::SimTime now);
  void resolve_wish(std::size_t source_shard, const MigrationWish& wish,
                    sim::SimTime now);

  scenario::DailyConfig config_;
  ParConfig par_;
  ShardPlan plan_;
  std::unique_ptr<trace::TraceSet> traces_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<util::ThreadPool> pool_;

  /// Cross-shard migrations recorded by the coordinator with GLOBAL ids
  /// (the shard logs never see them; dc unplace/place is not a migration
  /// to either side's accounting).
  std::vector<metrics::Event> coordinator_events_;
  std::uint64_t cross_low_ = 0;
  std::uint64_t cross_high_ = 0;

  ParStats stats_;
  bool ran_ = false;
};

}  // namespace ecocloud::par
