#pragma once

/// \file event_merge.hpp
/// \brief Deterministic (K+1)-way merge of per-shard event-log segments.
///
/// Each shard records its decision events in local ids; the coordinator
/// adds its own cross-shard rows (already global). Stitching them into
/// one stream must be a pure function of the inputs so a sharded run's
/// event CSV is bit-identical across thread counts and resume chains:
/// rows are ordered by (time, stream index) — strictly earlier time
/// first, ties broken by the position of the stream in the input vector
/// (shards in shard order, the coordinator last). Translation to global
/// ids happens per stream at emission via an optional callback.

#include <functional>
#include <iosfwd>
#include <vector>

#include "ecocloud/metrics/event_log.hpp"

namespace ecocloud::par {

/// One merge input: a time-ordered segment plus the per-row translation
/// into global ids (empty = rows are already global).
struct EventStream {
  const std::vector<metrics::Event>* events = nullptr;
  std::function<metrics::Event(const metrics::Event&)> translate;
};

/// Stable merge of the streams by (time, stream index). Every input must
/// be internally time-ordered; the output applies each stream's
/// translation callback.
[[nodiscard]] std::vector<metrics::Event> merge_event_streams(
    const std::vector<EventStream>& streams);

/// Write \p events in metrics::EventLog::write_csv's exact row format
/// (header, precision, -1 sentinels) so K=1 reproduces its bytes.
void write_merged_events_csv(std::ostream& out,
                             const std::vector<metrics::Event>& events);

}  // namespace ecocloud::par
