#include "ecocloud/core/params.hpp"

#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::core {

void EcoCloudParams::validate() const {
  // Infinities sail through one-sided range checks, and NaNs through some;
  // every numeric knob must be finite before the ranges mean anything.
  for (double value : {ta, p, tl, th, alpha, beta, high_dest_factor,
                       monitor_period_s, migration_cooldown_s,
                       migration_latency_s, boot_time_s, grace_period_s,
                       hibernate_delay_s}) {
    util::require(std::isfinite(value),
                  "EcoCloudParams: parameters must be finite");
  }
  util::require(ta > 0.0 && ta <= 1.0, "EcoCloudParams: Ta must be in (0,1]");
  util::require(p > 0.0, "EcoCloudParams: p must be > 0");
  util::require(tl > 0.0 && tl < 1.0, "EcoCloudParams: Tl must be in (0,1)");
  util::require(th > 0.0 && th < 1.0, "EcoCloudParams: Th must be in (0,1)");
  util::require(alpha > 0.0, "EcoCloudParams: alpha must be > 0");
  util::require(beta > 0.0, "EcoCloudParams: beta must be > 0");
  util::require(tl < ta, "EcoCloudParams: Tl must be < Ta");
  util::require(th > ta, "EcoCloudParams: Th must be > Ta (Sec. III sensitivity)");
  util::require(high_dest_factor > 0.0 && high_dest_factor <= 1.0,
                "EcoCloudParams: high_dest_factor must be in (0,1]");
  util::require(monitor_period_s > 0.0, "EcoCloudParams: monitor period must be > 0");
  util::require(migration_cooldown_s >= 0.0,
                "EcoCloudParams: migration cooldown must be >= 0");
  util::require(migration_latency_s >= 0.0,
                "EcoCloudParams: migration latency must be >= 0");
  util::require(boot_time_s >= 0.0, "EcoCloudParams: boot time must be >= 0");
  util::require(grace_period_s >= 0.0, "EcoCloudParams: grace period must be >= 0");
  util::require(hibernate_delay_s >= 0.0,
                "EcoCloudParams: hibernate delay must be >= 0");
}

}  // namespace ecocloud::core
