#include "ecocloud/core/open_system.hpp"

#include "ecocloud/util/validation.hpp"

namespace ecocloud::core {

OpenSystemDriver::OpenSystemDriver(sim::Simulator& simulator,
                                   dc::DataCenter& datacenter,
                                   EcoCloudController& controller,
                                   TraceDriver& trace_driver,
                                   const trace::TraceSet& traces, util::Rng rng,
                                   trace::RateFn lambda, double lambda_max, double nu)
    : sim_(simulator),
      dc_(datacenter),
      controller_(controller),
      trace_driver_(trace_driver),
      traces_(traces),
      rng_(rng),
      arrivals_(std::move(lambda), lambda_max),
      nu_(nu) {
  util::require(nu > 0.0, "OpenSystemDriver: nu must be > 0");
}

dc::VmId OpenSystemDriver::spawn_vm() {
  const std::size_t trace_index = rng_.index(traces_.num_vms());
  const dc::VmId vm = dc_.create_vm(0.0, traces_.ram_mb(trace_index));
  trace_driver_.map_vm(trace_index, vm);
  return vm;
}

void OpenSystemDriver::schedule_departure(dc::VmId vm) {
  const sim::SimTime lifetime = trace::exponential_lifetime(nu_, rng_);
  sim_.schedule_after(lifetime, [this, vm] {
    controller_.depart_vm(vm);
    trace_driver_.unmap_vm(vm);
    if (estimator_) estimator_->record_departure(sim_.now(), population_);
    --population_;
    ++total_departures_;
  });
}

void OpenSystemDriver::seed_initial_population(std::size_t count) {
  const sim::SimTime now = sim_.now();
  // Borrow the live index: place_vm never transitions server state, so the
  // reference stays valid for the whole seeding loop.
  const std::vector<dc::ServerId>& active =
      dc_.servers_with(dc::ServerState::kActive);
  util::require(!active.empty(),
                "OpenSystemDriver::seed_initial_population: no active servers");
  for (std::size_t i = 0; i < count; ++i) {
    const dc::VmId vm = spawn_vm();
    dc_.place_vm(now, vm, active[rng_.index(active.size())]);
    ++population_;
    schedule_departure(vm);
  }
}

void OpenSystemDriver::start() {
  util::ensure(!started_, "OpenSystemDriver::start called twice");
  started_ = true;
  schedule_next_arrival();
}

void OpenSystemDriver::schedule_next_arrival() {
  const sim::SimTime next = arrivals_.next_after(sim_.now(), rng_);
  sim_.schedule_at(next, [this] { on_arrival(); });
}

void OpenSystemDriver::on_arrival() {
  const dc::VmId vm = spawn_vm();
  ++total_arrivals_;
  if (estimator_) estimator_->record_arrival(sim_.now());
  if (controller_.deploy_vm(vm)) {
    ++population_;
    schedule_departure(vm);
  } else {
    // Data center saturated: the request is rejected (VM never enters).
    ++total_rejections_;
    trace_driver_.unmap_vm(vm);
  }
  schedule_next_arrival();
}

}  // namespace ecocloud::core
