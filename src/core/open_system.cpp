#include "ecocloud/core/open_system.hpp"

#include <stdexcept>
#include <string>

#include "ecocloud/util/phase_profiler.hpp"
#include "ecocloud/util/snapshot.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::core {

OpenSystemDriver::OpenSystemDriver(sim::Simulator& simulator,
                                   dc::DataCenter& datacenter,
                                   EcoCloudController& controller,
                                   TraceDriver& trace_driver,
                                   const trace::TraceSet& traces, util::Rng rng,
                                   trace::RateFn lambda, double lambda_max, double nu)
    : sim_(simulator),
      dc_(datacenter),
      controller_(controller),
      trace_driver_(trace_driver),
      traces_(traces),
      rng_(rng),
      arrivals_(std::move(lambda), lambda_max),
      nu_(nu) {
  util::require(nu > 0.0, "OpenSystemDriver: nu must be > 0");
}

dc::VmId OpenSystemDriver::spawn_vm() {
  const std::size_t trace_index = rng_.index(traces_.num_vms());
  const dc::VmId vm = dc_.create_vm(0.0, traces_.ram_mb(trace_index));
  trace_driver_.map_vm(trace_index, vm);
  return vm;
}

void OpenSystemDriver::schedule_departure(dc::VmId vm) {
  const sim::SimTime lifetime = trace::exponential_lifetime(nu_, rng_);
  sim_.schedule_after(lifetime,
                      sim::EventTag{sim::tag_owner::kOpenSystem, kEvDeparture, vm, 0},
                      [this, vm] { on_departure(vm); });
}

void OpenSystemDriver::on_departure(dc::VmId vm) {
  util::ScopedPhase profile(util::Phase::kVmLifecycle);
  controller_.depart_vm(vm);
  trace_driver_.unmap_vm(vm);
  if (estimator_) estimator_->record_departure(sim_.now(), population_);
  --population_;
  ++total_departures_;
}

void OpenSystemDriver::seed_initial_population(std::size_t count) {
  util::ScopedPhase profile(util::Phase::kVmLifecycle);
  const sim::SimTime now = sim_.now();
  // Borrow the live index: place_vm never transitions server state, so the
  // reference stays valid for the whole seeding loop.
  const std::vector<dc::ServerId>& active =
      dc_.servers_with(dc::ServerState::kActive);
  util::require(!active.empty(),
                "OpenSystemDriver::seed_initial_population: no active servers");
  for (std::size_t i = 0; i < count; ++i) {
    const dc::VmId vm = spawn_vm();
    dc_.place_vm(now, vm, active[rng_.index(active.size())]);
    ++population_;
    schedule_departure(vm);
  }
}

void OpenSystemDriver::start() {
  util::ensure(!started_, "OpenSystemDriver::start called twice");
  started_ = true;
  schedule_next_arrival();
}

void OpenSystemDriver::schedule_next_arrival() {
  const sim::SimTime next = arrivals_.next_after(sim_.now(), rng_);
  sim_.schedule_at(next, sim::EventTag{sim::tag_owner::kOpenSystem, kEvArrival, 0, 0},
                   [this] { on_arrival(); });
}

void OpenSystemDriver::on_arrival() {
  util::ScopedPhase profile(util::Phase::kVmLifecycle);
  const dc::VmId vm = spawn_vm();
  ++total_arrivals_;
  if (estimator_) estimator_->record_arrival(sim_.now());
  if (controller_.deploy_vm(vm)) {
    ++population_;
    schedule_departure(vm);
  } else {
    // Data center saturated: the request is rejected (VM never enters).
    ++total_rejections_;
    trace_driver_.unmap_vm(vm);
  }
  schedule_next_arrival();
}

void OpenSystemDriver::save_state(util::BinWriter& w) const {
  util::save_rng(w, rng_);
  w.boolean(started_);
  w.u64(population_);
  w.u64(total_arrivals_);
  w.u64(total_departures_);
  w.u64(total_rejections_);
}

void OpenSystemDriver::load_state(util::BinReader& r) {
  util::load_rng(r, rng_);
  started_ = r.boolean();
  population_ = static_cast<std::size_t>(r.u64());
  total_arrivals_ = r.u64();
  total_departures_ = r.u64();
  total_rejections_ = r.u64();
}

sim::Simulator::Callback OpenSystemDriver::rebuild_event(const sim::EventTag& tag) {
  switch (tag.kind) {
    case kEvArrival:
      return [this] { on_arrival(); };
    case kEvDeparture: {
      const auto vm = static_cast<dc::VmId>(tag.a);
      return [this, vm] { on_departure(vm); };
    }
    default:
      throw std::runtime_error(
          "OpenSystemDriver: snapshot contains an unknown event kind " +
          std::to_string(tag.kind));
  }
}

}  // namespace ecocloud::core
