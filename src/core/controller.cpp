#include "ecocloud/core/controller.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "ecocloud/dc/monitor_kernel.hpp"
#include "ecocloud/util/snapshot.hpp"
#include "ecocloud/util/phase_profiler.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::core {

EcoCloudController::EcoCloudController(sim::Simulator& simulator,
                                       dc::DataCenter& datacenter,
                                       EcoCloudParams params, util::Rng rng)
    : sim_(simulator),
      dc_(datacenter),
      params_(params),
      rng_(rng),
      assignment_(params_, rng_),
      migration_(params_, assignment_, rng_) {
  params_.validate();
  assignment_.set_message_log(&messages_);
}

void EcoCloudController::start() {
  util::ensure(!started_, "EcoCloudController::start called twice");
  started_ = true;
  if (!params_.enable_migrations) return;
  const auto n = dc_.num_servers();
  for (std::size_t s = 0; s < n; ++s) {
    // Stagger monitors so server checks are spread over a period, as truly
    // asynchronous per-server daemons would be.
    const sim::SimTime phase =
        params_.monitor_period_s * static_cast<double>(s) / static_cast<double>(n);
    const auto id = static_cast<dc::ServerId>(s);
    sim_.schedule_periodic(params_.monitor_period_s,
                           sim::EventTag{sim::tag_owner::kController, kEvMonitor, id, 0},
                           [this, id] { monitor_server(id); }, phase);
  }
}

void EcoCloudController::reset_counters() {
  low_migrations_ = 0;
  high_migrations_ = 0;
  assignment_failures_ = 0;
  wake_ups_ = 0;
  aborted_migrations_ = 0;
  interrupted_migrations_ = 0;
  boot_failures_ = 0;
  messages_.reset();
}

void EcoCloudController::set_fault_hooks(const FaultHooks* hooks) {
  faults_ = hooks;
  assignment_.set_fault_hooks(hooks);
}

void EcoCloudController::set_orphan_handler(std::function<void(dc::VmId)> handler) {
  orphan_handler_ = std::move(handler);
}

bool EcoCloudController::deploy_vm(dc::VmId vm) {
  const sim::SimTime now = sim_.now();
  const dc::Vm& machine = dc_.vm(vm);
  util::require(!machine.placed(), "deploy_vm: VM already placed");
  util::require(queued_on_.find(vm) == queued_on_.end(), "deploy_vm: VM already queued");

  // With a lossy control plane a silent round may just mean every reply
  // was dropped, so the manager repeats the invitation before concluding
  // the active set is saturated. One round is the paper's protocol.
  const std::size_t rounds =
      faults_ ? std::max<std::size_t>(std::size_t{1}, faults_->max_invite_rounds)
              : std::size_t{1};
  for (std::size_t round = 0; round < rounds; ++round) {
    // With a topology, the manager broadcasts to one random rack only
    // (footnote 1); otherwise to every active server.
    const std::vector<dc::ServerId>* subset =
        topology_ ? &topology_->servers_in_rack(rng_.index(topology_->num_racks()))
                  : nullptr;
    const AssignmentResult result =
        assignment_.invite(dc_, now, machine.demand_mhz, machine.ram_mb,
                           /*ta_override=*/-1.0, dc::kNoServer, subset);
    if (result.server) {
      dc_.place_vm(now, vm, *result.server);
      ++messages_.placement_commands;
      if (events_.on_assignment) events_.on_assignment(now, vm, *result.server);
      return true;
    }
  }

  // Every active server declined: the load is outgrowing the active set.
  // Prefer a server that is already booting; otherwise wake one.
  if (queue_on_booting(vm)) return true;

  if (auto woken = wake_one_server()) {
    queue_vm(*woken, vm);
    return true;
  }

  ++assignment_failures_;
  if (events_.on_assignment_failure) events_.on_assignment_failure(now, vm);
  return false;
}

bool EcoCloudController::queue_on_booting(dc::VmId vm) {
  const dc::Vm& machine = dc_.vm(vm);
  if (params_.fast_sampler) {
    // Probe a few random open-boot entries instead of scanning every boot
    // queue. Closure keeps the registry mostly-fit, so the first probe
    // nearly always lands; when all probes miss, the caller wakes another
    // server — at worst a slightly eager wake, never an over-commitment.
    for (std::size_t probe = 0;
         probe < kBootProbeCount && !open_boot_.empty(); ++probe) {
      const dc::ServerId sid = open_boot_[rng_.index(open_boot_.size())];
      const auto it = boot_queues_.find(sid);
      const dc::Server& server = dc_.server(sid);
      if (it == boot_queues_.end() || !server.booting()) continue;
      const double committed =
          it->second.queued_mhz + server.reserved_mhz() + machine.demand_mhz;
      if (committed / server.capacity_mhz() <= params_.ta) {
        queue_vm(sid, vm);
        return true;
      }
    }
    return false;
  }
  for (auto& [server_id, queue] : boot_queues_) {
    const dc::Server& server = dc_.server(server_id);
    if (!server.booting()) continue;
    // Count capacity reserved for inbound migrations too (as
    // booting_with_room does) — otherwise a server can be over-committed by
    // queued deployments racing in-flight migrations to the same target.
    const double committed =
        queue.queued_mhz + server.reserved_mhz() + machine.demand_mhz;
    if (committed / server.capacity_mhz() <= params_.ta) {
      queue_vm(server_id, vm);
      return true;
    }
  }
  return false;
}

std::optional<dc::ServerId> EcoCloudController::wake_one_server() {
  // A uniform pick needs no particular order. The compat sampler draws
  // from the sorted view (the original behavior, re-sorted lazily after
  // transitions); the fast sampler draws from the dense membership set
  // directly, skipping the O(n log n) re-sort a planet-scale fleet would
  // pay on almost every wake.
  const std::vector<dc::ServerId>& sleeping =
      params_.fast_sampler ? dc_.state_members(dc::ServerState::kHibernated)
                           : dc_.servers_with(dc::ServerState::kHibernated);
  if (sleeping.empty()) return std::nullopt;
  const dc::ServerId chosen = sleeping[rng_.index(sleeping.size())];
  const sim::SimTime now = sim_.now();
  dc_.start_booting(now, chosen);
  ++wake_ups_;
  ++messages_.wake_commands;
  if (events_.on_wake) events_.on_wake(now, chosen);
  BootQueue& queue = boot_queues_[chosen];
  queue.finish_at = now + params_.boot_time_s;
  queue.boot_attempts = 1;
  if (params_.fast_sampler) open_boot_insert(chosen);
  queue.boot_event = sim_.schedule_after(
      params_.boot_time_s,
      sim::EventTag{sim::tag_owner::kController, kEvBootDone, chosen, 0},
      [this, chosen] { on_boot_finished(chosen); });
  return chosen;
}

std::optional<dc::ServerId> EcoCloudController::booting_with_room(
    double demand_mhz) {
  if (params_.fast_sampler) {
    for (std::size_t probe = 0;
         probe < kBootProbeCount && !open_boot_.empty(); ++probe) {
      const dc::ServerId sid = open_boot_[rng_.index(open_boot_.size())];
      const auto it = boot_queues_.find(sid);
      const dc::Server& server = dc_.server(sid);
      if (it == boot_queues_.end() || !server.booting()) continue;
      const double committed =
          it->second.queued_mhz + server.reserved_mhz() + demand_mhz;
      if (committed / server.capacity_mhz() <= params_.ta) return sid;
    }
    return std::nullopt;
  }
  for (const auto& [server_id, queue] : boot_queues_) {
    const dc::Server& server = dc_.server(server_id);
    if (!server.booting()) continue;
    const double committed = queue.queued_mhz + server.reserved_mhz() + demand_mhz;
    if (committed / server.capacity_mhz() <= params_.ta) return server_id;
  }
  return std::nullopt;
}

void EcoCloudController::queue_vm(dc::ServerId booting_server, dc::VmId vm) {
  BootQueue& queue = boot_queues_[booting_server];
  queue.vms.push_back(vm);
  queue.queued_mhz += dc_.vm(vm).demand_mhz;
  queued_on_[vm] = booting_server;
  if (params_.fast_sampler) open_boot_update(booting_server);
}

void EcoCloudController::on_boot_finished(dc::ServerId s) {
  util::ScopedPhase profile(util::Phase::kVmLifecycle);
  const sim::SimTime now = sim_.now();

  if (faults_ && faults_->boot_fails && faults_->boot_fails(s)) {
    ++boot_failures_;
    BootQueue& queue = boot_queues_[s];
    if (queue.boot_attempts <= faults_->max_boot_retries) {
      // Hung boot: the watchdog power-cycles the machine and tries again.
      // Inbound migrations cannot outwait the new deadline reliably, so
      // they are rolled back to their sources.
      ++queue.boot_attempts;
      queue.finish_at = now + params_.boot_time_s;
      queue.boot_event = sim_.schedule_after(
          params_.boot_time_s,
          sim::EventTag{sim::tag_owner::kController, kEvBootDone, s, 0},
          [this, s] { on_boot_finished(s); });
      rollback_migrations_touching(s);
      return;
    }
    // Out of retries: the server is dead. Its queued VMs fall back to the
    // assignment procedure, which wakes a *different* server if needed.
    const std::vector<dc::VmId> orphans = fail_server(s);
    if (!orphan_handler_) {
      for (dc::VmId vm : orphans) deploy_vm(vm);
    }
    return;
  }

  dc_.finish_booting(now, s);
  open_boot_erase(s);
  dc_.server_mutable(s).set_grace_until(now + params_.grace_period_s);
  if (events_.on_activation) events_.on_activation(now, s);

  auto it = boot_queues_.find(s);
  if (it != boot_queues_.end()) {
    const std::vector<dc::VmId> queued = std::move(it->second.vms);
    boot_queues_.erase(it);
    for (dc::VmId vm : queued) {
      queued_on_.erase(vm);
      dc_.place_vm(now, vm, s);
      ++messages_.placement_commands;
      if (events_.on_assignment) events_.on_assignment(now, vm, s);
    }
  }
  // A server woken for a single small VM may stay nearly empty; once its
  // grace expires the normal low-migration path will drain it if needed.
  if (dc_.server(s).empty()) schedule_hibernation_check(s);
}

void EcoCloudController::depart_vm(dc::VmId vm) {
  const sim::SimTime now = sim_.now();
  const dc::Vm& machine = dc_.vm(vm);
  if (events_.on_vm_departed) events_.on_vm_departed(now, vm);

  if (auto it = queued_on_.find(vm); it != queued_on_.end()) {
    const dc::ServerId booting_server = it->second;
    BootQueue& queue = boot_queues_[booting_server];
    queue.vms.erase(std::find(queue.vms.begin(), queue.vms.end(), vm));
    queue.queued_mhz -= machine.demand_mhz;
    queued_on_.erase(it);
    if (params_.fast_sampler) open_boot_update(booting_server);
    return;
  }

  if (machine.migrating()) {
    if (auto flight = inflight_.find(vm); flight != inflight_.end()) {
      flight->second.done.cancel();
      inflight_.erase(flight);
    }
    dc_.cancel_migration(now, vm);
  }
  if (machine.placed()) {
    const dc::ServerId host = machine.host;
    dc_.unplace_vm(now, vm);
    if (dc_.server(host).empty()) schedule_hibernation_check(host);
  }
}

void EcoCloudController::force_activate(dc::ServerId server, bool with_grace) {
  const sim::SimTime now = sim_.now();
  dc_.start_booting(now, server);
  dc_.finish_booting(now, server);
  if (with_grace) {
    dc_.server_mutable(server).set_grace_until(now + params_.grace_period_s);
  }
}

void EcoCloudController::refresh_monitor_row(dc::ServerId s) {
  // Scalar reference kernel for the single row — bit-identical to the
  // batch sweep by construction — then the same out-migration patch the
  // full rebuild applies.
  dc::monitor_classify_scalar(dc_.servers_soa(), s, s + 1, params_.tl,
                              params_.th, monitor_u_.data(),
                              monitor_cls_.data());
  const dc::Server server = dc_.server(s);
  if (server.migrating_out_count() != 0 &&
      monitor_cls_[s] != static_cast<std::uint8_t>(dc::MonitorClass::kSkip)) {
    const double u = MigrationProcedure::effective_utilization(dc_, server);
    monitor_u_[s] = u;
    monitor_cls_[s] = static_cast<std::uint8_t>(
        1u + (u < params_.tl ? 1u : 0u) + (u > params_.th ? 2u : 0u));
  }
}

void EcoCloudController::drain_monitor_journal() {
  const std::size_t n = dc_.num_servers();
  const bool full = dc_.monitor_all_dirty() || monitor_cls_.size() != n;
  if (!full && dc_.monitor_dirty_ids().empty()) return;
  util::ScopedPhase profile(util::Phase::kMonitorBatch);
  if (full) {
    const dc::ServerSoA& soa = dc_.servers_soa();
    monitor_u_.resize(n);
    monitor_cls_.resize(n);
    dc::monitor_classify(soa, 0, n, params_.tl, params_.th, monitor_u_.data(),
                         monitor_cls_.data());
    // The kernel's demand/capacity shortcut is exact except where VMs are
    // migrating out; patch those rows with the full evaluator (cheap:
    // out-migrations are rare and short-lived, and the scan below is a
    // straight read of one integer column).
    const std::uint32_t* out = soa.migrating_out_count.data();
    for (std::size_t s = 0; s < n; ++s) {
      if (out[s] != 0) refresh_monitor_row(static_cast<dc::ServerId>(s));
    }
  } else {
    for (dc::ServerId s : dc_.monitor_dirty_ids()) refresh_monitor_row(s);
  }
  dc_.clear_monitor_dirty();
}

void EcoCloudController::monitor_server(dc::ServerId s) {
  util::ScopedPhase profile(util::Phase::kMonitorSweep);
  drain_monitor_journal();
  // The cached class byte encodes exactly the RNG-free part of
  // MigrationProcedure::check: skip (!active || empty) and in-band ticks
  // return without drawing, so the Bernoulli stream only advances for the
  // same servers — in the same id order — as the per-server slow path did.
  const auto cls = static_cast<dc::MonitorClass>(monitor_cls_[s]);
  if (cls == dc::MonitorClass::kSkip || cls == dc::MonitorClass::kInBand) {
    return;
  }
  const sim::SimTime now = sim_.now();
  const dc::Server server = dc_.server(s);
  // Grace and cooldown windows are pure time comparisons; they are read
  // fresh here (never cached) so their setters need no journal hook.
  if (server.in_grace(now)) return;
  if (now < server.migration_cooldown_until()) return;
  const bool is_high = cls == dc::MonitorClass::kHigh;
  bool fired = false;
  auto plan = migration_.trial(dc_, s, now, monitor_u_[s], is_high, &fired);
  if (fired) {
    dc_.server_mutable(s).set_migration_cooldown_until(now +
                                                       params_.migration_cooldown_s);
  }
  if (plan) {
    execute_plan(*plan, s);
  } else if (fired && events_.on_migration_stranded) {
    // Trial fired but produced no plan: nothing movable, or no volunteer
    // for a low migration.
    events_.on_migration_stranded(now, s, is_high);
  }
}

void EcoCloudController::execute_plan(const MigrationPlan& first_plan,
                                      dc::ServerId source) {
  const sim::SimTime now = sim_.now();

  // Footnote-3 rechecks chain: each plan whose largest-VM migration does
  // not clear the threshold immediately runs another trial. The chain
  // length is bounded only by the number of hosted VMs, so it iterates
  // instead of recursing (a planet-scale server hosting thousands of VMs
  // must not grow the call stack per migrated VM).
  MigrationPlan plan = first_plan;
  for (;;) {
    if (plan.dest) {
      start_migration(plan.vm, *plan.dest, plan.is_high,
                      now + migration_duration(plan.vm, source, *plan.dest));
    } else if (plan.wake && plan.is_high) {
      // Prefer a server that is already booting (load ramps overload many
      // servers at once; one wake can absorb several sheddings). Otherwise
      // wake a fresh one. Either way the migration completes only after the
      // destination finished booting (+1 s keeps event order unambiguous).
      const dc::Vm& vm = dc_.vm(plan.vm);
      std::optional<dc::ServerId> dest = booting_with_room(vm.demand_mhz);
      if (!dest) {
        dest = wake_one_server();
        if (dest) {
          dc_.server_mutable(*dest).set_grace_until(now + params_.boot_time_s +
                                                    params_.grace_period_s);
        }
      }
      if (dest) {
        const sim::SimTime boot_done = boot_queues_[*dest].finish_at;
        const sim::SimTime complete_at = std::max(
            now + migration_duration(plan.vm, source, *dest), boot_done + 1.0);
        start_migration(plan.vm, *dest, plan.is_high, complete_at);
      } else if (events_.on_migration_stranded) {
        // With no hibernated server left the overload must be ridden out.
        events_.on_migration_stranded(now, source, /*is_high=*/true);
      }
    }

    if (!plan.recheck_suggested) return;
    // The recheck deliberately does not apply the migration cooldown: the
    // follow-up trial belongs to the same monitor tick.
    bool fired = false;
    auto next = migration_.check(dc_, source, now, &fired);
    if (!next) return;
    plan = *next;
  }
}

void EcoCloudController::set_topology(const net::Topology* topology) {
  if (topology) {
    util::require(topology->num_servers() >= dc_.num_servers(),
                  "set_topology: topology does not cover every server");
  }
  topology_ = topology;
  migration_.set_topology(topology);
}

sim::SimTime EcoCloudController::migration_duration(dc::VmId vm, dc::ServerId source,
                                                    dc::ServerId dest) const {
  sim::SimTime duration = params_.migration_latency_s;
  if (topology_) {
    duration += topology_->transfer_time_s(source, dest, dc_.vm(vm).ram_mb);
  }
  return duration;
}

void EcoCloudController::start_migration(dc::VmId vm, dc::ServerId dest, bool is_high,
                                         sim::SimTime complete_at) {
  const sim::SimTime now = sim_.now();
  dc_.begin_migration(now, vm, dest);
  ++messages_.migration_commands;
  if (events_.on_migration_start) events_.on_migration_start(now, vm, is_high);
  Inflight flight;
  flight.dest = dest;
  flight.is_high = is_high;
  flight.will_abort =
      faults_ && faults_->migration_aborts && faults_->migration_aborts(vm);
  flight.done = sim_.schedule_at(
      complete_at,
      sim::EventTag{sim::tag_owner::kController, kEvMigrationDone, vm, 0},
      [this, vm] { finish_migration(vm); });
  inflight_[vm] = std::move(flight);
}

void EcoCloudController::finish_migration(dc::VmId vm) {
  // The flight record disappears when the migration is rolled back; its
  // completion event is cancelled with it, so a missing entry means a
  // stale event that slipped through — ignore it.
  const auto it = inflight_.find(vm);
  if (it == inflight_.end()) return;
  const bool is_high = it->second.is_high;
  const bool will_abort = it->second.will_abort;
  inflight_.erase(it);

  const sim::SimTime now = sim_.now();
  if (will_abort) {
    dc_.cancel_migration(now, vm);
    ++aborted_migrations_;
    if (events_.on_migration_aborted) events_.on_migration_aborted(now, vm, is_high);
    return;
  }

  const dc::ServerId source = dc_.vm(vm).host;
  dc_.complete_migration(now, vm);
  if (is_high) {
    ++high_migrations_;
  } else {
    ++low_migrations_;
  }
  if (events_.on_migration_complete) events_.on_migration_complete(now, vm, is_high);
  if (dc_.server(source).empty()) schedule_hibernation_check(source);
}

void EcoCloudController::rollback_migration(dc::VmId vm, bool counts_as_interrupted) {
  const auto it = inflight_.find(vm);
  util::ensure(it != inflight_.end(), "rollback_migration: no such flight");
  const bool is_high = it->second.is_high;
  it->second.done.cancel();
  inflight_.erase(it);
  dc_.cancel_migration(sim_.now(), vm);
  if (counts_as_interrupted) {
    ++interrupted_migrations_;
  } else {
    ++aborted_migrations_;
  }
  if (events_.on_migration_aborted) {
    events_.on_migration_aborted(sim_.now(), vm, is_high);
  }
}

void EcoCloudController::rollback_migrations_touching(dc::ServerId server) {
  std::vector<dc::VmId> touching;
  for (const auto& [vm, flight] : inflight_) {
    if (flight.dest == server || dc_.vm(vm).host == server) touching.push_back(vm);
  }
  for (dc::VmId vm : touching) rollback_migration(vm, /*counts_as_interrupted=*/true);
}

std::vector<dc::VmId> EcoCloudController::fail_server(dc::ServerId server) {
  const sim::SimTime now = sim_.now();
  util::require(!dc_.server(server).failed(), "fail_server: server already failed");

  // Roll back in-flight migrations first: a VM headed here stays on its
  // source; a VM leaving here dies with the host and is re-deployed like
  // any other orphan.
  rollback_migrations_touching(server);

  // A booting server takes its queue down with it.
  std::vector<dc::VmId> orphans;
  if (auto it = boot_queues_.find(server); it != boot_queues_.end()) {
    it->second.boot_event.cancel();
    for (dc::VmId vm : it->second.vms) {
      queued_on_.erase(vm);
      orphans.push_back(vm);
    }
    boot_queues_.erase(it);
  }
  open_boot_erase(server);

  const std::vector<dc::VmId> hosted = dc_.fail_server(now, server);
  orphans.insert(orphans.end(), hosted.begin(), hosted.end());

  if (events_.on_server_failed) events_.on_server_failed(now, server);
  for (dc::VmId vm : orphans) {
    if (events_.on_vm_orphaned) events_.on_vm_orphaned(now, vm, server);
    if (orphan_handler_) orphan_handler_(vm);
  }
  return orphans;
}

void EcoCloudController::repair_server(dc::ServerId server) {
  const sim::SimTime now = sim_.now();
  dc_.repair_server(now, server);
  if (events_.on_server_repaired) events_.on_server_repaired(now, server);
}

void EcoCloudController::schedule_hibernation_check(dc::ServerId s) {
  sim_.schedule_after(
      params_.hibernate_delay_s,
      sim::EventTag{sim::tag_owner::kController, kEvHibernateCheck, s, 0},
      [this, s] { hibernation_check(s); });
}

void EcoCloudController::hibernation_check(dc::ServerId s) {
  const dc::Server& server = dc_.server(s);
  const sim::SimTime now = sim_.now();
  if (!server.active() || !server.empty()) return;
  if (server.reserved_mhz() > 0.0) {
    // An inbound migration is in flight; re-check once it should be done.
    schedule_hibernation_check(s);
    return;
  }
  if (server.in_grace(now)) {
    // Still in its post-boot grace window; try again once it expires.
    sim_.schedule_at(
        server.grace_until(),
        sim::EventTag{sim::tag_owner::kController, kEvGraceCheck, s, 0},
        [this, s] { grace_recheck(s); });
    return;
  }
  dc_.hibernate(now, s);
  if (events_.on_hibernation) events_.on_hibernation(now, s);
}

void EcoCloudController::grace_recheck(dc::ServerId s) {
  if (dc_.server(s).empty()) schedule_hibernation_check(s);
}

void EcoCloudController::open_boot_insert(dc::ServerId s) {
  if (open_boot_pos_.find(s) != open_boot_pos_.end()) return;
  open_boot_pos_[s] = static_cast<std::uint32_t>(open_boot_.size());
  open_boot_.push_back(s);
}

void EcoCloudController::open_boot_erase(dc::ServerId s) {
  const auto it = open_boot_pos_.find(s);
  if (it == open_boot_pos_.end()) return;
  const std::uint32_t pos = it->second;
  open_boot_[pos] = open_boot_.back();
  open_boot_pos_[open_boot_[pos]] = pos;
  open_boot_.pop_back();
  open_boot_pos_.erase(s);
}

void EcoCloudController::open_boot_update(dc::ServerId s) {
  const auto it = boot_queues_.find(s);
  const dc::Server& server = dc_.server(s);
  if (it == boot_queues_.end() || !server.booting()) {
    open_boot_erase(s);
    return;
  }
  const double committed = it->second.queued_mhz + server.reserved_mhz();
  if (committed / server.capacity_mhz() <= params_.ta) {
    open_boot_insert(s);
  } else {
    open_boot_erase(s);
  }
}

void EcoCloudController::save_state(util::BinWriter& w) const {
  util::save_rng(w, rng_);
  w.boolean(started_);
  w.u64(low_migrations_);
  w.u64(high_migrations_);
  w.u64(assignment_failures_);
  w.u64(wake_ups_);
  w.u64(aborted_migrations_);
  w.u64(interrupted_migrations_);
  w.u64(boot_failures_);
  w.u64(messages_.invitation_rounds);
  w.u64(messages_.invitations_sent);
  w.u64(messages_.volunteer_replies);
  w.u64(messages_.placement_commands);
  w.u64(messages_.wake_commands);
  w.u64(messages_.migration_commands);
  w.u64(messages_.invitations_lost);
  w.u64(messages_.replies_lost);
  const auto save_tally = [&w](const BernoulliTally& tally) {
    w.u64(tally.accepts);
    w.u64(tally.rejects);
  };
  save_tally(assignment_.fa_tally());
  save_tally(migration_.fl_tally());
  save_tally(migration_.fh_tally());
  util::save_unordered(
      w, boot_queues_,
      [](util::BinWriter& out, dc::ServerId server, const BootQueue& queue) {
        out.u64(server);
        out.u64(queue.vms.size());
        for (dc::VmId vm : queue.vms) out.u64(vm);
        out.f64(queue.queued_mhz);
        out.f64(queue.finish_at);
        out.u64(queue.boot_attempts);
        // boot_event is rebuilt by bind_event at calendar import.
      });
  util::save_unordered(w, queued_on_,
                       [](util::BinWriter& out, dc::VmId vm, dc::ServerId server) {
                         out.u64(vm);
                         out.u64(server);
                       });
  util::save_unordered(
      w, inflight_,
      [](util::BinWriter& out, dc::VmId vm, const Inflight& flight) {
        out.u64(vm);
        out.u64(flight.dest);
        out.boolean(flight.is_high);
        out.boolean(flight.will_abort);
        // flight.done is rebuilt by bind_event at calendar import.
      });
  // Open-boot registry in vector order: probes index into it, so the
  // order is behavior. Always empty in compat mode.
  w.u64(open_boot_.size());
  for (dc::ServerId s : open_boot_) w.u64(s);
}

void EcoCloudController::load_state(util::BinReader& r) {
  util::load_rng(r, rng_);
  started_ = r.boolean();
  low_migrations_ = r.u64();
  high_migrations_ = r.u64();
  assignment_failures_ = r.u64();
  wake_ups_ = r.u64();
  aborted_migrations_ = r.u64();
  interrupted_migrations_ = r.u64();
  boot_failures_ = r.u64();
  messages_.invitation_rounds = r.u64();
  messages_.invitations_sent = r.u64();
  messages_.volunteer_replies = r.u64();
  messages_.placement_commands = r.u64();
  messages_.wake_commands = r.u64();
  messages_.migration_commands = r.u64();
  messages_.invitations_lost = r.u64();
  messages_.replies_lost = r.u64();
  const auto load_tally = [&r] {
    BernoulliTally tally;
    tally.accepts = r.u64();
    tally.rejects = r.u64();
    return tally;
  };
  assignment_.restore_fa_tally(load_tally());
  const BernoulliTally fl = load_tally();
  const BernoulliTally fh = load_tally();
  migration_.restore_tallies(fl, fh);
  util::load_unordered(r, boot_queues_, [](util::BinReader& in) {
    const auto server = static_cast<dc::ServerId>(in.u64());
    BootQueue queue;
    const std::uint64_t n = in.u64();
    queue.vms.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      queue.vms.push_back(static_cast<dc::VmId>(in.u64()));
    }
    queue.queued_mhz = in.f64();
    queue.finish_at = in.f64();
    queue.boot_attempts = static_cast<std::size_t>(in.u64());
    return std::make_pair(server, std::move(queue));
  });
  util::load_unordered(r, queued_on_, [](util::BinReader& in) {
    const auto vm = static_cast<dc::VmId>(in.u64());
    const auto server = static_cast<dc::ServerId>(in.u64());
    return std::make_pair(vm, server);
  });
  util::load_unordered(r, inflight_, [](util::BinReader& in) {
    const auto vm = static_cast<dc::VmId>(in.u64());
    Inflight flight;
    flight.dest = static_cast<dc::ServerId>(in.u64());
    flight.is_high = in.boolean();
    flight.will_abort = in.boolean();
    return std::make_pair(vm, std::move(flight));
  });
  open_boot_.clear();
  open_boot_pos_.clear();
  const std::uint64_t n_open = r.u64();
  open_boot_.reserve(static_cast<std::size_t>(n_open));
  for (std::uint64_t i = 0; i < n_open; ++i) {
    const auto server = static_cast<dc::ServerId>(r.u64());
    open_boot_pos_[server] = static_cast<std::uint32_t>(i);
    open_boot_.push_back(server);
  }
}

sim::Simulator::Callback EcoCloudController::rebuild_event(
    const sim::EventTag& tag) {
  switch (tag.kind) {
    case kEvMonitor: {
      const auto s = static_cast<dc::ServerId>(tag.a);
      return [this, s] { monitor_server(s); };
    }
    case kEvBootDone: {
      const auto s = static_cast<dc::ServerId>(tag.a);
      return [this, s] { on_boot_finished(s); };
    }
    case kEvMigrationDone: {
      const auto vm = static_cast<dc::VmId>(tag.a);
      return [this, vm] { finish_migration(vm); };
    }
    case kEvHibernateCheck: {
      const auto s = static_cast<dc::ServerId>(tag.a);
      return [this, s] { hibernation_check(s); };
    }
    case kEvGraceCheck: {
      const auto s = static_cast<dc::ServerId>(tag.a);
      return [this, s] { grace_recheck(s); };
    }
    default:
      throw std::runtime_error(
          "EcoCloudController: snapshot contains an unknown event kind " +
          std::to_string(tag.kind));
  }
}

void EcoCloudController::bind_event(const sim::EventTag& tag,
                                    sim::EventHandle handle) {
  if (tag.kind == kEvBootDone) {
    const auto it = boot_queues_.find(static_cast<dc::ServerId>(tag.a));
    util::require(it != boot_queues_.end(),
                  "EcoCloudController: restored boot event has no boot queue");
    it->second.boot_event = handle;
  } else if (tag.kind == kEvMigrationDone) {
    const auto it = inflight_.find(static_cast<dc::VmId>(tag.a));
    util::require(it != inflight_.end(),
                  "EcoCloudController: restored migration event has no flight");
    it->second.done = handle;
  }
}

}  // namespace ecocloud::core
