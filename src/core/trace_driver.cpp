#include "ecocloud/core/trace_driver.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "ecocloud/util/snapshot.hpp"
#include "ecocloud/util/phase_profiler.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::core {

TraceDriver::TraceDriver(sim::Simulator& simulator, dc::DataCenter& datacenter,
                         const trace::TraceSet& traces)
    : sim_(simulator), dc_(datacenter), traces_(&traces) {}

TraceDriver::TraceDriver(sim::Simulator& simulator, dc::DataCenter& datacenter,
                         trace::StreamingTraces& streaming)
    : sim_(simulator), dc_(datacenter), streaming_(&streaming) {}

std::size_t TraceDriver::source_num_vms() const {
  return traces_ != nullptr ? traces_->num_vms() : streaming_->num_vms();
}

sim::SimTime TraceDriver::source_sample_period_s() const {
  return traces_ != nullptr ? traces_->sample_period_s()
                            : streaming_->sample_period_s();
}

void TraceDriver::sync_streaming(sim::SimTime now) const {
  if (streaming_ != nullptr) streaming_->advance_to(streaming_->step_at(now));
}

void TraceDriver::map_vm(std::size_t trace_index, dc::VmId vm) {
  util::require(trace_index < source_num_vms(),
                "TraceDriver::map_vm: bad trace index");
  vm_to_trace_[vm] = trace_index;
  dc_.set_vm_demand(sim_.now(), vm, current_demand_mhz(trace_index));
}

void TraceDriver::unmap_vm(dc::VmId vm) { vm_to_trace_.erase(vm); }

double TraceDriver::current_demand_mhz(std::size_t trace_index) const {
  if (traces_ != nullptr) {
    return traces_->demand_mhz_at(trace_index, traces_->step_at(sim_.now()));
  }
  sync_streaming(sim_.now());
  return streaming_->demand_mhz_current(trace_index);
}

void TraceDriver::start() {
  util::ensure(!started_, "TraceDriver::start called twice");
  started_ = true;
  const sim::SimTime period = source_sample_period_s();
  sim_.schedule_periodic(period,
                         sim::EventTag{sim::tag_owner::kTraceDriver, kEvTick, 0, 0},
                         [this] { tick(); }, period);
}

void TraceDriver::save_state(util::BinWriter& w) const {
  w.boolean(started_);
  util::save_unordered(w, vm_to_trace_,
                       [](util::BinWriter& out, dc::VmId vm, std::size_t trace_index) {
                         out.u64(vm);
                         out.u64(trace_index);
                       });
}

void TraceDriver::load_state(util::BinReader& r) {
  started_ = r.boolean();
  util::load_unordered(r, vm_to_trace_, [this](util::BinReader& in) {
    const auto vm = static_cast<dc::VmId>(in.u64());
    const auto trace_index = static_cast<std::size_t>(in.u64());
    util::require(trace_index < source_num_vms(),
                  "TraceDriver: snapshot trace index out of range");
    return std::make_pair(vm, trace_index);
  });
}

sim::Simulator::Callback TraceDriver::rebuild_event(const sim::EventTag& tag) {
  if (tag.kind == kEvTick) return [this] { tick(); };
  throw std::runtime_error("TraceDriver: snapshot contains an unknown event kind " +
                           std::to_string(tag.kind));
}

void TraceDriver::tick() {
  util::ScopedPhase profile(util::Phase::kTraceAdvance);
  const sim::SimTime now = sim_.now();
  if (traces_ != nullptr) {
    const std::size_t step = traces_->step_at(now);
    for (const auto& [vm, trace_index] : vm_to_trace_) {
      dc_.set_vm_demand(now, vm, traces_->demand_mhz_at(trace_index, step));
    }
    return;
  }
  sync_streaming(now);
  for (const auto& [vm, trace_index] : vm_to_trace_) {
    dc_.set_vm_demand(now, vm, streaming_->demand_mhz_current(trace_index));
  }
}

}  // namespace ecocloud::core
