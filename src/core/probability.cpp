#include "ecocloud/core/probability.hpp"

#include <cmath>

#include "ecocloud/util/math.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::core {

AssignmentFunction::AssignmentFunction(double ta, double p) : ta_(ta), p_(p) {
  util::require(ta > 0.0 && ta <= 1.0, "AssignmentFunction: Ta must be in (0,1]");
  util::require(p > 0.0, "AssignmentFunction: p must be > 0");
  // Mp = p^p / (p+1)^(p+1) * Ta^(p+1)  (Eq. 2)
  mp_ = std::pow(p, p) / std::pow(p + 1.0, p + 1.0) * std::pow(ta, p + 1.0);
}

double AssignmentFunction::argmax() const { return p_ / (p_ + 1.0) * ta_; }

double AssignmentFunction::operator()(double u) const {
  if (u < 0.0 || u > ta_) return 0.0;
  return std::pow(u, p_) * (ta_ - u) / mp_;
}

AssignmentFunction AssignmentFunction::with_threshold(double new_ta) const {
  return AssignmentFunction(new_ta, p_);
}

LowMigrationFunction::LowMigrationFunction(double tl, double alpha)
    : tl_(tl), alpha_(alpha) {
  util::require(tl > 0.0 && tl < 1.0, "LowMigrationFunction: Tl must be in (0,1)");
  util::require(alpha > 0.0, "LowMigrationFunction: alpha must be > 0");
}

double LowMigrationFunction::operator()(double u) const {
  if (u >= tl_) return 0.0;
  if (u <= 0.0) return 1.0;
  return std::pow(1.0 - u / tl_, alpha_);
}

HighMigrationFunction::HighMigrationFunction(double th, double beta)
    : th_(th), beta_(beta) {
  util::require(th > 0.0 && th < 1.0, "HighMigrationFunction: Th must be in (0,1)");
  util::require(beta > 0.0, "HighMigrationFunction: beta must be > 0");
}

double HighMigrationFunction::operator()(double u) const {
  u = util::clamp01(u);
  if (u <= th_) return 0.0;
  return std::pow(1.0 + (u - 1.0) / (1.0 - th_), beta_);
}

}  // namespace ecocloud::core
