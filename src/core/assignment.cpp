#include "ecocloud/core/assignment.hpp"

#include <algorithm>

#include "ecocloud/util/phase_profiler.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::core {

AssignmentProcedure::AssignmentProcedure(const EcoCloudParams& params, util::Rng& rng)
    : params_(params), rng_(rng), fa_(params.ta, params.p) {
  params.validate();
}

bool AssignmentProcedure::server_accepts(const dc::Server& server, sim::SimTime now,
                                         double vm_demand_mhz, double vm_ram_mb,
                                         const AssignmentFunction& fa) const {
  if (!server.active()) return false;

  const double capacity = server.capacity_mhz();
  const double committed = server.demand_mhz() + server.reserved_mhz();

  // The paper's procedure considers CPU only; RAM-aware volunteering lives
  // in the multires extension (Sec. V), not here.
  (void)vm_ram_mb;
  if (params_.require_fit && committed + vm_demand_mhz > capacity) return false;

  // Post-boot grace: answer positively while the VM still fits under Ta,
  // so freshly woken servers reach critical mass (paper Sec. IV).
  if (server.in_grace(now)) {
    return (committed + vm_demand_mhz) / capacity <= fa.ta();
  }

  const bool accepted = rng_.bernoulli(fa(server.decision_utilization()));
  fa_tally_.record(accepted);
  return accepted;
}

AssignmentResult AssignmentProcedure::invite(const dc::DataCenter& datacenter,
                                             sim::SimTime now, double vm_demand_mhz,
                                             double vm_ram_mb, double ta_override,
                                             dc::ServerId exclude,
                                             const std::vector<dc::ServerId>* subset) const {
  util::ScopedPhase profile(util::Phase::kInviteSampling);
  util::require(vm_demand_mhz >= 0.0, "AssignmentProcedure::invite: negative demand");

  const AssignmentFunction fa =
      ta_override >= 0.0 ? fa_.with_threshold(std::min(ta_override, 1.0)) : fa_;

  // Collect the servers to contact: the given group, or all active ones,
  // optionally thinned to a random invite_group_size-sized subset. The
  // scratch buffers are rebuilt from empty every round, so reusing their
  // capacity changes allocation only, never values or RNG draws.
  std::vector<dc::ServerId>& contacted = scratch_contacted_;
  contacted.clear();
  bool already_sampled = false;
  if (subset) {
    contacted.reserve(subset->size());
    for (dc::ServerId id : *subset) {
      if (datacenter.server(id).active() && id != exclude) {
        contacted.push_back(id);
      }
    }
  } else if (params_.fast_sampler) {
    // Fast sampler: draw straight from the dense membership set. With a
    // group size k this is O(k) instead of copying the whole active set;
    // a broadcast still walks every active server (that is what broadcast
    // means) but skips the copy and the sort behind servers_with().
    const std::vector<dc::ServerId>& active =
        datacenter.state_members(dc::ServerState::kActive);
    const bool exclude_active =
        exclude != dc::kNoServer && datacenter.server(exclude).active();
    // Draws over [0, eligible) are remapped around the excluded server's
    // membership slot, covering the active set minus the exclusion without
    // materializing it. When nothing is excluded excl_pos sits past the
    // end and the remap never fires.
    const std::size_t excl_pos =
        exclude_active
            ? static_cast<std::size_t>(datacenter.position_in_state(exclude))
            : active.size();
    const std::size_t eligible = active.size() - (exclude_active ? 1 : 0);
    const std::size_t group = params_.invite_group_size;
    if (group == 0 || eligible <= group) {
      contacted.reserve(eligible);
      for (dc::ServerId id : active) {
        if (id != exclude) contacted.push_back(id);
      }
    } else {
      // Floyd's subset sampling: `group` distinct positions out of
      // [0, eligible) in O(group) draws; the dedup scan is linear in the
      // group size (a few tens at most, per paper footnote 1).
      std::vector<std::uint32_t>& picked = scratch_positions_;
      picked.clear();
      contacted.reserve(group);
      for (std::size_t j = eligible - group; j < eligible; ++j) {
        const auto t = static_cast<std::uint32_t>(rng_.uniform_int(j + 1));
        const bool duplicate =
            std::find(picked.begin(), picked.end(), t) != picked.end();
        const std::uint32_t pos = duplicate ? static_cast<std::uint32_t>(j) : t;
        picked.push_back(pos);
        const std::size_t slot = pos + (pos >= excl_pos ? 1 : 0);
        contacted.push_back(active[slot]);
      }
    }
    already_sampled = true;
  } else {
    // The active index is already sorted ascending — the same order the old
    // full-fleet scan produced, so downstream RNG draws are unchanged.
    const std::vector<dc::ServerId>& active =
        datacenter.servers_with(dc::ServerState::kActive);
    contacted.reserve(active.size());
    for (dc::ServerId id : active) {
      if (id != exclude) contacted.push_back(id);
    }
  }
  if (!already_sampled && params_.invite_group_size > 0 &&
      contacted.size() > params_.invite_group_size) {
    // Partial Fisher-Yates: the first invite_group_size entries become a
    // uniformly random subset.
    for (std::size_t i = 0; i < params_.invite_group_size; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng_.uniform_int(contacted.size() - i));
      std::swap(contacted[i], contacted[j]);
    }
    contacted.resize(params_.invite_group_size);
  }

  AssignmentResult result;
  result.contacted = contacted.size();

  // A lossy control plane can drop an invitation (the server never answers)
  // or a volunteer reply (the server answered in vain). Both directions are
  // billed as sent — the message left its sender — but only received
  // replies enter the draw.
  std::uint64_t replies_sent = 0;
  std::uint64_t invitations_lost = 0;
  std::uint64_t replies_lost = 0;
  std::vector<dc::ServerId>& volunteers = scratch_volunteers_;
  volunteers.clear();
  for (dc::ServerId id : contacted) {
    if (faults_ && faults_->drop_invitation && faults_->drop_invitation()) {
      ++invitations_lost;
      continue;
    }
    if (server_accepts(datacenter.server(id), now, vm_demand_mhz, vm_ram_mb, fa)) {
      ++replies_sent;
      if (faults_ && faults_->drop_reply && faults_->drop_reply()) {
        ++replies_lost;
        continue;
      }
      volunteers.push_back(id);
    }
  }
  result.volunteers = volunteers.size();
  if (!volunteers.empty()) {
    result.server = volunteers[rng_.index(volunteers.size())];
  }
  if (log_) {
    ++log_->invitation_rounds;
    log_->invitations_sent += result.contacted;
    log_->volunteer_replies += replies_sent;
    log_->invitations_lost += invitations_lost;
    log_->replies_lost += replies_lost;
  }
  return result;
}

}  // namespace ecocloud::core
