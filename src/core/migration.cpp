#include "ecocloud/core/migration.hpp"

#include <algorithm>

#include "ecocloud/util/math.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::core {

MigrationProcedure::MigrationProcedure(const EcoCloudParams& params,
                                       AssignmentProcedure& assignment,
                                       util::Rng& rng)
    : params_(params),
      assignment_(assignment),
      rng_(rng),
      fl_(params.tl, params.alpha),
      fh_(params.th, params.beta) {}

double MigrationProcedure::effective_utilization(const dc::DataCenter& datacenter,
                                                 const dc::Server& server) {
  // The common monitor-tick case: nothing is leaving, so the outbound sum
  // is exactly 0.0 and the loop below would reproduce demand/capacity
  // bit-for-bit. Skipping it avoids touching every hosted VM's record.
  if (server.migrating_out_count() == 0) {
    return util::clamp01(server.demand_ratio());
  }
  double outbound = 0.0;
  for (dc::VmId v : server.vms()) {
    if (datacenter.vm(v).migrating()) outbound += datacenter.vm(v).demand_mhz;
  }
  return util::clamp01((server.demand_mhz() - outbound) / server.capacity_mhz());
}

std::optional<MigrationPlan> MigrationProcedure::check(
    const dc::DataCenter& datacenter, dc::ServerId server_id, sim::SimTime now,
    bool* trial_fired) {
  if (trial_fired) *trial_fired = false;
  const dc::Server& server = datacenter.server(server_id);

  if (!server.active() || server.empty()) return std::nullopt;
  if (server.in_grace(now)) return std::nullopt;  // still filling up
  if (now < server.migration_cooldown_until()) return std::nullopt;

  const double u_eff = effective_utilization(datacenter, server);

  if (u_eff > params_.th) {
    return trial(datacenter, server_id, now, u_eff, /*is_high=*/true,
                 trial_fired);
  }
  if (u_eff < params_.tl) {
    return trial(datacenter, server_id, now, u_eff, /*is_high=*/false,
                 trial_fired);
  }
  return std::nullopt;
}

std::optional<MigrationPlan> MigrationProcedure::trial(
    const dc::DataCenter& datacenter, dc::ServerId server_id, sim::SimTime now,
    double u_eff, bool is_high, bool* trial_fired) {
  if (trial_fired) *trial_fired = false;
  const dc::Server& server = datacenter.server(server_id);
  if (is_high) {
    const bool fired = rng_.bernoulli(fh_(u_eff));
    fh_tally_.record(fired);
    if (!fired) return std::nullopt;
    if (trial_fired) *trial_fired = true;
    return plan_high(datacenter, server, now, u_eff);
  }
  const bool fired = rng_.bernoulli(fl_(u_eff));
  fl_tally_.record(fired);
  if (!fired) return std::nullopt;
  if (trial_fired) *trial_fired = true;
  return plan_low(datacenter, server, now);
}

std::optional<MigrationPlan> MigrationProcedure::plan_high(
    const dc::DataCenter& datacenter, const dc::Server& server, sim::SimTime now,
    double u_eff) {
  // Candidates: non-migrating VMs whose share exceeds (u - Th), so moving
  // one of them alone brings the server back under the threshold.
  const double share_needed = u_eff - params_.th;
  std::vector<dc::VmId> candidates;
  dc::VmId largest = dc::kNoVm;
  double largest_demand = -1.0;
  for (dc::VmId v : server.vms()) {
    const dc::Vm& vm = datacenter.vm(v);
    if (vm.migrating()) continue;
    const double share = vm.demand_mhz / server.capacity_mhz();
    if (share > share_needed) candidates.push_back(v);
    if (vm.demand_mhz > largest_demand) {
      largest_demand = vm.demand_mhz;
      largest = v;
    }
  }
  if (largest == dc::kNoVm) return std::nullopt;  // everything already leaving

  MigrationPlan plan;
  plan.is_high = true;
  if (!candidates.empty()) {
    plan.vm = candidates[rng_.index(candidates.size())];
  } else {
    plan.vm = largest;  // footnote 3: largest VM + suggest another trial
    plan.recheck_suggested = true;
  }

  const dc::Vm& vm = datacenter.vm(plan.vm);
  const double ta_override =
      std::min(1.0, params_.high_dest_factor * server.utilization());
  const std::vector<dc::ServerId>* subset =
      topology_ ? &topology_->servers_in_rack(topology_->rack_of(server.id()))
                : nullptr;
  const AssignmentResult result =
      assignment_.invite(datacenter, now, vm.demand_mhz, vm.ram_mb, ta_override,
                         server.id(), subset);
  if (result.server) {
    plan.dest = *result.server;
  } else {
    // Nobody volunteered: relieve the overload by waking a server.
    plan.wake = true;
  }
  return plan;
}

std::optional<MigrationPlan> MigrationProcedure::plan_low(
    const dc::DataCenter& datacenter, const dc::Server& server, sim::SimTime now) {
  std::vector<dc::VmId> movable;
  for (dc::VmId v : server.vms()) {
    if (!datacenter.vm(v).migrating()) movable.push_back(v);
  }
  if (movable.empty()) return std::nullopt;

  MigrationPlan plan;
  plan.is_high = false;
  plan.vm = movable[rng_.index(movable.size())];

  const dc::Vm& vm = datacenter.vm(plan.vm);
  const std::vector<dc::ServerId>* subset =
      topology_ ? &topology_->servers_in_rack(topology_->rack_of(server.id()))
                : nullptr;
  const AssignmentResult result =
      assignment_.invite(datacenter, now, vm.demand_mhz, vm.ram_mb,
                         /*ta_override=*/-1.0, server.id(), subset);
  if (!result.server) {
    // Never wake a server to empty another one (paper Sec. II): no
    // volunteer means no migration.
    return std::nullopt;
  }
  plan.dest = *result.server;
  return plan;
}

}  // namespace ecocloud::core
