#pragma once

/// \file assignment.hpp
/// \brief The decentralized assignment procedure (paper Sec. II).
///
/// The data-center manager broadcasts an invitation carrying the VM's
/// resource demand; each *active* server answers with an independent
/// Bernoulli trial whose success probability is f_a evaluated on its local
/// utilization. The manager then picks uniformly among the volunteers.
/// No global optimization happens anywhere — that is the point.

#include <optional>
#include <vector>

#include "ecocloud/core/fault_hooks.hpp"
#include "ecocloud/core/message_log.hpp"
#include "ecocloud/core/params.hpp"
#include "ecocloud/core/probability.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::core {

/// Outcome of one invitation round.
struct AssignmentResult {
  /// Chosen server, or empty when every contacted server declined.
  std::optional<dc::ServerId> server;

  /// Number of servers that volunteered.
  std::size_t volunteers = 0;

  /// Number of servers contacted.
  std::size_t contacted = 0;
};

/// Stateless engine for invitation rounds; all state lives in DataCenter.
class AssignmentProcedure {
 public:
  AssignmentProcedure(const EcoCloudParams& params, util::Rng& rng);

  /// Run one invitation round for a VM of the given demand.
  ///
  /// \param now          current simulation time (for grace periods).
  /// \param ta_override  replaces Ta in f_a when >= 0 (the high-migration
  ///                     destination variant uses Ta' = 0.9 * u_source).
  /// \param exclude      a server that must not volunteer (migration source).
  /// \param subset       when non-null, only these servers are contacted
  ///                     (footnote 1's group broadcast; inactive entries
  ///                     are skipped).
  AssignmentResult invite(const dc::DataCenter& datacenter, sim::SimTime now,
                          double vm_demand_mhz, double vm_ram_mb = 0.0,
                          double ta_override = -1.0,
                          dc::ServerId exclude = dc::kNoServer,
                          const std::vector<dc::ServerId>* subset = nullptr) const;

  /// One server's answer to an invitation (exposed for tests and for the
  /// multi-resource extension, which wraps it with extra trials).
  [[nodiscard]] bool server_accepts(const dc::Server& server, sim::SimTime now,
                                    double vm_demand_mhz, double vm_ram_mb,
                                    const AssignmentFunction& fa) const;

  [[nodiscard]] const AssignmentFunction& fa() const { return fa_; }

  /// Accept/reject tally of every f_a Bernoulli trial run so far (grace
  /// accepts are deterministic and excluded).
  [[nodiscard]] const BernoulliTally& fa_tally() const { return fa_tally_; }

  /// Checkpoint restore of the tally (pure accounting, no behavior).
  void restore_fa_tally(const BernoulliTally& tally) { fa_tally_ = tally; }

  /// Attach a control-plane message counter (nullptr to detach). Not
  /// owned; must outlive the procedure while attached.
  void set_message_log(MessageLog* log) { log_ = log; }

  /// Attach fault hooks (nullptr to detach): drop_invitation/drop_reply
  /// make the control plane lossy. Not owned; must outlive the procedure
  /// while attached.
  void set_fault_hooks(const FaultHooks* hooks) { faults_ = hooks; }

 private:
  const EcoCloudParams& params_;
  util::Rng& rng_;
  AssignmentFunction fa_;
  MessageLog* log_ = nullptr;
  const FaultHooks* faults_ = nullptr;
  /// Mutable because trials happen inside the logically-const invite path,
  /// like the message log; pure accounting, no behavioral state.
  mutable BernoulliTally fa_tally_;
  /// Per-round scratch buffers, rebuilt from empty on every invite() so
  /// the hot path stops allocating once their capacity has grown to the
  /// steady-state round size. Contents never survive a call; mutable for
  /// the same reason as the tally.
  mutable std::vector<dc::ServerId> scratch_contacted_;
  mutable std::vector<dc::ServerId> scratch_volunteers_;
  mutable std::vector<std::uint32_t> scratch_positions_;
};

}  // namespace ecocloud::core
