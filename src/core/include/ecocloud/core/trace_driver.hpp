#pragma once

/// \file trace_driver.hpp
/// \brief Replays per-VM demand traces onto DataCenter VMs every sampling
///        period.
///
/// Each mapped VM's demand is refreshed from its trace series at every
/// 5-minute tick (the CoMon sampling period), exactly as the paper's
/// trace-driven simulations do. The driver reads from one of two sources:
/// a materialized trace::TraceSet (the full sample matrix, O(VMs x
/// horizon) memory) or a trace::StreamingTraces cursor bank (O(VMs)
/// memory, samples produced lazily as the clock advances — DESIGN.md §14).
/// Both sources yield bit-identical demands, so the event stream does not
/// depend on which one backs the driver.

#include <unordered_map>

#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/sim/simulator.hpp"
#include "ecocloud/trace/streaming_traces.hpp"
#include "ecocloud/trace/trace_set.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::core {

class TraceDriver {
 public:
  /// Snapshot-stable event kinds (tag_owner::kTraceDriver). Append only.
  enum EventKind : std::uint16_t { kEvTick = 1 };

  TraceDriver(sim::Simulator& simulator, dc::DataCenter& datacenter,
              const trace::TraceSet& traces);

  /// Streaming-source driver. The cursor bank is advanced on demand
  /// (monotonically) as ticks and VM arrivals query it; it must outlive
  /// the driver, like the TraceSet in the materialized overload.
  TraceDriver(sim::Simulator& simulator, dc::DataCenter& datacenter,
              trace::StreamingTraces& streaming);

  /// Bind DataCenter VM \p vm to trace row \p trace_index and set its
  /// demand to the current sample.
  void map_vm(std::size_t trace_index, dc::VmId vm);

  /// Stop driving \p vm (on departure).
  void unmap_vm(dc::VmId vm);

  /// Schedule the periodic demand refresh. Call once.
  void start();

  /// Demand (MHz) that trace row \p trace_index prescribes right now.
  [[nodiscard]] double current_demand_mhz(std::size_t trace_index) const;

  [[nodiscard]] std::size_t mapped_count() const { return vm_to_trace_.size(); }

  /// Current VM -> trace-row binding. The sharded auditor walks this to
  /// assert each global trace row is driven by at most one shard.
  [[nodiscard]] const std::unordered_map<dc::VmId, std::size_t>& mapped_vms()
      const {
    return vm_to_trace_;
  }

  /// Checkpoint surface. The VM->trace map is restored with its exact
  /// iteration order preserved: tick() refreshes demands in map order and
  /// the DataCenter accumulates load deltas in that order, so a different
  /// order would change floating-point rounding and break bit-exact resume.
  /// A streaming source carries no snapshot state of its own: it restarts
  /// at step 0 and deterministically fast-forwards on the first query after
  /// a restore.
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);
  [[nodiscard]] sim::Simulator::Callback rebuild_event(const sim::EventTag& tag);

 private:
  void tick();
  [[nodiscard]] std::size_t source_num_vms() const;
  [[nodiscard]] sim::SimTime source_sample_period_s() const;
  /// Move streaming cursors to the step active at \p now. No-op for a
  /// materialized source or when already there (ticks and same-tick VM
  /// arrivals land on the same step regardless of event order).
  void sync_streaming(sim::SimTime now) const;

  sim::Simulator& sim_;
  dc::DataCenter& dc_;
  const trace::TraceSet* traces_ = nullptr;
  trace::StreamingTraces* streaming_ = nullptr;
  std::unordered_map<dc::VmId, std::size_t> vm_to_trace_;
  bool started_ = false;
};

}  // namespace ecocloud::core
