#pragma once

/// \file migration.hpp
/// \brief The two-step migration procedure (paper Sec. II).
///
/// Each server periodically checks its CPU utilization. Outside the
/// [Tl, Th] band it runs a Bernoulli trial (f_l below, f_h above); on
/// success it requests the migration of one local VM. The destination is
/// found with a variant of the assignment procedure:
///  * high migrations use Ta' = 0.9 * u_source (prevents ping-pong) and may
///    wake a hibernated server when nobody volunteers;
///  * low migrations never wake a server (activating one server to
///    hibernate another would be self-defeating) — with no volunteer the
///    VM simply stays put.
///
/// VM selection for high migrations follows the paper: among VMs whose
/// utilization share exceeds (u - Th), pick uniformly; if none qualifies,
/// pick the largest VM (footnote 3) and suggest an immediate re-check for
/// a further migration.

#include <optional>

#include "ecocloud/core/assignment.hpp"
#include "ecocloud/core/params.hpp"
#include "ecocloud/core/probability.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/net/topology.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::core {

/// A migration the server decided to request.
struct MigrationPlan {
  dc::VmId vm = dc::kNoVm;

  /// Destination server; empty when no server volunteered but a wake-up is
  /// requested instead (high migrations only).
  std::optional<dc::ServerId> dest;

  bool is_high = false;

  /// True when the manager should wake a hibernated server for this VM.
  bool wake = false;

  /// True when the largest-VM fallback fired and the paper prescribes an
  /// immediate further Bernoulli trial on the same server (footnote 3).
  bool recheck_suggested = false;
};

class MigrationProcedure {
 public:
  MigrationProcedure(const EcoCloudParams& params, AssignmentProcedure& assignment,
                     util::Rng& rng);

  /// One monitor tick for \p server_id. Returns a plan when the Bernoulli
  /// trial succeeded and a VM was selected; std::nullopt otherwise. The
  /// trial having succeeded is reported through \p trial_fired (when
  /// non-null) even if no destination exists, so the controller can apply
  /// the request cooldown.
  [[nodiscard]] std::optional<MigrationPlan> check(const dc::DataCenter& datacenter,
                                                   dc::ServerId server_id,
                                                   sim::SimTime now,
                                                   bool* trial_fired = nullptr);

  /// The tail of check() once the early-outs have passed and \p u_eff is
  /// known to be out of band: run the Bernoulli trial (f_h when \p is_high,
  /// f_l otherwise), record the tally, and on success build the plan. The
  /// batched monitor path (EcoCloudController) calls this directly with its
  /// cached classification; check() delegates here, so RNG draw order and
  /// tallies are identical on both paths.
  [[nodiscard]] std::optional<MigrationPlan> trial(const dc::DataCenter& datacenter,
                                                   dc::ServerId server_id,
                                                   sim::SimTime now, double u_eff,
                                                   bool is_high,
                                                   bool* trial_fired = nullptr);

  /// Effective utilization used for migration decisions: hosted demand
  /// minus VMs already migrating out, over capacity, clamped to [0,1].
  [[nodiscard]] static double effective_utilization(const dc::DataCenter& datacenter,
                                                    const dc::Server& server);

  [[nodiscard]] const LowMigrationFunction& fl() const { return fl_; }
  [[nodiscard]] const HighMigrationFunction& fh() const { return fh_; }

  /// Accept/reject tallies of the f_l / f_h Bernoulli trials run so far.
  [[nodiscard]] const BernoulliTally& fl_tally() const { return fl_tally_; }
  [[nodiscard]] const BernoulliTally& fh_tally() const { return fh_tally_; }

  /// Checkpoint restore of the tallies (pure accounting, no behavior).
  void restore_tallies(const BernoulliTally& fl, const BernoulliTally& fh) {
    fl_tally_ = fl;
    fh_tally_ = fh;
  }

  /// With a topology attached, destination searches are scoped to the
  /// source server's rack (footnote 1). Pass nullptr to detach.
  void set_topology(const net::Topology* topology) { topology_ = topology; }

 private:
  /// Pick the VM to shed from an over-utilized server.
  [[nodiscard]] std::optional<MigrationPlan> plan_high(const dc::DataCenter& datacenter,
                                                       const dc::Server& server,
                                                       sim::SimTime now, double u_eff);

  /// Pick the VM to drain from an under-utilized server.
  [[nodiscard]] std::optional<MigrationPlan> plan_low(const dc::DataCenter& datacenter,
                                                      const dc::Server& server,
                                                      sim::SimTime now);

  const EcoCloudParams& params_;
  AssignmentProcedure& assignment_;
  util::Rng& rng_;
  LowMigrationFunction fl_;
  HighMigrationFunction fh_;
  const net::Topology* topology_ = nullptr;
  BernoulliTally fl_tally_;
  BernoulliTally fh_tally_;
};

}  // namespace ecocloud::core
