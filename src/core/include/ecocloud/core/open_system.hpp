#pragma once

/// \file open_system.hpp
/// \brief VM arrival/departure driver for the fluid-model experiment.
///
/// Reproduces the paper's Sec. IV setup: VMs arrive following a
/// non-homogeneous Poisson process lambda(t), each drawing its demand
/// profile from a random trace row, and departs after an exponential
/// lifetime with per-VM rate nu. Arrivals and departures are logged into
/// an optional RateEstimator, from which the ODE benches recover the
/// lambda(t)/mu(t) inputs of Eqs. (5)/(11) — the paper's "computed from
/// the traces" step.

#include <optional>

#include "ecocloud/core/controller.hpp"
#include "ecocloud/core/trace_driver.hpp"
#include "ecocloud/trace/arrivals.hpp"
#include "ecocloud/trace/rate_estimator.hpp"

namespace ecocloud::core {

class OpenSystemDriver {
 public:
  /// Snapshot-stable event kinds (tag_owner::kOpenSystem). Append only.
  /// kEvDeparture carries the departing VM id in `a`.
  enum EventKind : std::uint16_t { kEvArrival = 1, kEvDeparture = 2 };

  /// \param lambda      arrival rate function (VMs/second).
  /// \param lambda_max  finite bound on lambda (thinning envelope).
  /// \param nu          per-VM departure rate (1/second, > 0).
  OpenSystemDriver(sim::Simulator& simulator, dc::DataCenter& datacenter,
                   EcoCloudController& controller, TraceDriver& trace_driver,
                   const trace::TraceSet& traces, util::Rng rng,
                   trace::RateFn lambda, double lambda_max, double nu);

  /// Optionally log events for later rate estimation.
  void set_rate_estimator(trace::RateEstimator* estimator) { estimator_ = estimator; }

  /// Inject \p count VMs right now (initial population), placing each on a
  /// uniformly random *active* server — the paper's "non consolidated"
  /// starting condition. Departures are scheduled for them as usual.
  void seed_initial_population(std::size_t count);

  /// Begin generating arrivals. Call once.
  void start();

  [[nodiscard]] std::size_t population() const { return population_; }
  [[nodiscard]] std::uint64_t total_arrivals() const { return total_arrivals_; }
  [[nodiscard]] std::uint64_t total_departures() const { return total_departures_; }
  /// Arrivals turned away because the data center was saturated.
  [[nodiscard]] std::uint64_t total_rejections() const { return total_rejections_; }

  /// Checkpoint surface: RNG stream, population and counters. Pending
  /// arrival/departure events are restored through the tagged calendar.
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);
  [[nodiscard]] sim::Simulator::Callback rebuild_event(const sim::EventTag& tag);

 private:
  void schedule_next_arrival();
  void on_arrival();
  void on_departure(dc::VmId vm);
  dc::VmId spawn_vm();
  void schedule_departure(dc::VmId vm);

  sim::Simulator& sim_;
  dc::DataCenter& dc_;
  EcoCloudController& controller_;
  TraceDriver& trace_driver_;
  const trace::TraceSet& traces_;
  util::Rng rng_;
  trace::PoissonArrivals arrivals_;
  double nu_;
  trace::RateEstimator* estimator_ = nullptr;

  std::size_t population_ = 0;
  std::uint64_t total_arrivals_ = 0;
  std::uint64_t total_departures_ = 0;
  std::uint64_t total_rejections_ = 0;
  bool started_ = false;
};

}  // namespace ecocloud::core
