#pragma once

/// \file controller.hpp
/// \brief Event-driven orchestration of the ecoCloud procedures.
///
/// EcoCloudController plays both roles of the paper's architecture:
///  * the thin data-center manager (broadcasting invitations, picking among
///    volunteers, waking servers); and
///  * the per-server monitor loop that runs the migration procedure on
///    local information every few seconds.
///
/// It owns no placement state — that lives in DataCenter — and reports
/// everything observable through optional event callbacks, which the
/// metrics module subscribes to.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ecocloud/core/assignment.hpp"
#include "ecocloud/core/migration.hpp"
#include "ecocloud/core/params.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/sim/simulator.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::core {

class EcoCloudController {
 public:
  /// Observable events; any callback may be left empty.
  struct Events {
    std::function<void(sim::SimTime, dc::VmId, dc::ServerId)> on_assignment;
    /// Fired when no server volunteered, none was booting, and none could
    /// be woken (the "buy more servers" signal of Sec. II).
    std::function<void(sim::SimTime, dc::VmId)> on_assignment_failure;
    std::function<void(sim::SimTime, dc::VmId, bool is_high)> on_migration_start;
    std::function<void(sim::SimTime, dc::VmId, bool is_high)> on_migration_complete;
    std::function<void(sim::SimTime, dc::ServerId)> on_activation;
    std::function<void(sim::SimTime, dc::ServerId)> on_hibernation;
  };

  EcoCloudController(sim::Simulator& simulator, dc::DataCenter& datacenter,
                     EcoCloudParams params, util::Rng rng);

  /// Schedule the per-server monitor loops (staggered phases). Call once.
  void start();

  /// Run the assignment procedure for an unplaced VM. May place it
  /// immediately, queue it on a booting server, or wake a hibernated
  /// server. Returns false only when the whole data center is saturated.
  bool deploy_vm(dc::VmId vm);

  /// Remove a VM from the system (departure). Handles in-flight migrations
  /// and boot queues; triggers hibernation checks.
  void depart_vm(dc::VmId vm);

  /// Activate a hibernated server instantly (experiment setup helper; does
  /// not grant the post-boot grace period unless \p with_grace).
  void force_activate(dc::ServerId server, bool with_grace = false);

  [[nodiscard]] const EcoCloudParams& params() const { return params_; }
  [[nodiscard]] Events& events() { return events_; }

  // --- Lifetime counters ---
  [[nodiscard]] std::uint64_t low_migrations() const { return low_migrations_; }
  [[nodiscard]] std::uint64_t high_migrations() const { return high_migrations_; }
  [[nodiscard]] std::uint64_t assignment_failures() const {
    return assignment_failures_;
  }
  [[nodiscard]] std::uint64_t wake_ups() const { return wake_ups_; }
  void reset_counters();

  /// Exposed for tests and extensions.
  [[nodiscard]] AssignmentProcedure& assignment() { return assignment_; }
  [[nodiscard]] MigrationProcedure& migration() { return migration_; }

  /// Control-plane traffic accumulated so far (paper Fig. 1 / footnote 1).
  [[nodiscard]] const MessageLog& messages() const { return messages_; }

  /// Attach a rack topology (footnote 1): invitations are broadcast to one
  /// random rack instead of the whole fleet, migration destinations are
  /// searched in the source's rack, and migration completion times include
  /// the RAM transfer over intra-/inter-rack bandwidth. The topology must
  /// cover every server and outlive the controller. Call before start().
  void set_topology(const net::Topology* topology);

 private:
  void monitor_server(dc::ServerId s);
  void execute_plan(const MigrationPlan& plan, dc::ServerId source);
  /// Wall time a live migration takes: the fixed latency plus, with a
  /// topology attached, the RAM transfer over the available bandwidth.
  [[nodiscard]] sim::SimTime migration_duration(dc::VmId vm, dc::ServerId source,
                                                dc::ServerId dest) const;
  void start_migration(dc::VmId vm, dc::ServerId dest, bool is_high,
                       sim::SimTime complete_at);
  void finish_migration(dc::VmId vm, dc::ServerId expected_dest, bool is_high);
  /// Pick a hibernated server and start booting it; returns its id.
  std::optional<dc::ServerId> wake_one_server();
  /// Try to queue \p vm on an already-booting server with room under Ta.
  bool queue_on_booting(dc::VmId vm);
  void queue_vm(dc::ServerId booting_server, dc::VmId vm);
  void on_boot_finished(dc::ServerId s);
  void schedule_hibernation_check(dc::ServerId s);

  sim::Simulator& sim_;
  dc::DataCenter& dc_;
  EcoCloudParams params_;
  util::Rng rng_;
  AssignmentProcedure assignment_;
  MigrationProcedure migration_;
  Events events_;
  MessageLog messages_;
  const net::Topology* topology_ = nullptr;

  /// VMs waiting for a booting server, per server, plus their total demand.
  struct BootQueue {
    std::vector<dc::VmId> vms;
    double queued_mhz = 0.0;
    sim::SimTime finish_at = 0.0;
  };

  /// Booting server with room for an inbound migration of \p demand_mhz.
  std::optional<dc::ServerId> booting_with_room(double demand_mhz) const;
  std::unordered_map<dc::ServerId, BootQueue> boot_queues_;
  std::unordered_map<dc::VmId, dc::ServerId> queued_on_;

  std::uint64_t low_migrations_ = 0;
  std::uint64_t high_migrations_ = 0;
  std::uint64_t assignment_failures_ = 0;
  std::uint64_t wake_ups_ = 0;
  bool started_ = false;
};

}  // namespace ecocloud::core
