#pragma once

/// \file controller.hpp
/// \brief Event-driven orchestration of the ecoCloud procedures.
///
/// EcoCloudController plays both roles of the paper's architecture:
///  * the thin data-center manager (broadcasting invitations, picking among
///    volunteers, waking servers); and
///  * the per-server monitor loop that runs the migration procedure on
///    local information every few seconds.
///
/// It owns no placement state — that lives in DataCenter — and reports
/// everything observable through optional event callbacks, which the
/// metrics module subscribes to.
///
/// The controller also carries the recovery half of the fault model
/// (src/faults): fail-stop crashes roll back the migrations touching the
/// dead server and orphan its VMs into a redeploy path, failed boots are
/// retried a bounded number of times before falling back to a different
/// server, and a lossy control plane is tolerated by repeating invitation
/// rounds. With no fault hooks installed every failure path is dead code
/// and the event stream is identical to the fault-free build.

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ecocloud/core/assignment.hpp"
#include "ecocloud/core/fault_hooks.hpp"
#include "ecocloud/core/migration.hpp"
#include "ecocloud/core/params.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/sim/simulator.hpp"
#include "ecocloud/util/binio.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::core {

class EcoCloudController {
 public:
  /// EventTag kinds scheduled under sim::tag_owner::kController. Values are
  /// part of the snapshot format — append, never renumber. `a` carries the
  /// server id (or VM id for kEvMigrationDone).
  enum EventKind : std::uint16_t {
    kEvMonitor = 1,        ///< Periodic per-server monitor loop.
    kEvBootDone = 2,       ///< Boot completion (handle kept in BootQueue).
    kEvMigrationDone = 3,  ///< Migration completion (handle kept in Inflight).
    kEvHibernateCheck = 4, ///< Delayed hibernation check.
    kEvGraceCheck = 5,     ///< Re-check at grace-period expiry.
  };

  /// Observable events; any callback may be left empty.
  struct Events {
    std::function<void(sim::SimTime, dc::VmId, dc::ServerId)> on_assignment;
    /// Fired when no server volunteered, none was booting, and none could
    /// be woken (the "buy more servers" signal of Sec. II).
    std::function<void(sim::SimTime, dc::VmId)> on_assignment_failure;
    std::function<void(sim::SimTime, dc::VmId, bool is_high)> on_migration_start;
    std::function<void(sim::SimTime, dc::VmId, bool is_high)> on_migration_complete;
    std::function<void(sim::SimTime, dc::ServerId)> on_activation;
    std::function<void(sim::SimTime, dc::ServerId)> on_hibernation;
    /// Fired when the manager sends a wake-up command (boot start); pairs
    /// with on_activation to measure the wake-to-active latency.
    std::function<void(sim::SimTime, dc::ServerId)> on_wake;
    /// Fired at the start of every departure, before any state is touched
    /// (the faults module drops departing orphans from its redeploy queue).
    std::function<void(sim::SimTime, dc::VmId)> on_vm_departed;
    /// A migration trial fired but no local destination exists: either no
    /// server volunteered for a low migration, or a high migration found
    /// neither a volunteer nor a wakeable server. Within a single
    /// datacenter the situation is simply ridden out (paper Sec. II); the
    /// sharded engine records it as a cross-shard hand-off wish.
    std::function<void(sim::SimTime, dc::ServerId, bool is_high)>
        on_migration_stranded;
    // --- Failure-path events (only fired when faults are injected) ---
    std::function<void(sim::SimTime, dc::ServerId)> on_server_failed;
    std::function<void(sim::SimTime, dc::ServerId)> on_server_repaired;
    /// A VM lost its host to a crash and left the placement.
    std::function<void(sim::SimTime, dc::VmId, dc::ServerId)> on_vm_orphaned;
    /// An in-flight migration was rolled back (transfer abort or a crash
    /// of either endpoint); the VM stays on its source if that survives.
    std::function<void(sim::SimTime, dc::VmId, bool is_high)> on_migration_aborted;
  };

  EcoCloudController(sim::Simulator& simulator, dc::DataCenter& datacenter,
                     EcoCloudParams params, util::Rng rng);

  /// Schedule the per-server monitor loops (staggered phases). Call once.
  void start();

  /// Run the assignment procedure for an unplaced VM. May place it
  /// immediately, queue it on a booting server, or wake a hibernated
  /// server. Returns false only when the whole data center is saturated.
  bool deploy_vm(dc::VmId vm);

  /// Remove a VM from the system (departure). Handles in-flight migrations
  /// and boot queues; triggers hibernation checks.
  void depart_vm(dc::VmId vm);

  /// Activate a hibernated server instantly (experiment setup helper; does
  /// not grant the post-boot grace period unless \p with_grace).
  void force_activate(dc::ServerId server, bool with_grace = false);

  /// Fail-stop crash of \p server. Rolls back every in-flight migration
  /// touching it (destinations keep nothing, sources keep their VM),
  /// cancels a pending boot, and orphans both hosted and boot-queued VMs.
  /// Orphans are handed to the orphan handler when one is installed (the
  /// faults module's redeploy queue) and returned either way.
  std::vector<dc::VmId> fail_server(dc::ServerId server);

  /// Repair a failed server: it rejoins as hibernated and becomes eligible
  /// for the normal wake-up path again.
  void repair_server(dc::ServerId server);

  /// Install fault hooks (nullptr to detach): lossy control plane, boot
  /// failures, migration aborts. Also forwarded to the assignment
  /// procedure. Not owned; must outlive the controller while attached.
  void set_fault_hooks(const FaultHooks* hooks);

  /// Install the recovery policy for crash orphans (empty to reset to the
  /// default, which retries deploy_vm once, immediately). The handler runs
  /// inside fail_server; implementations should defer real work through
  /// the simulator rather than re-entering the controller synchronously.
  void set_orphan_handler(std::function<void(dc::VmId)> handler);

  [[nodiscard]] const EcoCloudParams& params() const { return params_; }
  [[nodiscard]] Events& events() { return events_; }

  // --- Lifetime counters ---
  [[nodiscard]] std::uint64_t low_migrations() const { return low_migrations_; }
  [[nodiscard]] std::uint64_t high_migrations() const { return high_migrations_; }
  [[nodiscard]] std::uint64_t assignment_failures() const {
    return assignment_failures_;
  }
  [[nodiscard]] std::uint64_t wake_ups() const { return wake_ups_; }
  /// Migrations rolled back by a transfer-abort fault.
  [[nodiscard]] std::uint64_t aborted_migrations() const { return aborted_migrations_; }
  /// Migrations rolled back because an endpoint crashed or its boot failed.
  [[nodiscard]] std::uint64_t interrupted_migrations() const {
    return interrupted_migrations_;
  }
  /// Failed boot attempts (each may be retried up to max_boot_retries).
  [[nodiscard]] std::uint64_t boot_failures() const { return boot_failures_; }
  void reset_counters();

  /// Exposed for tests and extensions.
  [[nodiscard]] AssignmentProcedure& assignment() { return assignment_; }
  [[nodiscard]] MigrationProcedure& migration() { return migration_; }

  /// Control-plane traffic accumulated so far (paper Fig. 1 / footnote 1).
  [[nodiscard]] const MessageLog& messages() const { return messages_; }

  // --- Introspection (telemetry gauges; all O(1)) ---
  /// Servers currently booting with a deployment queue attached.
  [[nodiscard]] std::size_t boot_queue_count() const { return boot_queues_.size(); }
  /// VMs waiting on booting servers.
  [[nodiscard]] std::size_t queued_vm_count() const { return queued_on_.size(); }
  /// Live migrations currently tracked in flight by this controller.
  [[nodiscard]] std::size_t inflight_migration_count() const {
    return inflight_.size();
  }

  /// Attach a rack topology (footnote 1): invitations are broadcast to one
  /// random rack instead of the whole fleet, migration destinations are
  /// searched in the source's rack, and migration completion times include
  /// the RAM transfer over intra-/inter-rack bandwidth. The topology must
  /// cover every server and outlive the controller. Call before start().
  void set_topology(const net::Topology* topology);

  // --- Checkpoint surface ---------------------------------------------------

  /// Serialize the controller: RNG stream, counters, message log, tallies,
  /// and the boot/queue/in-flight maps with their iteration order (those
  /// maps are iterated by decision paths, so order is behavior).
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);

  /// Rebuild the callback for a calendar entry tagged with one of this
  /// controller's EventKinds; throws std::runtime_error on unknown kinds.
  [[nodiscard]] sim::Simulator::Callback rebuild_event(const sim::EventTag& tag);

  /// Re-capture the restored handle of a kEvBootDone / kEvMigrationDone
  /// event into the matching BootQueue / Inflight entry (which must have
  /// been restored by load_state first).
  void bind_event(const sim::EventTag& tag, sim::EventHandle handle);

  // --- Audit accessors (RuntimeAuditor) ------------------------------------
  /// VMs queued on booting servers, keyed by VM.
  [[nodiscard]] const std::unordered_map<dc::VmId, dc::ServerId>& queued_vms()
      const {
    return queued_on_;
  }
  /// True when \p vm has an in-flight migration tracked by this controller.
  [[nodiscard]] bool tracks_inflight(dc::VmId vm) const {
    return inflight_.count(vm) > 0;
  }

 private:
  void monitor_server(dc::ServerId s);
  /// Rebuild the stale part of the monitor classification cache from the
  /// DataCenter's dirty journal (all-dirty -> one columnar kernel sweep,
  /// otherwise per-id scalar refreshes). Attributed to Phase::kMonitorBatch.
  void drain_monitor_journal();
  /// Recompute one server's cached u_eff + class byte (scalar reference
  /// kernel, then the out-migration patch — bit-identical to the batch).
  void refresh_monitor_row(dc::ServerId s);
  void execute_plan(const MigrationPlan& plan, dc::ServerId source);
  /// Wall time a live migration takes: the fixed latency plus, with a
  /// topology attached, the RAM transfer over the available bandwidth.
  [[nodiscard]] sim::SimTime migration_duration(dc::VmId vm, dc::ServerId source,
                                                dc::ServerId dest) const;
  void start_migration(dc::VmId vm, dc::ServerId dest, bool is_high,
                       sim::SimTime complete_at);
  void finish_migration(dc::VmId vm);
  /// Cancel the in-flight migration of \p vm: release the destination
  /// reservation, cancel the completion event, bump the right counter.
  void rollback_migration(dc::VmId vm, bool counts_as_interrupted);
  /// Roll back every in-flight migration whose source or destination is
  /// \p server (crash and boot-failure handling).
  void rollback_migrations_touching(dc::ServerId server);
  /// Pick a hibernated server and start booting it; returns its id.
  std::optional<dc::ServerId> wake_one_server();
  /// Try to queue \p vm on an already-booting server with room under Ta.
  bool queue_on_booting(dc::VmId vm);
  void queue_vm(dc::ServerId booting_server, dc::VmId vm);
  void on_boot_finished(dc::ServerId s);
  void schedule_hibernation_check(dc::ServerId s);
  /// Body of the delayed hibernation check (named so a restored event can
  /// rebuild its callback from the kEvHibernateCheck tag).
  void hibernation_check(dc::ServerId s);
  /// Re-check scheduled at grace expiry (kEvGraceCheck).
  void grace_recheck(dc::ServerId s);

  sim::Simulator& sim_;
  dc::DataCenter& dc_;
  EcoCloudParams params_;
  util::Rng rng_;
  AssignmentProcedure assignment_;
  MigrationProcedure migration_;
  Events events_;
  MessageLog messages_;
  const net::Topology* topology_ = nullptr;

  /// VMs waiting for a booting server, per server, plus their total demand.
  struct BootQueue {
    std::vector<dc::VmId> vms;
    double queued_mhz = 0.0;
    sim::SimTime finish_at = 0.0;
    /// Pending boot-completion event (cancelled when the server crashes).
    sim::EventHandle boot_event;
    /// Boot attempts so far (faults: retried up to max_boot_retries).
    std::size_t boot_attempts = 1;
  };

  /// An in-flight live migration, keyed by VM in inflight_.
  struct Inflight {
    dc::ServerId dest = dc::kNoServer;
    bool is_high = false;
    /// Decided at start by the migration_aborts hook: the transfer will
    /// fail at its completion time instead of landing.
    bool will_abort = false;
    sim::EventHandle done;
  };

  /// Booting server with room for an inbound migration of \p demand_mhz.
  /// Non-const: the fast sampler probes the open-boot registry with RNG
  /// draws instead of scanning every boot queue.
  std::optional<dc::ServerId> booting_with_room(double demand_mhz);
  std::unordered_map<dc::ServerId, BootQueue> boot_queues_;
  std::unordered_map<dc::VmId, dc::ServerId> queued_on_;
  std::unordered_map<dc::VmId, Inflight> inflight_;

  // --- Fast-sampler open-boot registry (params_.fast_sampler only) ---
  // Booting servers believed to still have queue room under Ta. Deploy
  // and migration paths probe kBootProbeCount random entries instead of
  // scanning boot_queues_, re-checking fit at probe time — so a stale
  // entry costs a wasted probe, never a wrong placement. A server leaves
  // when its committed load passes Ta (or its boot resolves) and returns
  // when a queued departure frees room. Probes index into open_boot_, so
  // its order is deterministic state and is checkpointed verbatim.
  static constexpr std::size_t kBootProbeCount = 8;
  std::vector<dc::ServerId> open_boot_;
  std::unordered_map<dc::ServerId, std::uint32_t> open_boot_pos_;
  void open_boot_insert(dc::ServerId s);
  void open_boot_erase(dc::ServerId s);
  /// Re-derive open/closed for \p s from its committed-vs-Ta ratio.
  void open_boot_update(dc::ServerId s);

  // --- Batched monitor cache (DESIGN.md §17) ---
  // Per-server fast-path effective utilization and MonitorClass byte,
  // rebuilt lazily from the DataCenter's monitor dirty journal at the top
  // of each monitor tick. Derived state: deliberately not checkpointed —
  // restore leaves the journal all-dirty, so the first tick after a resume
  // rebuilds the cache from the restored columns.
  std::vector<double> monitor_u_;
  std::vector<std::uint8_t> monitor_cls_;

  const FaultHooks* faults_ = nullptr;
  std::function<void(dc::VmId)> orphan_handler_;

  std::uint64_t low_migrations_ = 0;
  std::uint64_t high_migrations_ = 0;
  std::uint64_t assignment_failures_ = 0;
  std::uint64_t wake_ups_ = 0;
  std::uint64_t aborted_migrations_ = 0;
  std::uint64_t interrupted_migrations_ = 0;
  std::uint64_t boot_failures_ = 0;
  bool started_ = false;
};

}  // namespace ecocloud::core
