#pragma once

/// \file params.hpp
/// \brief ecoCloud algorithm and operational parameters.
///
/// Defaults reproduce the paper's 48-hour experiment (Sec. III):
/// Ta = 0.90, p = 3, Tl = 0.50, Th = 0.95, alpha = beta = 0.25.
/// Operational timings (monitor period, boot time, migration latency,
/// cooldowns) are not pinned down by the paper; DESIGN.md Sec. 5 documents
/// the choices.

#include <cstddef>

#include "ecocloud/sim/time.hpp"

namespace ecocloud::core {

struct EcoCloudParams {
  // --- Probability-function parameters (paper Sec. II/III) ---
  double ta = 0.90;    ///< assignment threshold Ta
  double p = 3.0;      ///< assignment shape p
  double tl = 0.50;    ///< low-migration threshold Tl
  double th = 0.95;    ///< high-migration threshold Th
  double alpha = 0.25; ///< low-migration shape
  double beta = 0.25;  ///< high-migration shape

  /// High-migration destination variant: Ta' = high_dest_factor * u_source
  /// (paper Sec. II: 0.9, preventing ping-pong migrations).
  double high_dest_factor = 0.9;

  // --- Operational parameters ---
  /// Period of each server's local utilization check ("every few seconds").
  sim::SimTime monitor_period_s = 10.0;

  /// Per-server cooldown after a successful migration trial, limiting
  /// request storms while a server drains.
  sim::SimTime migration_cooldown_s = 60.0;

  /// Live-migration completion latency. The traced VMs are small (a few
  /// hundred MHz / a few hundred MB dirty pages), so LAN live migration
  /// completes in seconds.
  sim::SimTime migration_latency_s = 10.0;

  /// Server wake-up (boot) latency; peak power is drawn while booting.
  sim::SimTime boot_time_s = 120.0;

  /// Post-boot grace period during which a server answers invitations
  /// positively (subject to fit) so it reaches critical mass (Sec. IV).
  sim::SimTime grace_period_s = 1800.0;

  /// How long a server must stay empty before it hibernates.
  sim::SimTime hibernate_delay_s = 300.0;

  /// Volunteers must also actually fit the VM (u_after <= 1) to answer yes.
  bool require_fit = true;

  /// Enable the migration procedure (disabled for the Sec. IV experiment).
  bool enable_migrations = true;

  /// Invitation fan-out: 0 = broadcast to all active servers (paper
  /// footnote 1); otherwise a uniformly random subset of this size.
  std::size_t invite_group_size = 0;

  /// Sampling strategy for invitation rounds, wake-up picks, and booting
  /// destination lookups. false = compatibility sampler: sorted-id scans
  /// reproducing the original event stream bit-for-bit (the regression
  /// pins in tests/engine_regression_test depend on this). true = O(k)
  /// sampling over the DataCenter's dense per-state membership sets —
  /// the planet-scale hot path (DESIGN.md §14). The two modes draw the
  /// RNG differently, so they produce *different* but distributionally
  /// equivalent runs (tests/sampler_equivalence_test); the flag is part
  /// of the config digest, so snapshots never cross modes.
  bool fast_sampler = false;

  /// Throws std::invalid_argument if any parameter is out of range or the
  /// thresholds are inconsistent (requires Tl < Ta < Th, per Sec. III's
  /// sensitivity discussion).
  void validate() const;
};

}  // namespace ecocloud::core
