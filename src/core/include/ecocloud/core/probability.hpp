#pragma once

/// \file probability.hpp
/// \brief The three Bernoulli success-probability functions of ecoCloud
///        (paper Sec. II, Eqs. (1)-(4)).
///
/// * AssignmentFunction  f_a(u) = u^p (Ta - u) / Mp    for 0 <= u <= Ta
///   with Mp = p^p / (p+1)^(p+1) * Ta^(p+1), so max f_a = 1 at
///   u* = p/(p+1) * Ta; f_a = 0 above Ta.
/// * LowMigrationFunction   f_l(u) = (1 - u/Tl)^alpha  for u < Tl, else 0.
/// * HighMigrationFunction  f_h(u) = (1 + (u-1)/(1-Th))^beta for u > Th,
///   else 0; reaches 1 at u = 1.
///
/// All functions take utilization in [0, 1] and return a probability in
/// [0, 1]. Parameters are validated at construction.

#include <cstdint>

namespace ecocloud::core {

/// Accept/reject tally of the Bernoulli trials run against one of the
/// probability functions. The procedures maintain one tally per function
/// (f_a, f_l, f_h) so the telemetry layer can report how often each
/// stochastic decision actually fires — the live counterpart of the
/// paper's analytical success probabilities. Deterministic short-circuits
/// (grace-period acceptance, inactive servers) are not trials and are not
/// counted.
struct BernoulliTally {
  std::uint64_t accepts = 0;
  std::uint64_t rejects = 0;

  void record(bool accepted) { ++(accepted ? accepts : rejects); }
  [[nodiscard]] std::uint64_t trials() const { return accepts + rejects; }
};

/// Assignment probability f_a (Eq. 1-2). Servers with intermediate
/// utilization volunteer with high probability; empty and nearly-full
/// servers refuse.
class AssignmentFunction {
 public:
  /// \param ta  maximum allowed utilization Ta, in (0, 1].
  /// \param p   shape parameter (> 0); larger p pushes the most likely
  ///            acceptors toward Ta (stronger consolidation).
  AssignmentFunction(double ta, double p);

  [[nodiscard]] double ta() const { return ta_; }
  [[nodiscard]] double p() const { return p_; }

  /// Normalizer Mp (Eq. 2).
  [[nodiscard]] double normalizer() const { return mp_; }

  /// Utilization at which f_a peaks: p/(p+1) * Ta.
  [[nodiscard]] double argmax() const;

  /// f_a(u); 0 outside [0, Ta].
  [[nodiscard]] double operator()(double u) const;

  /// Copy of this function with a different threshold (used by the
  /// high-migration destination variant, Ta' = 0.9 * u_source).
  [[nodiscard]] AssignmentFunction with_threshold(double new_ta) const;

 private:
  double ta_;
  double p_;
  double mp_;
};

/// Low-utilization migration probability f_l (Eq. 3): drains servers whose
/// utilization fell below Tl so they can be emptied and hibernated.
class LowMigrationFunction {
 public:
  /// \param tl     lower threshold, in (0, 1).
  /// \param alpha  shape (> 0); smaller alpha = more eager migrations.
  LowMigrationFunction(double tl, double alpha);

  [[nodiscard]] double tl() const { return tl_; }
  [[nodiscard]] double alpha() const { return alpha_; }

  /// f_l(u); 0 for u >= Tl; 1 at u = 0.
  [[nodiscard]] double operator()(double u) const;

 private:
  double tl_;
  double alpha_;
};

/// High-utilization migration probability f_h (Eq. 4): sheds load from
/// servers whose utilization exceeds Th, before SLA violations build up.
class HighMigrationFunction {
 public:
  /// \param th    upper threshold, in (0, 1).
  /// \param beta  shape (> 0); smaller beta = more eager migrations.
  HighMigrationFunction(double th, double beta);

  [[nodiscard]] double th() const { return th_; }
  [[nodiscard]] double beta() const { return beta_; }

  /// f_h(u); 0 for u <= Th; 1 at u = 1 (input clamped to [0,1]).
  [[nodiscard]] double operator()(double u) const;

 private:
  double th_;
  double beta_;
};

}  // namespace ecocloud::core
