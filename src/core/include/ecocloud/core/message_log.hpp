#pragma once

/// \file message_log.hpp
/// \brief Control-plane message accounting.
///
/// ecoCloud's manager talks to servers over the data-center network:
/// invitation broadcasts, yes/no answers, wake-up commands, migration
/// commands (paper Fig. 1 and footnote 1). MessageLog counts them so the
/// control-plane overhead can be quantified — in particular how footnote
/// 1's group invitations cap the per-decision message cost in very large
/// data centers.

#include <cstdint>

namespace ecocloud::core {

struct MessageLog {
  /// Invitation rounds initiated by the manager (assignment + migration
  /// destination searches).
  std::uint64_t invitation_rounds = 0;

  /// Individual invitation messages sent to servers.
  std::uint64_t invitations_sent = 0;

  /// Positive answers (volunteer replies). Servers that decline stay
  /// silent in the paper's protocol, so only these cost a message.
  std::uint64_t volunteer_replies = 0;

  /// VM-placement commands (manager -> chosen server).
  std::uint64_t placement_commands = 0;

  /// Wake-up commands (manager -> hibernated server).
  std::uint64_t wake_commands = 0;

  /// Migration commands (manager -> source server, after a destination
  /// was found).
  std::uint64_t migration_commands = 0;

  /// Invitations that left the manager but never reached a server (lossy
  /// control plane; counted within invitations_sent as well).
  std::uint64_t invitations_lost = 0;

  /// Volunteer replies that left a server but never reached the manager
  /// (counted within volunteer_replies as well).
  std::uint64_t replies_lost = 0;

  [[nodiscard]] std::uint64_t total() const {
    return invitations_sent + volunteer_replies + placement_commands +
           wake_commands + migration_commands;
  }

  void reset() { *this = MessageLog{}; }
};

}  // namespace ecocloud::core
