#pragma once

/// \file fault_hooks.hpp
/// \brief Injection points through which a fault model perturbs the
/// control plane and the infrastructure.
///
/// The core procedures stay fault-agnostic: each hook is optional, and an
/// empty hook means "never fails", which keeps the faults-off event stream
/// bit-identical to a build without the faults library. The faults module
/// installs implementations backed by its own seeded RNG stream, so
/// enabling faults never perturbs the algorithm's random decisions either.

#include <cstddef>
#include <functional>

#include "ecocloud/dc/ids.hpp"

namespace ecocloud::core {

struct FaultHooks {
  /// Sampled once per invitation message: true = the server never receives
  /// the invitation (it cannot volunteer).
  std::function<bool()> drop_invitation;

  /// Sampled once per volunteer reply: true = the manager never receives
  /// the answer (the server volunteered in vain).
  std::function<bool()> drop_reply;

  /// Sampled when a boot timer expires: true = the boot attempt failed and
  /// the controller retries (up to max_boot_retries) before declaring the
  /// server dead.
  std::function<bool(dc::ServerId)> boot_fails;

  /// Sampled when a live migration is committed: true = the transfer will
  /// abort instead of completing (rolled back at the source).
  std::function<bool(dc::VmId)> migration_aborts;

  /// Boot attempts before a persistently failing server is marked failed.
  std::size_t max_boot_retries = 2;

  /// Invitation rounds per deployment before falling back to the wake-up
  /// path. 1 reproduces the paper's protocol; >1 tolerates a round whose
  /// replies were all lost without wrongly declaring saturation.
  std::size_t max_invite_rounds = 1;
};

}  // namespace ecocloud::core
