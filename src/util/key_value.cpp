#include "ecocloud/util/key_value.hpp"

#include <istream>
#include <sstream>

#include "ecocloud/util/string_util.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::util {

KeyValueConfig KeyValueConfig::parse(std::istream& in) {
  KeyValueConfig config;
  std::string line;
  std::string section;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments.
    for (char marker : {'#', ';'}) {
      const auto pos = line.find(marker);
      if (pos != std::string::npos) line.erase(pos);
    }
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '[') {
      require(trimmed.back() == ']', "KeyValueConfig: unterminated section on line " +
                                         std::to_string(line_number));
      section = trim(trimmed.substr(1, trimmed.size() - 2));
      require(!section.empty(), "KeyValueConfig: empty section name on line " +
                                    std::to_string(line_number));
      continue;
    }
    const auto eq = trimmed.find('=');
    require(eq != std::string::npos, "KeyValueConfig: missing '=' on line " +
                                         std::to_string(line_number));
    std::string key = trim(trimmed.substr(0, eq));
    if (!section.empty()) key = section + "." + key;
    const std::string value = trim(trimmed.substr(eq + 1));
    require(!key.empty(),
            "KeyValueConfig: empty key on line " + std::to_string(line_number));
    require(config.values_.emplace(key, value).second,
            "KeyValueConfig: duplicate key '" + key + "' on line " +
                std::to_string(line_number));
    config.lines_[key] = line_number;
  }
  return config;
}

KeyValueConfig KeyValueConfig::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

bool KeyValueConfig::has(const std::string& key) const {
  return values_.count(key) > 0;
}

double KeyValueConfig::get_double(const std::string& key, double fallback) const {
  used_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_double(it->second);
}

long long KeyValueConfig::get_int(const std::string& key, long long fallback) const {
  used_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_int(it->second);
}

bool KeyValueConfig::get_bool(const std::string& key, bool fallback) const {
  used_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& value = it->second;
  if (value == "true" || value == "1" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  throw std::invalid_argument("KeyValueConfig: '" + key +
                              "' is not a boolean: " + value);
}

std::string KeyValueConfig::get_string(const std::string& key,
                                       const std::string& fallback) const {
  used_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::vector<std::string> KeyValueConfig::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (used_.count(key) == 0) unused.push_back(key);
  }
  return unused;
}

std::size_t KeyValueConfig::line_of(const std::string& key) const {
  const auto it = lines_.find(key);
  return it == lines_.end() ? 0 : it->second;
}

void KeyValueConfig::require_all_used() const {
  const auto unused = unused_keys();
  if (unused.empty()) return;
  std::string message = "KeyValueConfig: unknown keys:";
  for (const auto& key : unused) {
    message += " '" + key + "'";
    const auto line = line_of(key);
    if (line > 0) message += " (line " + std::to_string(line) + ")";
  }
  throw std::invalid_argument(message);
}

}  // namespace ecocloud::util
