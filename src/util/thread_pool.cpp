#include "ecocloud/util/thread_pool.hpp"

#include <algorithm>

namespace ecocloud::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size() * 4));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) {
    f.get();  // rethrows the first exception, if any
  }
}

}  // namespace ecocloud::util
