#include "ecocloud/util/thread_pool.hpp"

#include <algorithm>

namespace ecocloud::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // The join phase is serialized so a second stop() caller blocks until
  // the first one has fully drained the pool, instead of racing join().
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (joined_) return;
  for (auto& worker : workers_) {
    worker.join();
  }
  joined_ = true;
}

bool ThreadPool::stopping() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::vector<std::pair<std::size_t, std::size_t>> ThreadPool::chunk_bounds(
    std::size_t begin, std::size_t end, std::size_t workers) {
  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  if (begin >= end) return bounds;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, workers * 4));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  bounds.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    bounds.emplace_back(lo, std::min(end, lo + chunk_size));
  }
  return bounds;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  const auto bounds = chunk_bounds(begin, end, size());
  std::vector<std::future<void>> futures;
  futures.reserve(bounds.size());
  for (const auto& [lo, hi] : bounds) {
    futures.push_back(submit([lo = lo, hi = hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Wait for every chunk before surfacing failures: fn is borrowed by
  // reference, so no worker may outlive this frame.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace ecocloud::util
