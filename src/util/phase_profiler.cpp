#include "ecocloud/util/phase_profiler.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <ostream>

namespace ecocloud::util {

namespace {

thread_local PhaseDomain* tls_current_domain = nullptr;

/// Unpack a folded path key into its phases, outermost first.
std::vector<Phase> unpack_path(std::uint64_t path) {
  std::vector<Phase> phases;
  while (path != 0) {
    phases.push_back(static_cast<Phase>((path & 0xF) - 1));
    path >>= 4;
  }
  std::reverse(phases.begin(), phases.end());
  return phases;
}

}  // namespace

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kCalendarOps: return "calendar_ops";
    case Phase::kMonitorSweep: return "monitor_sweep";
    case Phase::kInviteSampling: return "invite_sampling";
    case Phase::kVmLifecycle: return "vm_lifecycle";
    case Phase::kTraceAdvance: return "trace_advance";
    case Phase::kBarrierWait: return "barrier_wait";
    case Phase::kHandoff: return "handoff";
    case Phase::kCheckpointWrite: return "checkpoint_write";
    case Phase::kMonitorBatch: return "monitor_batch";
  }
  return "unknown";
}

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const std::vector<double>& phase_histogram_bounds_s() {
  // 1µs .. 10s, one decade per pair of bounds; per-call durations below
  // 1µs all land in the first bucket, which is fine — the interesting
  // signal at that end is the total, not the shape.
  static const std::vector<double> bounds = {
      1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3,
      5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0,  10.0};
  return bounds;
}

PhaseDomain::PhaseDomain(std::uint32_t hot_stride)
    : hot_stride_(hot_stride == 0 ? 1 : hot_stride) {
  const std::size_t buckets = phase_histogram_bounds_s().size() + 1;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    // First call of every phase is timed, so short runs still produce a
    // duration sample for the hot phases; after that the stride applies.
    until_timed_[i] = 1;
    window_[i] = 1;
    hist_[i].assign(buckets, 0);
  }
}

void PhaseDomain::add(Phase phase, std::uint64_t ns, std::uint64_t calls) {
  auto& st = stats_[static_cast<std::size_t>(phase)];
  st.calls += calls;
  st.timed_calls += calls;
  st.timed_ns += ns;
  record_histogram_only(phase, ns);
  auto& slot = folded_[static_cast<std::uint64_t>(phase) + 1];
  slot.timed_ns += ns;
  slot.timed_calls += calls;
}

void PhaseDomain::record(Phase phase, std::uint64_t ns, std::uint64_t path) {
  // Strip the clock pair's own measured duration so the stride-scaled
  // estimate reflects the body, not the instrument.
  ns = ns > span_bias_ns_ ? ns - span_bias_ns_ : 0;
  auto& st = stats_[static_cast<std::size_t>(phase)];
  ++st.timed_calls;
  st.timed_ns += ns;
  if (static_cast<std::size_t>(phase) < kFirstCoolPhase &&
      ns >= kOutlierSpanNs) {
    ++st.outlier_calls;
    st.outlier_ns += ns;
  }
  record_histogram_only(phase, ns);
  auto& slot = folded_[path];
  slot.timed_ns += ns;
  ++slot.timed_calls;
}

void PhaseDomain::record_histogram_only(Phase phase, std::uint64_t ns) {
  const auto& bounds = phase_histogram_bounds_s();
  const double seconds = static_cast<double>(ns) * 1e-9;
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), seconds);
  ++hist_[static_cast<std::size_t>(phase)]
         [static_cast<std::size_t>(it - bounds.begin())];
}

void set_current_domain(PhaseDomain* domain) { tls_current_domain = domain; }

PhaseDomain* current_domain() { return tls_current_domain; }

PhaseProfiler::PhaseProfiler(std::size_t num_domains,
                             std::uint32_t hot_stride) {
  if (num_domains == 0) num_domains = 1;
  domains_.reserve(num_domains);
  names_.reserve(num_domains);
  for (std::size_t i = 0; i < num_domains; ++i) {
    domains_.push_back(std::make_unique<PhaseDomain>(hot_stride));
    names_.push_back(num_domains == 1 ? "main"
                                      : "domain" + std::to_string(i));
  }

  // Calibrate the per-call self-cost on this host so overhead_seconds()
  // reflects real clock/bookkeeping prices rather than guesses. The cost
  // charged is the ADDED cost over an unprofiled run: the scopes are
  // compiled in unconditionally, so the null-domain TLS check is paid
  // either way and the baseline loop subtracts it out. Scratch domains
  // keep the calibration out of the reported stats.
  // Each cost is the minimum per-call rate over many short batches: a
  // scheduler preemption or cold-cache pass inflates some batches but
  // never deflates the fastest one, and an inflated cost model would
  // flunk the CI overhead budget on noise alone. A batch is ~2-8 us, well
  // under a scheduling quantum, so at least one batch stays clean.
  constexpr int kBatches = 16;
  constexpr int kIters = 4096;
  const auto min_batch_ns = [](auto&& body) {
    double best = 1e18;
    for (int b = 0; b < kBatches; ++b) {
      const std::uint64_t t0 = monotonic_ns();
      for (int i = 0; i < kIters; ++i) body();
      const std::uint64_t t1 = monotonic_ns();
      best = std::min(best, static_cast<double>(t1 - t0) / kIters);
    }
    return best;
  };

  {
    DomainScope disabled(nullptr);
    baseline_call_cost_ns_ =
        min_batch_ns([] { ScopedPhase scope(Phase::kCalendarOps); });
  }

  PhaseDomain scratch(/*hot_stride=*/1);
  DomainScope install(&scratch);
  timed_call_cost_ns_ = std::max(
      0.0, min_batch_ns([] {
             ScopedPhase scope(Phase::kTraceAdvance);  // stride 1: timed
           }) - baseline_call_cost_ns_);

  PhaseDomain scratch_untimed(/*hot_stride=*/1u << 30);
  set_current_domain(&scratch_untimed);
  // At most one call across the batches is timed — noise the min absorbs.
  untimed_call_cost_ns_ = std::max(
      0.0, min_batch_ns([] {
             ScopedPhase scope(Phase::kCalendarOps);  // huge stride
           }) - baseline_call_cost_ns_);
  // DomainScope restores the previous domain when `install` goes out of
  // scope, undoing the set_current_domain above as well.

  // Span bias: the smallest duration a clock pair measures on itself. A
  // timed span includes roughly this much instrument time on top of the
  // body; the minimum over many pairs is the clean-floor value (noise
  // only ever inflates a sample). Every owned domain subtracts it from
  // recorded spans so estimates track the body alone.
  std::uint64_t bias = ~std::uint64_t{0};
  for (int b = 0; b < kBatches * kIters; ++b) {
    const std::uint64_t t0 = monotonic_ns();
    const std::uint64_t t1 = monotonic_ns();
    bias = std::min(bias, t1 - t0);
  }
  for (auto& d : domains_) d->set_span_bias_ns(bias);
}

void PhaseProfiler::set_domain_name(std::size_t i, std::string name) {
  names_[i] = std::move(name);
}

PhaseStats PhaseProfiler::total(Phase phase) const {
  PhaseStats out;
  for (const auto& d : domains_) {
    const auto& st = d->stats(phase);
    out.calls += st.calls;
    out.timed_calls += st.timed_calls;
    out.timed_ns += st.timed_ns;
    out.outlier_calls += st.outlier_calls;
    out.outlier_ns += st.outlier_ns;
  }
  return out;
}

double PhaseProfiler::overhead_seconds() const {
  double ns = 0.0;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const PhaseStats st = total(static_cast<Phase>(p));
    ns += static_cast<double>(st.timed_calls) * timed_call_cost_ns_;
    ns += static_cast<double>(st.calls - st.timed_calls) *
          untimed_call_cost_ns_;
  }
  return ns * 1e-9;
}

void PhaseProfiler::write_folded(std::ostream& out) const {
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    const PhaseDomain& dom = *domains_[d];
    for (const auto& [path, st] : dom.folded()) {
      // Scale leaf self-time by the leaf phase's sampling ratio so the
      // flamegraph widths reflect estimated totals, not just the timed
      // subsample.
      const auto phases = unpack_path(path);
      const auto& leaf = dom.stats(phases.back());
      const double scale =
          leaf.timed_calls == 0
              ? 1.0
              : static_cast<double>(leaf.calls) /
                    static_cast<double>(leaf.timed_calls);
      const auto micros = static_cast<std::uint64_t>(
          static_cast<double>(st.timed_ns) * scale * 1e-3);
      if (micros == 0) continue;
      out << names_[d];
      for (const Phase p : phases) out << ';' << to_string(p);
      out << ' ' << micros << '\n';
    }
  }
}

}  // namespace ecocloud::util
