#include "ecocloud/util/string_util.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace ecocloud::util {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : s) {
    if (c == delim) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

double parse_double(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty()) throw std::invalid_argument("parse_double: empty field");
  char* end = nullptr;
  const double value = std::strtod(t.c_str(), &end);
  if (end == t.c_str() || *end != '\0') {
    throw std::invalid_argument("parse_double: invalid number '" + s + "'");
  }
  return value;
}

long long parse_int(const std::string& s) {
  const std::string t = trim(s);
  if (t.empty()) throw std::invalid_argument("parse_int: empty field");
  char* end = nullptr;
  const long long value = std::strtoll(t.c_str(), &end, 10);
  if (end == t.c_str() || *end != '\0') {
    throw std::invalid_argument("parse_int: invalid integer '" + s + "'");
  }
  return value;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace ecocloud::util
