#pragma once

/// \file exit_codes.hpp
/// \brief Process exit codes shared by the CLI and the in-process guards.
///
/// The nemesis harness and CI scripts distinguish *why* a run died:
/// a misconfigured invocation, an ordinary runtime failure, an invariant
/// violation caught by the auditor, or a wall-clock stall caught by the
/// watchdog. Each failure class gets its own code so shell checks can
/// assert on `$?` instead of grepping stderr. Documented in README
/// ("Exit codes"); values are part of the CLI's interface — append,
/// never renumber.

namespace ecocloud::util::exit_code {

inline constexpr int kSuccess = 0;
/// Unhandled runtime error (I/O failure, internal logic error, ...).
inline constexpr int kRuntimeFailure = 1;
/// Invalid configuration or command line (util::require violations).
inline constexpr int kConfigError = 2;
/// The runtime auditor found an invariant violation under --audit-action
/// abort.
inline constexpr int kAuditViolation = 4;
/// The watchdog detected a stalled event loop (--watchdog-stall).
inline constexpr int kWatchdogStall = 5;

}  // namespace ecocloud::util::exit_code
