#pragma once

/// \file binio.hpp
/// \brief Bounds-checked binary serialization primitives for snapshots.
///
/// BinWriter appends fixed-width little-endian fields to a byte buffer;
/// BinReader consumes them in the same order and throws std::runtime_error
/// on any overrun, so a truncated or corrupted payload can never read out
/// of bounds. Doubles round-trip through their raw 64-bit pattern, which
/// keeps restored floating-point state bit-identical (including NaNs and
/// signed zeros) instead of re-rounding through text.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ecocloud::util {

/// Append-only little-endian binary encoder.
class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Raw IEEE-754 bit pattern; bit-exact round trip.
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Length-prefixed byte string.
  void str(std::string_view v) {
    u64(v.size());
    buf_.append(v.data(), v.size());
  }

  /// Raw bytes, no length prefix (container framing writes its own).
  void bytes(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  void put_le(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
};

/// Sequential decoder over a byte range; throws on overrun.
class BinReader {
 public:
  explicit BinReader(std::string_view data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(*p_++);
  }

  [[nodiscard]] std::uint16_t u16() {
    return static_cast<std::uint16_t>(get_le(2));
  }
  [[nodiscard]] std::uint32_t u32() {
    return static_cast<std::uint32_t>(get_le(4));
  }
  [[nodiscard]] std::uint64_t u64() { return get_le(8); }

  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }

  [[nodiscard]] bool boolean() {
    const auto v = u8();
    if (v > 1) throw std::runtime_error("binio: invalid boolean byte");
    return v == 1;
  }

  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string out(p_, static_cast<std::size_t>(n));
    p_ += n;
    return out;
  }

  /// Raw bytes, no length prefix; bounds-checked like every other getter.
  void bytes(void* out, std::size_t size) {
    need(size);
    std::memcpy(out, p_, size);
    p_ += size;
  }

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

  /// Throws unless the payload was consumed exactly; catches size-drift
  /// bugs between save() and load() implementations.
  void expect_exhausted(const std::string& what) const {
    if (p_ != end_) {
      throw std::runtime_error("binio: section '" + what + "' has " +
                               std::to_string(remaining()) +
                               " unconsumed trailing bytes");
    }
  }

 private:
  void need(std::uint64_t n) const {
    if (static_cast<std::uint64_t>(end_ - p_) < n) {
      throw std::runtime_error("binio: truncated payload (wanted " +
                               std::to_string(n) + " bytes, have " +
                               std::to_string(end_ - p_) + ")");
    }
  }

  std::uint64_t get_le(int bytes) {
    need(static_cast<std::uint64_t>(bytes));
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p_[i]))
           << (8 * i);
    }
    p_ += bytes;
    return v;
  }

  const char* p_;
  const char* end_;
};

}  // namespace ecocloud::util
