#pragma once

/// \file csv.hpp
/// \brief Minimal CSV emission/parsing used by benches and trace IO.
///
/// The format is deliberately simple: comma-separated, no quoting (fields in
/// this project are numeric or simple identifiers), '#' starts a comment
/// line. CsvWriter formats doubles with enough digits to round-trip.

#include <iosfwd>
#include <string>
#include <vector>

namespace ecocloud::util {

/// Streaming CSV writer over any std::ostream.
class CsvWriter {
 public:
  /// \param out   destination stream; must outlive the writer.
  /// \param precision  significant digits for floating-point fields.
  explicit CsvWriter(std::ostream& out, int precision = 10);

  /// Write a header row (also just a row; provided for readability).
  void header(const std::vector<std::string>& names);

  /// Write one row of mixed fields; overloads convert to text.
  void row(const std::vector<std::string>& fields);
  void row(const std::vector<double>& fields);

  /// Begin an incremental row: field(...) then end_row().
  CsvWriter& field(const std::string& value);
  CsvWriter& field(double value);
  CsvWriter& field(long long value);
  void end_row();

  /// Write a '#'-prefixed comment line.
  void comment(const std::string& text);

  /// Format a double with this writer's precision (shared with row()).
  [[nodiscard]] std::string format(double value) const;

 private:
  std::ostream& out_;
  int precision_;
  bool row_open_ = false;
};

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parse CSV text from a stream: splits on commas, trims spaces, skips blank
/// lines and '#' comments. Throws std::runtime_error on stream failure.
[[nodiscard]] std::vector<CsvRow> read_csv(std::istream& in);

/// Parse a single CSV line (no comment/blank handling).
[[nodiscard]] CsvRow split_csv_line(const std::string& line);

}  // namespace ecocloud::util
