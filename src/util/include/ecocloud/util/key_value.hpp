#pragma once

/// \file key_value.hpp
/// \brief Simple `key = value` configuration files.
///
/// Format: one assignment per line, `#` or `;` starts a comment, blank
/// lines ignored, keys are case-sensitive. A `[section]` line prefixes
/// every following key with `section.` until the next header (`[]` returns
/// to the top level), so `mtbf` under `[faults]` is read as `faults.mtbf`.
/// Typed getters validate and convert; consumed keys are tracked so a
/// final check can reject typos (unknown keys are configuration bugs, not
/// data).

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ecocloud::util {

class KeyValueConfig {
 public:
  /// Parse from a stream; throws std::invalid_argument on malformed lines
  /// or duplicate keys.
  static KeyValueConfig parse(std::istream& in);

  /// Parse from a string (convenience for tests).
  static KeyValueConfig parse_string(const std::string& text);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters with defaults; a present key must parse or they throw.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long long get_int(const std::string& key, long long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;

  /// Keys present in the file but never requested by any getter.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  /// Source line a key was defined on (0 if unknown, e.g. parsed by hand).
  [[nodiscard]] std::size_t line_of(const std::string& key) const;

  /// Throws std::invalid_argument listing each unused key with the line it
  /// appears on. Call after reading every expected field so misspelled
  /// options and unknown sections are rejected instead of silently ignored.
  void require_all_used() const;

  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::size_t> lines_;
  mutable std::set<std::string> used_;
};

}  // namespace ecocloud::util
