#pragma once

/// \file math.hpp
/// \brief Small numeric helpers shared by the simulation and the fluid model.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ecocloud::util {

/// Clamp \p x to the closed interval [0, 1].
[[nodiscard]] constexpr double clamp01(double x) {
  return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
}

/// Linear interpolation between \p a and \p b with parameter \p t in [0,1].
[[nodiscard]] constexpr double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

/// Approximate floating-point equality with absolute and relative tolerance.
[[nodiscard]] inline bool almost_equal(double a, double b, double abs_tol = 1e-12,
                                       double rel_tol = 1e-9) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/// Evaluate a polynomial with coefficients c[0] + c[1] x + ... (Horner).
[[nodiscard]] inline double polyval(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = acc * x + coeffs[i];
  }
  return acc;
}

/// Trapezoidal integral of regularly sampled values with spacing \p dx.
[[nodiscard]] inline double trapz(const std::vector<double>& y, double dx) {
  if (y.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < y.size(); ++i) {
    acc += 0.5 * (y[i] + y[i + 1]);
  }
  return acc * dx;
}

/// Arithmetic mean; returns 0 for an empty range.
[[nodiscard]] inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

}  // namespace ecocloud::util
