#pragma once

/// \file rng.hpp
/// \brief Deterministic, splittable random number generation.
///
/// All stochastic behaviour in the library flows through Rng so that every
/// experiment is reproducible from a single 64-bit seed. The generator is
/// xoshiro256** (Blackman & Vigna), seeded via SplitMix64; both are
/// implemented locally so results are identical across standard libraries.

#include <array>
#include <cstdint>
#include <vector>

namespace ecocloud::util {

/// SplitMix64 step: used for seeding and for cheap stateless hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> distributions, although the built-in helpers are preferred for
/// cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded through SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Derive an independent child generator (stream splitting). Children with
  /// different \p stream_id values are statistically independent of the
  /// parent and of each other.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n), n > 0. Uses rejection to avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with the given rate (> 0).
  double exponential(double rate);

  /// Standard normal variate (Box-Muller; one value per call, cached pair).
  double normal();

  /// Normal variate with the given mean and standard deviation (>= 0).
  double normal(double mean, double stddev);

  /// Sample an index from unnormalized non-negative weights.
  /// Throws std::invalid_argument if weights are empty or all zero.
  std::size_t discrete(const std::vector<double>& weights);

  /// Random index into a container of the given size (> 0).
  std::size_t index(std::size_t size);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Complete generator state, exposed for checkpoint/restore. Restoring a
  /// saved State resumes the stream exactly where it left off, including
  /// the Box-Muller cached second normal.
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  [[nodiscard]] State state() const;
  void set_state(const State& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ecocloud::util
