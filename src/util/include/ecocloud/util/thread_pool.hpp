#pragma once

/// \file thread_pool.hpp
/// \brief Fixed-size worker pool for embarrassingly parallel sweeps.
///
/// The simulator itself is single-threaded and deterministic; parallelism in
/// this project lives at the replication level (independent seeds, parameter
/// sweeps, per-figure benches). ThreadPool provides submit()/futures and a
/// blocking parallel_for over an index range with static chunking.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ecocloud::util {

class ThreadPool {
 public:
  /// Create a pool with \p num_threads workers (0 -> hardware_concurrency,
  /// at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Calls stop(): drains the queue and joins workers.
  ~ThreadPool();

  /// Begin shutdown: new submit() calls are rejected from this point on,
  /// every task already queued still runs to completion (no task loss),
  /// and all workers are joined before stop() returns. Idempotent and safe
  /// to call from several threads — later callers block until the first
  /// one's join finishes, so "stop() returned" always means "no worker is
  /// running". The daemon shutdown path relies on this ordering: reject
  /// first, drain deterministically, then tear down.
  void stop();

  /// True once stop() has begun (submit() will throw).
  [[nodiscard]] bool stopping() const;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Submit a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for every i in [begin, end) across the pool; blocks until
  /// every chunk has finished, then rethrows the first exception any chunk
  /// raised (in chunk order). Draining all chunks before rethrowing matters:
  /// fn is captured by reference, so returning while a chunk is still
  /// running would leave a worker touching a dead stack frame.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// The static chunking used by parallel_for: [begin, end) split into at
  /// most workers*4 equal chunks (last one short). Pure function of
  /// (begin, end, workers) — the index→chunk mapping never depends on
  /// scheduling, which is what keeps sharded runs deterministic for a fixed
  /// shard count regardless of how many workers execute them.
  [[nodiscard]] static std::vector<std::pair<std::size_t, std::size_t>>
  chunk_bounds(std::size_t begin, std::size_t end, std::size_t workers);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  /// Serializes the join phase of concurrent stop() callers.
  std::mutex join_mutex_;
  bool joined_ = false;
};

}  // namespace ecocloud::util
