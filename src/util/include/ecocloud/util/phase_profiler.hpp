#pragma once

/// \file phase_profiler.hpp
/// \brief In-process phase profiler: RAII scoped timers over named phases.
///
/// The profiler answers "where is the wall time going" for a running
/// simulation without perturbing it: nothing here draws randomness,
/// schedules events, or touches simulation state, so a profiled run
/// executes the exact same event sequence as a bare one.
///
/// Layering: the instrumented sites live in sim/core/ckpt/par, which must
/// not depend on obs (obs depends on them). The accounting core therefore
/// lives here in util — the base layer everyone links — while the export
/// facade (registry metrics, Chrome counter tracks, folded-stacks dump)
/// is obs::Profiler.
///
/// Cost model: attribution is opt-in per thread through a thread-local
/// domain pointer. With no domain installed a ScopedPhase is one TLS load
/// and a predictable branch — the disabled-mode "zero cost" the tests pin.
/// With a domain installed, *hot* phases (calendar ops, monitor sweeps,
/// invitation sampling — called per event) are strided: every call bumps
/// a counter, but only every Nth call runs the clock and touches the rest
/// of the bookkeeping, and totals are scaled estimates
/// (timed_ns * calls / timed_calls). Cool phases (VM lifecycle, trace
/// advance, barrier wait, hand-off, checkpoint write — per wave/epoch)
/// are always timed. The stride decrement is deterministic, so profiled
/// runs stay reproducible and the self-measured overhead is stable across
/// hosts.
///
/// Two guards keep the scaled estimates honest. Every recorded span has
/// the calibrated empty-span cost (the clock pair's own measured
/// duration) subtracted, so a 50 ns body is not reported as a 100 ns one
/// across two hundred million calls. And a hot-phase span that crosses
/// kOutlierSpanNs is attributed at face value rather than extrapolated:
/// tail events are real wall time but not representative of the unsampled
/// calls the stride stands in for.
///
/// The nesting path (folded()) is maintained by TIMED scopes only, so the
/// untimed fast path stays two memory ops. An inner timed scope whose
/// enclosing scope was not timed records a truncated path; in practice
/// hot phases entered once per event decrement in lockstep, so full paths
/// dominate the folded output anyway.
///
/// Threading: a PhaseDomain is single-writer — owned by whichever thread
/// has it installed as its current domain. The sharded engine gives every
/// shard its own domain (installed for the duration of the shard's epoch;
/// the pool join at the barrier provides the happens-before for the
/// coordinator's reads), plus one domain for the coordinator itself.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ecocloud::util {

/// The named phases wall time is attributed to. Hot phases (per-event
/// cadence) come first; kVmLifecycle onward run at wave/epoch cadence
/// and are always timed.
enum class Phase : std::uint8_t {
  kCalendarOps = 0,    ///< calendar bookkeeping per event (pop, re-arm, sift)
  kMonitorSweep = 1,   ///< per-server monitor trials (controller hot path)
  kInviteSampling = 2, ///< invitation subset sampling + volunteer replies
  kVmLifecycle = 3,    ///< VM deploy waves, boot-queue drains, departures
  kTraceAdvance = 4,   ///< TraceDriver::tick demand sweep over all VMs
  kBarrierWait = 5,    ///< idle wall time waiting for the slowest shard
  kHandoff = 6,        ///< serial cross-shard migration hand-off
  kCheckpointWrite = 7, ///< snapshot serialization + file write
  kMonitorBatch = 8    ///< columnar monitor classification rebuild
};

inline constexpr std::size_t kNumPhases = 9;

[[nodiscard]] const char* to_string(Phase phase);

/// First phase that is always timed (stride 1); everything before it uses
/// the hot stride. kVmLifecycle is deliberately cool despite firing per
/// boot/arrival event: its spans range from microsecond boot-queue drains
/// to a multi-second initial deploy wave, and a duration population that
/// heterogeneous cannot be stride-sampled honestly (one sampled wave would
/// be scaled by the whole stride).
inline constexpr std::size_t kFirstCoolPhase =
    static_cast<std::size_t>(Phase::kVmLifecycle);

struct PhaseStats {
  /// Scope entries, timed or not. Attributed in bulk when a stride window
  /// closes (the untimed fast path is a bare decrement), so up to
  /// hot_stride - 1 in-progress calls are not yet included.
  std::uint64_t calls = 0;
  std::uint64_t timed_calls = 0;  ///< entries that ran the clock
  std::uint64_t timed_ns = 0;     ///< wall ns across the timed entries
  /// Timed entries whose duration crossed the outlier bound (also counted
  /// in timed_calls/timed_ns). A hot-phase span that long is a tail event
  /// — a monitor tick that happened to drain a full journal rebuild, say —
  /// and multiplying it by the stride would swamp the estimate, so
  /// estimated_ns() takes outliers at face value and extrapolates only
  /// from the typical spans.
  std::uint64_t outlier_calls = 0;
  std::uint64_t outlier_ns = 0;

  /// Stride-scaled estimate of the phase's total wall time: typical timed
  /// spans scaled by calls/timed, plus outlier spans at face value.
  [[nodiscard]] double estimated_ns() const {
    const std::uint64_t typical_calls = timed_calls - outlier_calls;
    const std::uint64_t typical_ns = timed_ns - outlier_ns;
    if (typical_calls == 0) return static_cast<double>(timed_ns);
    return static_cast<double>(outlier_ns) +
           static_cast<double>(typical_ns) *
               static_cast<double>(calls - outlier_calls) /
               static_cast<double>(typical_calls);
  }
};

/// Monotonic clock used by the profiler (steady_clock, ns).
[[nodiscard]] std::uint64_t monotonic_ns();

/// Hot-phase spans at least this long are attributed at face value
/// instead of being stride-extrapolated (see PhaseStats::outlier_calls).
/// Per-event spans sit in the tens-to-hundreds of nanoseconds; a
/// millisecond is three orders of magnitude past any typical call.
inline constexpr std::uint64_t kOutlierSpanNs = 1'000'000;

/// Upper bounds (seconds) of the per-phase duration histograms, shared so
/// the export layer can mirror them into registry histograms.
[[nodiscard]] const std::vector<double>& phase_histogram_bounds_s();

/// One attribution domain: per-phase totals, per-call-duration histograms,
/// and a folded-stack map over the scope nesting. Single-writer.
class PhaseDomain {
 public:
  /// \p hot_stride: time every Nth call of the hot phases (>= 1).
  explicit PhaseDomain(std::uint32_t hot_stride = 256);

  /// Raw attribution for sites measured externally (barrier lag computed
  /// at the join, hand-off timed around the serial loop): always "timed",
  /// recorded at the phase's root path.
  void add(Phase phase, std::uint64_t ns, std::uint64_t calls = 1);

  [[nodiscard]] const PhaseStats& stats(Phase phase) const {
    return stats_[static_cast<std::size_t>(phase)];
  }

  /// Per-call duration histogram of the timed entries: one count per
  /// phase_histogram_bounds_s() bucket plus the +Inf tail.
  [[nodiscard]] const std::vector<std::uint64_t>& duration_buckets(
      Phase phase) const {
    return hist_[static_cast<std::size_t>(phase)];
  }

  struct PathStats {
    std::uint64_t timed_ns = 0;
    std::uint64_t timed_calls = 0;
  };

  /// Folded scope paths: key packs the nesting as 4-bit (phase + 1)
  /// nibbles, innermost in the low nibble. Values cover timed entries of
  /// the innermost scope only (scale by the leaf's calls/timed_calls for
  /// an estimate).
  [[nodiscard]] const std::unordered_map<std::uint64_t, PathStats>& folded()
      const {
    return folded_;
  }

  [[nodiscard]] std::uint32_t hot_stride() const { return hot_stride_; }

  /// Calibrated duration of an empty span (the clock-pair cost a timed
  /// scope measures on itself); subtracted from every recorded span so
  /// stride-scaled estimates do not inflate by the clock price times the
  /// call count. PhaseProfiler sets this on the domains it owns; bare
  /// domains (unit tests) keep 0 and record raw durations.
  void set_span_bias_ns(std::uint64_t ns) { span_bias_ns_ = ns; }
  [[nodiscard]] std::uint64_t span_bias_ns() const { return span_bias_ns_; }

 private:
  friend class ScopedPhase;

  void record(Phase phase, std::uint64_t ns, std::uint64_t path);
  void record_histogram_only(Phase phase, std::uint64_t ns);

  std::uint32_t hot_stride_;
  std::uint64_t span_bias_ns_ = 0;
  std::uint64_t path_ = 0;  ///< active scope nesting (see folded())
  std::array<PhaseStats, kNumPhases> stats_{};
  std::array<std::uint32_t, kNumPhases> until_timed_{};
  /// Length of the stride window until_timed_ counts down (1 for the
  /// first window so short runs still sample, hot_stride_ after).
  std::array<std::uint32_t, kNumPhases> window_{};
  std::array<std::vector<std::uint64_t>, kNumPhases> hist_{};
  std::unordered_map<std::uint64_t, PathStats> folded_;
};

/// Install \p domain as this thread's attribution target (nullptr
/// disables). The caller owns the domain and must keep it single-writer.
void set_current_domain(PhaseDomain* domain);
[[nodiscard]] PhaseDomain* current_domain();

/// RAII scope: attributes the enclosed wall time to \p phase on the
/// calling thread's current domain. With no domain installed this is one
/// TLS load and a branch. Scopes nest (the path lands in folded()).
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase) : domain_(current_domain()) {
    if (domain_ == nullptr) return;
    const auto i = static_cast<std::size_t>(phase);
    // Untimed fast exit: this decrement is the ENTIRE per-call cost on
    // the hot phases — the 2% overhead budget rides on it staying a
    // single read-modify-write. Calls are attributed in bulk below, when
    // the window that just elapsed closes.
    if (--domain_->until_timed_[i] != 0) return;
    const std::uint32_t next =
        i < kFirstCoolPhase ? domain_->hot_stride_ : 1;
    domain_->stats_[i].calls += domain_->window_[i];
    domain_->window_[i] = next;
    domain_->until_timed_[i] = next;
    timed_ = true;
    phase_ = phase;
    saved_path_ = domain_->path_;
    domain_->path_ =
        (saved_path_ << 4) | (static_cast<std::uint64_t>(phase) + 1);
    start_ns_ = monotonic_ns();
  }

  ~ScopedPhase() {
    if (!timed_) return;
    domain_->record(phase_, monotonic_ns() - start_ns_, domain_->path_);
    domain_->path_ = saved_path_;
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseDomain* domain_;
  Phase phase_ = Phase::kCalendarOps;
  bool timed_ = false;
  std::uint64_t start_ns_ = 0;
  std::uint64_t saved_path_ = 0;
};

/// Scoped installation of a domain as the current thread's target,
/// restoring the previous one on exit (the shard-worker pattern).
class DomainScope {
 public:
  explicit DomainScope(PhaseDomain* domain) : previous_(current_domain()) {
    set_current_domain(domain);
  }
  ~DomainScope() { set_current_domain(previous_); }
  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  PhaseDomain* previous_;
};

/// A set of domains (one per shard + one coordinator, or a single "main")
/// with merged views, the folded-stacks dump, and the self-measured
/// overhead estimate the CI budget is enforced against.
class PhaseProfiler {
 public:
  explicit PhaseProfiler(std::size_t num_domains = 1,
                         std::uint32_t hot_stride = 256);

  [[nodiscard]] std::size_t num_domains() const { return domains_.size(); }
  [[nodiscard]] PhaseDomain& domain(std::size_t i) { return *domains_[i]; }
  [[nodiscard]] const PhaseDomain& domain(std::size_t i) const {
    return *domains_[i];
  }

  /// Display name of a domain ("main", "shard3", "coordinator").
  void set_domain_name(std::size_t i, std::string name);
  [[nodiscard]] const std::string& domain_name(std::size_t i) const {
    return names_[i];
  }

  /// Per-phase stats summed across domains.
  [[nodiscard]] PhaseStats total(Phase phase) const;

  /// Estimated profiler self-cost: calibrated per-call costs (measured at
  /// construction on this host) times the observed call counts. This is
  /// what the <= 2% CI budget checks — wall-clock A/B on shared runners is
  /// too noisy to gate on.
  [[nodiscard]] double overhead_seconds() const;

  /// Flamegraph-ready folded stacks: one "domain;phaseA;phaseB <µs>" line
  /// per path, values stride-scaled to estimated self time.
  void write_folded(std::ostream& out) const;

 private:
  std::vector<std::unique_ptr<PhaseDomain>> domains_;
  std::vector<std::string> names_;
  double baseline_call_cost_ns_ = 0.0;
  double timed_call_cost_ns_ = 0.0;
  double untimed_call_cost_ns_ = 0.0;
};

}  // namespace ecocloud::util
