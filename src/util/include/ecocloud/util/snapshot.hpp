#pragma once

/// \file snapshot.hpp
/// \brief Serialization helpers shared by component save/load surfaces.
///
/// Two things live here: RNG stream persistence, and order-preserving
/// unordered_map persistence. The latter matters because several hot-path
/// containers (boot queues, in-flight migrations, redeploy entries) are
/// iterated during simulation, so a resumed run must reproduce not just
/// their contents but their *iteration order* to stay bit-identical.
///
/// libstdc++'s hashtable keeps all elements on one global forward list;
/// inserting a key prepends it to its bucket's segment, and the first key
/// of a fresh bucket lands at the global head. Re-inserting the saved
/// items in REVERSE iteration order into a table pre-sized to the saved
/// bucket_count() therefore reconstructs the exact original list — and the
/// original bucket count guarantees no rehash mid-restore (load factor
/// never exceeds what the source table already sustained). This is an
/// implementation-detail dependency on libstdc++, so the snapshot header
/// records an ABI tag and a property test (ckpt_test) pins the behaviour.

#include <cstdint>
#include <utility>
#include <vector>

#include "ecocloud/util/binio.hpp"
#include "ecocloud/util/rng.hpp"

namespace ecocloud::util {

inline void save_rng(BinWriter& w, const Rng& rng) {
  const Rng::State st = rng.state();
  for (std::uint64_t word : st.s) w.u64(word);
  w.f64(st.cached_normal);
  w.boolean(st.has_cached_normal);
}

inline void load_rng(BinReader& r, Rng& rng) {
  Rng::State st;
  for (std::uint64_t& word : st.s) word = r.u64();
  st.cached_normal = r.f64();
  st.has_cached_normal = r.boolean();
  rng.set_state(st);
}

/// Save an unordered_map preserving enough structure to restore its exact
/// iteration order. \p save_item receives (writer, key, mapped).
template <class Map, class SaveItem>
void save_unordered(BinWriter& w, const Map& map, SaveItem save_item) {
  w.u64(map.bucket_count());
  w.u64(map.size());
  for (const auto& [key, value] : map) save_item(w, key, value);
}

/// Restore a map saved with save_unordered. \p load_item receives a reader
/// and returns std::pair<Key, Mapped>. See file comment for why reverse
/// insertion reproduces the original iteration order.
///
/// A table that has never held an element reports bucket_count() == 1
/// (libstdc++'s inline single-bucket state). rehash(1) cannot recreate
/// that state — it allocates a real 2-bucket table whose future growth
/// sequence (2, 5, 11, ...) differs from a virgin table's (13, 29, ...),
/// so the restored map would diverge from the original at the first
/// rehash after resume. Restore a virgin table by assignment instead.
template <class Map, class LoadItem>
void load_unordered(BinReader& r, Map& map, LoadItem load_item) {
  const std::uint64_t buckets = r.u64();
  const std::uint64_t count = r.u64();
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items;
  items.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) items.push_back(load_item(r));
  if (buckets <= 1) {
    map = Map();
  } else {
    map.clear();
    map.rehash(static_cast<std::size_t>(buckets));
  }
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    map.emplace(std::move(it->first), std::move(it->second));
  }
}

}  // namespace ecocloud::util
