#pragma once

/// \file string_util.hpp
/// \brief String helpers for parsing configuration and trace files.

#include <string>
#include <vector>

namespace ecocloud::util {

/// Remove leading/trailing whitespace.
[[nodiscard]] std::string trim(const std::string& s);

/// Split on a delimiter character; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(const std::string& s, char delim);

/// Parse a double; throws std::invalid_argument with context on failure.
[[nodiscard]] double parse_double(const std::string& s);

/// Parse a non-negative integer; throws std::invalid_argument on failure.
[[nodiscard]] long long parse_int(const std::string& s);

/// True if \p s starts with \p prefix.
[[nodiscard]] bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace ecocloud::util
