#pragma once

/// \file validation.hpp
/// \brief Precondition checking helpers used across the library.
///
/// Library entry points validate their inputs with require(); violations
/// throw std::invalid_argument so misconfiguration is reported eagerly
/// instead of corrupting a long simulation run.

#include <stdexcept>
#include <string>

namespace ecocloud::util {

/// Throw std::invalid_argument with \p message unless \p condition holds.
inline void require(bool condition, const std::string& message) {
  if (!condition) {
    throw std::invalid_argument(message);
  }
}

/// Throw std::logic_error with \p message unless \p condition holds.
/// Used for internal invariants (bugs), as opposed to caller errors.
inline void ensure(bool condition, const std::string& message) {
  if (!condition) {
    throw std::logic_error(message);
  }
}

}  // namespace ecocloud::util
