#pragma once

/// \file validation.hpp
/// \brief Precondition checking helpers used across the library.
///
/// Library entry points validate their inputs with require(); violations
/// throw std::invalid_argument so misconfiguration is reported eagerly
/// instead of corrupting a long simulation run.

#include <stdexcept>
#include <string>

namespace ecocloud::util {

/// Throw std::invalid_argument with \p message unless \p condition holds.
///
/// Takes the message as a C string: building a std::string eagerly would
/// heap-allocate on every call, and these checks sit on the simulator's
/// per-event hot path. The exception object copies the message on throw.
inline void require(bool condition, const char* message) {
  if (condition) [[likely]] {
    return;
  }
  throw std::invalid_argument(message);
}

/// Overload for call sites that assemble a contextual message (config and
/// trace parsers — cold paths where the allocation is irrelevant).
inline void require(bool condition, const std::string& message) {
  if (condition) [[likely]] {
    return;
  }
  throw std::invalid_argument(message);
}

/// Throw std::logic_error with \p message unless \p condition holds.
/// Used for internal invariants (bugs), as opposed to caller errors.
inline void ensure(bool condition, const char* message) {
  if (condition) [[likely]] {
    return;
  }
  throw std::logic_error(message);
}

/// Overload for dynamically assembled invariant messages.
inline void ensure(bool condition, const std::string& message) {
  if (condition) [[likely]] {
    return;
  }
  throw std::logic_error(message);
}

}  // namespace ecocloud::util
