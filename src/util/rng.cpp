#include "ecocloud/util/rng.hpp"

#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
  // A theoretically possible all-zero state would make the generator stick.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng::State Rng::state() const {
  State st;
  st.s = state_;
  st.cached_normal = cached_normal_;
  st.has_cached_normal = has_cached_normal_;
  return st;
}

void Rng::set_state(const State& state) {
  require((state.s[0] | state.s[1] | state.s[2] | state.s[3]) != 0,
          "Rng::set_state: all-zero state is invalid");
  state_ = state.s;
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

Rng Rng::split(std::uint64_t stream_id) const {
  std::uint64_t sm = state_[0] ^ rotl(state_[3], 23) ^ (stream_id * 0xD1342543DE82EF95ULL);
  return Rng(splitmix64(sm));
}

double Rng::uniform() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  require(n > 0, "Rng::uniform_int: n must be > 0");
  // Lemire-style rejection to eliminate modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  require(rate > 0.0, "Rng::exponential: rate must be > 0");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::normal: stddev must be >= 0");
  return mean + stddev * normal();
}

std::size_t Rng::discrete(const std::vector<double>& weights) {
  require(!weights.empty(), "Rng::discrete: weights must be non-empty");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "Rng::discrete: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "Rng::discrete: at least one weight must be positive");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  // Floating-point rounding can exhaust the loop; return the last positive.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::index(std::size_t size) {
  require(size > 0, "Rng::index: size must be > 0");
  return static_cast<std::size_t>(uniform_int(size));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_int(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace ecocloud::util
