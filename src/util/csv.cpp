#include "ecocloud/util/csv.hpp"

#include <ostream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "ecocloud/util/string_util.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::util {

CsvWriter::CsvWriter(std::ostream& out, int precision)
    : out_(out), precision_(precision) {
  require(precision > 0 && precision <= 17, "CsvWriter: precision must be in [1,17]");
}

void CsvWriter::header(const std::vector<std::string>& names) { row(names); }

void CsvWriter::row(const std::vector<std::string>& fields) {
  ensure(!row_open_, "CsvWriter::row called while an incremental row is open");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << fields[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& fields) {
  ensure(!row_open_, "CsvWriter::row called while an incremental row is open");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << format(fields[i]);
  }
  out_ << '\n';
}

CsvWriter& CsvWriter::field(const std::string& value) {
  if (row_open_) out_ << ',';
  out_ << value;
  row_open_ = true;
  return *this;
}

CsvWriter& CsvWriter::field(double value) { return field(format(value)); }

CsvWriter& CsvWriter::field(long long value) { return field(std::to_string(value)); }

void CsvWriter::end_row() {
  out_ << '\n';
  row_open_ = false;
}

void CsvWriter::comment(const std::string& text) {
  ensure(!row_open_, "CsvWriter::comment called while an incremental row is open");
  out_ << "# " << text << '\n';
}

std::string CsvWriter::format(double value) const {
  std::ostringstream oss;
  oss.precision(precision_);
  oss << value;
  return oss.str();
}

CsvRow split_csv_line(const std::string& line) {
  CsvRow fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(trim(current));
  return fields;
}

std::vector<CsvRow> read_csv(std::istream& in) {
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    rows.push_back(split_csv_line(trimmed));
  }
  if (in.bad()) {
    throw std::runtime_error("read_csv: stream read failure");
  }
  return rows;
}

}  // namespace ecocloud::util
