#pragma once

/// \file resilience.hpp
/// \brief Counters and distributions for the fault-injection experiments.
///
/// ResilienceStats is a passive sink: the faults module records crashes,
/// repairs, interrupted migrations and redeployments into it, and the
/// benches/CLI read availability and redeploy-latency figures out. It
/// answers the question the paper's perfect-world setup cannot: how much
/// of the energy saving survives real failures, and at what SLA cost.

#include <cstdint>

#include "ecocloud/sim/time.hpp"
#include "ecocloud/stats/quantile.hpp"
#include "ecocloud/stats/welford.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::metrics {

class ResilienceStats {
 public:
  // --- Recording (called by the faults module) -----------------------------

  void record_crash() { ++crashes_; }
  void record_repair() { ++repairs_; }

  /// A VM lost its placement to a crash.
  void record_orphan() { ++orphaned_vms_; }

  /// An orphan re-entered the placement; \p latency_s is crash-to-placement
  /// (or crash-to-boot-queue) wall time, which is also VM downtime.
  void record_redeploy(sim::SimTime latency_s) {
    ++redeployed_vms_;
    downtime_vm_seconds_ += latency_s;
    redeploy_latency_.add(latency_s);
    redeploy_quantiles_.add(latency_s);
  }

  /// An orphan exhausted its redeploy attempts; \p down_s is how long it
  /// had been waiting when the policy gave up.
  void record_abandoned(sim::SimTime down_s) {
    ++abandoned_vms_;
    downtime_vm_seconds_ += down_s;
  }

  /// Downtime of orphans still unplaced when the run ended.
  void record_open_downtime(sim::SimTime down_s) { downtime_vm_seconds_ += down_s; }

  // --- Queries --------------------------------------------------------------

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t repairs() const { return repairs_; }
  [[nodiscard]] std::uint64_t orphaned_vms() const { return orphaned_vms_; }
  [[nodiscard]] std::uint64_t redeployed_vms() const { return redeployed_vms_; }
  [[nodiscard]] std::uint64_t abandoned_vms() const { return abandoned_vms_; }

  /// Total VM-seconds of downtime attributed to crashes.
  [[nodiscard]] double downtime_vm_seconds() const { return downtime_vm_seconds_; }

  /// Mean/min/max of crash-to-redeploy latency.
  [[nodiscard]] const stats::Welford& redeploy_latency() const {
    return redeploy_latency_;
  }

  /// Exact quantiles of the redeploy-latency distribution.
  [[nodiscard]] const stats::QuantileSketch& redeploy_quantiles() const {
    return redeploy_quantiles_;
  }

  /// Fraction of demanded VM-time actually served: served / (served +
  /// downtime), given the DataCenter's integrated placed VM-seconds.
  /// 1.0 when nothing ever ran (vacuous availability).
  [[nodiscard]] double availability(double served_vm_seconds) const {
    const double total = served_vm_seconds + downtime_vm_seconds_;
    return total > 0.0 ? served_vm_seconds / total : 1.0;
  }

  void reset() { *this = ResilienceStats{}; }

  /// Checkpoint surface.
  void save_state(util::BinWriter& w) const {
    w.u64(crashes_);
    w.u64(repairs_);
    w.u64(orphaned_vms_);
    w.u64(redeployed_vms_);
    w.u64(abandoned_vms_);
    w.f64(downtime_vm_seconds_);
    redeploy_latency_.save(w);
    redeploy_quantiles_.save(w);
  }

  void load_state(util::BinReader& r) {
    crashes_ = r.u64();
    repairs_ = r.u64();
    orphaned_vms_ = r.u64();
    redeployed_vms_ = r.u64();
    abandoned_vms_ = r.u64();
    downtime_vm_seconds_ = r.f64();
    redeploy_latency_.load(r);
    redeploy_quantiles_.load(r);
  }

 private:
  std::uint64_t crashes_ = 0;
  std::uint64_t repairs_ = 0;
  std::uint64_t orphaned_vms_ = 0;
  std::uint64_t redeployed_vms_ = 0;
  std::uint64_t abandoned_vms_ = 0;
  double downtime_vm_seconds_ = 0.0;
  stats::Welford redeploy_latency_;
  stats::QuantileSketch redeploy_quantiles_;
};

}  // namespace ecocloud::metrics
