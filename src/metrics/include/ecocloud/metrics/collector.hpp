#pragma once

/// \file collector.hpp
/// \brief Periodic metrics sampling reproducing the paper's figure series.
///
/// The paper computes all metrics every 30 minutes over 48 hours
/// (Sec. III). MetricsCollector samples the DataCenter on that cadence and
/// accumulates:
///  * per-server utilization snapshots            (Fig. 6 / Fig. 12)
///  * overall load                                 (Figs. 6, 12 reference)
///  * number of active servers                     (Fig. 7)
///  * instantaneous power                          (Fig. 8)
///  * low/high migrations per hour                 (Fig. 9)
///  * activations/hibernations per hour            (Fig. 10)
///  * % of VM-time under CPU over-demand           (Fig. 11)
///
/// Works with any controller driving the same DataCenter; the low/high
/// migration split additionally needs the ecoCloud event hooks (attach()).

#include <vector>

#include "ecocloud/core/controller.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/sim/simulator.hpp"
#include "ecocloud/stats/rate_window.hpp"
#include "ecocloud/stats/time_series.hpp"

namespace ecocloud::metrics {

struct CollectorConfig {
  /// Sampling/report window (paper: 30 minutes).
  sim::SimTime sample_period_s = 1800.0;

  /// Record the full per-server utilization snapshot at each sample (can
  /// be disabled to save memory in very long sweeps).
  bool keep_utilization_snapshots = true;
};

/// One 30-minute sample of the whole data center.
struct Sample {
  sim::SimTime time = 0.0;
  std::size_t active_servers = 0;
  std::size_t booting_servers = 0;
  double overall_load = 0.0;
  double power_w = 0.0;
  /// Overload VM-time percentage within the window ending at `time`.
  double overload_percent = 0.0;
  /// Energy (J) consumed within the window ending at `time`.
  double window_energy_j = 0.0;
  /// Raw VM-time integrals behind overload_percent, kept so samples from
  /// independent shards can be merged exactly (percentages do not add;
  /// their numerators and denominators do).
  double window_vm_seconds = 0.0;
  double window_overload_vm_seconds = 0.0;
};

class MetricsCollector {
 public:
  /// Snapshot-stable event kinds (tag_owner::kCollector). Append only.
  enum EventKind : std::uint16_t { kEvSample = 1 };

  MetricsCollector(sim::Simulator& simulator, dc::DataCenter& datacenter,
                   CollectorConfig config = CollectorConfig{});

  /// Subscribe to an ecoCloud controller's events for the low/high
  /// migration split and the activation/hibernation rates. Overwrites the
  /// corresponding callbacks.
  void attach(core::EcoCloudController& controller);

  /// Begin periodic sampling (first sample after one period). A sample at
  /// t = 0 can be taken explicitly with sample_now().
  void start();

  /// Take a sample immediately.
  void sample_now();

  /// Re-align the per-window deltas with the DataCenter's accumulators.
  /// Must be called after DataCenter::reset_accounting() (e.g. at the end
  /// of a warm-up), or the next window would report negative deltas.
  void rebase();

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  /// Per-server utilization at each sample: snapshot[i] aligns with
  /// samples()[i]; hibernated/booting servers report 0.
  [[nodiscard]] const std::vector<std::vector<double>>& utilization_snapshots() const {
    return snapshots_;
  }

  [[nodiscard]] const stats::RateWindow& low_migrations() const { return low_mig_; }
  [[nodiscard]] const stats::RateWindow& high_migrations() const { return high_mig_; }
  [[nodiscard]] const stats::RateWindow& activations() const { return activations_; }
  [[nodiscard]] const stats::RateWindow& hibernations() const { return hibernations_; }

  [[nodiscard]] sim::SimTime sample_period_s() const { return config_.sample_period_s; }

  /// Total energy in kWh accumulated by the DataCenter so far.
  [[nodiscard]] double total_energy_kwh() const;

  /// Checkpoint surface: accumulated samples, snapshots, rate windows and
  /// the window-delta baselines (saved verbatim for bit-exact resume).
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);
  [[nodiscard]] sim::Simulator::Callback rebuild_event(const sim::EventTag& tag);

 private:
  sim::Simulator& sim_;
  dc::DataCenter& dc_;
  CollectorConfig config_;

  std::vector<Sample> samples_;
  std::vector<std::vector<double>> snapshots_;
  stats::RateWindow low_mig_;
  stats::RateWindow high_mig_;
  stats::RateWindow activations_;
  stats::RateWindow hibernations_;

  double last_overload_vm_seconds_ = 0.0;
  double last_vm_seconds_ = 0.0;
  double last_energy_j_ = 0.0;
  bool started_ = false;
};

}  // namespace ecocloud::metrics
