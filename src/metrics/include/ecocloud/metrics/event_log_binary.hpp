#pragma once

/// \file event_log_binary.hpp
/// \brief Compact binary serialization of the decision event log.
///
/// The CSV event log is the human-facing format, but at planet scale it is
/// the wrong interchange format: ~34 bytes of text per row, formatted with
/// snprintf on the output path. This header defines a fixed-width binary
/// format (18 bytes per event, little-endian, no per-row formatting) that
/// the CLI and benches write by default; the offline `eventlog2csv` tool
/// converts it to the exact legacy CSV bytes (byte-equality is pinned in
/// CI), so downstream tooling keeps working unchanged.
///
/// Layout (all little-endian, independent of host byte order):
///
///   header   4 bytes  magic "ECEV"
///            2 bytes  u16 format version (currently 1)
///            2 bytes  u16 record size in bytes (currently 18)
///   record   8 bytes  f64 time_s (IEEE-754 bit pattern)
///            1 byte   u8  EventKind
///            4 bytes  u32 vm id       (0xFFFFFFFF = none)
///            4 bytes  u32 server id   (0xFFFFFFFF = none)
///            1 byte   u8  is_high (0/1)
///
/// Records are appended as events happen, so a crashed run leaves a valid
/// prefix: read_binary_events tolerates a partial trailing record (the
/// crash tail) and reports it, but rejects a corrupt header or an unknown
/// event kind loudly.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ecocloud/metrics/event_log.hpp"

namespace ecocloud::metrics {

inline constexpr char kEventLogMagic[4] = {'E', 'C', 'E', 'V'};
inline constexpr std::uint16_t kEventLogFormatVersion = 1;
inline constexpr std::size_t kEventLogHeaderSize = 8;
inline constexpr std::size_t kEventRecordSize = 18;

/// Incremental writer: header on construction, one fixed-width record per
/// write(). Buffers rows internally and flushes in blocks, so the per-event
/// cost is a few stores, not an ostream call.
class BinaryEventWriter {
 public:
  /// Writes the format header. \p out must outlive the writer.
  explicit BinaryEventWriter(std::ostream& out);
  ~BinaryEventWriter();
  BinaryEventWriter(const BinaryEventWriter&) = delete;
  BinaryEventWriter& operator=(const BinaryEventWriter&) = delete;

  void write(const Event& event);

  /// Flush buffered records to the stream (also runs on destruction).
  void flush();

  [[nodiscard]] std::size_t written() const { return written_; }

 private:
  std::ostream& out_;
  std::vector<char> buffer_;
  std::size_t written_ = 0;
};

/// Write header + all \p events in one call.
void write_binary_events(std::ostream& out, const std::vector<Event>& events);

struct BinaryReadResult {
  std::vector<Event> events;
  /// True when the stream ended inside a record (e.g. the run crashed
  /// mid-append); the complete prefix is still returned.
  bool truncated_tail = false;
};

/// Parse a binary event log. Throws std::runtime_error on a bad magic,
/// unsupported version, wrong record size, or out-of-range event kind;
/// a partial trailing record is dropped and flagged instead (crash tail).
[[nodiscard]] BinaryReadResult read_binary_events(std::istream& in);

/// The eventlog2csv conversion: parse \p in as binary and write the exact
/// legacy CSV bytes (EventLog::write_csv format) to \p out. Returns the
/// read result so callers can surface a truncated tail. Shared between the
/// offline tool and the CI byte-equality test.
BinaryReadResult convert_binary_events_to_csv(std::istream& in,
                                              std::ostream& out);

}  // namespace ecocloud::metrics
