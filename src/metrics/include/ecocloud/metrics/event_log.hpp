#pragma once

/// \file event_log.hpp
/// \brief Structured audit trail of controller decisions.
///
/// Records every observable ecoCloud event — placements, migration
/// start/completion, activations, hibernations, refused deployments — as
/// timestamped rows, for post-run analysis or export. Purely an observer:
/// attaching it changes nothing about the simulation. It chains any
/// callbacks already installed (e.g. the MetricsCollector's), so both see
/// every event.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <vector>

#include "ecocloud/core/controller.hpp"
#include "ecocloud/util/binio.hpp"

namespace ecocloud::metrics {

enum class EventKind : std::uint8_t {
  kAssignment,
  kAssignmentFailure,
  kMigrationStart,
  kMigrationComplete,
  kActivation,
  kHibernation,
  // Failure-path events (only seen with fault injection active).
  kServerFailed,
  kServerRepaired,
  kVmOrphaned,
  kMigrationAborted,
};

/// Number of EventKind enumerators (per-kind counter array size).
inline constexpr std::size_t kNumEventKinds = 10;

[[nodiscard]] const char* to_string(EventKind kind);

struct Event {
  sim::SimTime time = 0.0;
  EventKind kind = EventKind::kAssignment;
  dc::VmId vm = dc::kNoVm;          // kNoVm for server-only events
  dc::ServerId server = dc::kNoServer;
  bool is_high = false;             // migration events only
};

/// The canonical event CSV row format (header, 10-digit precision, -1
/// sentinels for missing ids). Every producer — EventLog::write_csv, the
/// sharded merge, eventlog2csv — funnels through this one function so
/// their outputs are byte-comparable.
void write_events_csv(std::ostream& out, const std::vector<Event>& events);

class EventLog {
 public:
  /// Subscribe to \p controller's events, chaining existing callbacks.
  void attach(core::EcoCloudController& controller);

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Number of recorded events of one kind. O(1): maintained per kind on
  /// append rather than scanned.
  [[nodiscard]] std::size_t count(EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }

  /// Write all events as CSV: time_s,kind,vm,server,is_high (with a
  /// header row; round-trips through util::read_csv).
  void write_csv(std::ostream& out) const;

  void clear() {
    events_.clear();
    counts_.fill(0);
  }

  /// Checkpoint surface: the recorded rows (counters are derived on load).
  void save_state(util::BinWriter& w) const {
    w.u64(events_.size());
    for (const Event& e : events_) {
      w.f64(e.time);
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.u64(e.vm);
      w.u64(e.server);
      w.boolean(e.is_high);
    }
  }

  void load_state(util::BinReader& r) {
    clear();
    const std::uint64_t n = r.u64();
    events_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      Event e;
      e.time = r.f64();
      const std::uint8_t kind = r.u8();
      if (kind >= kNumEventKinds) {
        throw std::runtime_error("EventLog: snapshot contains an unknown event kind");
      }
      e.kind = static_cast<EventKind>(kind);
      e.vm = static_cast<dc::VmId>(r.u64());
      e.server = static_cast<dc::ServerId>(r.u64());
      e.is_high = r.boolean();
      append(e);
    }
  }

 private:
  void append(const Event& event) {
    events_.push_back(event);
    ++counts_[static_cast<std::size_t>(event.kind)];
  }

  std::vector<Event> events_;
  std::array<std::size_t, kNumEventKinds> counts_{};
};

}  // namespace ecocloud::metrics
