#pragma once

/// \file episode_summary.hpp
/// \brief Aggregate statistics over overload episodes (paper Sec. III).
///
/// The paper reports that, thanks to high migrations, "more than 98% of
/// violations are shorter than 30 seconds, and even in those time
/// intervals the VMs are granted no less than 98% of the demanded CPU".
/// EpisodeSummary computes exactly those statistics from the exact
/// episodes recorded by the DataCenter.

#include <vector>

#include "ecocloud/dc/datacenter.hpp"

namespace ecocloud::metrics {

struct EpisodeSummary {
  std::size_t count = 0;
  double mean_duration_s = 0.0;
  double max_duration_s = 0.0;
  /// Fraction of episodes shorter than 30 s.
  double fraction_under_30s = 1.0;
  /// Minimum granted CPU fraction over all episodes.
  double worst_granted_fraction = 1.0;
  /// Mean of per-episode minimum granted fraction.
  double mean_min_granted_fraction = 1.0;
};

[[nodiscard]] EpisodeSummary summarize_episodes(
    const std::vector<dc::OverloadEpisode>& episodes, double short_threshold_s = 30.0);

}  // namespace ecocloud::metrics
