#include "ecocloud/metrics/event_log_binary.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ecocloud::metrics {

namespace {

/// Flush threshold: 64 KiB blocks amortize ostream overhead while keeping
/// the writer's footprint negligible next to the fleet state.
constexpr std::size_t kFlushBytes = 64 * 1024;

void put_u16(std::vector<char>& buf, std::uint16_t v) {
  buf.push_back(static_cast<char>(v & 0xFF));
  buf.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::vector<char>& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::vector<char>& buf, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void put_record(std::vector<char>& buf, const Event& e) {
  put_f64(buf, e.time);
  buf.push_back(static_cast<char>(static_cast<std::uint8_t>(e.kind)));
  put_u32(buf, e.vm);
  put_u32(buf, e.server);
  buf.push_back(static_cast<char>(e.is_high ? 1 : 0));
}

void put_header(std::vector<char>& buf) {
  buf.insert(buf.end(), kEventLogMagic, kEventLogMagic + 4);
  put_u16(buf, kEventLogFormatVersion);
  put_u16(buf, static_cast<std::uint16_t>(kEventRecordSize));
}

std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0]) |
                                    (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

double get_f64(const char* p) {
  std::uint64_t bits = 0;
  for (int i = 7; i >= 0; --i) bits = (bits << 8) | static_cast<unsigned char>(p[i]);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

BinaryEventWriter::BinaryEventWriter(std::ostream& out) : out_(out) {
  buffer_.reserve(kFlushBytes + kEventRecordSize);
  put_header(buffer_);
}

BinaryEventWriter::~BinaryEventWriter() { flush(); }

void BinaryEventWriter::write(const Event& event) {
  put_record(buffer_, event);
  ++written_;
  if (buffer_.size() >= kFlushBytes) flush();
}

void BinaryEventWriter::flush() {
  if (buffer_.empty()) return;
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  buffer_.clear();
}

void write_binary_events(std::ostream& out, const std::vector<Event>& events) {
  BinaryEventWriter writer(out);
  for (const Event& e : events) writer.write(e);
}

BinaryReadResult read_binary_events(std::istream& in) {
  char header[kEventLogHeaderSize];
  in.read(header, static_cast<std::streamsize>(kEventLogHeaderSize));
  if (in.gcount() != static_cast<std::streamsize>(kEventLogHeaderSize) ||
      std::memcmp(header, kEventLogMagic, 4) != 0) {
    throw std::runtime_error("event log: not a binary event log (bad magic)");
  }
  const std::uint16_t version = get_u16(header + 4);
  if (version != kEventLogFormatVersion) {
    throw std::runtime_error("event log: unsupported format version " +
                             std::to_string(version));
  }
  const std::uint16_t record_size = get_u16(header + 6);
  if (record_size != kEventRecordSize) {
    throw std::runtime_error("event log: unexpected record size " +
                             std::to_string(record_size));
  }

  BinaryReadResult result;
  char record[kEventRecordSize];
  for (;;) {
    in.read(record, static_cast<std::streamsize>(kEventRecordSize));
    const std::streamsize got = in.gcount();
    if (got == 0) break;
    if (got < static_cast<std::streamsize>(kEventRecordSize)) {
      // Crash tail: the writer died mid-record. Keep the complete prefix.
      result.truncated_tail = true;
      break;
    }
    Event e;
    e.time = get_f64(record);
    const auto kind = static_cast<std::uint8_t>(record[8]);
    if (kind >= kNumEventKinds) {
      throw std::runtime_error("event log: unknown event kind " +
                               std::to_string(kind));
    }
    e.kind = static_cast<EventKind>(kind);
    e.vm = static_cast<dc::VmId>(get_u32(record + 9));
    e.server = static_cast<dc::ServerId>(get_u32(record + 13));
    e.is_high = record[17] != 0;
    result.events.push_back(e);
  }
  return result;
}

BinaryReadResult convert_binary_events_to_csv(std::istream& in,
                                              std::ostream& out) {
  BinaryReadResult result = read_binary_events(in);
  write_events_csv(out, result.events);
  return result;
}

}  // namespace ecocloud::metrics
