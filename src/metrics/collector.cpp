#include "ecocloud/metrics/collector.hpp"

#include <stdexcept>
#include <string>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::metrics {

MetricsCollector::MetricsCollector(sim::Simulator& simulator,
                                   dc::DataCenter& datacenter, CollectorConfig config)
    : sim_(simulator),
      dc_(datacenter),
      config_(config),
      low_mig_(config.sample_period_s),
      high_mig_(config.sample_period_s),
      activations_(config.sample_period_s),
      hibernations_(config.sample_period_s) {
  util::require(config.sample_period_s > 0.0,
                "MetricsCollector: sample period must be > 0");
}

void MetricsCollector::attach(core::EcoCloudController& controller) {
  core::EcoCloudController::Events& events = controller.events();
  events.on_migration_complete = [this](sim::SimTime t, dc::VmId, bool is_high) {
    (is_high ? high_mig_ : low_mig_).record(t);
  };
  events.on_activation = [this](sim::SimTime t, dc::ServerId) {
    activations_.record(t);
  };
  events.on_hibernation = [this](sim::SimTime t, dc::ServerId) {
    hibernations_.record(t);
  };
}

void MetricsCollector::start() {
  util::ensure(!started_, "MetricsCollector::start called twice");
  started_ = true;
  sim_.schedule_periodic(config_.sample_period_s,
                         sim::EventTag{sim::tag_owner::kCollector, kEvSample, 0, 0},
                         [this] { sample_now(); }, config_.sample_period_s);
}

void MetricsCollector::rebase() {
  last_overload_vm_seconds_ = dc_.overload_vm_seconds();
  last_vm_seconds_ = dc_.vm_seconds();
  last_energy_j_ = dc_.energy_joules();
}

void MetricsCollector::sample_now() {
  const sim::SimTime now = sim_.now();
  dc_.advance_to(now);

  Sample sample;
  sample.time = now;
  sample.active_servers = dc_.active_server_count();
  sample.booting_servers = dc_.booting_server_count();
  sample.overall_load = dc_.overall_load();
  sample.power_w = dc_.total_power_w();

  const double d_overload = dc_.overload_vm_seconds() - last_overload_vm_seconds_;
  const double d_vmsec = dc_.vm_seconds() - last_vm_seconds_;
  sample.overload_percent = d_vmsec > 0.0 ? 100.0 * d_overload / d_vmsec : 0.0;
  sample.window_vm_seconds = d_vmsec;
  sample.window_overload_vm_seconds = d_overload;
  last_overload_vm_seconds_ = dc_.overload_vm_seconds();
  last_vm_seconds_ = dc_.vm_seconds();

  sample.window_energy_j = dc_.energy_joules() - last_energy_j_;
  last_energy_j_ = dc_.energy_joules();

  samples_.push_back(sample);

  if (config_.keep_utilization_snapshots) {
    std::vector<double> snapshot;
    snapshot.reserve(dc_.num_servers());
    for (const dc::Server& server : dc_.servers()) {
      snapshot.push_back(server.active() ? server.utilization() : 0.0);
    }
    snapshots_.push_back(std::move(snapshot));
  }
}

double MetricsCollector::total_energy_kwh() const {
  return dc_.energy_joules() / 3.6e6;
}

void MetricsCollector::save_state(util::BinWriter& w) const {
  w.boolean(started_);
  w.u64(samples_.size());
  for (const Sample& s : samples_) {
    w.f64(s.time);
    w.u64(s.active_servers);
    w.u64(s.booting_servers);
    w.f64(s.overall_load);
    w.f64(s.power_w);
    w.f64(s.overload_percent);
    w.f64(s.window_energy_j);
    w.f64(s.window_vm_seconds);
    w.f64(s.window_overload_vm_seconds);
  }
  w.u64(snapshots_.size());
  for (const std::vector<double>& snapshot : snapshots_) {
    w.u64(snapshot.size());
    for (double u : snapshot) w.f64(u);
  }
  low_mig_.save(w);
  high_mig_.save(w);
  activations_.save(w);
  hibernations_.save(w);
  w.f64(last_overload_vm_seconds_);
  w.f64(last_vm_seconds_);
  w.f64(last_energy_j_);
}

void MetricsCollector::load_state(util::BinReader& r) {
  started_ = r.boolean();
  samples_.assign(static_cast<std::size_t>(r.u64()), Sample{});
  for (Sample& s : samples_) {
    s.time = r.f64();
    s.active_servers = static_cast<std::size_t>(r.u64());
    s.booting_servers = static_cast<std::size_t>(r.u64());
    s.overall_load = r.f64();
    s.power_w = r.f64();
    s.overload_percent = r.f64();
    s.window_energy_j = r.f64();
    s.window_vm_seconds = r.f64();
    s.window_overload_vm_seconds = r.f64();
  }
  snapshots_.assign(static_cast<std::size_t>(r.u64()), {});
  for (std::vector<double>& snapshot : snapshots_) {
    snapshot.assign(static_cast<std::size_t>(r.u64()), 0.0);
    for (double& u : snapshot) u = r.f64();
  }
  low_mig_.load(r);
  high_mig_.load(r);
  activations_.load(r);
  hibernations_.load(r);
  last_overload_vm_seconds_ = r.f64();
  last_vm_seconds_ = r.f64();
  last_energy_j_ = r.f64();
}

sim::Simulator::Callback MetricsCollector::rebuild_event(const sim::EventTag& tag) {
  if (tag.kind == kEvSample) return [this] { sample_now(); };
  throw std::runtime_error(
      "MetricsCollector: snapshot contains an unknown event kind " +
      std::to_string(tag.kind));
}

}  // namespace ecocloud::metrics
