#include "ecocloud/metrics/episode_summary.hpp"

#include <algorithm>

namespace ecocloud::metrics {

EpisodeSummary summarize_episodes(const std::vector<dc::OverloadEpisode>& episodes,
                                  double short_threshold_s) {
  EpisodeSummary summary;
  summary.count = episodes.size();
  if (episodes.empty()) return summary;

  double total_duration = 0.0;
  double total_min_granted = 0.0;
  std::size_t short_count = 0;
  for (const dc::OverloadEpisode& ep : episodes) {
    total_duration += ep.duration_s;
    summary.max_duration_s = std::max(summary.max_duration_s, ep.duration_s);
    if (ep.duration_s < short_threshold_s) ++short_count;
    total_min_granted += ep.min_granted_fraction;
    summary.worst_granted_fraction =
        std::min(summary.worst_granted_fraction, ep.min_granted_fraction);
  }
  const auto n = static_cast<double>(episodes.size());
  summary.mean_duration_s = total_duration / n;
  summary.fraction_under_30s = static_cast<double>(short_count) / n;
  summary.mean_min_granted_fraction = total_min_granted / n;
  return summary;
}

}  // namespace ecocloud::metrics
