#include "ecocloud/metrics/event_log.hpp"

#include <ostream>

#include "ecocloud/util/csv.hpp"

namespace ecocloud::metrics {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kAssignment: return "assignment";
    case EventKind::kAssignmentFailure: return "assignment_failure";
    case EventKind::kMigrationStart: return "migration_start";
    case EventKind::kMigrationComplete: return "migration_complete";
    case EventKind::kActivation: return "activation";
    case EventKind::kHibernation: return "hibernation";
    case EventKind::kServerFailed: return "server_failed";
    case EventKind::kServerRepaired: return "server_repaired";
    case EventKind::kVmOrphaned: return "vm_orphaned";
    case EventKind::kMigrationAborted: return "migration_aborted";
  }
  return "unknown";
}

void EventLog::attach(core::EcoCloudController& controller) {
  core::EcoCloudController::Events& hooks = controller.events();

  hooks.on_assignment = [this, chained = std::move(hooks.on_assignment)](
                            sim::SimTime t, dc::VmId vm, dc::ServerId server) {
    append({t, EventKind::kAssignment, vm, server, false});
    if (chained) chained(t, vm, server);
  };
  hooks.on_assignment_failure =
      [this, chained = std::move(hooks.on_assignment_failure)](sim::SimTime t,
                                                               dc::VmId vm) {
        append({t, EventKind::kAssignmentFailure, vm, dc::kNoServer,
                           false});
        if (chained) chained(t, vm);
      };
  hooks.on_migration_start =
      [this, chained = std::move(hooks.on_migration_start)](
          sim::SimTime t, dc::VmId vm, bool is_high) {
        append({t, EventKind::kMigrationStart, vm, dc::kNoServer,
                           is_high});
        if (chained) chained(t, vm, is_high);
      };
  hooks.on_migration_complete =
      [this, chained = std::move(hooks.on_migration_complete)](
          sim::SimTime t, dc::VmId vm, bool is_high) {
        append({t, EventKind::kMigrationComplete, vm, dc::kNoServer,
                           is_high});
        if (chained) chained(t, vm, is_high);
      };
  hooks.on_activation = [this, chained = std::move(hooks.on_activation)](
                            sim::SimTime t, dc::ServerId server) {
    append({t, EventKind::kActivation, dc::kNoVm, server, false});
    if (chained) chained(t, server);
  };
  hooks.on_hibernation = [this, chained = std::move(hooks.on_hibernation)](
                             sim::SimTime t, dc::ServerId server) {
    append({t, EventKind::kHibernation, dc::kNoVm, server, false});
    if (chained) chained(t, server);
  };
  hooks.on_server_failed = [this, chained = std::move(hooks.on_server_failed)](
                               sim::SimTime t, dc::ServerId server) {
    append({t, EventKind::kServerFailed, dc::kNoVm, server, false});
    if (chained) chained(t, server);
  };
  hooks.on_server_repaired = [this, chained = std::move(hooks.on_server_repaired)](
                                 sim::SimTime t, dc::ServerId server) {
    append({t, EventKind::kServerRepaired, dc::kNoVm, server, false});
    if (chained) chained(t, server);
  };
  hooks.on_vm_orphaned = [this, chained = std::move(hooks.on_vm_orphaned)](
                             sim::SimTime t, dc::VmId vm, dc::ServerId server) {
    append({t, EventKind::kVmOrphaned, vm, server, false});
    if (chained) chained(t, vm, server);
  };
  hooks.on_migration_aborted =
      [this, chained = std::move(hooks.on_migration_aborted)](
          sim::SimTime t, dc::VmId vm, bool is_high) {
        append({t, EventKind::kMigrationAborted, vm, dc::kNoServer,
                           is_high});
        if (chained) chained(t, vm, is_high);
      };
}

void write_events_csv(std::ostream& out, const std::vector<Event>& events) {
  util::CsvWriter csv(out, 10);
  csv.header({"time_s", "kind", "vm", "server", "is_high"});
  for (const Event& event : events) {
    csv.field(event.time)
        .field(to_string(event.kind))
        .field(static_cast<long long>(
            event.vm == dc::kNoVm ? -1 : static_cast<long long>(event.vm)))
        .field(static_cast<long long>(
            event.server == dc::kNoServer ? -1
                                          : static_cast<long long>(event.server)))
        .field(static_cast<long long>(event.is_high ? 1 : 0));
    csv.end_row();
  }
}

void EventLog::write_csv(std::ostream& out) const {
  write_events_csv(out, events_);
}

}  // namespace ecocloud::metrics
