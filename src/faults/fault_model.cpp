#include "ecocloud/faults/fault_model.hpp"

#include <cmath>
#include <sstream>

#include "ecocloud/util/string_util.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::faults {

namespace {

/// Parse "7" or "10-20" into an inclusive server range.
void parse_range(const std::string& token, dc::ServerId& first, dc::ServerId& last) {
  const auto dash = token.find('-');
  if (dash == std::string::npos) {
    const long long id = util::parse_int(token);
    util::require(id >= 0, "fault schedule: negative server id '" + token + "'");
    first = last = static_cast<dc::ServerId>(id);
    return;
  }
  const long long lo = util::parse_int(token.substr(0, dash));
  const long long hi = util::parse_int(token.substr(dash + 1));
  util::require(lo >= 0 && hi >= lo,
                "fault schedule: bad server range '" + token + "'");
  first = static_cast<dc::ServerId>(lo);
  last = static_cast<dc::ServerId>(hi);
}

}  // namespace

std::vector<ScriptedFault> parse_fault_schedule(const std::string& text) {
  std::vector<ScriptedFault> schedule;
  for (const std::string& raw : util::split(text, ',')) {
    const std::string entry = util::trim(raw);
    if (entry.empty()) continue;

    std::istringstream in(entry);
    std::string kind, range, time_s, extra, overflow;
    in >> kind >> range >> time_s >> extra >> overflow;
    util::require(!time_s.empty(),
                  "fault schedule: entry '" + entry +
                      "' needs at least '<kind> <servers> <time_s>'");
    util::require(overflow.empty(),
                  "fault schedule: trailing tokens in '" + entry + "'");

    ScriptedFault fault;
    if (kind == "crash") {
      fault.kind = ScriptedFault::Kind::kCrash;
      if (!extra.empty()) fault.repair_after_s = util::parse_double(extra);
      util::require(std::isnan(fault.repair_after_s) == false &&
                        (fault.repair_after_s < 0.0 ||
                         std::isfinite(fault.repair_after_s)),
                    "fault schedule: bad repair_after in '" + entry + "'");
    } else if (kind == "repair") {
      fault.kind = ScriptedFault::Kind::kRepair;
      util::require(extra.empty(),
                    "fault schedule: repair entries take no repair_after ('" +
                        entry + "')");
    } else {
      throw std::invalid_argument("fault schedule: unknown kind '" + kind + "'");
    }
    parse_range(range, fault.first, fault.last);
    fault.time = util::parse_double(time_s);
    util::require(std::isfinite(fault.time) && fault.time >= 0.0,
                  "fault schedule: bad time in '" + entry + "'");
    schedule.push_back(fault);
  }
  return schedule;
}

std::string to_string(const std::vector<ScriptedFault>& schedule) {
  std::ostringstream out;
  bool first_entry = true;
  for (const ScriptedFault& fault : schedule) {
    if (!first_entry) out << ", ";
    first_entry = false;
    out << (fault.kind == ScriptedFault::Kind::kCrash ? "crash " : "repair ");
    out << fault.first;
    if (fault.last != fault.first) out << "-" << fault.last;
    out << " " << fault.time;
    if (fault.kind == ScriptedFault::Kind::kCrash && fault.repair_after_s >= 0.0) {
      out << " " << fault.repair_after_s;
    }
  }
  return out.str();
}

bool FaultParams::enabled() const {
  return server_mtbf_s > 0.0 || migration_abort_prob > 0.0 ||
         boot_failure_prob > 0.0 || invitation_loss_prob > 0.0 ||
         reply_loss_prob > 0.0 || !schedule.empty();
}

void FaultParams::validate() const {
  auto probability = [](double p, const char* name) {
    util::require(std::isfinite(p) && p >= 0.0 && p <= 1.0,
                  std::string("FaultParams: ") + name + " must be in [0, 1]");
  };
  util::require(std::isfinite(server_mtbf_s) && server_mtbf_s >= 0.0,
                "FaultParams: server_mtbf_s must be >= 0");
  util::require(std::isfinite(server_mttr_s) && server_mttr_s > 0.0,
                "FaultParams: server_mttr_s must be > 0");
  probability(migration_abort_prob, "migration_abort_prob");
  probability(boot_failure_prob, "boot_failure_prob");
  probability(invitation_loss_prob, "invitation_loss_prob");
  probability(reply_loss_prob, "reply_loss_prob");
  util::require(max_invite_rounds >= 1,
                "FaultParams: max_invite_rounds must be >= 1");
  util::require(std::isfinite(redeploy_delay_s) && redeploy_delay_s >= 0.0,
                "FaultParams: redeploy_delay_s must be >= 0");
  util::require(std::isfinite(redeploy_backoff_s) && redeploy_backoff_s >= 0.0,
                "FaultParams: redeploy_backoff_s must be >= 0");
  util::require(std::isfinite(redeploy_backoff_max_s) &&
                    redeploy_backoff_max_s >= redeploy_backoff_s,
                "FaultParams: redeploy_backoff_max_s must be >= redeploy_backoff_s");
  util::require(redeploy_max_attempts >= 1,
                "FaultParams: redeploy_max_attempts must be >= 1");
  for (const ScriptedFault& fault : schedule) {
    util::require(std::isfinite(fault.time) && fault.time >= 0.0,
                  "FaultParams: scripted fault times must be >= 0");
    util::require(fault.last >= fault.first,
                  "FaultParams: scripted fault range must be ordered");
  }
}

FaultModel::FaultModel(FaultParams params, util::Rng rng)
    : params_(params), rng_(rng) {
  params_.validate();
}

sim::SimTime FaultModel::time_to_failure() {
  util::require(params_.server_mtbf_s > 0.0,
                "FaultModel: time_to_failure with crashes disabled");
  return rng_.exponential(1.0 / params_.server_mtbf_s);
}

sim::SimTime FaultModel::repair_time() {
  return rng_.exponential(1.0 / params_.server_mttr_s);
}

bool FaultModel::migration_aborts() {
  return rng_.bernoulli(params_.migration_abort_prob);
}

bool FaultModel::boot_fails() { return rng_.bernoulli(params_.boot_failure_prob); }

bool FaultModel::invitation_lost() {
  return rng_.bernoulli(params_.invitation_loss_prob);
}

bool FaultModel::reply_lost() { return rng_.bernoulli(params_.reply_loss_prob); }

core::FaultHooks FaultModel::make_hooks() {
  core::FaultHooks hooks;
  // Zero-probability processes get no hook at all: the controller's guard
  // (`hook && hook(...)`) then skips both the call and the RNG draw, so
  // partial fault configurations stay insensitive to the disabled knobs.
  if (params_.invitation_loss_prob > 0.0) {
    hooks.drop_invitation = [this] { return invitation_lost(); };
  }
  if (params_.reply_loss_prob > 0.0) {
    hooks.drop_reply = [this] { return reply_lost(); };
  }
  if (params_.boot_failure_prob > 0.0) {
    hooks.boot_fails = [this](dc::ServerId) { return boot_fails(); };
  }
  if (params_.migration_abort_prob > 0.0) {
    hooks.migration_aborts = [this](dc::VmId) { return migration_aborts(); };
  }
  hooks.max_boot_retries = params_.max_boot_retries;
  // Repeated rounds only make sense against a lossy control plane; with
  // reliable messaging a second round would just duplicate traffic.
  hooks.max_invite_rounds =
      (params_.invitation_loss_prob > 0.0 || params_.reply_loss_prob > 0.0)
          ? params_.max_invite_rounds
          : 1;
  return hooks;
}

}  // namespace ecocloud::faults
