#pragma once

/// \file fault_model.hpp
/// \brief Seeded stochastic fault processes and scripted fault schedules.
///
/// The paper evaluates ecoCloud in a perfect data center: servers never
/// die, migrations never fail, messages always arrive. FaultParams and
/// FaultModel describe the imperfections this module injects on top:
///
///  * fail-stop server crashes as a Poisson process (exponential MTBF)
///    with exponential repair times (MTTR);
///  * mid-flight migration aborts, boot failures/hangs, and control-plane
///    message loss as independent Bernoulli trials;
///  * scripted faults ("kill servers 10-20 at t=3600") for reproducible
///    what-if experiments.
///
/// All draws come from the model's own Rng stream, split off the scenario
/// seed, so enabling faults never perturbs the workload or the
/// controller's decision randomness, and two runs with the same seed see
/// the same fault sequence.

#include <cstddef>
#include <string>
#include <vector>

#include "ecocloud/core/fault_hooks.hpp"
#include "ecocloud/dc/server.hpp"
#include "ecocloud/sim/time.hpp"
#include "ecocloud/util/rng.hpp"
#include "ecocloud/util/snapshot.hpp"

namespace ecocloud::faults {

/// One deterministic fault: crash (and optionally auto-repair) or repair
/// a contiguous range of servers at a fixed time.
struct ScriptedFault {
  enum class Kind { kCrash, kRepair };
  Kind kind = Kind::kCrash;
  sim::SimTime time = 0.0;
  dc::ServerId first = 0;
  dc::ServerId last = 0;  ///< Inclusive; equals \c first for a single server.
  /// For kCrash: repair the server this long after the crash; negative
  /// means "use a sampled MTTR repair time" (the stochastic default).
  sim::SimTime repair_after_s = -1.0;
};

/// Parse a fault schedule string. Entries are comma-separated (`;` starts
/// a comment in config files, so it cannot be the separator):
///
///     crash 10-20 3600 600, crash 5 7200, repair 10-20 10800
///
/// Each entry is `crash <server|first-last> <time_s> [repair_after_s]` or
/// `repair <server|first-last> <time_s>`. Throws std::invalid_argument on
/// malformed entries.
[[nodiscard]] std::vector<ScriptedFault> parse_fault_schedule(const std::string& text);

/// Render a schedule back to its parseable form (docs, round-trip tests).
[[nodiscard]] std::string to_string(const std::vector<ScriptedFault>& schedule);

/// All fault knobs. The all-zero default disables every process, and an
/// injector is only worth creating when enabled() is true — with no
/// injector the simulation is bit-identical to the fault-free build.
struct FaultParams {
  /// Mean time between fail-stop crashes of one powered server (active or
  /// booting); 0 disables random crashes.
  double server_mtbf_s = 0.0;
  /// Mean time to repair a crashed server (exponential).
  double server_mttr_s = 600.0;

  /// Probability that a started live migration aborts instead of landing.
  double migration_abort_prob = 0.0;
  /// Probability that a boot attempt hangs and is power-cycled.
  double boot_failure_prob = 0.0;
  /// Boot retries before the server is declared dead.
  std::size_t max_boot_retries = 2;

  /// Per-message loss probabilities for the invitation protocol.
  double invitation_loss_prob = 0.0;
  double reply_loss_prob = 0.0;
  /// Invitation rounds the manager repeats before concluding saturation
  /// (only meaningful under message loss; the paper's protocol is 1).
  std::size_t max_invite_rounds = 3;

  /// Fixed crash-to-first-redeploy delay: failure detection plus restarting
  /// the VM image on a new host. This is the downtime floor of every orphan.
  double redeploy_delay_s = 60.0;
  /// Exponential backoff of the orphan redeploy queue: first retry after
  /// redeploy_backoff_s, doubling up to redeploy_backoff_max_s, giving up
  /// after redeploy_max_attempts failed attempts.
  double redeploy_backoff_s = 30.0;
  double redeploy_backoff_max_s = 960.0;
  std::size_t redeploy_max_attempts = 10;

  /// Deterministic faults applied on top of the stochastic processes.
  std::vector<ScriptedFault> schedule;

  /// True when any fault process can fire.
  [[nodiscard]] bool enabled() const;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

/// Samples every fault decision from one dedicated Rng stream.
class FaultModel {
 public:
  FaultModel(FaultParams params, util::Rng rng);

  [[nodiscard]] const FaultParams& params() const { return params_; }
  [[nodiscard]] bool random_crashes() const { return params_.server_mtbf_s > 0.0; }

  /// Exponential time until the next crash of a powered server.
  [[nodiscard]] sim::SimTime time_to_failure();
  /// Exponential repair duration.
  [[nodiscard]] sim::SimTime repair_time();

  [[nodiscard]] bool migration_aborts();
  [[nodiscard]] bool boot_fails();
  [[nodiscard]] bool invitation_lost();
  [[nodiscard]] bool reply_lost();

  /// Controller-facing hooks bound to this model. Hooks for zero-probability
  /// processes are left empty so the corresponding paths stay dead code.
  /// The model must outlive the returned hooks.
  [[nodiscard]] core::FaultHooks make_hooks();

  /// Checkpoint surface: only the Rng stream is mutable state (params come
  /// from the scenario config).
  void save_state(util::BinWriter& w) const { util::save_rng(w, rng_); }
  void load_state(util::BinReader& r) { util::load_rng(r, rng_); }

 private:
  FaultParams params_;
  util::Rng rng_;
};

}  // namespace ecocloud::faults
