#pragma once

/// \file recovery.hpp
/// \brief Redeployment policy for VMs orphaned by server crashes.
///
/// When a server fail-stops, its VMs lose their placement. RedeployQueue
/// is the recovery policy: each orphan re-enters the normal assignment
/// procedure after the fixed detection-and-restart delay, then retries
/// with exponential backoff while the data center is saturated, giving up
/// after a bounded number of attempts. Crash-to-placement latency is
/// recorded per VM as downtime, which is what the availability metric
/// integrates.

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "ecocloud/core/controller.hpp"
#include "ecocloud/faults/fault_model.hpp"
#include "ecocloud/metrics/resilience.hpp"
#include "ecocloud/sim/simulator.hpp"

namespace ecocloud::faults {

class RedeployQueue {
 public:
  /// Snapshot-stable event kinds (tag_owner::kRedeploy). Append only.
  /// kEvRetry carries the orphaned VM id in `a`.
  enum EventKind : std::uint16_t { kEvRetry = 1 };

  /// Backoff knobs come from \p params; results go to \p stats. Both must
  /// outlive the queue.
  RedeployQueue(sim::Simulator& simulator, core::EcoCloudController& controller,
                const FaultParams& params, metrics::ResilienceStats& stats);

  /// Register a freshly orphaned VM. Safe to call from inside
  /// EcoCloudController::fail_server: the first deploy attempt is deferred
  /// through the simulator rather than run re-entrantly.
  void add(dc::VmId vm);

  /// The VM left the system while waiting; drop it and close its downtime.
  void forget(dc::VmId vm);

  /// Close the downtime of VMs still unplaced when the run ends.
  void finalize(sim::SimTime end);

  /// Orphans currently waiting for a slot.
  [[nodiscard]] std::size_t pending() const { return entries_.size(); }

  /// Total deploy attempts made on behalf of orphans (first tries and
  /// backoff retries alike).
  [[nodiscard]] std::uint64_t total_attempts() const { return total_attempts_; }

  /// Attempts that found the data center saturated and went to backoff.
  [[nodiscard]] std::uint64_t failed_attempts() const { return failed_attempts_; }

  /// True when \p vm is waiting in the queue (invariant audits).
  [[nodiscard]] bool tracks(dc::VmId vm) const {
    return entries_.find(vm) != entries_.end();
  }

  /// Checkpoint surface: pending entries and counters. Retry events are
  /// restored through the tagged calendar (rebuild_event/bind_event).
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);
  [[nodiscard]] sim::Simulator::Callback rebuild_event(const sim::EventTag& tag);
  void bind_event(const sim::EventTag& tag, sim::EventHandle handle);

 private:
  void attempt(dc::VmId vm);
  [[nodiscard]] sim::SimTime backoff(std::size_t failed_attempts) const;

  struct Entry {
    sim::SimTime orphaned_at = 0.0;
    std::size_t attempts = 0;
    sim::EventHandle retry;
  };

  sim::Simulator& sim_;
  core::EcoCloudController& controller_;
  double delay_s_;
  double backoff_s_;
  double backoff_max_s_;
  std::size_t max_attempts_;
  metrics::ResilienceStats& stats_;
  std::unordered_map<dc::VmId, Entry> entries_;
  std::uint64_t total_attempts_ = 0;
  std::uint64_t failed_attempts_ = 0;
};

}  // namespace ecocloud::faults
