#pragma once

/// \file fault_injector.hpp
/// \brief Drives the fault processes against a live simulation.
///
/// FaultInjector is the active half of the faults module. Construct it
/// next to an EcoCloudController, call start() before deploying VMs, and
/// it will:
///
///  * install the FaultModel's Bernoulli hooks (message loss, boot
///    failures, migration aborts) into the controller;
///  * install the RedeployQueue as the controller's orphan handler;
///  * schedule a crash/repair renewal process per server (exponential
///    MTBF/MTTR; the crash clock only ticks while a machine is powered);
///  * schedule every scripted fault from the params.
///
/// Everything observable lands in the owned ResilienceStats. Call
/// finalize() after the horizon to close the downtime of still-unplaced
/// orphans. When no injector is created (FaultParams::enabled() false)
/// the simulation runs the exact fault-free code paths.

#include "ecocloud/core/controller.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/faults/fault_model.hpp"
#include "ecocloud/faults/recovery.hpp"
#include "ecocloud/metrics/resilience.hpp"
#include "ecocloud/sim/simulator.hpp"

namespace ecocloud::faults {

class FaultInjector {
 public:
  /// Snapshot-stable event kinds (tag_owner::kFaults). Append only.
  /// kEvCrashDue/kEvRepair carry the server id in `a`; kEvRepair stores
  /// the resume-crash-clock flag in bit 0 of `b`; kEvScripted carries the
  /// index into FaultParams::schedule in `a`.
  enum EventKind : std::uint16_t { kEvCrashDue = 1, kEvRepair = 2, kEvScripted = 3 };

  /// \p rng should be a dedicated stream split off the experiment seed so
  /// fault draws never interleave with workload or controller draws.
  FaultInjector(sim::Simulator& simulator, dc::DataCenter& datacenter,
                core::EcoCloudController& controller, FaultParams params,
                util::Rng rng);

  /// Detaches the hooks and orphan handler from the controller.
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Install hooks and schedule all fault processes. Call once, before
  /// the first deploy_vm (message loss applies to initial placement too).
  void start();

  /// Close open orphan downtime at the end of the run.
  void finalize(sim::SimTime end);

  // --- Manual fault controls (tests, demos) --------------------------------

  /// Crash \p server now. \p repair_after_s >= 0 schedules the repair;
  /// negative leaves the server down until repair_server is called.
  void crash_server(dc::ServerId server, sim::SimTime repair_after_s = -1.0);

  /// Repair \p server now (it rejoins hibernated).
  void repair_server(dc::ServerId server);

  [[nodiscard]] const FaultParams& params() const { return model_.params(); }
  [[nodiscard]] metrics::ResilienceStats& stats() { return stats_; }
  [[nodiscard]] const metrics::ResilienceStats& stats() const { return stats_; }
  [[nodiscard]] RedeployQueue& redeploy() { return queue_; }
  [[nodiscard]] const RedeployQueue& redeploy() const { return queue_; }

  /// Availability over the run so far: served / (served + downtime), with
  /// served VM-seconds read from the data center's integrated accounting.
  [[nodiscard]] double availability() const {
    return stats_.availability(dc_.vm_seconds());
  }

  /// Checkpoint surface for the injector AND its redeploy queue (saved as
  /// one section). load_state re-installs the controller hooks when the
  /// snapshot was taken after start(); pending crash/repair/retry events
  /// come back through the tagged calendar.
  void save_state(util::BinWriter& w) const;
  void load_state(util::BinReader& r);
  [[nodiscard]] sim::Simulator::Callback rebuild_event(const sim::EventTag& tag);

 private:
  void install_hooks();
  void schedule_next_crash(dc::ServerId server);
  void on_crash_due(dc::ServerId server);
  void schedule_repair(dc::ServerId server, sim::SimTime delay_s,
                       bool resume_crash_clock);
  void on_repair_due(dc::ServerId server, bool resume_crash_clock);
  void apply_scripted(const ScriptedFault& fault);

  sim::Simulator& sim_;
  dc::DataCenter& dc_;
  core::EcoCloudController& controller_;
  FaultModel model_;
  core::FaultHooks hooks_;
  metrics::ResilienceStats stats_;
  RedeployQueue queue_;
  bool started_ = false;
};

}  // namespace ecocloud::faults
