#include "ecocloud/faults/fault_injector.hpp"

#include <stdexcept>
#include <string>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::faults {

FaultInjector::FaultInjector(sim::Simulator& simulator, dc::DataCenter& datacenter,
                             core::EcoCloudController& controller,
                             FaultParams params, util::Rng rng)
    : sim_(simulator),
      dc_(datacenter),
      controller_(controller),
      model_(std::move(params), rng),
      queue_(simulator, controller, model_.params(), stats_) {}

FaultInjector::~FaultInjector() {
  if (!started_) return;
  controller_.set_fault_hooks(nullptr);
  controller_.set_orphan_handler({});
}

void FaultInjector::install_hooks() {
  hooks_ = model_.make_hooks();
  controller_.set_fault_hooks(&hooks_);
  controller_.set_orphan_handler([this](dc::VmId vm) {
    stats_.record_orphan();
    queue_.add(vm);
  });

  // Departing orphans must leave the redeploy queue, or a later retry
  // would redeploy a VM that no longer exists.
  core::EcoCloudController::Events& events = controller_.events();
  events.on_vm_departed = [this, chained = std::move(events.on_vm_departed)](
                              sim::SimTime t, dc::VmId vm) {
    queue_.forget(vm);
    if (chained) chained(t, vm);
  };
}

void FaultInjector::start() {
  util::ensure(!started_, "FaultInjector::start called twice");
  started_ = true;

  install_hooks();

  if (model_.random_crashes()) {
    const std::size_t n = dc_.num_servers();
    for (std::size_t s = 0; s < n; ++s) {
      schedule_next_crash(static_cast<dc::ServerId>(s));
    }
  }
  const std::vector<ScriptedFault>& schedule = model_.params().schedule;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    sim_.schedule_at(
        schedule[i].time,
        sim::EventTag{sim::tag_owner::kFaults, kEvScripted,
                      static_cast<std::uint32_t>(i), 0},
        [this, fault = schedule[i]] { apply_scripted(fault); });
  }
}

void FaultInjector::finalize(sim::SimTime end) { queue_.finalize(end); }

void FaultInjector::schedule_next_crash(dc::ServerId server) {
  sim_.schedule_after(model_.time_to_failure(),
                      sim::EventTag{sim::tag_owner::kFaults, kEvCrashDue, server, 0},
                      [this, server] { on_crash_due(server); });
}

void FaultInjector::on_crash_due(dc::ServerId server) {
  const dc::Server& srv = dc_.server(server);
  if (!srv.active() && !srv.booting()) {
    // Hibernated machines cannot crash and failed machines already did
    // (scripted or manual); restart the memoryless clock either way.
    schedule_next_crash(server);
    return;
  }
  controller_.fail_server(server);
  stats_.record_crash();
  schedule_repair(server, model_.repair_time(), /*resume_crash_clock=*/true);
}

void FaultInjector::schedule_repair(dc::ServerId server, sim::SimTime delay_s,
                                    bool resume_crash_clock) {
  sim_.schedule_after(delay_s,
                      sim::EventTag{sim::tag_owner::kFaults, kEvRepair, server,
                                    resume_crash_clock ? 1u : 0u},
                      [this, server, resume_crash_clock] {
                        on_repair_due(server, resume_crash_clock);
                      });
}

void FaultInjector::on_repair_due(dc::ServerId server, bool resume_crash_clock) {
  // A scripted repair may have beaten this one; never repair twice.
  if (dc_.server(server).failed()) {
    controller_.repair_server(server);
    stats_.record_repair();
  }
  if (resume_crash_clock) schedule_next_crash(server);
}

void FaultInjector::apply_scripted(const ScriptedFault& fault) {
  for (dc::ServerId s = fault.first; s <= fault.last; ++s) {
    if (static_cast<std::size_t>(s) >= dc_.num_servers()) break;
    if (fault.kind == ScriptedFault::Kind::kCrash) {
      if (dc_.server(s).failed()) continue;
      controller_.fail_server(s);
      stats_.record_crash();
      const sim::SimTime delay =
          fault.repair_after_s >= 0.0 ? fault.repair_after_s : model_.repair_time();
      schedule_repair(s, delay, /*resume_crash_clock=*/false);
    } else {
      if (!dc_.server(s).failed()) continue;
      controller_.repair_server(s);
      stats_.record_repair();
    }
  }
}

void FaultInjector::crash_server(dc::ServerId server, sim::SimTime repair_after_s) {
  controller_.fail_server(server);
  stats_.record_crash();
  if (repair_after_s >= 0.0) {
    schedule_repair(server, repair_after_s, /*resume_crash_clock=*/false);
  }
}

void FaultInjector::repair_server(dc::ServerId server) {
  controller_.repair_server(server);
  stats_.record_repair();
}

void FaultInjector::save_state(util::BinWriter& w) const {
  w.boolean(started_);
  model_.save_state(w);
  stats_.save_state(w);
  queue_.save_state(w);
}

void FaultInjector::load_state(util::BinReader& r) {
  util::ensure(!started_, "FaultInjector: load_state after start");
  started_ = r.boolean();
  model_.load_state(r);
  stats_.load_state(r);
  queue_.load_state(r);
  // The snapshot was taken from a running injector, so the hooks were
  // live; pending crash/repair/retry events come back with the calendar.
  if (started_) install_hooks();
}

sim::Simulator::Callback FaultInjector::rebuild_event(const sim::EventTag& tag) {
  switch (tag.kind) {
    case kEvCrashDue: {
      const auto server = static_cast<dc::ServerId>(tag.a);
      return [this, server] { on_crash_due(server); };
    }
    case kEvRepair: {
      const auto server = static_cast<dc::ServerId>(tag.a);
      const bool resume = (tag.b & 1u) != 0;
      return [this, server, resume] { on_repair_due(server, resume); };
    }
    case kEvScripted: {
      const auto index = static_cast<std::size_t>(tag.a);
      const std::vector<ScriptedFault>& schedule = model_.params().schedule;
      if (index >= schedule.size()) {
        throw std::runtime_error(
            "FaultInjector: snapshot scripted-fault index out of range");
      }
      return [this, fault = schedule[index]] { apply_scripted(fault); };
    }
    default:
      throw std::runtime_error(
          "FaultInjector: snapshot contains an unknown event kind " +
          std::to_string(tag.kind));
  }
}

}  // namespace ecocloud::faults
