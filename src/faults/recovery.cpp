#include "ecocloud/faults/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "ecocloud/util/snapshot.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::faults {

RedeployQueue::RedeployQueue(sim::Simulator& simulator,
                             core::EcoCloudController& controller,
                             const FaultParams& params,
                             metrics::ResilienceStats& stats)
    : sim_(simulator),
      controller_(controller),
      delay_s_(params.redeploy_delay_s),
      backoff_s_(params.redeploy_backoff_s),
      backoff_max_s_(params.redeploy_backoff_max_s),
      max_attempts_(params.redeploy_max_attempts),
      stats_(stats) {}

void RedeployQueue::add(dc::VmId vm) {
  util::require(entries_.find(vm) == entries_.end(),
                "RedeployQueue: VM already queued");
  Entry entry;
  entry.orphaned_at = sim_.now();
  // The first attempt waits out the detection-and-restart delay; even at
  // zero delay it is deferred one event, because fail_server is still
  // unwinding the crash when the orphan handler runs and deploy_vm must
  // see the final post-crash state.
  entry.retry = sim_.schedule_after(
      delay_s_, sim::EventTag{sim::tag_owner::kRedeploy, kEvRetry, vm, 0},
      [this, vm] { attempt(vm); });
  entries_.emplace(vm, std::move(entry));
}

void RedeployQueue::forget(dc::VmId vm) {
  const auto it = entries_.find(vm);
  if (it == entries_.end()) return;
  stats_.record_open_downtime(sim_.now() - it->second.orphaned_at);
  it->second.retry.cancel();
  entries_.erase(it);
}

void RedeployQueue::finalize(sim::SimTime end) {
  for (auto& [vm, entry] : entries_) {
    stats_.record_open_downtime(end - entry.orphaned_at);
    entry.retry.cancel();
  }
  entries_.clear();
}

sim::SimTime RedeployQueue::backoff(std::size_t failed_attempts) const {
  // failed_attempts >= 1; the delay doubles per failure, capped.
  const double factor = std::pow(2.0, static_cast<double>(failed_attempts - 1));
  return std::min(backoff_s_ * factor, backoff_max_s_);
}

void RedeployQueue::attempt(dc::VmId vm) {
  const auto it = entries_.find(vm);
  util::ensure(it != entries_.end(), "RedeployQueue: attempt for unknown VM");
  Entry& entry = it->second;

  ++total_attempts_;
  if (controller_.deploy_vm(vm)) {
    // Placed or queued on a booting server — either way the VM is on its
    // way back; count crash-to-redeploy as downtime.
    stats_.record_redeploy(sim_.now() - entry.orphaned_at);
    entries_.erase(it);
    return;
  }

  ++entry.attempts;
  ++failed_attempts_;
  if (entry.attempts >= max_attempts_) {
    stats_.record_abandoned(sim_.now() - entry.orphaned_at);
    entries_.erase(it);
    return;
  }
  entry.retry = sim_.schedule_after(
      backoff(entry.attempts), sim::EventTag{sim::tag_owner::kRedeploy, kEvRetry, vm, 0},
      [this, vm] { attempt(vm); });
}

void RedeployQueue::save_state(util::BinWriter& w) const {
  w.u64(total_attempts_);
  w.u64(failed_attempts_);
  util::save_unordered(w, entries_,
                       [](util::BinWriter& out, dc::VmId vm, const Entry& entry) {
                         out.u64(vm);
                         out.f64(entry.orphaned_at);
                         out.u64(entry.attempts);
                         // entry.retry is rebuilt by bind_event at import.
                       });
}

void RedeployQueue::load_state(util::BinReader& r) {
  total_attempts_ = r.u64();
  failed_attempts_ = r.u64();
  util::load_unordered(r, entries_, [](util::BinReader& in) {
    const auto vm = static_cast<dc::VmId>(in.u64());
    Entry entry;
    entry.orphaned_at = in.f64();
    entry.attempts = static_cast<std::size_t>(in.u64());
    return std::make_pair(vm, std::move(entry));
  });
}

sim::Simulator::Callback RedeployQueue::rebuild_event(const sim::EventTag& tag) {
  if (tag.kind == kEvRetry) {
    const auto vm = static_cast<dc::VmId>(tag.a);
    return [this, vm] { attempt(vm); };
  }
  throw std::runtime_error("RedeployQueue: snapshot contains an unknown event kind " +
                           std::to_string(tag.kind));
}

void RedeployQueue::bind_event(const sim::EventTag& tag, sim::EventHandle handle) {
  if (tag.kind != kEvRetry) return;
  const auto it = entries_.find(static_cast<dc::VmId>(tag.a));
  util::require(it != entries_.end(),
                "RedeployQueue: restored retry event has no queue entry");
  it->second.retry = handle;
}

}  // namespace ecocloud::faults
