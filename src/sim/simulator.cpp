#include "ecocloud/sim/simulator.hpp"

#include <algorithm>

#include "ecocloud/util/phase_profiler.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::sim {

bool EventHandle::pending() const {
  if (!sim_) return false;
  const Simulator::Record& rec = sim_->record(slot_);
  return rec.generation == generation_ && !rec.cancelled && !rec.fired;
}

bool EventHandle::cancel() {
  if (!pending()) {
    if (sim_) ++sim_->stats_.stale_cancels;
    return false;
  }
  // A pending record always has at least one queued entry, so the lazy
  // drain is guaranteed to release the slot eventually.
  sim_->record(slot_).cancelled = true;
  ++sim_->stats_.cancels;
  return true;
}

std::uint32_t Simulator::acquire_slot() {
  if (free_slots_.empty()) {
    util::ensure(allocated_slots_ < kMaxSlots,
                 "Simulator: too many concurrent events");
    if ((allocated_slots_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<Record[]>(kChunkSize));
    }
    // The free list is empty, so every allocated slot is live and the new
    // occupancy is a fresh high-water mark.
    stats_.slab_high_water = allocated_slots_ + 1;
    return allocated_slots_++;
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void Simulator::release_slot(std::uint32_t slot) {
  Record& rec = record(slot);
  ++rec.generation;   // outstanding handles go stale
  rec.fn = nullptr;   // recycle the closure's state now, not at reuse
  rec.period = 0.0;
  rec.tag = EventTag{};
  rec.cancelled = false;
  rec.fired = false;
  free_slots_.push_back(slot);
}

void Simulator::sift_up(std::size_t i) {
  const QueueEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void Simulator::sift_down(std::size_t i) {
  const QueueEntry entry = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

void Simulator::push(SimTime at, std::uint32_t slot) {
  ++record(slot).queue_refs;
  heap_.push_back(QueueEntry{at, (next_seq_++ << kSlotBits) | slot});
  sift_up(heap_.size() - 1);
}

Simulator::QueueEntry Simulator::pop_top() {
  const QueueEntry entry = heap_.front();
  const QueueEntry back = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = back;
    sift_down(0);
  }
  return entry;
}

void Simulator::drop_top() {
  const QueueEntry entry = pop_top();
  const std::uint32_t slot = entry_slot(entry);
  Record& rec = record(slot);
  ++stats_.dropped_cancelled;
  if (--rec.queue_refs == 0 && slot != executing_slot_) {
    release_slot(slot);
  }
}

Simulator::PeriodRing* Simulator::ring_for(SimTime period) {
  for (PeriodRing& ring : rings_) {
    if (ring.period == period) return &ring;
  }
  if (rings_.size() >= kMaxRings) return nullptr;
  rings_.push_back(PeriodRing{});
  rings_.back().period = period;
  return &rings_.back();
}

void Simulator::ring_push(PeriodRing& ring, QueueEntry entry) {
  if (ring.count == ring.buf.size()) {
    // Grow to the next power of two, unwrapping so the front lands at 0.
    std::vector<QueueEntry> grown(ring.buf.empty() ? 16 : 2 * ring.buf.size());
    for (std::size_t i = 0; i < ring.count; ++i) {
      grown[i] = ring.buf[(ring.head + i) & (ring.buf.size() - 1)];
    }
    ring.buf = std::move(grown);
    ring.head = 0;
  }
  ring.buf[(ring.head + ring.count) & (ring.buf.size() - 1)] = entry;
  ++ring.count;
}

Simulator::QueueEntry Simulator::ring_pop(PeriodRing& ring) {
  const QueueEntry entry = ring.buf[ring.head];
  ring.head = (ring.head + 1) & (ring.buf.size() - 1);
  --ring.count;
  return entry;
}

void Simulator::ring_drop_front(PeriodRing& ring) {
  const QueueEntry entry = ring_pop(ring);
  const std::uint32_t slot = entry_slot(entry);
  Record& rec = record(slot);
  ++stats_.dropped_cancelled;
  if (--rec.queue_refs == 0 && slot != executing_slot_) {
    release_slot(slot);
  }
}

int Simulator::select_next() {
  while (!heap_.empty() && record(entry_slot(heap_.front())).cancelled) {
    drop_top();  // lazily drop cancelled heap entries
  }
  int best = kNoSource;
  const QueueEntry* best_entry = nullptr;
  if (!heap_.empty()) {
    best = kFromHeap;
    best_entry = &heap_.front();
  }
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    PeriodRing& ring = rings_[r];
    while (ring.count > 0 && record(entry_slot(ring.front())).cancelled) {
      ring_drop_front(ring);
    }
    if (ring.count > 0 &&
        (!best_entry || earlier(ring.front(), *best_entry))) {
      best = static_cast<int>(r);
      best_entry = &ring.front();
    }
  }
  return best;
}

void Simulator::execute_next(int source) {
  const bool from_heap = source == kFromHeap;
  const QueueEntry entry =
      from_heap ? heap_.front() : rings_[static_cast<std::size_t>(source)].front();
  const std::uint32_t slot = entry_slot(entry);
  Record& rec = record(slot);
  now_ = entry.time;
  {
    // The scope covers the calendar bookkeeping only — the callback body
    // is attributed to its own phase (monitor sweep, trace advance, ...),
    // never here. Keeping the callback out keeps calendar_ops' per-call
    // durations homogeneous, which is what makes the stride-scaled
    // estimate trustworthy: one multi-second trace tick sampled inside a
    // per-event span would be extrapolated by the whole stride.
    util::ScopedPhase profile(util::Phase::kCalendarOps);
    rec.fired = true;
    ++executed_;
    ++(from_heap ? stats_.fired_from_heap : stats_.fired_from_ring);
    ++(rec.period > 0.0 ? stats_.fired_periodic : stats_.fired_one_shot);
    if (rec.period > 0.0) {
      // Re-arm the chain BEFORE invoking the callback so the handle stays
      // pending during it and cancel() from inside stops the chain (the
      // already-queued next occurrence is lazily dropped). The queue_refs
      // -1/+1 of pop + re-arm cancels out.
      rec.fired = false;
      const QueueEntry next{now_ + rec.period, (next_seq_++ << kSlotBits) | slot};
      if (!from_heap) {
        PeriodRing& ring = rings_[static_cast<std::size_t>(source)];
        ring_pop(ring);
        ring_push(ring, next);
      } else if (PeriodRing* ring = ring_for(rec.period)) {
        // First occurrence fired from the heap (phase offsets are not
        // monotone); every later one cycles through the period's ring.
        pop_top();
        ring_push(*ring, next);
      } else {
        heap_.front() = next;  // re-arm in place: one sift, not pop + push
        sift_down(0);
      }
    } else {
      --rec.queue_refs;
      if (from_heap) {
        pop_top();
      } else {
        ring_pop(rings_[static_cast<std::size_t>(source)]);
      }
    }
  }
  const std::uint32_t previous = executing_slot_;
  executing_slot_ = slot;
  // Chunked storage keeps &rec stable even when the callback schedules new
  // events and the slab grows.
  rec.fn();
  executing_slot_ = previous;
  // Release once the last queued entry is gone — unless an outer frame is
  // still executing this very record (re-entrant run() from the callback).
  if (rec.queue_refs == 0 && slot != executing_slot_) {
    release_slot(slot);
  }
}

std::size_t Simulator::pending_events() const {
  std::size_t total = heap_.size();
  for (const PeriodRing& ring : rings_) total += ring.count;
  return total;
}

EventHandle Simulator::schedule_at(SimTime at, Callback fn) {
  util::require(at >= now_, "Simulator::schedule_at: cannot schedule in the past");
  util::require(static_cast<bool>(fn), "Simulator::schedule_at: empty callback");
  const std::uint32_t slot = acquire_slot();
  Record& rec = record(slot);
  rec.fn = std::move(fn);
  push(at, slot);
  ++stats_.scheduled_one_shot;
  return EventHandle(this, slot, rec.generation);
}

EventHandle Simulator::schedule_after(SimTime delay, Callback fn) {
  util::require(delay >= 0.0, "Simulator::schedule_after: delay must be >= 0");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_periodic(SimTime period, Callback fn, SimTime phase) {
  util::require(period > 0.0, "Simulator::schedule_periodic: period must be > 0");
  util::require(phase >= 0.0, "Simulator::schedule_periodic: phase must be >= 0");
  util::require(static_cast<bool>(fn), "Simulator::schedule_periodic: empty callback");
  const std::uint32_t slot = acquire_slot();
  Record& rec = record(slot);
  rec.fn = std::move(fn);
  rec.period = period;
  push(now_ + phase, slot);
  ++stats_.scheduled_periodic;
  return EventHandle(this, slot, rec.generation);
}

EventHandle Simulator::schedule_at(SimTime at, const EventTag& tag, Callback fn) {
  const EventHandle handle = schedule_at(at, std::move(fn));
  record(handle.slot_).tag = tag;
  return handle;
}

EventHandle Simulator::schedule_after(SimTime delay, const EventTag& tag,
                                      Callback fn) {
  const EventHandle handle = schedule_after(delay, std::move(fn));
  record(handle.slot_).tag = tag;
  return handle;
}

EventHandle Simulator::schedule_periodic(SimTime period, const EventTag& tag,
                                         Callback fn, SimTime phase) {
  const EventHandle handle = schedule_periodic(period, std::move(fn), phase);
  record(handle.slot_).tag = tag;
  return handle;
}

EngineCheckpoint Simulator::export_calendar() const {
  EngineCheckpoint ck;
  ck.now = now_;
  ck.next_seq = next_seq_;
  ck.executed = executed_;
  ck.stats = stats_;
  ck.ring_periods.reserve(rings_.size());
  for (const PeriodRing& ring : rings_) ck.ring_periods.push_back(ring.period);
  ck.entries.reserve(pending_events());
  const auto append = [this, &ck](const QueueEntry& e, std::int32_t source) {
    const Record& rec = record(entry_slot(e));
    CalendarEntry entry;
    entry.time = e.time;
    entry.seq = e.key >> kSlotBits;
    entry.period = rec.period;
    entry.source = source;
    entry.cancelled = rec.cancelled;
    entry.tag = rec.tag;
    ck.entries.push_back(entry);
  };
  for (const QueueEntry& e : heap_) append(e, kFromHeap);
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const PeriodRing& ring = rings_[r];
    for (std::size_t i = 0; i < ring.count; ++i) {
      append(ring.buf[(ring.head + i) & (ring.buf.size() - 1)],
             static_cast<std::int32_t>(r));
    }
  }
  return ck;
}

void Simulator::import_calendar(const EngineCheckpoint& ck,
                                const RebuildFn& rebuild, const BindFn& bind) {
  util::require(next_seq_ == 0 && executed_ == 0 && pending_events() == 0 &&
                    rings_.empty(),
                "Simulator::import_calendar: target simulator is not fresh");
  util::require(static_cast<bool>(rebuild),
                "Simulator::import_calendar: rebuild function required");
  util::require(ck.ring_periods.size() <= kMaxRings,
                "Simulator::import_calendar: snapshot has too many rings");
  for (SimTime period : ck.ring_periods) {
    rings_.push_back(PeriodRing{});
    rings_.back().period = period;
  }
  for (const CalendarEntry& entry : ck.entries) {
    util::require(entry.seq < ck.next_seq,
                  "Simulator::import_calendar: entry seq beyond next_seq");
    const std::uint32_t slot = acquire_slot();
    Record& rec = record(slot);
    rec.period = entry.period;
    rec.tag = entry.tag;
    rec.cancelled = entry.cancelled;
    rec.queue_refs = 1;
    if (!entry.cancelled) {
      rec.fn = rebuild(entry.tag);
      util::require(static_cast<bool>(rec.fn),
                    "Simulator::import_calendar: rebuild returned an empty "
                    "callback");
    }
    const QueueEntry qe{entry.time, (entry.seq << kSlotBits) | slot};
    if (entry.source == kFromHeap) {
      heap_.push_back(qe);
      sift_up(heap_.size() - 1);
    } else {
      util::require(entry.source >= 0 &&
                        static_cast<std::size_t>(entry.source) < rings_.size(),
                    "Simulator::import_calendar: entry references an unknown "
                    "ring");
      PeriodRing& ring = rings_[static_cast<std::size_t>(entry.source)];
      util::require(ring.period == entry.period,
                    "Simulator::import_calendar: ring period mismatch");
      ring_push(ring, qe);
    }
    if (!entry.cancelled && bind) {
      bind(entry.tag, EventHandle(this, slot, rec.generation));
    }
  }
  // Counters restored wholesale (acquire_slot above touched slab_high_water;
  // the saved stats override it with the true lifetime value).
  now_ = ck.now;
  next_seq_ = ck.next_seq;
  executed_ = ck.executed;
  stats_ = ck.stats;
}

std::string Simulator::check_integrity() const {
  std::vector<std::uint32_t> refs(allocated_slots_, 0);
  const auto check_entry = [this, &refs](const QueueEntry& e,
                                         std::string& err) {
    const std::uint32_t slot = entry_slot(e);
    if (slot >= allocated_slots_) {
      err = "queued entry references unallocated slot " + std::to_string(slot);
      return false;
    }
    ++refs[slot];
    if (e.time < now_) {
      err = "queued entry at t=" + std::to_string(e.time) +
            " is in the past (now=" + std::to_string(now_) + ")";
      return false;
    }
    return true;
  };
  std::string err;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (!check_entry(heap_[i], err)) return err;
    if (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (earlier(heap_[i], heap_[parent])) {
        return "heap property violated at index " + std::to_string(i);
      }
    }
  }
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const PeriodRing& ring = rings_[r];
    const QueueEntry* prev = nullptr;
    for (std::size_t i = 0; i < ring.count; ++i) {
      const QueueEntry& e = ring.buf[(ring.head + i) & (ring.buf.size() - 1)];
      if (!check_entry(e, err)) return err;
      if (record(entry_slot(e)).period != ring.period) {
        return "ring " + std::to_string(r) +
               " holds an entry whose record has a different period";
      }
      if (prev != nullptr && earlier(e, *prev)) {
        return "ring " + std::to_string(r) + " is not sorted at position " +
               std::to_string(i);
      }
      prev = &e;
    }
  }
  std::vector<bool> is_free(allocated_slots_, false);
  for (std::uint32_t slot : free_slots_) {
    if (slot >= allocated_slots_) {
      return "free list references unallocated slot " + std::to_string(slot);
    }
    if (is_free[slot]) {
      return "slot " + std::to_string(slot) + " appears twice in the free list";
    }
    is_free[slot] = true;
  }
  for (std::uint32_t slot = 0; slot < allocated_slots_; ++slot) {
    const Record& rec = record(slot);
    if (is_free[slot]) {
      if (refs[slot] != 0) {
        return "free slot " + std::to_string(slot) + " has queued entries";
      }
      continue;
    }
    if (rec.queue_refs != refs[slot]) {
      return "slot " + std::to_string(slot) + " queue_refs=" +
             std::to_string(rec.queue_refs) + " but " +
             std::to_string(refs[slot]) + " queued entries";
    }
    if (refs[slot] == 0 && slot != executing_slot_) {
      return "live slot " + std::to_string(slot) +
             " has no queued entries and is not executing";
    }
  }
  return {};
}

bool Simulator::step() {
  const int source = select_next();
  if (source == kNoSource) return false;
  execute_next(source);
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime end) {
  util::require(end >= now_, "Simulator::run_until: end precedes current time");
  for (;;) {
    // select_next already dropped every cancelled front, so the time check
    // never sends a dead entry back through another selection round.
    const int source = select_next();
    if (source == kNoSource) break;
    const QueueEntry& next = source == kFromHeap
                                 ? heap_.front()
                                 : rings_[static_cast<std::size_t>(source)].front();
    if (next.time > end) break;
    execute_next(source);
  }
  now_ = end;
}

}  // namespace ecocloud::sim
