#include "ecocloud/sim/simulator.hpp"

#include "ecocloud/util/validation.hpp"

namespace ecocloud::sim {

EventHandle::EventHandle(std::shared_ptr<Record> record)
    : record_(std::move(record)) {}

bool EventHandle::pending() const {
  return record_ && !record_->cancelled && !record_->fired;
}

bool EventHandle::cancel() {
  if (!pending()) return false;
  record_->cancelled = true;
  return true;
}

bool Simulator::Compare::operator()(const QueueEntry& a, const QueueEntry& b) const {
  if (a.time != b.time) return a.time > b.time;  // min-heap on time
  return a.seq > b.seq;                          // FIFO among simultaneous
}

void Simulator::push(SimTime at, std::shared_ptr<EventHandle::Record> record) {
  queue_.push(QueueEntry{at, next_seq_++, std::move(record)});
  ++live_events_;
}

EventHandle Simulator::schedule_at(SimTime at, Callback fn) {
  util::require(at >= now_, "Simulator::schedule_at: cannot schedule in the past");
  util::require(static_cast<bool>(fn), "Simulator::schedule_at: empty callback");
  auto record = std::make_shared<EventHandle::Record>();
  record->fn = std::move(fn);
  push(at, record);
  return EventHandle(std::move(record));
}

EventHandle Simulator::schedule_after(SimTime delay, Callback fn) {
  util::require(delay >= 0.0, "Simulator::schedule_after: delay must be >= 0");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_periodic(SimTime period, Callback fn, SimTime phase) {
  util::require(period > 0.0, "Simulator::schedule_periodic: period must be > 0");
  util::require(phase >= 0.0, "Simulator::schedule_periodic: phase must be >= 0");
  util::require(static_cast<bool>(fn), "Simulator::schedule_periodic: empty callback");

  auto record = std::make_shared<EventHandle::Record>();
  // The periodic callback reschedules its own record; the single handle
  // cancels the whole chain because all occurrences share the record.
  // Re-arm BEFORE invoking the user callback so the handle stays pending
  // during the callback and cancel() from inside it stops the chain (the
  // already-pushed next occurrence is lazily dropped).
  record->fn = [this, record_weak = std::weak_ptr<EventHandle::Record>(record),
                period, user_fn = std::move(fn)]() {
    if (auto rec = record_weak.lock(); rec && !rec->cancelled) {
      rec->fired = false;  // re-arm the shared record
      push(now_ + period, rec);
    }
    user_fn();
  };
  push(now_ + phase, record);
  return EventHandle(std::move(record));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    --live_events_;
    if (entry.record->cancelled) continue;  // lazily drop cancelled entries
    now_ = entry.time;
    entry.record->fired = true;
    ++executed_;
    entry.record->fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime end) {
  util::require(end >= now_, "Simulator::run_until: end precedes current time");
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    if (top.record->cancelled) {
      queue_.pop();
      --live_events_;
      continue;
    }
    if (top.time > end) break;
    step();
  }
  now_ = end;
}

}  // namespace ecocloud::sim
