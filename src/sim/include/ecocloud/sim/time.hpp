#pragma once

/// \file time.hpp
/// \brief Simulation time conventions and unit helpers.
///
/// Simulation time is a double measured in seconds from the start of the
/// experiment. These helpers keep unit conversions explicit at call sites.

namespace ecocloud::sim {

/// Simulation timestamp in seconds.
using SimTime = double;

inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;
inline constexpr SimTime kDay = 24.0 * kHour;

/// Convert seconds to hours (for report axes, which the paper uses).
[[nodiscard]] constexpr double to_hours(SimTime t) { return t / kHour; }

/// Convert hours to seconds.
[[nodiscard]] constexpr SimTime hours(double h) { return h * kHour; }

/// Convert minutes to seconds.
[[nodiscard]] constexpr SimTime minutes(double m) { return m * kMinute; }

}  // namespace ecocloud::sim
