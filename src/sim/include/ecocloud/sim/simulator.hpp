#pragma once

/// \file simulator.hpp
/// \brief Deterministic discrete-event simulation kernel.
///
/// The kernel is a classic event-calendar design: callbacks scheduled at
/// future timestamps, executed in (time, insertion-sequence) order so that
/// simultaneous events fire deterministically in scheduling order. Events
/// can be cancelled through their handle; cancelled entries are dropped
/// lazily when they reach the front of their queue.
///
/// Event records live in a slab: a chunked arena of reusable slots with a
/// free list, addressed by {slot, generation}. Scheduling an event costs no
/// heap allocation once the slab has warmed up (the callback's own closure
/// state lives inside the record and is recycled with it). The generation
/// counter makes stale handles safe: a slot reused for a new event bumps
/// its generation, and handles carrying the old generation report dead
/// instead of touching the new occupant.
///
/// The calendar itself is two-tier. One-shot events and the first
/// occurrence of each periodic chain live in a 4-ary min-heap of 16-byte
/// POD entries. Periodic re-arms — the overwhelming majority of events in
/// a steady-state run — bypass the heap entirely: all chains sharing a
/// period cycle through a FIFO ring that is sorted by construction
/// (re-arms happen at monotonically increasing now + period), so the
/// dominant pop/push pair is O(1) instead of O(log n). The next event is
/// the (time, seq) minimum over the heap top and the ring fronts; since
/// that order is total, the pop sequence is bit-identical to a single
/// global queue's.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ecocloud/sim/event_tag.hpp"
#include "ecocloud/sim/time.hpp"

namespace ecocloud::sim {

class Simulator;

/// Handle to a scheduled event; allows cancellation and liveness queries.
/// Handles are cheap to copy and remain valid after the event fires (they
/// simply report inactive). A handle must not outlive its Simulator.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

  /// Cancel the event if still pending; returns true if it was cancelled.
  bool cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// Always-on introspection counters of the event engine. Maintained as
/// plain integer increments on paths that already touch the same cache
/// lines, so the cost is unmeasurable against the callback dispatch; the
/// obs layer exports them, and they answer the questions the calendar
/// design raises: is the O(1) ring actually taking the dominant pops, how
/// deep does the slab get, how much lazy-cancellation garbage flows
/// through.
struct EngineStats {
  std::uint64_t scheduled_one_shot = 0;  ///< schedule_at/_after calls.
  std::uint64_t scheduled_periodic = 0;  ///< schedule_periodic calls.
  std::uint64_t fired_from_heap = 0;     ///< Events dispatched off the heap.
  std::uint64_t fired_from_ring = 0;     ///< Events dispatched off a ring.
  std::uint64_t fired_one_shot = 0;      ///< Non-periodic events executed.
  std::uint64_t fired_periodic = 0;      ///< Periodic occurrences executed.
  std::uint64_t cancels = 0;             ///< Successful EventHandle::cancel.
  std::uint64_t stale_cancels = 0;       ///< cancel() on dead/fired handles.
  std::uint64_t dropped_cancelled = 0;   ///< Entries lazily dropped at a front.
  std::uint32_t slab_high_water = 0;     ///< Max concurrently live records.
};

/// Single queued occurrence exported from / imported into the calendar.
/// `source` is the queue holding it (-1 = heap, otherwise a ring index);
/// preserving (time, seq) plus the FIFO position inside each ring is what
/// makes the restored pop order bit-identical to the saved run's.
struct CalendarEntry {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
  SimTime period = 0.0;     ///< > 0 marks a periodic chain.
  std::int32_t source = -1;
  bool cancelled = false;   ///< Tombstone: restored as an inert entry.
  EventTag tag;
};

/// Complete serializable engine state: the clock, counters, the period of
/// every ring in creation order (ring assignment is first-come), and every
/// queued entry.
struct EngineCheckpoint {
  SimTime now = 0.0;
  std::uint64_t next_seq = 0;
  std::uint64_t executed = 0;
  EngineStats stats;
  std::vector<SimTime> ring_periods;
  std::vector<CalendarEntry> entries;
};

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;
  /// Builds the callback for a restored event from its tag.
  using RebuildFn = std::function<Callback(const EventTag&)>;
  /// Hands the restored event's handle back to its owner (boot/migration
  /// completions keep their handles for cancellation).
  using BindFn = std::function<void(const EventTag&, EventHandle)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds). Starts at 0.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule \p fn at absolute time \p at (must be >= now()).
  EventHandle schedule_at(SimTime at, Callback fn);

  /// Schedule \p fn after a non-negative \p delay from now().
  EventHandle schedule_after(SimTime delay, Callback fn);

  /// Schedule \p fn every \p period seconds starting at now() + phase.
  /// The returned handle cancels the *whole* periodic chain.
  EventHandle schedule_periodic(SimTime period, Callback fn, SimTime phase = 0.0);

  /// Tagged variants: identical scheduling semantics, but the event carries
  /// an EventTag so it survives checkpoint/restore (see event_tag.hpp).
  EventHandle schedule_at(SimTime at, const EventTag& tag, Callback fn);
  EventHandle schedule_after(SimTime delay, const EventTag& tag, Callback fn);
  EventHandle schedule_periodic(SimTime period, const EventTag& tag, Callback fn,
                                SimTime phase = 0.0);

  /// Export the full calendar for a snapshot. Heap entries come first (array
  /// order), then each ring front-to-back.
  [[nodiscard]] EngineCheckpoint export_calendar() const;

  /// Rebuild the calendar from a snapshot into a *fresh* simulator (nothing
  /// scheduled or executed yet; throws otherwise). \p rebuild is invoked for
  /// every live entry's tag and must return a non-empty callback; \p bind
  /// (optional) receives each live entry's new handle. Cancelled entries are
  /// restored as inert tombstones so the lazy-drop accounting of the resumed
  /// run matches the uninterrupted one.
  void import_calendar(const EngineCheckpoint& ck, const RebuildFn& rebuild,
                       const BindFn& bind = {});

  /// Structural self-check of heap order, ring monotonicity, slab reference
  /// counts, and free-list integrity. Returns an empty string when
  /// consistent, else a description of the first violation found.
  [[nodiscard]] std::string check_integrity() const;

  /// Execute the next pending event; returns false if none remain.
  bool step();

  /// Run until the event calendar is empty.
  void run();

  /// Run all events with time <= \p end, then advance the clock to \p end.
  void run_until(SimTime end);

  /// Number of queued event entries. Cancellation is lazy, so entries whose
  /// event was cancelled stay counted until the calendar pops them.
  [[nodiscard]] std::size_t pending_events() const;

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Engine introspection counters (see EngineStats).
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

 private:
  friend class EventHandle;

  /// Slab-resident event record, reused through the free list. The
  /// generation distinguishes incarnations of the same slot so stale
  /// handles read as dead rather than aliasing a later event.
  struct Record {
    Callback fn;
    SimTime period = 0.0;  ///< > 0 marks a periodic chain.
    EventTag tag;          ///< Serializable identity (owner 0 = untagged).
    std::uint32_t generation = 0;
    std::uint32_t queue_refs = 0;  ///< Heap entries referencing this slot.
    bool cancelled = false;
    bool fired = false;
  };

  /// Slot bits packed into the low end of QueueEntry::key; the sequence
  /// number lives in the remaining high 39 bits. The planet-scale rows put
  /// ~16M events in flight at once (one pending deploy per VM plus one
  /// monitor per server), so the slot space must clear that; 2^39 total
  /// events still exceeds the largest scenario by three orders of
  /// magnitude. acquire_slot() enforces the concurrency bound. The split
  /// never affects results: entries compare by (time, seq) and seq is
  /// unique, so the slot bits never decide an ordering.
  static constexpr unsigned kSlotBits = 25;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;

  /// 16-byte POD heap entry, so the four children of a heap node span a
  /// single cache line. `key` is (seq << kSlotBits) | slot: comparing keys
  /// compares sequence numbers (seq is unique, so the slot bits never
  /// decide), and the slot rides along for free.
  struct QueueEntry {
    SimTime time;
    std::uint64_t key;
  };

  [[nodiscard]] static std::uint32_t entry_slot(const QueueEntry& e) {
    return static_cast<std::uint32_t>(e.key) & (kMaxSlots - 1);
  }

  /// True when \p a fires strictly before \p b: (time, seq) lexicographic,
  /// so simultaneous events keep FIFO order. The order is total (seq is
  /// unique), which is what lets the heap layout change freely — the pop
  /// sequence is pinned by the order alone, not by heap internals.
  [[nodiscard]] static bool earlier(const QueueEntry& a, const QueueEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  static constexpr std::uint32_t kChunkShift = 8;  // 256 records per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kNoSlot = ~static_cast<std::uint32_t>(0);

  [[nodiscard]] Record& record(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  [[nodiscard]] const Record& record(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  /// Take a slot from the free list (growing the slab if empty) and reset
  /// its flags. The generation is left as bumped by the last release.
  std::uint32_t acquire_slot();

  /// Return a slot to the free list, bumping its generation so outstanding
  /// handles go stale, and releasing the callback's closure state.
  void release_slot(std::uint32_t slot);

  /// Sorted FIFO ring of re-armed occurrences sharing one period. Re-arms
  /// happen at execution time with value now + period, and now is monotone,
  /// so pushes arrive in nondecreasing (time, seq) order — the ring is
  /// sorted by construction and pop/push are O(1). Since almost every event
  /// in a steady-state run is a periodic monitor re-arm, routing those
  /// around the heap removes the O(log n) sift from the dominant path;
  /// the heap keeps one-shots and first occurrences (whose phase offsets
  /// are not monotone).
  struct PeriodRing {
    SimTime period = 0.0;
    std::vector<QueueEntry> buf;  ///< Power-of-two capacity.
    std::size_t head = 0;         ///< Masked index of the front entry.
    std::size_t count = 0;

    [[nodiscard]] const QueueEntry& front() const { return buf[head]; }
  };

  /// Distinct periods served by rings; later periods fall back to the heap
  /// (correct, just without the O(1) path). Scenarios use 2-4 periods.
  static constexpr std::size_t kMaxRings = 8;

  /// Ring serving \p period, created on first use; nullptr once kMaxRings
  /// distinct periods exist.
  PeriodRing* ring_for(SimTime period);
  void ring_push(PeriodRing& ring, QueueEntry entry);
  QueueEntry ring_pop(PeriodRing& ring);
  /// Drop a cancelled ring front, releasing the record when its last
  /// queued entry drains.
  void ring_drop_front(PeriodRing& ring);

  /// Index of the source holding the next live event: kFromHeap for the
  /// heap, a ring index otherwise, kNoSource when everything is drained.
  /// Cancelled front entries of every source are dropped on the way.
  static constexpr int kNoSource = -2;
  static constexpr int kFromHeap = -1;
  int select_next();
  /// Fire the front event of \p source (select_next's return, not kNoSource).
  void execute_next(int source);

  /// Restore the heap property after heap_[i] shrank (new entry) or grew
  /// (top replacement). The calendar is a 4-ary implicit heap: half the
  /// levels of a binary heap and all four children on one cache line,
  /// which matters because the pop-path sift is the hottest heap loop.
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  /// Queue an entry for \p slot at time \p at.
  void push(SimTime at, std::uint32_t slot);

  /// Pop the heap top (the heap must not be empty).
  QueueEntry pop_top();

  /// Pop a heap-top entry whose record was cancelled, releasing the record
  /// once its last entry drains.
  void drop_top();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  EngineStats stats_;
  std::vector<QueueEntry> heap_;
  std::vector<PeriodRing> rings_;
  std::vector<std::unique_ptr<Record[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t allocated_slots_ = 0;
  /// Slot whose callback is on the stack right now; its release is deferred
  /// to execute_top's epilogue (guards re-entrant step()/run() calls).
  std::uint32_t executing_slot_ = kNoSlot;
};

}  // namespace ecocloud::sim
