#pragma once

/// \file simulator.hpp
/// \brief Deterministic discrete-event simulation kernel.
///
/// The kernel is a classic event-calendar design: callbacks scheduled at
/// future timestamps, executed in (time, insertion-sequence) order so that
/// simultaneous events fire deterministically in scheduling order. Events
/// can be cancelled through their handle; cancelled entries are dropped
/// lazily when they reach the top of the heap.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "ecocloud/sim/time.hpp"

namespace ecocloud::sim {

class Simulator;

/// Handle to a scheduled event; allows cancellation and liveness queries.
/// Handles are cheap to copy and remain valid after the event fires (they
/// simply report inactive).
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

  /// Cancel the event if still pending; returns true if it was cancelled.
  bool cancel();

 private:
  friend class Simulator;
  struct Record;
  explicit EventHandle(std::shared_ptr<Record> record);
  std::shared_ptr<Record> record_;
};

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (seconds). Starts at 0.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule \p fn at absolute time \p at (must be >= now()).
  EventHandle schedule_at(SimTime at, Callback fn);

  /// Schedule \p fn after a non-negative \p delay from now().
  EventHandle schedule_after(SimTime delay, Callback fn);

  /// Schedule \p fn every \p period seconds starting at now() + phase.
  /// The returned handle cancels the *whole* periodic chain.
  EventHandle schedule_periodic(SimTime period, Callback fn, SimTime phase = 0.0);

  /// Execute the next pending event; returns false if none remain.
  bool step();

  /// Run until the event calendar is empty.
  void run();

  /// Run all events with time <= \p end, then advance the clock to \p end.
  void run_until(SimTime end);

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending_events() const { return live_events_; }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct QueueEntry;
  struct Compare {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const;
  };

  void push(SimTime at, std::shared_ptr<EventHandle::Record> record);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Compare> queue_;
};

struct EventHandle::Record {
  Simulator::Callback fn;
  bool cancelled = false;
  bool fired = false;
};

struct Simulator::QueueEntry {
  SimTime time;
  std::uint64_t seq;
  std::shared_ptr<EventHandle::Record> record;
};

}  // namespace ecocloud::sim
