#pragma once

/// \file event_tag.hpp
/// \brief Serializable identity tags for scheduled events.
///
/// Callbacks are type-erased closures and cannot be written to disk, so a
/// checkpointable event instead carries a small POD tag describing *who*
/// scheduled it and *what* it does. At restore time the owning component
/// rebuilds the equivalent closure from the tag (the closure's captured
/// state lives in the component, which has its own save/load surface).
/// Events scheduled without a tag (owner == kNone) cannot be checkpointed;
/// a snapshot attempt fails with a diagnostic listing them.

#include <cstdint>

namespace ecocloud::sim {

/// Stable component identifiers used in EventTag::owner. Values are part
/// of the snapshot format — append, never renumber.
namespace tag_owner {
inline constexpr std::uint16_t kNone = 0;        ///< Untagged (not checkpointable).
inline constexpr std::uint16_t kController = 1;  ///< core::EcoCloudController.
inline constexpr std::uint16_t kTraceDriver = 2; ///< core::TraceDriver.
inline constexpr std::uint16_t kCollector = 3;   ///< metrics::MetricsCollector.
inline constexpr std::uint16_t kOpenSystem = 4;  ///< core::OpenSystemDriver.
inline constexpr std::uint16_t kFaults = 5;      ///< faults::FaultInjector.
inline constexpr std::uint16_t kRedeploy = 6;    ///< faults::RedeployQueue.
inline constexpr std::uint16_t kObsFlush = 7;    ///< obs::Instrumentation flush.
inline constexpr std::uint16_t kCheckpoint = 8;  ///< ckpt::CheckpointManager.
inline constexpr std::uint16_t kAuditor = 9;     ///< ckpt::RuntimeAuditor.
}  // namespace tag_owner

/// 16-byte POD identifying a scheduled event across checkpoint/restore.
/// `kind` is owner-scoped; `a` and `b` carry the callback's parameters
/// (typically a server/VM id and a flag word).
struct EventTag {
  std::uint16_t owner = tag_owner::kNone;
  std::uint16_t kind = 0;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
};

}  // namespace ecocloud::sim
