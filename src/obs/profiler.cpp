#include "ecocloud/obs/profiler.hpp"

#include <cinttypes>

#include "ecocloud/obs/chrome_trace.hpp"

namespace ecocloud::obs {

namespace {

using util::Phase;
using util::kNumPhases;

Labels phase_labels(const util::PhaseProfiler& core, std::size_t domain,
                    Phase phase) {
  Labels labels{{"phase", util::to_string(phase)}};
  if (core.num_domains() > 1) {
    labels.emplace_back("domain", core.domain_name(domain));
  }
  return labels;
}

}  // namespace

Profiler::Profiler(util::PhaseProfiler& core, MetricRegistry& registry)
    : core_(core), registry_(registry) {
  for (std::size_t d = 0; d < core_.num_domains(); ++d) {
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      const auto phase = static_cast<Phase>(p);
      const Labels labels = phase_labels(core_, d, phase);
      registry_.counter_fn(
          "ecocloud_profile_phase_calls_total",
          [this, d, phase] { return core_.domain(d).stats(phase).calls; },
          labels, "Scope entries per profiled phase");
      registry_.counter_fn(
          "ecocloud_profile_phase_ns_total",
          [this, d, phase] {
            return static_cast<std::uint64_t>(
                core_.domain(d).stats(phase).estimated_ns());
          },
          labels,
          "Estimated wall nanoseconds per phase (stride-scaled)");
      duration_hists_.push_back(&registry_.histogram(
          "ecocloud_profile_phase_duration_seconds",
          util::phase_histogram_bounds_s(), labels,
          "Per-call phase durations (timed subsample)"));
    }
  }
  registry_.gauge_fn(
      "ecocloud_profile_overhead_ratio",
      [this] { return overhead_ratio(); }, {},
      "Estimated profiler self-cost over run wall time");
}

void Profiler::publish(double run_wall_seconds) {
  run_wall_seconds_ = run_wall_seconds;
  if (!registry_.enabled()) return;
  std::size_t idx = 0;
  for (std::size_t d = 0; d < core_.num_domains(); ++d) {
    for (std::size_t p = 0; p < kNumPhases; ++p, ++idx) {
      const auto phase = static_cast<Phase>(p);
      const auto& dom = core_.domain(d);
      duration_hists_[idx]->reset_to(
          dom.duration_buckets(phase),
          static_cast<double>(dom.stats(phase).timed_ns) * 1e-9);
    }
  }
}

void Profiler::emit_counter_track(ChromeTraceWriter& trace,
                                  double sim_now_s) {
  std::vector<ChromeTraceWriter::Arg> values;
  values.reserve(kNumPhases);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const auto phase = static_cast<Phase>(p);
    values.emplace_back(util::to_string(phase),
                        core_.total(phase).estimated_ns() * 1e-6);
  }
  trace.counter("profile_phase_ms", sim_now_s,
                ChromeTraceWriter::kCountersPid, std::move(values));
}

double Profiler::overhead_ratio() const {
  if (run_wall_seconds_ <= 0.0) return 0.0;
  return core_.overhead_seconds() / run_wall_seconds_;
}

void Profiler::print_summary(std::FILE* out) const {
  std::fprintf(out, "[profile] phase breakdown (stride-scaled estimates):\n");
  double total_ns = 0.0;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    total_ns += core_.total(static_cast<Phase>(p)).estimated_ns();
  }
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const auto phase = static_cast<Phase>(p);
    const util::PhaseStats st = core_.total(phase);
    if (st.calls == 0) continue;
    const double est_s = st.estimated_ns() * 1e-9;
    const double share =
        total_ns > 0.0 ? 100.0 * st.estimated_ns() / total_ns : 0.0;
    std::fprintf(out,
                 "[profile]   %-16s %10.3fs  %5.1f%%  %12" PRIu64
                 " calls (%" PRIu64 " timed)\n",
                 util::to_string(phase), est_s, share, st.calls,
                 st.timed_calls);
  }
  std::fprintf(out,
               "[profile] estimated overhead: %.4fs (%.2f%% of %.2fs wall)\n",
               core_.overhead_seconds(), 100.0 * overhead_ratio(),
               run_wall_seconds_);
}

}  // namespace ecocloud::obs
