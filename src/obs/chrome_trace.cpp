#include "ecocloud/obs/chrome_trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "ecocloud/obs/logger.hpp"  // append_json_string

namespace ecocloud::obs {

namespace {

constexpr double kMicrosPerSecond = 1e6;

void append_us(std::string& out, double us) {
  // Timestamps are microseconds; fractional values are legal in the format
  // but integers render cleaner and sim events sit on >= 1 us boundaries.
  char buf[32];
  if (std::fabs(us - std::round(us)) < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0f", us);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", us);
  }
  out += buf;
}

void append_args(std::string& out, const std::vector<ChromeTraceWriter::Arg>& args) {
  out += "\"args\":{";
  bool first = true;
  for (const auto& arg : args) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, arg.key);
    out.push_back(':');
    if (arg.is_number) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.10g", arg.number);
      out += buf;
    } else {
      append_json_string(out, arg.text);
    }
  }
  out.push_back('}');
}

}  // namespace

void ChromeTraceWriter::complete(std::string name, std::string category,
                                 double start_s, double duration_s, int pid,
                                 int tid, std::vector<Arg> args) {
  Event e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.ts_us = start_s * kMicrosPerSecond;
  e.dur_us = duration_s * kMicrosPerSecond;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::instant(std::string name, std::string category,
                                double time_s, int pid, int tid,
                                std::vector<Arg> args) {
  Event e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.ts_us = time_s * kMicrosPerSecond;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::counter(std::string name, double time_s, int pid,
                                std::vector<Arg> values) {
  Event e;
  e.name = std::move(name);
  e.phase = 'C';
  e.ts_us = time_s * kMicrosPerSecond;
  e.pid = pid;
  e.tid = 0;
  e.args = std::move(values);
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::name_thread(int pid, int tid, std::string name) {
  Event e;
  e.name = "thread_name";
  e.phase = 'M';
  e.pid = pid;
  e.tid = tid;
  e.args.emplace_back("name", std::move(name));
  e.is_metadata = true;
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::name_process(int pid, std::string name) {
  Event e;
  e.name = "process_name";
  e.phase = 'M';
  e.pid = pid;
  e.tid = 0;
  e.args.emplace_back("name", std::move(name));
  e.is_metadata = true;
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::write(std::ostream& out) const {
  out << "{\"traceEvents\":[\n";
  std::string line;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    line.clear();
    line.push_back('{');
    line += "\"name\":";
    append_json_string(line, e.name);
    line += ",\"ph\":\"";
    line.push_back(e.phase);
    line += "\"";
    if (!e.category.empty()) {
      line += ",\"cat\":";
      append_json_string(line, e.category);
    }
    if (!e.is_metadata) {
      line += ",\"ts\":";
      append_us(line, e.ts_us);
    }
    if (e.phase == 'X') {
      line += ",\"dur\":";
      append_us(line, e.dur_us);
    }
    if (e.phase == 'i') line += ",\"s\":\"t\"";
    line += ",\"pid\":" + std::to_string(e.pid);
    line += ",\"tid\":" + std::to_string(e.tid);
    if (!e.args.empty() || e.phase == 'C') {
      line.push_back(',');
      append_args(line, e.args);
    }
    line.push_back('}');
    if (i + 1 < events_.size()) line.push_back(',');
    line.push_back('\n');
    out << line;
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace ecocloud::obs
