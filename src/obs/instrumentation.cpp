#include "ecocloud/obs/instrumentation.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "ecocloud/dc/server.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::obs {

namespace {

/// Wake-to-active latency buckets (seconds). Boot time defaults to 120 s,
/// so the interesting resolution sits around that mark; queue-delayed
/// wakes land in the coarse tail.
const std::vector<double> kWakeLatencyBounds = {30.0,  60.0,  90.0,
                                                120.0, 150.0, 180.0,
                                                240.0, 300.0, 600.0};

[[nodiscard]] std::uint64_t id_u64(std::uint32_t id) {
  return static_cast<std::uint64_t>(id);
}

}  // namespace

Instrumentation::Instrumentation(MetricRegistry& registry, Logger& logger,
                                 ChromeTraceWriter* trace, ShardContext shard)
    : registry_(registry), logger_(logger), trace_(trace),
      shard_(std::move(shard)) {
  if (trace_ != nullptr) {
    const std::string suffix =
        shard_.sharded ? " (shard " + std::to_string(shard_.shard) + ")" : "";
    trace_->name_process(pid(ChromeTraceWriter::kServersPid),
                         "servers" + suffix);
    trace_->name_process(pid(ChromeTraceWriter::kMigrationsPid),
                         "migrations" + suffix);
    trace_->name_process(pid(ChromeTraceWriter::kCountersPid),
                         "fleet" + suffix);
  }
}

Labels Instrumentation::labels(Labels base) const {
  if (shard_.sharded) {
    base.emplace_back("shard", std::to_string(shard_.shard));
  }
  return base;
}

int Instrumentation::pid(int base) const {
  // 3 track groups per shard: shard k owns pids {1,2,3} + 3k, so shard 0
  // (and the unsharded engine) keeps the historical pids.
  return shard_.sharded ? base + 3 * static_cast<int>(shard_.shard) : base;
}

std::uint64_t Instrumentation::gsrv(dc::ServerId server) const {
  return shard_.global_server ? shard_.global_server(id_u64(server))
                              : id_u64(server);
}

std::uint64_t Instrumentation::gvm(dc::VmId vm) const {
  return shard_.global_vm ? shard_.global_vm(id_u64(vm)) : id_u64(vm);
}

void Instrumentation::attach_engine(const sim::Simulator& simulator) {
  const sim::Simulator* sim = &simulator;
  registry_.counter_fn(
      "ecocloud_engine_executed_events_total",
      [sim] { return sim->executed_events(); }, labels({}),
      "Events executed by the simulation kernel");
  registry_.counter_fn(
      "ecocloud_engine_events_fired_total",
      [sim] { return sim->stats().fired_from_heap; },
      labels({{"source", "heap"}}), "Events popped, by queue structure");
  registry_.counter_fn(
      "ecocloud_engine_events_fired_total",
      [sim] { return sim->stats().fired_from_ring; },
      labels({{"source", "ring"}}), "Events popped, by queue structure");
  registry_.counter_fn(
      "ecocloud_engine_events_scheduled_total",
      [sim] { return sim->stats().scheduled_one_shot; },
      labels({{"kind", "one_shot"}}),
      "schedule_at/after and schedule_periodic calls");
  registry_.counter_fn(
      "ecocloud_engine_events_scheduled_total",
      [sim] { return sim->stats().scheduled_periodic; },
      labels({{"kind", "periodic"}}),
      "schedule_at/after and schedule_periodic calls");
  registry_.counter_fn(
      "ecocloud_engine_timer_fires_total",
      [sim] { return sim->stats().fired_one_shot; },
      labels({{"kind", "one_shot"}}),
      "Executed events, by one-shot vs. periodic record");
  registry_.counter_fn(
      "ecocloud_engine_timer_fires_total",
      [sim] { return sim->stats().fired_periodic; },
      labels({{"kind", "periodic"}}),
      "Executed events, by one-shot vs. periodic record");
  registry_.counter_fn(
      "ecocloud_engine_cancels_total",
      [sim] { return sim->stats().cancels; }, labels({{"result", "cancelled"}}),
      "EventHandle::cancel calls, by whether the event was still pending");
  registry_.counter_fn(
      "ecocloud_engine_cancels_total",
      [sim] { return sim->stats().stale_cancels; },
      labels({{"result", "stale"}}),
      "EventHandle::cancel calls, by whether the event was still pending");
  registry_.counter_fn(
      "ecocloud_engine_dropped_cancelled_total",
      [sim] { return sim->stats().dropped_cancelled; }, labels({}),
      "Cancelled records lazily discarded at pop time");
  registry_.gauge_fn(
      "ecocloud_engine_pending_events",
      [sim] { return static_cast<double>(sim->pending_events()); }, labels({}),
      "Live events currently queued");
  registry_.gauge_fn(
      "ecocloud_engine_slab_high_water",
      [sim] { return static_cast<double>(sim->stats().slab_high_water); },
      labels({}), "High-water mark of occupied event-slab slots");
}

void Instrumentation::attach_datacenter(const dc::DataCenter& datacenter) {
  dc_ = &datacenter;
  const dc::DataCenter* dc = dc_;

  registry_.gauge_fn(
      "ecocloud_servers",
      [dc] { return static_cast<double>(dc->active_server_count()); },
      labels({{"state", "active"}}), "Servers currently in each state");
  registry_.gauge_fn(
      "ecocloud_servers",
      [dc] { return static_cast<double>(dc->booting_server_count()); },
      labels({{"state", "booting"}}), "Servers currently in each state");
  registry_.gauge_fn(
      "ecocloud_servers",
      [dc] {
        return static_cast<double>(
            dc->servers_with(dc::ServerState::kHibernated).size());
      },
      labels({{"state", "hibernated"}}), "Servers currently in each state");
  registry_.gauge_fn(
      "ecocloud_servers",
      [dc] { return static_cast<double>(dc->failed_server_count()); },
      labels({{"state", "failed"}}), "Servers currently in each state");
  registry_.gauge_fn(
      "ecocloud_overall_load", [dc] { return dc->overall_load(); }, labels({}),
      "Total demand over active capacity (paper's overall load)");
  registry_.gauge_fn(
      "ecocloud_power_watts", [dc] { return dc->total_power_w(); }, labels({}),
      "Instantaneous fleet power draw");
  registry_.gauge_fn(
      "ecocloud_energy_joules", [dc] { return dc->energy_joules(); }, labels({}),
      "Energy integrated since the last accounting reset");
  registry_.gauge_fn(
      "ecocloud_placed_vms",
      [dc] { return static_cast<double>(dc->placed_vm_count()); }, labels({}),
      "VMs currently placed on a server");
  registry_.gauge_fn(
      "ecocloud_total_demand_mhz", [dc] { return dc->total_demand_mhz(); },
      labels({}), "Aggregate CPU demand of placed VMs");
  registry_.gauge_fn(
      "ecocloud_inflight_migrations",
      [dc] { return static_cast<double>(dc->inflight_migrations()); },
      labels({}), "Live migrations currently in flight (placement view)");
  registry_.counter_fn(
      "ecocloud_server_activations_total",
      [dc] { return dc->total_activations(); }, labels({}),
      "Server activations since construction");
  registry_.counter_fn(
      "ecocloud_server_hibernations_total",
      [dc] { return dc->total_hibernations(); }, labels({}),
      "Server hibernations since construction");
  registry_.counter_fn(
      "ecocloud_vm_migrations_total", [dc] { return dc->total_migrations(); },
      labels({}), "Completed VM migrations since construction");
  registry_.counter_fn(
      "ecocloud_server_failures_total", [dc] { return dc->total_failures(); },
      labels({}), "Server fail-stop crashes since construction");
  registry_.counter_fn(
      "ecocloud_server_repairs_total", [dc] { return dc->total_repairs(); },
      labels({}), "Server repairs since construction");

  // Seed the state timeline: every server's residency starts in its
  // current state (attach before run() so this is the initial state).
  if (trace_ != nullptr) {
    for (const dc::Server& server : datacenter.servers()) {
      const std::uint64_t global = gsrv(server.id());
      trace_->name_thread(pid(ChromeTraceWriter::kServersPid),
                          static_cast<int>(global),
                          "server " + std::to_string(global));
      open_server_span(server.id(), dc::to_string(server.state()),
                       datacenter.last_update_time());
    }
  }
}

void Instrumentation::attach_controller(core::EcoCloudController& controller) {
  util::require(dc_ != nullptr || trace_ == nullptr,
                "Instrumentation: attach_datacenter before attach_controller "
                "when tracing");

  const std::string kEvents = "ecocloud_events_total";
  const std::string kEventsHelp = "Controller decision events, by kind";
  ev_assignment_ =
      &registry_.counter(kEvents, labels({{"kind", "assignment"}}), kEventsHelp);
  ev_assignment_failure_ = &registry_.counter(
      kEvents, labels({{"kind", "assignment_failure"}}), kEventsHelp);
  ev_migration_start_low_ = &registry_.counter(
      kEvents, labels({{"kind", "migration_start_low"}}), kEventsHelp);
  ev_migration_start_high_ = &registry_.counter(
      kEvents, labels({{"kind", "migration_start_high"}}), kEventsHelp);
  ev_migration_complete_low_ = &registry_.counter(
      kEvents, labels({{"kind", "migration_complete_low"}}), kEventsHelp);
  ev_migration_complete_high_ = &registry_.counter(
      kEvents, labels({{"kind", "migration_complete_high"}}), kEventsHelp);
  ev_migration_aborted_ = &registry_.counter(
      kEvents, labels({{"kind", "migration_aborted"}}), kEventsHelp);
  ev_activation_ =
      &registry_.counter(kEvents, labels({{"kind", "activation"}}), kEventsHelp);
  ev_hibernation_ = &registry_.counter(
      kEvents, labels({{"kind", "hibernation"}}), kEventsHelp);
  ev_wake_ = &registry_.counter(kEvents, labels({{"kind", "wake"}}), kEventsHelp);
  ev_server_failed_ = &registry_.counter(
      kEvents, labels({{"kind", "server_failed"}}), kEventsHelp);
  ev_server_repaired_ = &registry_.counter(
      kEvents, labels({{"kind", "server_repaired"}}), kEventsHelp);
  ev_vm_orphaned_ = &registry_.counter(
      kEvents, labels({{"kind", "vm_orphaned"}}), kEventsHelp);
  wake_latency_ = &registry_.histogram(
      "ecocloud_wake_latency_seconds", kWakeLatencyBounds, labels({}),
      "Wake command to activation latency per server");

  const core::EcoCloudController* ctl = &controller;
  registry_.counter_fn(
      "ecocloud_wake_ups_total", [ctl] { return ctl->wake_ups(); }, labels({}),
      "Wake-up commands issued by the manager");
  registry_.counter_fn(
      "ecocloud_assignment_failures_total",
      [ctl] { return ctl->assignment_failures(); }, labels({}),
      "Deployments that found the data center saturated");
  registry_.counter_fn(
      "ecocloud_migrations_aborted_total",
      [ctl] { return ctl->aborted_migrations(); }, labels({}),
      "Migrations rolled back by a transfer abort");
  registry_.counter_fn(
      "ecocloud_migrations_interrupted_total",
      [ctl] { return ctl->interrupted_migrations(); }, labels({}),
      "Migrations rolled back by an endpoint crash or boot failure");
  registry_.counter_fn(
      "ecocloud_boot_failures_total", [ctl] { return ctl->boot_failures(); },
      labels({}), "Failed boot attempts");
  registry_.gauge_fn(
      "ecocloud_boot_queue_servers",
      [ctl] { return static_cast<double>(ctl->boot_queue_count()); }, labels({}),
      "Booting servers with a deployment queue attached");
  registry_.gauge_fn(
      "ecocloud_queued_vms",
      [ctl] { return static_cast<double>(ctl->queued_vm_count()); }, labels({}),
      "VMs waiting on booting servers");
  registry_.gauge_fn(
      "ecocloud_controller_inflight_migrations",
      [ctl] { return static_cast<double>(ctl->inflight_migration_count()); },
      labels({}), "Live migrations tracked in flight by the controller");

  const core::MessageLog* msgs = &controller.messages();
  const std::string kMessages = "ecocloud_messages_total";
  const std::string kMessagesHelp =
      "Control-plane messages, by type (paper Fig. 1)";
  registry_.counter_fn(
      kMessages, [msgs] { return msgs->invitations_sent; },
      labels({{"type", "invitation"}}), kMessagesHelp);
  registry_.counter_fn(
      kMessages, [msgs] { return msgs->volunteer_replies; },
      labels({{"type", "volunteer_reply"}}), kMessagesHelp);
  registry_.counter_fn(
      kMessages, [msgs] { return msgs->placement_commands; },
      labels({{"type", "placement_command"}}), kMessagesHelp);
  registry_.counter_fn(
      kMessages, [msgs] { return msgs->wake_commands; },
      labels({{"type", "wake_command"}}), kMessagesHelp);
  registry_.counter_fn(
      kMessages, [msgs] { return msgs->migration_commands; },
      labels({{"type", "migration_command"}}), kMessagesHelp);
  registry_.counter_fn(
      "ecocloud_messages_lost_total", [msgs] { return msgs->invitations_lost; },
      labels({{"type", "invitation"}}),
      "Messages dropped by the lossy control plane");
  registry_.counter_fn(
      "ecocloud_messages_lost_total", [msgs] { return msgs->replies_lost; },
      labels({{"type", "volunteer_reply"}}),
      "Messages dropped by the lossy control plane");
  registry_.counter_fn(
      "ecocloud_invitation_rounds_total",
      [msgs] { return msgs->invitation_rounds; }, labels({}),
      "Invitation rounds initiated by the manager");

  const core::BernoulliTally* fa = &controller.assignment().fa_tally();
  const core::BernoulliTally* fl = &controller.migration().fl_tally();
  const core::BernoulliTally* fh = &controller.migration().fh_tally();
  const std::string kTrials = "ecocloud_bernoulli_trials_total";
  const std::string kTrialsHelp =
      "Bernoulli trials per probability function, by outcome";
  registry_.counter_fn(
      kTrials, [fa] { return fa->accepts; },
      labels({{"function", "fa"}, {"outcome", "accept"}}), kTrialsHelp);
  registry_.counter_fn(
      kTrials, [fa] { return fa->rejects; },
      labels({{"function", "fa"}, {"outcome", "reject"}}), kTrialsHelp);
  registry_.counter_fn(
      kTrials, [fl] { return fl->accepts; },
      labels({{"function", "fl"}, {"outcome", "accept"}}), kTrialsHelp);
  registry_.counter_fn(
      kTrials, [fl] { return fl->rejects; },
      labels({{"function", "fl"}, {"outcome", "reject"}}), kTrialsHelp);
  registry_.counter_fn(
      kTrials, [fh] { return fh->accepts; },
      labels({{"function", "fh"}, {"outcome", "accept"}}), kTrialsHelp);
  registry_.counter_fn(
      kTrials, [fh] { return fh->rejects; },
      labels({{"function", "fh"}, {"outcome", "reject"}}), kTrialsHelp);

  // Chain the Events callbacks: forward to whoever was attached first,
  // then count / log / trace. Nothing below draws randomness or schedules
  // work, which is what keeps the event stream bit-identical.
  auto& events = controller.events();

  events.on_assignment = [this, prev = std::move(events.on_assignment)](
                             sim::SimTime t, dc::VmId vm, dc::ServerId s) {
    if (prev) prev(t, vm, s);
    ev_assignment_->inc();
    if (logger_.enabled(LogLevel::kTrace)) {
      logger_.trace("controller", "vm assigned",
                    {{"vm", gvm(vm)}, {"server", gsrv(s)}});
    }
  };

  events.on_assignment_failure =
      [this, prev = std::move(events.on_assignment_failure)](sim::SimTime t,
                                                             dc::VmId vm) {
        if (prev) prev(t, vm);
        ev_assignment_failure_->inc();
        if (logger_.enabled(LogLevel::kWarn)) {
          logger_.warn("controller", "assignment failed: data center saturated",
                       {{"vm", gvm(vm)}});
        }
      };

  events.on_migration_start = [this, prev = std::move(events.on_migration_start)](
                                  sim::SimTime t, dc::VmId vm, bool is_high) {
    if (prev) prev(t, vm, is_high);
    (is_high ? ev_migration_start_high_ : ev_migration_start_low_)->inc();
    if (trace_ != nullptr) migration_spans_[vm] = {t, is_high};
    if (logger_.enabled(LogLevel::kDebug)) {
      logger_.debug("controller", "migration started",
                    {{"vm", gvm(vm)}, {"high", is_high}});
    }
  };

  events.on_migration_complete =
      [this, prev = std::move(events.on_migration_complete)](
          sim::SimTime t, dc::VmId vm, bool is_high) {
        if (prev) prev(t, vm, is_high);
        (is_high ? ev_migration_complete_high_ : ev_migration_complete_low_)->inc();
        if (trace_ != nullptr) {
          const auto it = migration_spans_.find(vm);
          if (it != migration_spans_.end()) {
            trace_->complete("migration", "migration", it->second.since,
                             t - it->second.since,
                             pid(ChromeTraceWriter::kMigrationsPid),
                             static_cast<int>(gvm(vm)),
                             {{"kind", is_high ? "high" : "low"},
                              {"outcome", "complete"}});
            migration_spans_.erase(it);
          }
        }
        if (logger_.enabled(LogLevel::kDebug)) {
          logger_.debug("controller", "migration completed",
                        {{"vm", gvm(vm)}, {"high", is_high}});
        }
      };

  events.on_migration_aborted =
      [this, prev = std::move(events.on_migration_aborted)](
          sim::SimTime t, dc::VmId vm, bool is_high) {
        if (prev) prev(t, vm, is_high);
        ev_migration_aborted_->inc();
        if (trace_ != nullptr) {
          const auto it = migration_spans_.find(vm);
          if (it != migration_spans_.end()) {
            trace_->complete("migration", "migration", it->second.since,
                             t - it->second.since,
                             pid(ChromeTraceWriter::kMigrationsPid),
                             static_cast<int>(gvm(vm)),
                             {{"kind", is_high ? "high" : "low"},
                              {"outcome", "aborted"}});
            migration_spans_.erase(it);
          }
        }
        if (logger_.enabled(LogLevel::kWarn)) {
          logger_.warn("controller", "migration aborted",
                       {{"vm", gvm(vm)}, {"high", is_high}});
        }
      };

  events.on_wake = [this, prev = std::move(events.on_wake)](sim::SimTime t,
                                                            dc::ServerId s) {
    if (prev) prev(t, s);
    ev_wake_->inc();
    wake_sent_at_[s] = t;
    close_server_span(s, t);
    open_server_span(s, "booting", t);
    if (logger_.enabled(LogLevel::kInfo)) {
      logger_.info("controller", "wake command sent", {{"server", gsrv(s)}});
    }
  };

  events.on_activation = [this, prev = std::move(events.on_activation)](
                             sim::SimTime t, dc::ServerId s) {
    if (prev) prev(t, s);
    ev_activation_->inc();
    const auto it = wake_sent_at_.find(s);
    if (it != wake_sent_at_.end()) {
      wake_latency_->observe(t - it->second);
      wake_sent_at_.erase(it);
    }
    close_server_span(s, t);
    open_server_span(s, "active", t);
    if (logger_.enabled(LogLevel::kInfo)) {
      logger_.info("controller", "server activated", {{"server", gsrv(s)}});
    }
  };

  events.on_hibernation = [this, prev = std::move(events.on_hibernation)](
                              sim::SimTime t, dc::ServerId s) {
    if (prev) prev(t, s);
    ev_hibernation_->inc();
    close_server_span(s, t);
    open_server_span(s, "hibernated", t);
    if (logger_.enabled(LogLevel::kInfo)) {
      logger_.info("controller", "server hibernated", {{"server", gsrv(s)}});
    }
  };

  events.on_server_failed = [this, prev = std::move(events.on_server_failed)](
                                sim::SimTime t, dc::ServerId s) {
    if (prev) prev(t, s);
    ev_server_failed_->inc();
    wake_sent_at_.erase(s);  // a crash voids the pending wake measurement
    close_server_span(s, t);
    open_server_span(s, "failed", t);
    if (logger_.enabled(LogLevel::kWarn)) {
      logger_.warn("controller", "server crashed", {{"server", gsrv(s)}});
    }
  };

  events.on_server_repaired =
      [this, prev = std::move(events.on_server_repaired)](sim::SimTime t,
                                                          dc::ServerId s) {
        if (prev) prev(t, s);
        ev_server_repaired_->inc();
        close_server_span(s, t);
        open_server_span(s, "hibernated", t);
        if (logger_.enabled(LogLevel::kInfo)) {
          logger_.info("controller", "server repaired", {{"server", gsrv(s)}});
        }
      };

  events.on_vm_orphaned = [this, prev = std::move(events.on_vm_orphaned)](
                              sim::SimTime t, dc::VmId vm, dc::ServerId s) {
    if (prev) prev(t, vm, s);
    ev_vm_orphaned_->inc();
    if (trace_ != nullptr) {
      trace_->instant("vm orphaned", "fault", t,
                      pid(ChromeTraceWriter::kServersPid),
                      static_cast<int>(gsrv(s)),
                      {{"vm", static_cast<std::int64_t>(gvm(vm))}});
    }
    if (logger_.enabled(LogLevel::kWarn)) {
      logger_.warn("controller", "vm orphaned by crash",
                   {{"vm", gvm(vm)}, {"server", gsrv(s)}});
    }
  };
}

void Instrumentation::attach_faults(const faults::FaultInjector& injector) {
  const faults::FaultInjector* inj = &injector;
  registry_.gauge_fn(
      "ecocloud_redeploy_pending",
      [inj] { return static_cast<double>(inj->redeploy().pending()); },
      labels({}), "Orphaned VMs currently waiting in the redeploy queue");
  registry_.counter_fn(
      "ecocloud_redeploy_attempts_total",
      [inj] { return inj->redeploy().total_attempts(); }, labels({}),
      "Deploy attempts made for orphans (first tries and retries)");
  registry_.counter_fn(
      "ecocloud_redeploy_failed_attempts_total",
      [inj] { return inj->redeploy().failed_attempts(); }, labels({}),
      "Orphan deploy attempts that found the data center saturated");
  registry_.counter_fn(
      "ecocloud_faults_crashes_total", [inj] { return inj->stats().crashes(); },
      labels({}), "Injected server crashes");
  registry_.counter_fn(
      "ecocloud_faults_repairs_total", [inj] { return inj->stats().repairs(); },
      labels({}), "Completed server repairs");
  registry_.counter_fn(
      "ecocloud_faults_orphaned_vms_total",
      [inj] { return inj->stats().orphaned_vms(); }, labels({}),
      "VMs orphaned by crashes");
  registry_.counter_fn(
      "ecocloud_faults_redeployed_vms_total",
      [inj] { return inj->stats().redeployed_vms(); }, labels({}),
      "Orphans successfully redeployed");
  registry_.counter_fn(
      "ecocloud_faults_abandoned_vms_total",
      [inj] { return inj->stats().abandoned_vms(); }, labels({}),
      "Orphans abandoned after the retry budget");
  registry_.gauge_fn(
      "ecocloud_downtime_vm_seconds",
      [inj] { return inj->stats().downtime_vm_seconds(); }, labels({}),
      "Accumulated VM downtime attributed to faults");
}

void Instrumentation::attach_robustness(std::function<RobustnessSample()> sample) {
  const auto poll =
      std::make_shared<std::function<RobustnessSample()>>(std::move(sample));
  registry_.counter_fn(
      "ecocloud_checkpoints_written_total",
      [poll] { return (*poll)().checkpoints_written; }, labels({}),
      "Crash-safe snapshots written");
  registry_.gauge_fn(
      "ecocloud_checkpoint_bytes_last",
      [poll] { return static_cast<double>((*poll)().snapshot_bytes_last); },
      labels({}), "Payload size of the most recent snapshot");
  registry_.gauge_fn(
      "ecocloud_checkpoint_save_seconds_total",
      [poll] { return (*poll)().save_wall_seconds_total; }, labels({}),
      "Wall-clock time spent writing snapshots");
  registry_.counter_fn(
      "ecocloud_audits_run_total", [poll] { return (*poll)().audits_run; },
      labels({}), "Invariant audits executed");
  registry_.counter_fn(
      "ecocloud_audits_failed_total", [poll] { return (*poll)().audits_failed; },
      labels({}), "Invariant audits that found at least one violation");
  registry_.counter_fn(
      "ecocloud_audit_heals_total", [poll] { return (*poll)().heals_applied; },
      labels({}), "Cache-rebuild heal actions applied by the auditor");
}

void Instrumentation::start_flush(sim::Simulator& simulator,
                                  sim::SimTime period_s) {
  util::require(period_s > 0.0, "Instrumentation: flush period must be > 0");
  // The flush event is telemetry's only entry in the event queue. It runs
  // no simulation logic and draws no randomness, so the decision stream is
  // unchanged; only seq numbers (and executed_events) shift.
  simulator.schedule_periodic(
      period_s, sim::EventTag{sim::tag_owner::kObsFlush, kEvFlush, 0, 0},
      make_flush_callback(simulator));
}

sim::Simulator::Callback Instrumentation::make_flush_callback(
    sim::Simulator& simulator) {
  sim::Simulator* sim = &simulator;
  return [this, sim] { flush_now(sim->now()); };
}

void Instrumentation::flush_now(sim::SimTime now) {
  sample_trace_counters(now);
  logger_.flush();
  if (flush_hook_) flush_hook_(now);
}

void Instrumentation::finalize(sim::SimTime end) {
  if (finalized_) return;
  finalized_ = true;
  if (trace_ != nullptr) {
    for (auto& [server, span] : server_spans_) {
      trace_->complete(span.state, "server-state", span.since, end - span.since,
                       pid(ChromeTraceWriter::kServersPid),
                       static_cast<int>(gsrv(server)));
    }
    for (auto& [vm, span] : migration_spans_) {
      trace_->complete("migration", "migration", span.since, end - span.since,
                       pid(ChromeTraceWriter::kMigrationsPid),
                       static_cast<int>(gvm(vm)),
                       {{"kind", span.is_high ? "high" : "low"},
                        {"outcome", "unfinished"}});
    }
    sample_trace_counters(end);
  }
  server_spans_.clear();
  migration_spans_.clear();
  logger_.info("obs", "telemetry finalized",
               {{"metric_instances",
                 static_cast<std::uint64_t>(registry_.num_instances())},
                {"log_lines", logger_.lines_written()}});
  logger_.flush();
}

void Instrumentation::open_server_span(dc::ServerId server, const char* state,
                                       sim::SimTime at) {
  if (trace_ == nullptr) return;
  server_spans_[server] = {state, at};
}

void Instrumentation::close_server_span(dc::ServerId server, sim::SimTime at) {
  if (trace_ == nullptr) return;
  const auto it = server_spans_.find(server);
  if (it == server_spans_.end()) return;
  trace_->complete(it->second.state, "server-state", it->second.since,
                   at - it->second.since, pid(ChromeTraceWriter::kServersPid),
                   static_cast<int>(gsrv(server)));
  server_spans_.erase(it);
}

void Instrumentation::sample_trace_counters(sim::SimTime now) {
  if (trace_ == nullptr || dc_ == nullptr) return;
  trace_->counter(
      "servers", now, pid(ChromeTraceWriter::kCountersPid),
      {{"active", static_cast<std::int64_t>(dc_->active_server_count())},
       {"booting", static_cast<std::int64_t>(dc_->booting_server_count())},
       {"failed", static_cast<std::int64_t>(dc_->failed_server_count())}});
  trace_->counter("load", now, pid(ChromeTraceWriter::kCountersPid),
                  {{"overall_load", dc_->overall_load()}});
  trace_->counter("power_watts", now, pid(ChromeTraceWriter::kCountersPid),
                  {{"power_w", dc_->total_power_w()}});
  trace_->counter(
      "inflight_migrations", now, pid(ChromeTraceWriter::kCountersPid),
      {{"inflight", static_cast<std::int64_t>(dc_->inflight_migrations())}});
}

}  // namespace ecocloud::obs
