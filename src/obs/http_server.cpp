#include "ecocloud/obs/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace ecocloud::obs {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string serialize(const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    reason_phrase(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  for (const auto& header : resp.extra_headers) {
    out += header;
    out += "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

/// Case-insensitive lookup of a header value in the raw request head
/// (everything before the blank line). Returns empty string when absent.
std::string header_value(const std::string& head, const std::string& name) {
  std::size_t pos = head.find("\r\n");
  while (pos != std::string::npos) {
    const std::size_t line_start = pos + 2;
    const std::size_t line_end = head.find("\r\n", line_start);
    const std::string line =
        head.substr(line_start, line_end == std::string::npos
                                    ? std::string::npos
                                    : line_end - line_start);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos && colon == name.size()) {
      bool match = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(line[i])) !=
            std::tolower(static_cast<unsigned char>(name[i]))) {
          match = false;
          break;
        }
      }
      if (match) {
        std::size_t v = colon + 1;
        while (v < line.size() &&
               std::isspace(static_cast<unsigned char>(line[v]))) {
          ++v;
        }
        std::size_t e = line.size();
        while (e > v && std::isspace(static_cast<unsigned char>(line[e - 1]))) {
          --e;
        }
        return line.substr(v, e - v);
      }
    }
    pos = line_end;
  }
  return {};
}

/// The observer-mode routing table, expressed as a handler so both modes
/// share one connection layer.
HttpHandler make_hub_handler(const SnapshotHub& hub) {
  return [&hub](const HttpRequest& req) -> HttpResponse {
    if (req.method != "GET") {
      HttpResponse resp = HttpResponse::text(405, "method not allowed\n");
      resp.extra_headers.push_back("Allow: GET");
      return resp;
    }
    if (req.target == "/metrics") {
      HttpResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = hub.metrics();
      return resp;
    }
    if (req.target == "/progress") {
      return HttpResponse::json(200, hub.progress());
    }
    if (req.target == "/healthz") {
      return HttpResponse::text(200, "ok\n");
    }
    return HttpResponse::text(404, "not found\n");
  };
}

}  // namespace

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "text/plain";
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

HttpServer::HttpServer(const SnapshotHub& hub, std::uint16_t port)
    : handler_(make_hub_handler(hub)) {
  bind_and_start(port);
}

HttpServer::HttpServer(HttpHandler handler, std::uint16_t port,
                       HttpLimits limits)
    : handler_(std::move(handler)), limits_(limits) {
  if (!handler_) {
    throw std::runtime_error("HttpServer: null handler");
  }
  bind_and_start(port);
}

void HttpServer::bind_and_start(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  // Drain-and-restart must be able to rebind immediately; without this the
  // old socket's TIME_WAIT blocks the new process for minutes.
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: cannot bind 127.0.0.1:" +
                             std::to_string(port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: listen() failed: " + err);
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: pipe() failed");
  }

  thread_ = std::thread([this] { serve(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
}

void HttpServer::serve() {
  while (!stopping_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || stopping_.load()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void HttpServer::handle_connection(int client_fd) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(limits_.connection_deadline_ms);

  // Every recv is bounded by min(read_timeout, time left until the total
  // deadline), so a client dripping one byte per poll interval still gets
  // cut off — that is the slow-loris defense the per-recv timeout alone
  // does not provide.
  const auto poll_budget_ms = [&]() -> int {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) return -1;
    return static_cast<int>(
        std::min<long long>(left, limits_.read_timeout_ms));
  };

  // Phase 1: read until the end of the request head.
  std::string request;
  bool timed_out = false;
  std::size_t head_end = std::string::npos;
  while (true) {
    head_end = request.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (request.size() >= limits_.max_head_bytes) {
      send_all(client_fd,
               serialize(HttpResponse::text(413, "request head too large\n")));
      return;
    }
    const int budget = poll_budget_ms();
    if (budget < 0) {
      timed_out = true;
      break;
    }
    pollfd pfd{client_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, budget);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      timed_out = true;
      break;
    }
    char buf[1024];
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed or error: fall through to parse
    request.append(buf, static_cast<std::size_t>(n));
  }
  if (timed_out && head_end == std::string::npos) {
    send_all(client_fd,
             serialize(HttpResponse::text(408, "request timeout\n")));
    return;
  }

  // Request line: METHOD SP target SP HTTP/x.y
  const std::size_t line_end = request.find("\r\n");
  std::string method, target, version;
  if (line_end != std::string::npos) {
    const std::string line = request.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp2 != std::string::npos &&
        line.find(' ', sp2 + 1) == std::string::npos) {
      method = line.substr(0, sp1);
      target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      version = line.substr(sp2 + 1);
    }
  }
  if (method.empty() || target.empty() || version.rfind("HTTP/", 0) != 0 ||
      head_end == std::string::npos) {
    send_all(client_fd,
             serialize(HttpResponse::text(400, "bad request\n")));
    return;
  }

  // Phase 2: read the declared body, if any, under the hard cap.
  const std::string head = request.substr(0, head_end + 2);
  std::string body = request.substr(head_end + 4);
  const std::string length_str = header_value(head, "Content-Length");
  std::size_t content_length = 0;
  if (!length_str.empty()) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(length_str.c_str(), &end, 10);
    if (errno != 0 || end == length_str.c_str() || *end != '\0') {
      send_all(client_fd,
               serialize(HttpResponse::text(400, "bad content-length\n")));
      return;
    }
    content_length = static_cast<std::size_t>(parsed);
  }
  if (content_length > limits_.max_body_bytes) {
    send_all(client_fd,
             serialize(HttpResponse::text(413, "request body too large\n")));
    return;
  }
  while (body.size() < content_length) {
    const int budget = poll_budget_ms();
    if (budget < 0) {
      send_all(client_fd,
               serialize(HttpResponse::text(408, "request timeout\n")));
      return;
    }
    pollfd pfd{client_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, budget);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      send_all(client_fd,
               serialize(HttpResponse::text(408, "request timeout\n")));
      return;
    }
    char buf[4096];
    const std::size_t want =
        std::min(sizeof(buf), content_length - body.size());
    const ssize_t n = ::recv(client_fd, buf, want, 0);
    if (n <= 0) {
      send_all(client_fd,
               serialize(HttpResponse::text(400, "truncated body\n")));
      return;
    }
    body.append(buf, static_cast<std::size_t>(n));
  }
  body.resize(std::min(body.size(), content_length));

  HttpRequest req;
  req.method = std::move(method);
  const std::size_t query = target.find('?');
  if (query != std::string::npos) {
    req.query = target.substr(query + 1);
    target.resize(query);
  }
  req.target = std::move(target);
  req.body = std::move(body);

  HttpResponse resp;
  try {
    resp = handler_(req);
  } catch (const std::exception& ex) {
    resp = HttpResponse::text(500, std::string("internal error: ") +
                                       ex.what() + "\n");
  }
  send_all(client_fd, serialize(resp));
}

}  // namespace ecocloud::obs
