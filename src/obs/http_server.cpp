#include "ecocloud/obs/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ecocloud::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;
constexpr int kReadTimeoutMs = 2000;

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string make_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body,
                          const char* extra_header = nullptr) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (extra_header != nullptr) {
    out += extra_header;
    out += "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpServer::HttpServer(const SnapshotHub& hub, std::uint16_t port)
    : hub_(hub) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: cannot bind 127.0.0.1:" +
                             std::to_string(port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: listen() failed: " + err);
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: pipe() failed");
  }

  thread_ = std::thread([this] { serve(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
}

void HttpServer::serve() {
  while (!stopping_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || stopping_.load()) return;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void HttpServer::handle_connection(int client_fd) {
  // Read until the end of the request head, with a cap and a timeout so
  // a stuck client cannot wedge the (serial) server loop.
  std::string request;
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{client_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kReadTimeoutMs);
    if (ready <= 0) break;
    char buf[1024];
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP target SP HTTP/x.y
  const std::size_t line_end = request.find("\r\n");
  std::string method, target, version;
  if (line_end != std::string::npos) {
    const std::string line = request.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp2 != std::string::npos && line.find(' ', sp2 + 1) == std::string::npos) {
      method = line.substr(0, sp1);
      target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      version = line.substr(sp2 + 1);
    }
  }
  if (method.empty() || target.empty() ||
      version.rfind("HTTP/", 0) != 0) {
    send_all(client_fd, make_response(400, "Bad Request", "text/plain",
                                      "bad request\n"));
    return;
  }
  if (method != "GET") {
    send_all(client_fd,
             make_response(405, "Method Not Allowed", "text/plain",
                           "method not allowed\n", "Allow: GET"));
    return;
  }

  // Strip any query string; the routes take no parameters.
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);

  if (target == "/metrics") {
    send_all(client_fd,
             make_response(200, "OK",
                           "text/plain; version=0.0.4; charset=utf-8",
                           hub_.metrics()));
  } else if (target == "/progress") {
    send_all(client_fd,
             make_response(200, "OK", "application/json", hub_.progress()));
  } else if (target == "/healthz") {
    send_all(client_fd, make_response(200, "OK", "text/plain", "ok\n"));
  } else {
    send_all(client_fd,
             make_response(404, "Not Found", "text/plain", "not found\n"));
  }
}

}  // namespace ecocloud::obs
