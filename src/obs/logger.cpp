#include "ecocloud/obs/logger.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace ecocloud::obs {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    if (text == to_string(level)) return level;
  }
  return std::nullopt;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

namespace {

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; emit them as strings so the line stays valid.
    out += value > 0 ? "\"inf\"" : (value < 0 ? "\"-inf\"" : "\"nan\"");
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out += buf;
}

}  // namespace

void Logger::log(LogLevel level, std::string_view component, std::string_view msg,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;
  std::string line;
  line.reserve(96);
  line += "{\"ts_sim\":";
  append_number(line, now_ ? now_() : 0.0);
  line += ",\"level\":";
  append_json_string(line, to_string(level));
  line += ",\"component\":";
  append_json_string(line, component);
  line += ",\"msg\":";
  append_json_string(line, msg);
  if (!bound_key_.empty()) {
    line.push_back(',');
    append_json_string(line, bound_key_);
    line.push_back(':');
    line += std::to_string(bound_value_);
  }
  for (const LogField& field : fields) {
    line.push_back(',');
    append_json_string(line, field.key);
    line.push_back(':');
    switch (field.kind) {
      case LogField::Kind::kInt:
        line += std::to_string(field.i);
        break;
      case LogField::Kind::kUint:
        line += std::to_string(field.u);
        break;
      case LogField::Kind::kDouble:
        append_number(line, field.d);
        break;
      case LogField::Kind::kBool:
        line += field.b ? "true" : "false";
        break;
      case LogField::Kind::kString:
        append_json_string(line, field.s);
        break;
    }
  }
  line += "}\n";
  *sink_ << line;
  ++lines_;
}

void Logger::flush() {
  if (sink_) sink_->flush();
}

}  // namespace ecocloud::obs
