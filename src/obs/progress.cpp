#include "ecocloud/obs/progress.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ecocloud/util/phase_profiler.hpp"  // monotonic_ns

namespace ecocloud::obs {

namespace {

double status_field_mb(const char* key) {
  std::ifstream in("/proc/self/status");
  if (!in) return 0.0;
  std::string line;
  const std::size_t key_len = std::strlen(key);
  while (std::getline(in, line)) {
    if (line.compare(0, key_len, key) != 0) continue;
    // "VmRSS:   123456 kB"
    std::istringstream fields(line.substr(key_len));
    double kb = 0.0;
    fields >> kb;
    return kb / 1024.0;
  }
  return 0.0;
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

/// Minimum window width before the rate anchor advances; keeps the
/// reported events/s smoothed over recent history instead of one tick.
constexpr std::uint64_t kWindowNs = 2'000'000'000ULL;

}  // namespace

double current_rss_mb() { return status_field_mb("VmRSS:"); }
double peak_rss_mb() { return status_field_mb("VmHWM:"); }

void ProgressTracker::begin(double sim_start_s, double horizon_s) {
  sim_start_s_ = sim_start_s;
  sim_now_s_ = sim_start_s;
  horizon_s_ = horizon_s;
  wall_start_ns_ = util::monotonic_ns();
  wall_now_ns_ = wall_start_ns_;
  window_start_ns_ = wall_start_ns_;
  window_events_ = 0;
  window_sim_s_ = sim_start_s;
}

void ProgressTracker::update(double sim_now_s, std::uint64_t events) {
  sim_now_s_ = sim_now_s;
  events_ = events;
  wall_now_ns_ = util::monotonic_ns();

  const std::uint64_t span_ns = wall_now_ns_ - window_start_ns_;
  if (span_ns > 0) {
    const double span_s = static_cast<double>(span_ns) * 1e-9;
    events_per_sec_ =
        static_cast<double>(events - window_events_) / span_s;
    sim_per_wall_ = (sim_now_s - window_sim_s_) / span_s;
  }
  if (span_ns >= kWindowNs) {
    window_start_ns_ = wall_now_ns_;
    window_events_ = events;
    window_sim_s_ = sim_now_s;
  }
}

void ProgressTracker::set_shards(std::vector<ShardProgress> shards) {
  shards_ = std::move(shards);
}

double ProgressTracker::wall_seconds() const {
  return static_cast<double>(wall_now_ns_ - wall_start_ns_) * 1e-9;
}

std::string ProgressTracker::to_json() const {
  const double span = horizon_s_ - sim_start_s_;
  const double done = sim_now_s_ - sim_start_s_;
  const double percent =
      span > 0.0 ? std::min(100.0, 100.0 * done / span) : 0.0;
  const double remaining_sim = std::max(0.0, horizon_s_ - sim_now_s_);
  const double eta_wall_s =
      sim_per_wall_ > 0.0 ? remaining_sim / sim_per_wall_ : 0.0;

  std::string out = "{";
  out += "\"sim_time_s\": ";
  append_number(out, sim_now_s_);
  out += ", \"sim_start_s\": ";
  append_number(out, sim_start_s_);
  out += ", \"horizon_s\": ";
  append_number(out, horizon_s_);
  out += ", \"percent\": ";
  append_number(out, percent);
  out += ", \"wall_time_s\": ";
  append_number(out, wall_seconds());
  out += ", \"events\": " + std::to_string(events_);
  out += ", \"events_per_sec\": ";
  append_number(out, events_per_sec_);
  out += ", \"sim_seconds_per_wall_second\": ";
  append_number(out, sim_per_wall_);
  out += ", \"eta_wall_s\": ";
  append_number(out, eta_wall_s);
  out += ", \"rss_mb\": ";
  append_number(out, current_rss_mb());
  out += ", \"vm_hwm_mb\": ";
  append_number(out, peak_rss_mb());
  out += ", \"shards\": [";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i != 0) out += ", ";
    const ShardProgress& s = shards_[i];
    out += "{\"shard\": " + std::to_string(s.shard);
    out += ", \"epoch_wall_s\": ";
    append_number(out, s.epoch_wall_s);
    out += ", \"barrier_lag_s\": ";
    append_number(out, s.barrier_lag_s);
    out += ", \"events\": " + std::to_string(s.events) + "}";
  }
  out += "]}\n";
  return out;
}

bool ProgressTracker::maybe_tick(std::FILE* out, double min_interval_s) {
  const std::uint64_t now = util::monotonic_ns();
  const auto min_ns =
      static_cast<std::uint64_t>(min_interval_s * 1e9);
  if (last_tick_ns_ != 0 && now - last_tick_ns_ < min_ns) return false;
  last_tick_ns_ = now;

  const double span = horizon_s_ - sim_start_s_;
  const double done = sim_now_s_ - sim_start_s_;
  const double percent =
      span > 0.0 ? std::min(100.0, 100.0 * done / span) : 0.0;
  const double remaining_sim = std::max(0.0, horizon_s_ - sim_now_s_);
  const double eta_wall_s =
      sim_per_wall_ > 0.0 ? remaining_sim / sim_per_wall_ : 0.0;

  std::fprintf(out,
               "[progress] t=%.0fs/%.0fs (%.1f%%) %llu events"
               " %.3g ev/s eta %.0fs rss %.0fMB\n",
               sim_now_s_, horizon_s_, percent,
               static_cast<unsigned long long>(events_), events_per_sec_,
               eta_wall_s, current_rss_mb());
  std::fflush(out);
  return true;
}

}  // namespace ecocloud::obs
