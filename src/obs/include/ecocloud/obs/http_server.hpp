#pragma once

/// \file http_server.hpp
/// \brief Minimal embedded HTTP server for live metric/progress scrapes.
///
/// Design: the simulation thread never talks to sockets and the HTTP
/// thread never touches simulation state. Instead the sim thread renders
/// its exports (Prometheus text, progress JSON) into strings at safe
/// points (the periodic flush event, the sharded barrier) and publishes
/// them into a SnapshotHub; the server thread serves only those cached
/// strings under the hub mutex. A scrape can therefore never block or
/// perturb the run — the plane stays a pure observer.
///
/// Scope: GET-only, Connection: close, serial request handling on one
/// thread. That is deliberate — the consumers are `curl` and a
/// Prometheus scraper at seconds cadence, not a web tier.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace ecocloud::obs {

/// Thread-safe mailbox of the latest rendered exports.
class SnapshotHub {
 public:
  void publish_metrics(std::string prometheus_text) {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = std::move(prometheus_text);
  }

  void publish_progress(std::string json) {
    std::lock_guard<std::mutex> lock(mutex_);
    progress_ = std::move(json);
  }

  [[nodiscard]] std::string metrics() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_;
  }

  [[nodiscard]] std::string progress() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return progress_;
  }

 private:
  mutable std::mutex mutex_;
  std::string metrics_;
  std::string progress_ = "{}\n";
};

/// Blocking-accept HTTP server on its own thread, bound to 127.0.0.1.
///
/// Routes: GET /metrics (Prometheus text), GET /progress (JSON),
/// GET /healthz ("ok"). Anything else: 404; non-GET: 405; requests that
/// are not parseable HTTP: 400.
///
/// Throws std::runtime_error from the constructor when the port cannot
/// be bound (already in use, no permission). Pass port 0 to bind an
/// ephemeral port and read it back via port().
class HttpServer {
 public:
  HttpServer(const SnapshotHub& hub, std::uint16_t port);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The actually bound port (== constructor arg unless that was 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stop accepting and join the server thread (idempotent; the
  /// destructor calls it).
  void stop();

 private:
  void serve();
  void handle_connection(int client_fd);

  const SnapshotHub& hub_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe to break out of poll()
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace ecocloud::obs
