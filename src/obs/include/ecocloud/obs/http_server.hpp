#pragma once

/// \file http_server.hpp
/// \brief Minimal embedded HTTP server: live scrapes and the campaign API.
///
/// Two operating modes share one socket loop:
///
///  * **Observer mode** (the original PR-8 plane): the simulation thread
///    renders its exports (Prometheus text, progress JSON) into strings at
///    safe points and publishes them into a SnapshotHub; the server thread
///    serves only those cached strings under the hub mutex. A scrape can
///    never block or perturb the run.
///  * **Handler mode** (the campaign server): the caller supplies an
///    HttpHandler that receives parsed requests — including POST bodies —
///    and returns a response. The handler runs on the server thread; the
///    campaign control plane guards its own state with its own mutex.
///
/// The connection layer owns everything a hostile or broken client could
/// break: a per-connection *total* deadline (not just a per-recv timeout)
/// so a slow-loris drip cannot wedge the serial accept loop (408), a hard
/// cap on the request head and on the declared Content-Length (413), and
/// SO_REUSEADDR on the listening socket so a drain-and-restart cycle never
/// hits a TIME_WAIT bind conflict.
///
/// Scope: Connection: close, serial request handling on one thread. That
/// is deliberate — the consumers are `curl`, a Prometheus scraper, and a
/// handful of campaign submissions, not a web tier.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ecocloud::obs {

/// Thread-safe mailbox of the latest rendered exports.
class SnapshotHub {
 public:
  void publish_metrics(std::string prometheus_text) {
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = std::move(prometheus_text);
  }

  void publish_progress(std::string json) {
    std::lock_guard<std::mutex> lock(mutex_);
    progress_ = std::move(json);
  }

  [[nodiscard]] std::string metrics() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_;
  }

  [[nodiscard]] std::string progress() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return progress_;
  }

 private:
  mutable std::mutex mutex_;
  std::string metrics_;
  std::string progress_ = "{}\n";
};

/// One parsed request as handed to an HttpHandler. The body is complete
/// (Content-Length fully read) and within the configured cap.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", "DELETE", ...
  std::string target;  ///< Path with the query string stripped.
  std::string query;   ///< Raw query string after '?', possibly empty.
  std::string body;    ///< Request body, empty unless Content-Length > 0.
};

/// Response returned by an HttpHandler; serialized with Connection: close
/// and an exact Content-Length.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
  /// Extra header lines without CRLF, e.g. "Retry-After: 5".
  std::vector<std::string> extra_headers;

  [[nodiscard]] static HttpResponse text(int status, std::string body);
  [[nodiscard]] static HttpResponse json(int status, std::string body);
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Hard limits of the connection layer. Violations are answered with 408
/// (deadline exceeded before a full request arrived) or 413 (head or
/// declared body larger than the cap); the connection is then closed.
struct HttpLimits {
  std::size_t max_head_bytes = 8192;
  std::size_t max_body_bytes = 1 << 20;  ///< 1 MiB
  /// Per-poll recv timeout; bounded by what remains of the deadline.
  int read_timeout_ms = 2000;
  /// Total wall budget for receiving one complete request.
  int connection_deadline_ms = 5000;
};

/// Blocking-accept HTTP server on its own thread, bound to 127.0.0.1.
///
/// Observer mode routes: GET /metrics (Prometheus text), GET /progress
/// (JSON), GET /healthz ("ok"). Anything else: 404; non-GET: 405;
/// requests that are not parseable HTTP: 400. Handler mode forwards every
/// well-formed request to the handler instead.
///
/// Throws std::runtime_error from the constructor when the port cannot
/// be bound (already in use, no permission). Pass port 0 to bind an
/// ephemeral port and read it back via port().
class HttpServer {
 public:
  /// Observer mode: serve cached hub snapshots, GET only.
  HttpServer(const SnapshotHub& hub, std::uint16_t port);

  /// Handler mode: parse requests (with bodies) and dispatch to \p handler
  /// on the server thread.
  HttpServer(HttpHandler handler, std::uint16_t port, HttpLimits limits = {});

  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The actually bound port (== constructor arg unless that was 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stop accepting and join the server thread (idempotent; the
  /// destructor calls it).
  void stop();

 private:
  void bind_and_start(std::uint16_t port);
  void serve();
  void handle_connection(int client_fd);

  HttpHandler handler_;
  HttpLimits limits_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe to break out of poll()
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace ecocloud::obs
