#pragma once

/// \file progress.hpp
/// \brief Run-progress telemetry: events/s, ETA, RSS, per-shard lag.
///
/// ProgressTracker converts (sim-time, events-executed) samples taken at
/// safe points into a JSON document for the /progress endpoint and an
/// optional human-readable stderr ticker. It reads only values handed to
/// it — never simulation state — so it cannot perturb a run.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ecocloud::obs {

/// VmRSS from /proc/self/status, in MiB (0.0 when unavailable).
[[nodiscard]] double current_rss_mb();
/// VmHWM (peak RSS) from /proc/self/status, in MiB (0.0 when unavailable).
[[nodiscard]] double peak_rss_mb();

struct ShardProgress {
  int shard = 0;
  double epoch_wall_s = 0.0;   ///< wall time this shard spent on the last epoch
  double barrier_lag_s = 0.0;  ///< slowest-shard wall time minus own
  std::uint64_t events = 0;    ///< events executed so far
};

class ProgressTracker {
 public:
  /// Call once before the run starts; anchors wall-clock zero.
  void begin(double sim_start_s, double horizon_s);

  /// Feed the latest safe-point sample.
  void update(double sim_now_s, std::uint64_t events);

  /// Replace the per-shard rows (sharded runs only).
  void set_shards(std::vector<ShardProgress> shards);

  /// Render the current state as a JSON object (trailing newline).
  [[nodiscard]] std::string to_json() const;

  /// Emit a one-line ticker to \p out if at least \p min_interval_s of
  /// wall time passed since the last emission. Returns true when a line
  /// was written.
  bool maybe_tick(std::FILE* out, double min_interval_s = 1.0);

  [[nodiscard]] double events_per_sec() const { return events_per_sec_; }
  [[nodiscard]] double wall_seconds() const;
  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  double sim_start_s_ = 0.0;
  double horizon_s_ = 0.0;
  double sim_now_s_ = 0.0;
  std::uint64_t events_ = 0;
  std::uint64_t wall_start_ns_ = 0;
  std::uint64_t wall_now_ns_ = 0;

  // Windowed rates: anchor advances only when the window is wide enough,
  // so the reported rate smooths over at least a couple of wall seconds.
  double events_per_sec_ = 0.0;
  double sim_per_wall_ = 0.0;
  std::uint64_t window_start_ns_ = 0;
  std::uint64_t window_events_ = 0;
  double window_sim_s_ = 0.0;

  std::uint64_t last_tick_ns_ = 0;
  std::vector<ShardProgress> shards_;
};

}  // namespace ecocloud::obs
