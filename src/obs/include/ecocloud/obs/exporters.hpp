#pragma once

/// \file exporters.hpp
/// \brief Registry serializers: Prometheus text exposition and JSON.
///
/// write_prometheus emits the text exposition format version 0.0.4
/// (HELP/TYPE comments, one sample per line, histograms expanded into
/// cumulative _bucket{le=...}, _sum and _count series) so a scrape of the
/// file — or a pushgateway upload — works unmodified. write_json emits a
/// single snapshot object, the shape consumed by dashboards and by the CI
/// telemetry validator.
///
/// Callback-backed metrics are sampled once per export; exporting is the
/// only moment the telemetry layer reads simulation state.

#include <iosfwd>

#include "ecocloud/obs/metric_registry.hpp"

namespace ecocloud::obs {

/// Prometheus text exposition format 0.0.4.
void write_prometheus(const MetricRegistry& registry, std::ostream& out);

/// JSON snapshot: {"metrics":[{"name":...,"type":...,"help":...,
/// "series":[{"labels":{...},"value":...}...]}...]}.
void write_json(const MetricRegistry& registry, std::ostream& out);

}  // namespace ecocloud::obs
