#pragma once

/// \file logger.hpp
/// \brief Leveled structured logger emitting JSONL with sim-time context.
///
/// Every record is one JSON object per line:
///
///   {"ts_sim":1234.5,"level":"info","component":"controller",
///    "msg":"server crashed","server":17}
///
/// ts_sim is simulation time in seconds, read from an injected clock (the
/// simulator's now()) so log lines line up with trace events and metric
/// flushes. A default-constructed logger is off: no sink, level kOff, and
/// the enabled(level) check is a two-comparison fast path, so instrumented
/// code can log unconditionally without measurable cost in silent runs.
///
/// The logger never touches simulation state — pure observer, like the
/// rest of the obs layer.

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace ecocloud::obs {

enum class LogLevel : std::uint8_t { kTrace, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] const char* to_string(LogLevel level);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-sensitive);
/// empty optional on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

/// One structured field of a log record. Cheap to construct at the call
/// site; referenced strings must outlive the log() call (they are copied
/// into the output immediately).
struct LogField {
  enum class Kind : std::uint8_t { kInt, kUint, kDouble, kBool, kString };

  LogField(std::string_view k, std::int64_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  LogField(std::string_view k, std::uint64_t v)
      : key(k), kind(Kind::kUint), u(v) {}
  LogField(std::string_view k, int v)
      : key(k), kind(Kind::kInt), i(v) {}
  LogField(std::string_view k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  LogField(std::string_view k, bool v)
      : key(k), kind(Kind::kBool), b(v) {}
  LogField(std::string_view k, std::string_view v)
      : key(k), kind(Kind::kString), s(v) {}
  LogField(std::string_view k, const char* v)
      : key(k), kind(Kind::kString), s(v) {}

  std::string_view key;
  Kind kind;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;
  std::string_view s;
};

class Logger {
 public:
  /// Off by default: no sink, threshold kOff.
  Logger() = default;

  /// \p out receives one JSON object per line; nullptr silences the
  /// logger. Not owned; must outlive the logger while attached.
  void set_sink(std::ostream* out) { sink_ = out; }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Sim-time source for the ts_sim field; unset logs ts_sim 0.
  void set_clock(std::function<double()> now) { now_ = std::move(now); }

  /// Bind one field that is appended to every record (after msg, before
  /// the call-site fields). Sharded runs bind {"shard": k} so the merged
  /// JSONL stream keeps its provenance. Empty key (default) emits nothing.
  void bind_field(std::string key, std::uint64_t value) {
    bound_key_ = std::move(key);
    bound_value_ = value;
  }

  /// Fast gate for call sites that build expensive fields.
  [[nodiscard]] bool enabled(LogLevel level) const {
    return sink_ != nullptr && level >= level_ && level_ != LogLevel::kOff;
  }

  void log(LogLevel level, std::string_view component, std::string_view msg,
           std::initializer_list<LogField> fields = {});

  void trace(std::string_view component, std::string_view msg,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kTrace, component, msg, fields);
  }
  void debug(std::string_view component, std::string_view msg,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kDebug, component, msg, fields);
  }
  void info(std::string_view component, std::string_view msg,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kInfo, component, msg, fields);
  }
  void warn(std::string_view component, std::string_view msg,
            std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kWarn, component, msg, fields);
  }
  void error(std::string_view component, std::string_view msg,
             std::initializer_list<LogField> fields = {}) {
    log(LogLevel::kError, component, msg, fields);
  }

  /// Flush the sink (periodic flush hook; long runs stay tail -f-able).
  void flush();

  /// Records written since construction (tests, flush diagnostics).
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  std::ostream* sink_ = nullptr;
  LogLevel level_ = LogLevel::kOff;
  std::function<double()> now_;
  std::string bound_key_;
  std::uint64_t bound_value_ = 0;
  std::uint64_t lines_ = 0;
};

/// Append \p text to \p out as a JSON string literal (with quotes),
/// escaping per RFC 8259. Shared with the exporters.
void append_json_string(std::string& out, std::string_view text);

}  // namespace ecocloud::obs
