#pragma once

/// \file instrumentation.hpp
/// \brief Wires the telemetry primitives into the running simulation.
///
/// Instrumentation is the only piece of the obs module that knows about
/// the rest of the codebase. It attaches to each layer in one of two
/// ways, both chosen so the simulation stays bit-identical with or
/// without telemetry (the "pure observer" invariant pinned by
/// ObsRegression.EventStreamBitIdenticalWithTelemetry):
///
///  * **Pull**: counters and gauges the layers already maintain
///    (EngineStats, DataCenter lifetime counters, MessageLog, the
///    Bernoulli tallies) are exposed through callback-backed registry
///    instances. The hot paths are untouched; the callback runs only
///    when an exporter samples the registry.
///  * **Chain**: controller Events callbacks are wrapped, preserving any
///    previously installed subscriber (same pattern as
///    metrics::EventLog::attach). The wrappers count, log, and emit
///    trace spans but never draw from any RNG and never schedule
///    simulation work.
///
/// The optional periodic flush (start_flush) is the one place telemetry
/// enters the event queue. Its event executes no simulation logic, so it
/// shifts sequence numbers uniformly without reordering any decision;
/// executed_events() differs between instrumented and bare runs, the
/// decision event stream does not.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "ecocloud/core/controller.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/faults/fault_injector.hpp"
#include "ecocloud/obs/chrome_trace.hpp"
#include "ecocloud/obs/logger.hpp"
#include "ecocloud/obs/metric_registry.hpp"
#include "ecocloud/sim/simulator.hpp"

namespace ecocloud::obs {

/// Pull-mode snapshot of the robustness machinery (checkpoint manager +
/// runtime auditor), supplied by a callback so obs stays decoupled from
/// the ckpt module.
struct RobustnessSample {
  std::uint64_t checkpoints_written = 0;
  std::uint64_t snapshot_bytes_last = 0;
  double save_wall_seconds_total = 0.0;
  std::uint64_t audits_run = 0;
  std::uint64_t audits_failed = 0;
  std::uint64_t heals_applied = 0;
};

/// Identity of the shard an Instrumentation observes. A sharded run gives
/// every shard its own Instrumentation over ONE shared registry: the
/// shard label keeps the series apart, the pid offset keeps the trace
/// track groups apart, and the id translations rewrite local server/VM
/// ids into the global namespace so merged telemetry reads like the
/// single-threaded run's. Default-constructed = not sharded (no label,
/// no offset, ids pass through).
struct ShardContext {
  bool sharded = false;
  std::size_t shard = 0;
  /// Local server id -> global server id (ShardPlan::global_server).
  std::function<std::uint64_t(std::uint64_t)> global_server;
  /// Local VM id -> global trace row (Shard::trace_of).
  std::function<std::uint64_t(std::uint64_t)> global_vm;
};

class Instrumentation {
 public:
  /// Snapshot-stable event kinds (tag_owner::kObsFlush). Append only.
  enum EventKind : std::uint16_t { kEvFlush = 1 };

  /// \p registry and \p logger must outlive the Instrumentation; \p trace
  /// may be null to disable timeline capture. None of them are owned.
  Instrumentation(MetricRegistry& registry, Logger& logger,
                  ChromeTraceWriter* trace = nullptr, ShardContext shard = {});

  /// Register pull-mode metrics over the event kernel's EngineStats.
  void attach_engine(const sim::Simulator& simulator);

  /// Register pull-mode fleet/energy metrics. Must be called before
  /// attach_controller when a trace writer is present: the server-state
  /// timeline needs the initial state of every server.
  void attach_datacenter(const dc::DataCenter& datacenter);

  /// Chain the controller's Events callbacks (preserving existing
  /// subscribers) and register pull-mode metrics over its lifetime
  /// counters, MessageLog, and the fa/fl/fh Bernoulli tallies. Attach
  /// any other subscriber (EventLog, MetricsCollector) first so it is
  /// not displaced.
  void attach_controller(core::EcoCloudController& controller);

  /// Register pull-mode metrics over the fault injector's resilience
  /// stats and redeploy queue.
  void attach_faults(const faults::FaultInjector& injector);

  /// Register pull-mode metrics over the checkpoint/audit machinery.
  /// \p sample is polled when an exporter reads the registry.
  void attach_robustness(std::function<RobustnessSample()> sample);

  /// Schedule a periodic sim-time hook that flushes the logger and, when
  /// tracing, samples fleet counters onto the timeline. The event runs
  /// no simulation logic (see file comment for the determinism argument).
  /// Do not call on a resumed run: the tagged flush event comes back with
  /// the imported calendar (register make_flush_callback for it).
  void start_flush(sim::Simulator& simulator, sim::SimTime period_s);

  /// The flush event's body, for checkpoint restore (tag_owner::kObsFlush).
  [[nodiscard]] sim::Simulator::Callback make_flush_callback(
      sim::Simulator& simulator);

  /// Flush the logger and sample the trace counters right now. The
  /// sharded coordinator drives this from its barrier hook instead of
  /// start_flush: no calendar event means no seq perturbation, so the
  /// telemetry-off bit-identity holds exactly (not just modulo seq).
  void flush_now(sim::SimTime now);

  /// Extra work to run at the end of every flush (periodic event or
  /// manual flush_now): the live observability plane publishes its
  /// /metrics and /progress snapshots here. Survives checkpoint resume —
  /// the rebuilt flush callback goes through flush_now too.
  void set_flush_hook(std::function<void(sim::SimTime)> hook) {
    flush_hook_ = std::move(hook);
  }

  /// Close open trace spans (server states, in-flight migrations) at
  /// \p end and flush the logger. Call once, after the run.
  void finalize(sim::SimTime end);

  [[nodiscard]] MetricRegistry& registry() { return registry_; }
  [[nodiscard]] Logger& logger() { return logger_; }

 private:
  void open_server_span(dc::ServerId server, const char* state,
                        sim::SimTime at);
  void close_server_span(dc::ServerId server, sim::SimTime at);
  void sample_trace_counters(sim::SimTime now);

  /// Shard-aware wrappers: label sets gain {"shard", k}, trace pids shift
  /// by 3*k, and ids translate to global — all identity when not sharded.
  [[nodiscard]] Labels labels(Labels base) const;
  [[nodiscard]] int pid(int base) const;
  [[nodiscard]] std::uint64_t gsrv(dc::ServerId server) const;
  [[nodiscard]] std::uint64_t gvm(dc::VmId vm) const;

  MetricRegistry& registry_;
  Logger& logger_;
  ChromeTraceWriter* trace_;
  ShardContext shard_;
  std::function<void(sim::SimTime)> flush_hook_;

  const dc::DataCenter* dc_ = nullptr;

  // Owned (push-mode) counters bumped from the chained callbacks.
  Counter* ev_assignment_ = nullptr;
  Counter* ev_assignment_failure_ = nullptr;
  Counter* ev_migration_start_low_ = nullptr;
  Counter* ev_migration_start_high_ = nullptr;
  Counter* ev_migration_complete_low_ = nullptr;
  Counter* ev_migration_complete_high_ = nullptr;
  Counter* ev_migration_aborted_ = nullptr;
  Counter* ev_activation_ = nullptr;
  Counter* ev_hibernation_ = nullptr;
  Counter* ev_wake_ = nullptr;
  Counter* ev_server_failed_ = nullptr;
  Counter* ev_server_repaired_ = nullptr;
  Counter* ev_vm_orphaned_ = nullptr;
  Histogram* wake_latency_ = nullptr;

  /// Wake-command time per server, matched against on_activation to
  /// observe the wake-to-active latency.
  std::unordered_map<dc::ServerId, sim::SimTime> wake_sent_at_;

  /// Open trace spans: current state name and its start time, per server.
  struct OpenSpan {
    std::string state;
    sim::SimTime since = 0.0;
  };
  std::unordered_map<dc::ServerId, OpenSpan> server_spans_;
  /// In-flight migration spans: start time and kind, per VM.
  struct OpenMigration {
    sim::SimTime since = 0.0;
    bool is_high = false;
  };
  std::unordered_map<dc::VmId, OpenMigration> migration_spans_;

  bool finalized_ = false;
};

}  // namespace ecocloud::obs
