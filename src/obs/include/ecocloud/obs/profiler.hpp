#pragma once

/// \file profiler.hpp
/// \brief Export facade over util::PhaseProfiler.
///
/// The accounting core lives in util (so sim/core/ckpt/par can emit
/// samples without depending on obs); this class owns the export side:
/// mirroring per-phase totals and duration histograms into the
/// MetricRegistry, emitting Chrome-trace counter tracks, the
/// flamegraph-ready folded-stacks dump, and the self-measured overhead
/// number the CI budget checks.

#include <cstdio>
#include <string>
#include <vector>

#include "ecocloud/obs/metric_registry.hpp"
#include "ecocloud/util/phase_profiler.hpp"

namespace ecocloud::obs {

class ChromeTraceWriter;

class Profiler {
 public:
  /// Registers one series per (domain, phase) in \p registry:
  ///   ecocloud_profile_phase_calls_total        (counter, pull)
  ///   ecocloud_profile_phase_ns_total           (counter, pull; estimate)
  ///   ecocloud_profile_phase_duration_seconds   (histogram, via publish())
  ///   ecocloud_profile_overhead_ratio           (gauge, pull)
  /// Labels: {phase=...} always; plus {domain=...} when the profiler has
  /// more than one domain (shard0..shardN-1, coordinator).
  /// Both referents must outlive this object.
  Profiler(util::PhaseProfiler& core, MetricRegistry& registry);

  [[nodiscard]] util::PhaseProfiler& core() { return core_; }

  /// Mirror the duration histograms into the registry and remember total
  /// run wall time (denominator of overhead_ratio()). Call at safe points
  /// (flush event, barrier) and once at the end.
  void publish(double run_wall_seconds);

  /// Cumulative per-phase estimated milliseconds as a counter sample on
  /// the counters track, so the phase mix is visible on the timeline.
  void emit_counter_track(ChromeTraceWriter& trace, double sim_now_s);

  void write_folded(std::ostream& out) const { core_.write_folded(out); }

  /// Estimated self-cost over run wall time (0 before first publish()).
  [[nodiscard]] double overhead_ratio() const;

  /// One-line-per-phase human summary (estimated seconds, calls, share).
  void print_summary(std::FILE* out) const;

 private:
  util::PhaseProfiler& core_;
  MetricRegistry& registry_;
  double run_wall_seconds_ = 0.0;
  // Registered at construction, refreshed wholesale in publish().
  std::vector<Histogram*> duration_hists_;  // num_domains * kNumPhases
};

}  // namespace ecocloud::obs
