#pragma once

/// \file chrome_trace.hpp
/// \brief Chrome trace-event (Perfetto-loadable) timeline writer.
///
/// Collects trace events in memory and serializes them as the JSON object
/// format understood by ui.perfetto.dev and chrome://tracing:
///
///   {"traceEvents":[{"name":"active","ph":"X","ts":0,"dur":120000000,
///                    "pid":1,"tid":17,...}, ...],
///    "displayTimeUnit":"ms"}
///
/// Simulation seconds map to trace microseconds, so one sim-hour reads as
/// an hour on the timeline. The instrumentation layer renders server state
/// residencies as complete ("X") slices on one track per server,
/// migrations as slices on per-VM tracks in a second process group, and
/// fleet-level counter samples ("C") that Perfetto draws as area charts.
///
/// Purely a recorder: nothing here reads or mutates simulation state.

#include <cstdint>
#include <iosfwd>
#include <iterator>
#include <string>
#include <vector>

namespace ecocloud::obs {

class ChromeTraceWriter {
 public:
  /// Process ids of the standard track groups (metadata names them).
  static constexpr int kServersPid = 1;
  static constexpr int kMigrationsPid = 2;
  static constexpr int kCountersPid = 3;

  /// One key/value argument of an event ("args" in the format).
  struct Arg {
    Arg(std::string k, std::int64_t v)
        : key(std::move(k)), number(static_cast<double>(v)), is_number(true) {}
    Arg(std::string k, double v)
        : key(std::move(k)), number(v), is_number(true) {}
    Arg(std::string k, std::string v)
        : key(std::move(k)), text(std::move(v)) {}
    std::string key;
    std::string text;
    double number = 0.0;
    bool is_number = false;
  };

  /// Complete event ("X"): a slice from \p start_s lasting \p duration_s.
  void complete(std::string name, std::string category, double start_s,
                double duration_s, int pid, int tid, std::vector<Arg> args = {});

  /// Instant event ("i", thread scope).
  void instant(std::string name, std::string category, double time_s, int pid,
               int tid, std::vector<Arg> args = {});

  /// Counter sample ("C"): one series per Arg, drawn as a stacked chart.
  void counter(std::string name, double time_s, int pid,
               std::vector<Arg> values);

  /// Metadata: name the track (thread) \p tid of process \p pid.
  void name_thread(int pid, int tid, std::string name);

  /// Metadata: name the process \p pid.
  void name_process(int pid, std::string name);

  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Append every event of \p other to this writer (merging per-shard
  /// timelines into one trace file). Call in shard order so the merged
  /// event order — and the serialized bytes — are deterministic; the
  /// per-shard pid offsets keep the track groups disjoint.
  void absorb(ChromeTraceWriter&& other) {
    events_.insert(events_.end(),
                   std::make_move_iterator(other.events_.begin()),
                   std::make_move_iterator(other.events_.end()));
    other.events_.clear();
  }

  /// Serialize all events as one JSON trace object.
  void write(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase = 'X';
    double ts_us = 0.0;
    double dur_us = 0.0;
    int pid = 0;
    int tid = 0;
    std::vector<Arg> args;
    bool is_metadata = false;
  };

  std::vector<Event> events_;
};

}  // namespace ecocloud::obs
