#pragma once

/// \file metric_registry.hpp
/// \brief Label-aware metric registry: counters, gauges, histograms.
///
/// MetricRegistry is the telemetry layer's single collection point. A
/// metric family is identified by name (Prometheus naming rules) and
/// carries a type and a help string; instances within a family differ by
/// their label sets. Registration is idempotent: asking twice for the same
/// (name, labels) pair returns the same object, so independent
/// instrumentation sites can share a series.
///
/// Two flavors of instrument coexist:
///  * owned metrics (counter/gauge/histogram) hold their value and are
///    updated push-style through inc()/set()/observe();
///  * callback-backed metrics (counter_fn/gauge_fn) pull their value from
///    a sampler at export time — the right shape for state that already
///    lives in the simulation (queue depths, lifetime counters), because
///    the hot path is never touched at all.
///
/// The registry is a pure observer by construction: nothing here draws
/// random numbers, schedules events, or mutates simulation state. When the
/// registry is disabled (set_enabled(false)) registration hands out a
/// shared sink instance that exporters never visit, so instrumented code
/// keeps working against dead-cheap no-op objects.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ecocloud::obs {

/// Label set of one metric instance: (key, value) pairs, stored sorted by
/// key so label order at the call site never creates duplicate series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricType type);

/// Monotonic counter. Either owned (inc()) or callback-backed.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }

  /// Current value; callback-backed counters sample their source.
  [[nodiscard]] std::uint64_t value() const { return fn_ ? fn_() : value_; }

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::uint64_t value_ = 0;
  std::function<std::uint64_t()> fn_;
};

/// Point-in-time gauge. Either owned (set()/add()) or callback-backed.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }

  [[nodiscard]] double value() const { return fn_ ? fn_() : value_; }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  double value_ = 0.0;
  std::function<double()> fn_;
};

/// Fixed-bucket histogram: observations are classified into the first
/// bucket whose upper bound is >= the value, Prometheus-style (an implicit
/// +Inf bucket catches the rest). Bounds are fixed at registration and
/// must all be finite (a +Inf bound would duplicate the implicit bucket in
/// the exposition). observe() is a binary search plus two adds — no
/// allocation, ever.
class Histogram {
 public:
  /// Non-finite observations (NaN, ±Inf) land in the +Inf bucket and are
  /// excluded from sum() so the exposition stays parseable.
  void observe(double value);

  /// Overwrite the bucket counts and sum wholesale (count() becomes the
  /// bucket total). For mirroring an externally aggregated histogram —
  /// e.g. the phase profiler's — into the registry at publish time.
  /// \p bucket_counts must have upper_bounds().size() + 1 entries.
  void reset_to(const std::vector<std::uint64_t>& bucket_counts, double sum);

  /// Finite upper bounds, strictly increasing (the +Inf bucket is implied).
  [[nodiscard]] const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Per-bucket counts, bounds().size() + 1 entries (last is +Inf).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  friend class MetricRegistry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Register (or look up) an owned metric instance. Type and name are
  /// validated; re-registering with a conflicting type throws.
  Counter& counter(const std::string& name, Labels labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, Labels labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       Labels labels = {}, const std::string& help = "");

  /// Register a callback-backed instance; \p fn is sampled at export time
  /// and must stay valid while the registry lives. Re-registering the same
  /// (name, labels) replaces the sampler.
  Counter& counter_fn(const std::string& name, std::function<std::uint64_t()> fn,
                      Labels labels = {}, const std::string& help = "");
  Gauge& gauge_fn(const std::string& name, std::function<double()> fn,
                  Labels labels = {}, const std::string& help = "");

  /// Look up an existing instance; nullptr when never registered — the
  /// cheap probe for optional instrumentation sites.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name,
                                                const Labels& labels = {}) const;

  /// Disabled registries hand out shared sink instances that exporters
  /// skip, so instrumentation code runs unchanged at near-zero cost.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // --- Export-side iteration ------------------------------------------------

  struct Instance {
    Labels labels;
    // Exactly one is non-null, matching the family type.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::vector<Instance> instances;
  };

  /// Families in registration order (exporters iterate this).
  [[nodiscard]] const std::vector<std::unique_ptr<Family>>& families() const {
    return families_;
  }

  /// Total registered instances across all families.
  [[nodiscard]] std::size_t num_instances() const;

 private:
  Family& family(const std::string& name, MetricType type, const std::string& help);
  Instance& instance(Family& fam, Labels labels);
  [[nodiscard]] const Instance* find(const std::string& name, const Labels& labels,
                                     MetricType type) const;

  std::vector<std::unique_ptr<Family>> families_;
  bool enabled_ = true;

  // Shared sinks handed out while disabled (never exported).
  std::unique_ptr<Counter> sink_counter_;
  std::unique_ptr<Gauge> sink_gauge_;
  std::vector<std::unique_ptr<Histogram>> sink_histograms_;
};

}  // namespace ecocloud::obs
