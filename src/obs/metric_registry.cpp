#include "ecocloud/obs/metric_registry.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

// Label names share the metric-name grammar minus ':' (reserved for
// recording rules) per the Prometheus exposition format.
bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

Labels normalized(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  util::require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "Histogram: bucket bounds must be strictly increasing");
  util::require(
      std::all_of(bounds_.begin(), bounds_.end(),
                  [](double b) { return std::isfinite(b); }),
      "Histogram: bucket bounds must be finite (+Inf bucket is implicit)");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  if (!std::isfinite(value)) {
    // NaN would otherwise land in the first bucket (lower_bound semantics)
    // and poison sum_; route it to the overflow bucket and keep the sum
    // finite so the exposition stays parseable.
    ++counts_.back();
    ++count_;
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

void Histogram::reset_to(const std::vector<std::uint64_t>& bucket_counts,
                         double sum) {
  util::require(bucket_counts.size() == counts_.size(),
                "Histogram::reset_to: bucket count mismatch");
  counts_ = bucket_counts;
  count_ = std::accumulate(counts_.begin(), counts_.end(),
                           std::uint64_t{0});
  sum_ = sum;
}

MetricRegistry::Family& MetricRegistry::family(const std::string& name,
                                               MetricType type,
                                               const std::string& help) {
  util::require(valid_metric_name(name),
                "MetricRegistry: invalid metric name '" + name + "'");
  for (auto& fam : families_) {
    if (fam->name == name) {
      util::require(fam->type == type,
                    "MetricRegistry: '" + name + "' re-registered as " +
                        to_string(type) + ", was " + to_string(fam->type));
      if (fam->help.empty()) fam->help = help;
      return *fam;
    }
  }
  families_.push_back(std::make_unique<Family>());
  Family& fam = *families_.back();
  fam.name = name;
  fam.help = help;
  fam.type = type;
  return fam;
}

MetricRegistry::Instance& MetricRegistry::instance(Family& fam, Labels labels) {
  for (const auto& [key, value] : labels) {
    util::require(valid_label_name(key),
                  "MetricRegistry: invalid label name '" + key + "' on '" +
                      fam.name + "'");
    util::require(fam.type != MetricType::kHistogram || key != "le",
                  "MetricRegistry: label 'le' is reserved on histogram '" +
                      fam.name + "'");
    (void)value;
  }
  labels = normalized(std::move(labels));
  for (auto& inst : fam.instances) {
    if (inst.labels == labels) return inst;
  }
  fam.instances.push_back(Instance{});
  fam.instances.back().labels = std::move(labels);
  return fam.instances.back();
}

const MetricRegistry::Instance* MetricRegistry::find(const std::string& name,
                                                     const Labels& labels,
                                                     MetricType type) const {
  const Labels key = normalized(labels);
  for (const auto& fam : families_) {
    if (fam->name != name || fam->type != type) continue;
    for (const auto& inst : fam->instances) {
      if (inst.labels == key) return &inst;
    }
  }
  return nullptr;
}

Counter& MetricRegistry::counter(const std::string& name, Labels labels,
                                 const std::string& help) {
  if (!enabled_) {
    if (!sink_counter_) sink_counter_.reset(new Counter());
    return *sink_counter_;
  }
  Instance& inst = instance(family(name, MetricType::kCounter, help),
                            std::move(labels));
  if (!inst.counter) inst.counter.reset(new Counter());
  return *inst.counter;
}

Gauge& MetricRegistry::gauge(const std::string& name, Labels labels,
                             const std::string& help) {
  if (!enabled_) {
    if (!sink_gauge_) sink_gauge_.reset(new Gauge());
    return *sink_gauge_;
  }
  Instance& inst =
      instance(family(name, MetricType::kGauge, help), std::move(labels));
  if (!inst.gauge) inst.gauge.reset(new Gauge());
  return *inst.gauge;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::vector<double> upper_bounds,
                                     Labels labels, const std::string& help) {
  if (!enabled_) {
    // Each disabled histogram still needs its own bounds to stay usable.
    sink_histograms_.emplace_back(new Histogram(std::move(upper_bounds)));
    return *sink_histograms_.back();
  }
  Instance& inst =
      instance(family(name, MetricType::kHistogram, help), std::move(labels));
  if (!inst.histogram) inst.histogram.reset(new Histogram(std::move(upper_bounds)));
  return *inst.histogram;
}

Counter& MetricRegistry::counter_fn(const std::string& name,
                                    std::function<std::uint64_t()> fn,
                                    Labels labels, const std::string& help) {
  Counter& c = counter(name, std::move(labels), help);
  if (enabled_) c.fn_ = std::move(fn);
  return c;
}

Gauge& MetricRegistry::gauge_fn(const std::string& name,
                                std::function<double()> fn, Labels labels,
                                const std::string& help) {
  Gauge& g = gauge(name, std::move(labels), help);
  if (enabled_) g.fn_ = std::move(fn);
  return g;
}

const Counter* MetricRegistry::find_counter(const std::string& name,
                                            const Labels& labels) const {
  const Instance* inst = find(name, labels, MetricType::kCounter);
  return inst ? inst->counter.get() : nullptr;
}

const Gauge* MetricRegistry::find_gauge(const std::string& name,
                                        const Labels& labels) const {
  const Instance* inst = find(name, labels, MetricType::kGauge);
  return inst ? inst->gauge.get() : nullptr;
}

const Histogram* MetricRegistry::find_histogram(const std::string& name,
                                                const Labels& labels) const {
  const Instance* inst = find(name, labels, MetricType::kHistogram);
  return inst ? inst->histogram.get() : nullptr;
}

std::size_t MetricRegistry::num_instances() const {
  std::size_t n = 0;
  for (const auto& fam : families_) n += fam->instances.size();
  return n;
}

}  // namespace ecocloud::obs
