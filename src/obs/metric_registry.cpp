#include "ecocloud/obs/metric_registry.hpp"

#include <algorithm>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

Labels normalized(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  util::require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "Histogram: bucket bounds must be strictly increasing");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

MetricRegistry::Family& MetricRegistry::family(const std::string& name,
                                               MetricType type,
                                               const std::string& help) {
  util::require(valid_metric_name(name),
                "MetricRegistry: invalid metric name '" + name + "'");
  for (auto& fam : families_) {
    if (fam->name == name) {
      util::require(fam->type == type,
                    "MetricRegistry: '" + name + "' re-registered as " +
                        to_string(type) + ", was " + to_string(fam->type));
      if (fam->help.empty()) fam->help = help;
      return *fam;
    }
  }
  families_.push_back(std::make_unique<Family>());
  Family& fam = *families_.back();
  fam.name = name;
  fam.help = help;
  fam.type = type;
  return fam;
}

MetricRegistry::Instance& MetricRegistry::instance(Family& fam, Labels labels) {
  labels = normalized(std::move(labels));
  for (auto& inst : fam.instances) {
    if (inst.labels == labels) return inst;
  }
  fam.instances.push_back(Instance{});
  fam.instances.back().labels = std::move(labels);
  return fam.instances.back();
}

const MetricRegistry::Instance* MetricRegistry::find(const std::string& name,
                                                     const Labels& labels,
                                                     MetricType type) const {
  const Labels key = normalized(labels);
  for (const auto& fam : families_) {
    if (fam->name != name || fam->type != type) continue;
    for (const auto& inst : fam->instances) {
      if (inst.labels == key) return &inst;
    }
  }
  return nullptr;
}

Counter& MetricRegistry::counter(const std::string& name, Labels labels,
                                 const std::string& help) {
  if (!enabled_) {
    if (!sink_counter_) sink_counter_.reset(new Counter());
    return *sink_counter_;
  }
  Instance& inst = instance(family(name, MetricType::kCounter, help),
                            std::move(labels));
  if (!inst.counter) inst.counter.reset(new Counter());
  return *inst.counter;
}

Gauge& MetricRegistry::gauge(const std::string& name, Labels labels,
                             const std::string& help) {
  if (!enabled_) {
    if (!sink_gauge_) sink_gauge_.reset(new Gauge());
    return *sink_gauge_;
  }
  Instance& inst =
      instance(family(name, MetricType::kGauge, help), std::move(labels));
  if (!inst.gauge) inst.gauge.reset(new Gauge());
  return *inst.gauge;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::vector<double> upper_bounds,
                                     Labels labels, const std::string& help) {
  if (!enabled_) {
    // Each disabled histogram still needs its own bounds to stay usable.
    sink_histograms_.emplace_back(new Histogram(std::move(upper_bounds)));
    return *sink_histograms_.back();
  }
  Instance& inst =
      instance(family(name, MetricType::kHistogram, help), std::move(labels));
  if (!inst.histogram) inst.histogram.reset(new Histogram(std::move(upper_bounds)));
  return *inst.histogram;
}

Counter& MetricRegistry::counter_fn(const std::string& name,
                                    std::function<std::uint64_t()> fn,
                                    Labels labels, const std::string& help) {
  Counter& c = counter(name, std::move(labels), help);
  if (enabled_) c.fn_ = std::move(fn);
  return c;
}

Gauge& MetricRegistry::gauge_fn(const std::string& name,
                                std::function<double()> fn, Labels labels,
                                const std::string& help) {
  Gauge& g = gauge(name, std::move(labels), help);
  if (enabled_) g.fn_ = std::move(fn);
  return g;
}

const Counter* MetricRegistry::find_counter(const std::string& name,
                                            const Labels& labels) const {
  const Instance* inst = find(name, labels, MetricType::kCounter);
  return inst ? inst->counter.get() : nullptr;
}

const Gauge* MetricRegistry::find_gauge(const std::string& name,
                                        const Labels& labels) const {
  const Instance* inst = find(name, labels, MetricType::kGauge);
  return inst ? inst->gauge.get() : nullptr;
}

const Histogram* MetricRegistry::find_histogram(const std::string& name,
                                                const Labels& labels) const {
  const Instance* inst = find(name, labels, MetricType::kHistogram);
  return inst ? inst->histogram.get() : nullptr;
}

std::size_t MetricRegistry::num_instances() const {
  std::size_t n = 0;
  for (const auto& fam : families_) n += fam->instances.size();
  return n;
}

}  // namespace ecocloud::obs
