#include "ecocloud/obs/exporters.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

#include "ecocloud/obs/logger.hpp"  // append_json_string

namespace ecocloud::obs {

namespace {

std::string format_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Render {k="v",...}; \p extra appends one more pair (histogram `le`).
std::string label_block(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out.push_back(',');
    out += extra_key;
    out += "=\"";
    out += escape_label_value(extra_value);
    out += "\"";
  }
  out.push_back('}');
  return out;
}

void write_prometheus_histogram(const std::string& name, const Labels& labels,
                                const Histogram& h, std::ostream& out) {
  std::uint64_t cumulative = 0;
  const auto& bounds = h.upper_bounds();
  const auto& counts = h.bucket_counts();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += counts[i];
    out << name << "_bucket" << label_block(labels, "le", format_double(bounds[i]))
        << ' ' << cumulative << '\n';
  }
  cumulative += counts.back();
  out << name << "_bucket" << label_block(labels, "le", "+Inf") << ' '
      << cumulative << '\n';
  out << name << "_sum" << label_block(labels) << ' ' << format_double(h.sum())
      << '\n';
  out << name << "_count" << label_block(labels) << ' ' << h.count() << '\n';
}

}  // namespace

void write_prometheus(const MetricRegistry& registry, std::ostream& out) {
  for (const auto& fam : registry.families()) {
    if (!fam->help.empty()) {
      // HELP escaping: backslash and newline only (no quotes in this format).
      std::string help;
      for (char c : fam->help) {
        if (c == '\\') {
          help += "\\\\";
        } else if (c == '\n') {
          help += "\\n";
        } else {
          help.push_back(c);
        }
      }
      out << "# HELP " << fam->name << ' ' << help << '\n';
    }
    out << "# TYPE " << fam->name << ' ' << to_string(fam->type) << '\n';
    for (const auto& inst : fam->instances) {
      switch (fam->type) {
        case MetricType::kCounter:
          out << fam->name << label_block(inst.labels) << ' '
              << inst.counter->value() << '\n';
          break;
        case MetricType::kGauge:
          out << fam->name << label_block(inst.labels) << ' '
              << format_double(inst.gauge->value()) << '\n';
          break;
        case MetricType::kHistogram:
          write_prometheus_histogram(fam->name, inst.labels, *inst.histogram, out);
          break;
      }
    }
  }
}

void write_json(const MetricRegistry& registry, std::ostream& out) {
  std::string text = "{\n  \"metrics\": [";
  bool first_family = true;
  for (const auto& fam : registry.families()) {
    if (!first_family) text += ',';
    first_family = false;
    text += "\n    {\n      \"name\": ";
    append_json_string(text, fam->name);
    text += ",\n      \"type\": ";
    append_json_string(text, to_string(fam->type));
    text += ",\n      \"help\": ";
    append_json_string(text, fam->help);
    text += ",\n      \"series\": [";
    bool first_inst = true;
    for (const auto& inst : fam->instances) {
      if (!first_inst) text += ',';
      first_inst = false;
      text += "\n        {\"labels\": {";
      bool first_label = true;
      for (const auto& [key, value] : inst.labels) {
        if (!first_label) text += ", ";
        first_label = false;
        append_json_string(text, key);
        text += ": ";
        append_json_string(text, value);
      }
      text += "}, ";
      switch (fam->type) {
        case MetricType::kCounter:
          text += "\"value\": " + std::to_string(inst.counter->value());
          break;
        case MetricType::kGauge: {
          const double v = inst.gauge->value();
          text += "\"value\": ";
          if (std::isfinite(v)) {
            text += format_double(v);
          } else {
            append_json_string(text, format_double(v));
          }
          break;
        }
        case MetricType::kHistogram: {
          const Histogram& h = *inst.histogram;
          text += "\"count\": " + std::to_string(h.count());
          text += ", \"sum\": ";
          if (std::isfinite(h.sum())) {
            text += format_double(h.sum());
          } else {
            // JSON has no NaN/Inf literal; quote the token like gauges do.
            append_json_string(text, format_double(h.sum()));
          }
          text += ", \"buckets\": [";
          for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
            if (i > 0) text += ", ";
            text += "{\"le\": ";
            if (i < h.upper_bounds().size()) {
              text += format_double(h.upper_bounds()[i]);
            } else {
              text += "\"+Inf\"";
            }
            text += ", \"n\": " + std::to_string(h.bucket_counts()[i]) + "}";
          }
          text += "]";
          break;
        }
      }
      text += "}";
    }
    text += "\n      ]\n    }";
  }
  text += "\n  ]\n}\n";
  out << text;
}

}  // namespace ecocloud::obs
