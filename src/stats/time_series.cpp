#include "ecocloud/stats/time_series.hpp"

#include <algorithm>
#include <limits>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::stats {

TimeSeries::TimeSeries(std::string name) : name_(std::move(name)) {}

void TimeSeries::add(double time, double value) {
  util::require(times_.empty() || time >= times_.back(),
                "TimeSeries::add: times must be non-decreasing");
  times_.push_back(time);
  values_.push_back(value);
}

double TimeSeries::sample_hold(double t, double fallback) const {
  if (times_.empty() || t < times_.front()) return fallback;
  // Last index with time <= t.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto idx = static_cast<std::size_t>(it - times_.begin()) - 1;
  return values_[idx];
}

double TimeSeries::interpolate(double t) const {
  util::require(!times_.empty(), "TimeSeries::interpolate on empty series");
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const auto hi = static_cast<std::size_t>(it - times_.begin());
  const auto lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  if (span <= 0.0) return values_[hi];
  const double w = (t - times_[lo]) / span;
  return values_[lo] + w * (values_[hi] - values_[lo]);
}

double TimeSeries::integrate_hold(double t0, double t1) const {
  if (times_.empty() || t1 <= t0) return 0.0;
  double acc = 0.0;
  // Contribution of segment [times_[i], times_[i+1]) holding values_[i].
  for (std::size_t i = 0; i < times_.size(); ++i) {
    const double seg_begin = times_[i];
    const double seg_end =
        (i + 1 < times_.size()) ? times_[i + 1] : std::max(t1, seg_begin);
    const double lo = std::max(seg_begin, t0);
    const double hi = std::min(seg_end, t1);
    if (hi > lo) acc += values_[i] * (hi - lo);
  }
  return acc;
}

double TimeSeries::mean_in(double t0, double t1) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] >= t0 && times_[i] <= t1) {
      acc += values_[i];
      ++n;
    }
  }
  return n ? acc / static_cast<double>(n) : 0.0;
}

double TimeSeries::min_value() const {
  double best = std::numeric_limits<double>::infinity();
  for (double v : values_) best = std::min(best, v);
  return best;
}

double TimeSeries::max_value() const {
  double best = -std::numeric_limits<double>::infinity();
  for (double v : values_) best = std::max(best, v);
  return best;
}

}  // namespace ecocloud::stats
