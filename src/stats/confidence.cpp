#include "ecocloud/stats/confidence.hpp"

#include <cmath>

#include "ecocloud/stats/welford.hpp"
#include "ecocloud/util/validation.hpp"

namespace ecocloud::stats {

double student_t_95(std::size_t degrees_of_freedom) {
  util::require(degrees_of_freedom >= 1, "student_t_95: df must be >= 1");
  // Two-sided 95% (alpha/2 = 0.025) critical values, df = 1..30.
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (degrees_of_freedom <= 30) return kTable[degrees_of_freedom - 1];
  return 1.96;
}

bool MeanCI::separated_from(const MeanCI& other) const {
  return lower() > other.upper() || upper() < other.lower();
}

MeanCI mean_ci_95(const std::vector<double>& samples) {
  util::require(!samples.empty(), "mean_ci_95: no samples");
  Welford acc;
  for (double x : samples) acc.add(x);
  MeanCI ci;
  ci.n = samples.size();
  ci.mean = acc.mean();
  if (samples.size() < 2) return ci;  // half_width stays 0
  const double standard_error =
      std::sqrt(acc.sample_variance() / static_cast<double>(samples.size()));
  ci.half_width = student_t_95(samples.size() - 1) * standard_error;
  return ci;
}

}  // namespace ecocloud::stats
