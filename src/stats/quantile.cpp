#include "ecocloud/stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::stats {

void QuantileSketch::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void QuantileSketch::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void QuantileSketch::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double QuantileSketch::quantile(double q) const {
  util::require(!samples_.empty(), "QuantileSketch::quantile on empty sketch");
  util::require(q >= 0.0 && q <= 1.0, "QuantileSketch::quantile: q must be in [0,1]");
  sort_if_needed();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return samples_[lo];
  const double w = pos - static_cast<double>(lo);
  return samples_[lo] + w * (samples_[hi] - samples_[lo]);
}

double QuantileSketch::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double quantile_of(std::vector<double> values, double q) {
  QuantileSketch sketch;
  sketch.add_all(values);
  return sketch.quantile(q);
}

}  // namespace ecocloud::stats
