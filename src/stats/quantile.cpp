#include "ecocloud/stats/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::stats {

void QuantileSketch::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void QuantileSketch::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void QuantileSketch::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double QuantileSketch::quantile(double q) const {
  util::require(!samples_.empty(), "QuantileSketch::quantile on empty sketch");
  util::require(q >= 0.0 && q <= 1.0, "QuantileSketch::quantile: q must be in [0,1]");
  sort_if_needed();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return samples_[lo];
  const double w = pos - static_cast<double>(lo);
  return samples_[lo] + w * (samples_[hi] - samples_[lo]);
}

double QuantileSketch::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  sort_if_needed();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

void QuantileSketch::save(util::BinWriter& w) const {
  w.u64(samples_.size());
  for (double x : samples_) w.f64(x);
  w.boolean(sorted_);
}

void QuantileSketch::load(util::BinReader& r) {
  const std::uint64_t n = r.u64();
  samples_.clear();
  samples_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) samples_.push_back(r.f64());
  sorted_ = r.boolean();
}

double quantile_of(std::vector<double> values, double q) {
  QuantileSketch sketch;
  sketch.add_all(values);
  return sketch.quantile(q);
}

}  // namespace ecocloud::stats
