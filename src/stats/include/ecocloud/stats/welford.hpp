#pragma once

/// \file welford.hpp
/// \brief Numerically stable online mean/variance (Welford's algorithm).

#include <cmath>
#include <cstddef>
#include <limits>

#include "ecocloud/util/binio.hpp"

namespace ecocloud::stats {

/// Online accumulator for count, mean, variance, min, max.
class Welford {
 public:
  /// Incorporate one observation.
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merge another accumulator (parallel reduction; Chan et al.).
  void merge(const Welford& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }

  /// Population variance (divide by n); 0 with fewer than 1 sample.
  [[nodiscard]] double variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  /// Sample variance (divide by n-1); 0 with fewer than 2 samples.
  [[nodiscard]] double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Minimum observed value; +inf if empty.
  [[nodiscard]] double min() const { return min_; }
  /// Maximum observed value; -inf if empty.
  [[nodiscard]] double max() const { return max_; }

  /// Checkpoint surface: bit-exact state round trip (m2_ is not derivable
  /// from the public accessors without re-rounding).
  void save(util::BinWriter& w) const {
    w.u64(count_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
  }
  void load(util::BinReader& r) {
    count_ = static_cast<std::size_t>(r.u64());
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ecocloud::stats
