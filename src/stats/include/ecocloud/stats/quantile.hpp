#pragma once

/// \file quantile.hpp
/// \brief Exact quantiles over a retained sample plus a summary helper.

#include <cstddef>
#include <vector>

#include "ecocloud/util/binio.hpp"

namespace ecocloud::stats {

/// Collects samples and answers exact quantile queries (linear
/// interpolation between order statistics, the common "type 7" estimator).
class QuantileSketch {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Quantile for q in [0,1]. Throws std::invalid_argument if empty or q
  /// out of range.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double median() const { return quantile(0.5); }

  /// Fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const;

  /// Checkpoint surface: preserves the retained samples in their current
  /// order plus the lazy-sort flag, so restored quantiles are identical.
  void save(util::BinWriter& w) const;
  void load(util::BinReader& r);

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Convenience: quantile of a value vector (copies and sorts).
[[nodiscard]] double quantile_of(std::vector<double> values, double q);

}  // namespace ecocloud::stats
