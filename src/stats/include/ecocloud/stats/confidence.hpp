#pragma once

/// \file confidence.hpp
/// \brief Student-t confidence intervals for replicated experiments.
///
/// Simulation results in this project are reported as mean +- half-width
/// over independent replications (different seeds). With the small
/// replication counts typical here (3-20), the Student-t quantile matters;
/// the normal approximation takes over past 30 degrees of freedom.

#include <cstddef>
#include <vector>

namespace ecocloud::stats {

/// Two-sided 95% Student-t critical value for the given degrees of
/// freedom (>= 1). Exact table for df <= 30, 1.96 beyond.
[[nodiscard]] double student_t_95(std::size_t degrees_of_freedom);

/// A mean with its 95% confidence half-width.
struct MeanCI {
  double mean = 0.0;
  double half_width = 0.0;
  std::size_t n = 0;

  [[nodiscard]] double lower() const { return mean - half_width; }
  [[nodiscard]] double upper() const { return mean + half_width; }

  /// True when the two intervals do not overlap (a conservative
  /// significance check for comparing policies).
  [[nodiscard]] bool separated_from(const MeanCI& other) const;
};

/// 95% CI of the mean of \p samples. One sample yields half_width = 0
/// (there is nothing to estimate spread from); empty input throws.
[[nodiscard]] MeanCI mean_ci_95(const std::vector<double>& samples);

}  // namespace ecocloud::stats
