#pragma once

/// \file histogram.hpp
/// \brief Fixed-bin histogram used to reproduce the paper's Figs. 4 and 5.

#include <cstddef>
#include <string>
#include <vector>

namespace ecocloud::stats {

/// Equal-width histogram over [lo, hi) with explicit under/overflow bins.
class Histogram {
 public:
  /// \param lo,hi    range covered by the regular bins (lo < hi).
  /// \param num_bins number of regular bins (> 0).
  Histogram(double lo, double hi, std::size_t num_bins);

  /// Record one observation (optionally weighted).
  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t num_bins() const { return counts_.size(); }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] double bin_width() const { return width_; }

  /// Left edge / center of regular bin \p i.
  [[nodiscard]] double bin_left(std::size_t i) const;
  [[nodiscard]] double bin_center(std::size_t i) const;

  /// Raw (weighted) count of regular bin \p i.
  [[nodiscard]] double count(std::size_t i) const;
  [[nodiscard]] double underflow() const { return underflow_; }
  [[nodiscard]] double overflow() const { return overflow_; }

  /// Total weight including under/overflow.
  [[nodiscard]] double total() const { return total_; }

  /// Relative frequency of regular bin \p i (count / total); 0 if empty.
  [[nodiscard]] double frequency(std::size_t i) const;

  /// All relative frequencies (regular bins only).
  [[nodiscard]] std::vector<double> frequencies() const;

  /// Fraction of total weight with |x| <= bound (uses exact recorded values
  /// is impossible from bins; this sums bins fully inside the bound and
  /// linearly interpolates the partial bins).
  [[nodiscard]] double fraction_within(double lo_bound, double hi_bound) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double total_ = 0.0;
};

}  // namespace ecocloud::stats
