#pragma once

/// \file rate_window.hpp
/// \brief Windowed event-rate counter (events per hour, per figure window).
///
/// Figures 9 and 10 of the paper report migrations/switches *per hour*,
/// sampled every 30 minutes. RateWindow counts timestamped events and
/// reports per-window counts scaled to an hourly rate.

#include <cstddef>
#include <vector>

#include "ecocloud/util/binio.hpp"

namespace ecocloud::stats {

/// Counts timestamped events and bins them into fixed windows.
class RateWindow {
 public:
  /// \param window_seconds width of each reporting window (> 0).
  explicit RateWindow(double window_seconds);

  /// Record one event at simulation time \p t (seconds, >= 0).
  void record(double t);

  /// Number of events in window \p i ([i*w, (i+1)*w)).
  [[nodiscard]] std::size_t count_in_window(std::size_t i) const;

  /// Events-per-hour rate for window \p i.
  [[nodiscard]] double hourly_rate(std::size_t i) const;

  /// Number of windows touched so far (highest event window + 1).
  [[nodiscard]] std::size_t num_windows() const { return counts_.size(); }

  /// Total number of recorded events.
  [[nodiscard]] std::size_t total() const { return total_; }

  [[nodiscard]] double window_seconds() const { return window_; }

  /// Checkpoint surface; the window width must already match (it comes
  /// from configuration, not from the snapshot).
  void save(util::BinWriter& w) const;
  void load(util::BinReader& r);

 private:
  double window_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace ecocloud::stats
