#pragma once

/// \file time_series.hpp
/// \brief Append-only (time, value) series with resampling helpers.
///
/// Metrics in the paper are reported every 30 minutes over 48 hours; the
/// collector records raw samples here and benches resample/aggregate them.

#include <cstddef>
#include <string>
#include <vector>

namespace ecocloud::stats {

/// A named sequence of (time, value) samples with non-decreasing times.
class TimeSeries {
 public:
  explicit TimeSeries(std::string name = "");

  /// Append a sample; \p time must be >= the last appended time.
  void add(double time, double value);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] bool empty() const { return times_.empty(); }
  [[nodiscard]] const std::vector<double>& times() const { return times_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] double time(std::size_t i) const { return times_.at(i); }
  [[nodiscard]] double value(std::size_t i) const { return values_.at(i); }

  /// Value at time t by zero-order hold (last sample with time <= t);
  /// \p fallback if the series is empty or t precedes the first sample.
  [[nodiscard]] double sample_hold(double t, double fallback = 0.0) const;

  /// Piecewise-linear interpolation at t, clamped to the end values.
  [[nodiscard]] double interpolate(double t) const;

  /// Time integral over [t0, t1] treating the series as zero-order hold.
  [[nodiscard]] double integrate_hold(double t0, double t1) const;

  /// Mean of samples with time in [t0, t1].
  [[nodiscard]] double mean_in(double t0, double t1) const;

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

 private:
  std::string name_;
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace ecocloud::stats
