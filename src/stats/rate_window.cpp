#include "ecocloud/stats/rate_window.hpp"

#include "ecocloud/util/validation.hpp"

namespace ecocloud::stats {

RateWindow::RateWindow(double window_seconds) : window_(window_seconds) {
  util::require(window_seconds > 0.0, "RateWindow: window must be > 0");
}

void RateWindow::record(double t) {
  util::require(t >= 0.0, "RateWindow::record: time must be >= 0");
  const auto idx = static_cast<std::size_t>(t / window_);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  ++counts_[idx];
  ++total_;
}

std::size_t RateWindow::count_in_window(std::size_t i) const {
  return i < counts_.size() ? counts_[i] : 0;
}

double RateWindow::hourly_rate(std::size_t i) const {
  return static_cast<double>(count_in_window(i)) * (3600.0 / window_);
}

void RateWindow::save(util::BinWriter& w) const {
  w.u64(counts_.size());
  for (std::size_t c : counts_) w.u64(c);
  w.u64(total_);
}

void RateWindow::load(util::BinReader& r) {
  const std::uint64_t n = r.u64();
  counts_.clear();
  counts_.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    counts_.push_back(static_cast<std::size_t>(r.u64()));
  }
  total_ = static_cast<std::size_t>(r.u64());
}

}  // namespace ecocloud::stats
