#include "ecocloud/stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "ecocloud/util/validation.hpp"

namespace ecocloud::stats {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(num_bins)),
      counts_(num_bins, 0.0) {
  util::require(num_bins > 0, "Histogram: num_bins must be > 0");
  util::require(lo < hi, "Histogram: lo must be < hi");
}

void Histogram::add(double x, double weight) {
  util::require(weight >= 0.0, "Histogram::add: weight must be >= 0");
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  // Guard against x == hi_ - epsilon rounding up.
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  counts_[idx] += weight;
}

double Histogram::bin_left(std::size_t i) const {
  util::require(i < counts_.size(), "Histogram::bin_left: index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_center(std::size_t i) const {
  return bin_left(i) + 0.5 * width_;
}

double Histogram::count(std::size_t i) const {
  util::require(i < counts_.size(), "Histogram::count: index out of range");
  return counts_[i];
}

double Histogram::frequency(std::size_t i) const {
  return total_ > 0.0 ? count(i) / total_ : 0.0;
}

std::vector<double> Histogram::frequencies() const {
  std::vector<double> freq(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) freq[i] = frequency(i);
  return freq;
}

double Histogram::fraction_within(double lo_bound, double hi_bound) const {
  if (total_ <= 0.0 || lo_bound >= hi_bound) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double left = bin_left(i);
    const double right = left + width_;
    const double overlap = std::min(right, hi_bound) - std::max(left, lo_bound);
    if (overlap > 0.0) {
      acc += counts_[i] * (overlap / width_);
    }
  }
  return acc / total_;
}

}  // namespace ecocloud::stats
