// Tests for the metrics collector and overload-episode summaries.

#include <gtest/gtest.h>

#include <sstream>

#include "ecocloud/metrics/collector.hpp"
#include "ecocloud/metrics/episode_summary.hpp"
#include "ecocloud/metrics/event_log.hpp"

namespace metrics = ecocloud::metrics;
namespace core = ecocloud::core;
namespace dc = ecocloud::dc;
namespace sim = ecocloud::sim;
using ecocloud::util::Rng;

TEST(Collector, SamplesOnSchedule) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  datacenter.add_server(6, 2000.0);
  metrics::CollectorConfig config;
  config.sample_period_s = 100.0;
  metrics::MetricsCollector collector(simulator, datacenter, config);
  collector.start();
  simulator.run_until(450.0);
  ASSERT_EQ(collector.samples().size(), 4u);
  EXPECT_DOUBLE_EQ(collector.samples()[0].time, 100.0);
  EXPECT_DOUBLE_EQ(collector.samples()[3].time, 400.0);
}

TEST(Collector, SampleCapturesState) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  const auto s = datacenter.add_server(6, 2000.0);
  datacenter.start_booting(0.0, s);
  datacenter.finish_booting(0.0, s);
  const auto v = datacenter.create_vm(6000.0);
  datacenter.place_vm(0.0, v, s);
  metrics::MetricsCollector collector(simulator, datacenter);
  collector.sample_now();
  ASSERT_EQ(collector.samples().size(), 1u);
  const auto& sample = collector.samples().front();
  EXPECT_EQ(sample.active_servers, 1u);
  EXPECT_DOUBLE_EQ(sample.overall_load, 0.5);
  EXPECT_DOUBLE_EQ(sample.power_w, 187.0);
  ASSERT_EQ(collector.utilization_snapshots().size(), 1u);
  EXPECT_DOUBLE_EQ(collector.utilization_snapshots()[0][0], 0.5);
}

TEST(Collector, OverloadPercentPerWindow) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  const auto s = datacenter.add_server(2, 1000.0);  // capacity 2000
  datacenter.start_booting(0.0, s);
  datacenter.finish_booting(0.0, s);
  const auto v = datacenter.create_vm(1000.0);
  datacenter.place_vm(0.0, v, s);
  metrics::CollectorConfig config;
  config.sample_period_s = 100.0;
  metrics::MetricsCollector collector(simulator, datacenter, config);
  collector.start();
  // Overloaded from t=50 to t=75: 25 VM-seconds of overload out of 100.
  simulator.schedule_at(50.0, [&] { datacenter.set_vm_demand(50.0, v, 3000.0); });
  simulator.schedule_at(75.0, [&] { datacenter.set_vm_demand(75.0, v, 1000.0); });
  simulator.run_until(250.0);
  ASSERT_GE(collector.samples().size(), 2u);
  EXPECT_NEAR(collector.samples()[0].overload_percent, 25.0, 1e-9);
  EXPECT_NEAR(collector.samples()[1].overload_percent, 0.0, 1e-9);
}

TEST(Collector, WindowEnergyAndTotal) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  datacenter.add_server(6, 2000.0);  // hibernated, 3 W
  metrics::CollectorConfig config;
  config.sample_period_s = 100.0;
  metrics::MetricsCollector collector(simulator, datacenter, config);
  collector.start();
  simulator.run_until(200.0);
  ASSERT_EQ(collector.samples().size(), 2u);
  EXPECT_NEAR(collector.samples()[0].window_energy_j, 300.0, 1e-9);
  EXPECT_NEAR(collector.samples()[1].window_energy_j, 300.0, 1e-9);
  EXPECT_NEAR(collector.total_energy_kwh(), 600.0 / 3.6e6, 1e-12);
}

TEST(Collector, AttachSplitsMigrationKinds) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  core::EcoCloudController controller(simulator, datacenter, params, Rng(1));
  metrics::MetricsCollector collector(simulator, datacenter);
  collector.attach(controller);
  // Drive the callbacks directly.
  controller.events().on_migration_complete(10.0, 0, false);
  controller.events().on_migration_complete(20.0, 1, true);
  controller.events().on_migration_complete(25.0, 2, true);
  controller.events().on_activation(30.0, 0);
  controller.events().on_hibernation(40.0, 1);
  EXPECT_EQ(collector.low_migrations().total(), 1u);
  EXPECT_EQ(collector.high_migrations().total(), 2u);
  EXPECT_EQ(collector.activations().total(), 1u);
  EXPECT_EQ(collector.hibernations().total(), 1u);
}

TEST(Collector, SnapshotsCanBeDisabled) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  datacenter.add_server(6, 2000.0);
  metrics::CollectorConfig config;
  config.keep_utilization_snapshots = false;
  metrics::MetricsCollector collector(simulator, datacenter, config);
  collector.sample_now();
  EXPECT_EQ(collector.samples().size(), 1u);
  EXPECT_TRUE(collector.utilization_snapshots().empty());
}

// ---------------------------------------------------------- episode summary

TEST(EpisodeSummary, EmptyEpisodes) {
  const auto summary = metrics::summarize_episodes({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.fraction_under_30s, 1.0);
  EXPECT_DOUBLE_EQ(summary.worst_granted_fraction, 1.0);
}

TEST(EpisodeSummary, Statistics) {
  std::vector<dc::OverloadEpisode> episodes{
      {0, 0.0, 10.0, 0.99},
      {1, 5.0, 20.0, 0.95},
      {2, 9.0, 60.0, 0.90},
      {0, 50.0, 10.0, 0.98},
  };
  const auto summary = metrics::summarize_episodes(episodes);
  EXPECT_EQ(summary.count, 4u);
  EXPECT_DOUBLE_EQ(summary.mean_duration_s, 25.0);
  EXPECT_DOUBLE_EQ(summary.max_duration_s, 60.0);
  EXPECT_DOUBLE_EQ(summary.fraction_under_30s, 0.75);
  EXPECT_DOUBLE_EQ(summary.worst_granted_fraction, 0.90);
  EXPECT_NEAR(summary.mean_min_granted_fraction, 0.955, 1e-12);
}

TEST(EpisodeSummary, CustomThreshold) {
  std::vector<dc::OverloadEpisode> episodes{{0, 0.0, 10.0, 1.0},
                                            {0, 0.0, 40.0, 1.0}};
  EXPECT_DOUBLE_EQ(metrics::summarize_episodes(episodes, 15.0).fraction_under_30s,
                   0.5);
  EXPECT_DOUBLE_EQ(metrics::summarize_episodes(episodes, 100.0).fraction_under_30s,
                   1.0);
}

// ------------------------------------------------------------------ event log

TEST(EventLog, RecordsAndChainsCallbacks) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  core::EcoCloudController controller(simulator, datacenter, params, Rng(2));

  // Collector first, then the log: the log must chain the collector.
  metrics::MetricsCollector collector(simulator, datacenter);
  collector.attach(controller);
  metrics::EventLog log;
  log.attach(controller);

  controller.events().on_migration_complete(10.0, 4, true);
  controller.events().on_activation(20.0, 3);
  controller.events().on_assignment(30.0, 5, 1);
  controller.events().on_assignment_failure(40.0, 6);
  controller.events().on_hibernation(50.0, 3);
  controller.events().on_migration_start(60.0, 7, false);

  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(log.count(metrics::EventKind::kMigrationComplete), 1u);
  EXPECT_EQ(log.count(metrics::EventKind::kActivation), 1u);
  EXPECT_EQ(log.count(metrics::EventKind::kAssignment), 1u);
  // The chained collector saw the migration and the switches too.
  EXPECT_EQ(collector.high_migrations().total(), 1u);
  EXPECT_EQ(collector.activations().total(), 1u);
  EXPECT_EQ(collector.hibernations().total(), 1u);

  const auto& first = log.events().front();
  EXPECT_DOUBLE_EQ(first.time, 10.0);
  EXPECT_EQ(first.vm, 4u);
  EXPECT_TRUE(first.is_high);
}

TEST(EventLog, CsvOutput) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  core::EcoCloudController controller(simulator, datacenter, params, Rng(3));
  metrics::EventLog log;
  log.attach(controller);
  controller.events().on_assignment(1.5, 2, 7);
  controller.events().on_hibernation(3.0, 9);

  std::ostringstream out;
  log.write_csv(out);
  EXPECT_EQ(out.str(),
            "time_s,kind,vm,server,is_high\n"
            "1.5,assignment,2,7,0\n"
            "3,hibernation,-1,9,0\n");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, KindNames) {
  EXPECT_STREQ(metrics::to_string(metrics::EventKind::kMigrationStart),
               "migration_start");
  EXPECT_STREQ(metrics::to_string(metrics::EventKind::kAssignmentFailure),
               "assignment_failure");
}
