// Tests for the metrics collector and overload-episode summaries.

#include <gtest/gtest.h>

#include <sstream>

#include "ecocloud/metrics/collector.hpp"
#include "ecocloud/metrics/episode_summary.hpp"
#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/metrics/event_log_binary.hpp"
#include "ecocloud/util/csv.hpp"
#include "ecocloud/util/string_util.hpp"

namespace metrics = ecocloud::metrics;
namespace core = ecocloud::core;
namespace dc = ecocloud::dc;
namespace sim = ecocloud::sim;
using ecocloud::util::Rng;

TEST(Collector, SamplesOnSchedule) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  datacenter.add_server(6, 2000.0);
  metrics::CollectorConfig config;
  config.sample_period_s = 100.0;
  metrics::MetricsCollector collector(simulator, datacenter, config);
  collector.start();
  simulator.run_until(450.0);
  ASSERT_EQ(collector.samples().size(), 4u);
  EXPECT_DOUBLE_EQ(collector.samples()[0].time, 100.0);
  EXPECT_DOUBLE_EQ(collector.samples()[3].time, 400.0);
}

TEST(Collector, SampleCapturesState) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  const auto s = datacenter.add_server(6, 2000.0);
  datacenter.start_booting(0.0, s);
  datacenter.finish_booting(0.0, s);
  const auto v = datacenter.create_vm(6000.0);
  datacenter.place_vm(0.0, v, s);
  metrics::MetricsCollector collector(simulator, datacenter);
  collector.sample_now();
  ASSERT_EQ(collector.samples().size(), 1u);
  const auto& sample = collector.samples().front();
  EXPECT_EQ(sample.active_servers, 1u);
  EXPECT_DOUBLE_EQ(sample.overall_load, 0.5);
  EXPECT_DOUBLE_EQ(sample.power_w, 187.0);
  ASSERT_EQ(collector.utilization_snapshots().size(), 1u);
  EXPECT_DOUBLE_EQ(collector.utilization_snapshots()[0][0], 0.5);
}

TEST(Collector, OverloadPercentPerWindow) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  const auto s = datacenter.add_server(2, 1000.0);  // capacity 2000
  datacenter.start_booting(0.0, s);
  datacenter.finish_booting(0.0, s);
  const auto v = datacenter.create_vm(1000.0);
  datacenter.place_vm(0.0, v, s);
  metrics::CollectorConfig config;
  config.sample_period_s = 100.0;
  metrics::MetricsCollector collector(simulator, datacenter, config);
  collector.start();
  // Overloaded from t=50 to t=75: 25 VM-seconds of overload out of 100.
  simulator.schedule_at(50.0, [&] { datacenter.set_vm_demand(50.0, v, 3000.0); });
  simulator.schedule_at(75.0, [&] { datacenter.set_vm_demand(75.0, v, 1000.0); });
  simulator.run_until(250.0);
  ASSERT_GE(collector.samples().size(), 2u);
  EXPECT_NEAR(collector.samples()[0].overload_percent, 25.0, 1e-9);
  EXPECT_NEAR(collector.samples()[1].overload_percent, 0.0, 1e-9);
}

TEST(Collector, WindowEnergyAndTotal) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  datacenter.add_server(6, 2000.0);  // hibernated, 3 W
  metrics::CollectorConfig config;
  config.sample_period_s = 100.0;
  metrics::MetricsCollector collector(simulator, datacenter, config);
  collector.start();
  simulator.run_until(200.0);
  ASSERT_EQ(collector.samples().size(), 2u);
  EXPECT_NEAR(collector.samples()[0].window_energy_j, 300.0, 1e-9);
  EXPECT_NEAR(collector.samples()[1].window_energy_j, 300.0, 1e-9);
  EXPECT_NEAR(collector.total_energy_kwh(), 600.0 / 3.6e6, 1e-12);
}

TEST(Collector, AttachSplitsMigrationKinds) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  core::EcoCloudController controller(simulator, datacenter, params, Rng(1));
  metrics::MetricsCollector collector(simulator, datacenter);
  collector.attach(controller);
  // Drive the callbacks directly.
  controller.events().on_migration_complete(10.0, 0, false);
  controller.events().on_migration_complete(20.0, 1, true);
  controller.events().on_migration_complete(25.0, 2, true);
  controller.events().on_activation(30.0, 0);
  controller.events().on_hibernation(40.0, 1);
  EXPECT_EQ(collector.low_migrations().total(), 1u);
  EXPECT_EQ(collector.high_migrations().total(), 2u);
  EXPECT_EQ(collector.activations().total(), 1u);
  EXPECT_EQ(collector.hibernations().total(), 1u);
}

TEST(Collector, SnapshotsCanBeDisabled) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  datacenter.add_server(6, 2000.0);
  metrics::CollectorConfig config;
  config.keep_utilization_snapshots = false;
  metrics::MetricsCollector collector(simulator, datacenter, config);
  collector.sample_now();
  EXPECT_EQ(collector.samples().size(), 1u);
  EXPECT_TRUE(collector.utilization_snapshots().empty());
}

// ---------------------------------------------------------- episode summary

TEST(EpisodeSummary, EmptyEpisodes) {
  const auto summary = metrics::summarize_episodes({});
  EXPECT_EQ(summary.count, 0u);
  EXPECT_DOUBLE_EQ(summary.fraction_under_30s, 1.0);
  EXPECT_DOUBLE_EQ(summary.worst_granted_fraction, 1.0);
}

TEST(EpisodeSummary, Statistics) {
  std::vector<dc::OverloadEpisode> episodes{
      {0, 0.0, 10.0, 0.99},
      {1, 5.0, 20.0, 0.95},
      {2, 9.0, 60.0, 0.90},
      {0, 50.0, 10.0, 0.98},
  };
  const auto summary = metrics::summarize_episodes(episodes);
  EXPECT_EQ(summary.count, 4u);
  EXPECT_DOUBLE_EQ(summary.mean_duration_s, 25.0);
  EXPECT_DOUBLE_EQ(summary.max_duration_s, 60.0);
  EXPECT_DOUBLE_EQ(summary.fraction_under_30s, 0.75);
  EXPECT_DOUBLE_EQ(summary.worst_granted_fraction, 0.90);
  EXPECT_NEAR(summary.mean_min_granted_fraction, 0.955, 1e-12);
}

TEST(EpisodeSummary, CustomThreshold) {
  std::vector<dc::OverloadEpisode> episodes{{0, 0.0, 10.0, 1.0},
                                            {0, 0.0, 40.0, 1.0}};
  EXPECT_DOUBLE_EQ(metrics::summarize_episodes(episodes, 15.0).fraction_under_30s,
                   0.5);
  EXPECT_DOUBLE_EQ(metrics::summarize_episodes(episodes, 100.0).fraction_under_30s,
                   1.0);
}

// ------------------------------------------------------------------ event log

TEST(EventLog, RecordsAndChainsCallbacks) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  core::EcoCloudController controller(simulator, datacenter, params, Rng(2));

  // Collector first, then the log: the log must chain the collector.
  metrics::MetricsCollector collector(simulator, datacenter);
  collector.attach(controller);
  metrics::EventLog log;
  log.attach(controller);

  controller.events().on_migration_complete(10.0, 4, true);
  controller.events().on_activation(20.0, 3);
  controller.events().on_assignment(30.0, 5, 1);
  controller.events().on_assignment_failure(40.0, 6);
  controller.events().on_hibernation(50.0, 3);
  controller.events().on_migration_start(60.0, 7, false);

  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(log.count(metrics::EventKind::kMigrationComplete), 1u);
  EXPECT_EQ(log.count(metrics::EventKind::kActivation), 1u);
  EXPECT_EQ(log.count(metrics::EventKind::kAssignment), 1u);
  // The chained collector saw the migration and the switches too.
  EXPECT_EQ(collector.high_migrations().total(), 1u);
  EXPECT_EQ(collector.activations().total(), 1u);
  EXPECT_EQ(collector.hibernations().total(), 1u);

  const auto& first = log.events().front();
  EXPECT_DOUBLE_EQ(first.time, 10.0);
  EXPECT_EQ(first.vm, 4u);
  EXPECT_TRUE(first.is_high);
}

TEST(EventLog, CsvOutput) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  core::EcoCloudController controller(simulator, datacenter, params, Rng(3));
  metrics::EventLog log;
  log.attach(controller);
  controller.events().on_assignment(1.5, 2, 7);
  controller.events().on_hibernation(3.0, 9);

  std::ostringstream out;
  log.write_csv(out);
  EXPECT_EQ(out.str(),
            "time_s,kind,vm,server,is_high\n"
            "1.5,assignment,2,7,0\n"
            "3,hibernation,-1,9,0\n");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLog, KindNames) {
  EXPECT_STREQ(metrics::to_string(metrics::EventKind::kMigrationStart),
               "migration_start");
  EXPECT_STREQ(metrics::to_string(metrics::EventKind::kAssignmentFailure),
               "assignment_failure");
}

TEST(EventLog, CountIsMaintainedPerKind) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  core::EcoCloudController controller(simulator, datacenter, params, Rng(5));
  metrics::EventLog log;
  log.attach(controller);

  for (int i = 0; i < 5; ++i) controller.events().on_assignment(1.0 * i, i, 0);
  controller.events().on_server_failed(10.0, 3);
  controller.events().on_vm_orphaned(10.0, 1, 3);
  controller.events().on_migration_aborted(11.0, 2, true);
  controller.events().on_server_repaired(20.0, 3);

  EXPECT_EQ(log.count(metrics::EventKind::kAssignment), 5u);
  EXPECT_EQ(log.count(metrics::EventKind::kServerFailed), 1u);
  EXPECT_EQ(log.count(metrics::EventKind::kVmOrphaned), 1u);
  EXPECT_EQ(log.count(metrics::EventKind::kMigrationAborted), 1u);
  EXPECT_EQ(log.count(metrics::EventKind::kServerRepaired), 1u);
  EXPECT_EQ(log.count(metrics::EventKind::kHibernation), 0u);

  // clear() resets the per-kind counters along with the rows.
  log.clear();
  EXPECT_EQ(log.count(metrics::EventKind::kAssignment), 0u);
  controller.events().on_assignment(30.0, 9, 1);
  EXPECT_EQ(log.count(metrics::EventKind::kAssignment), 1u);
}

TEST(EventLog, CsvRoundTripsThroughReader) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  core::EcoCloudController controller(simulator, datacenter, params, Rng(6));
  metrics::EventLog log;
  log.attach(controller);

  // One event of every kind, fault paths included.
  controller.events().on_assignment(1.5, 2, 7);
  controller.events().on_assignment_failure(2.0, 3);
  controller.events().on_migration_start(3.0, 4, true);
  controller.events().on_migration_complete(4.25, 4, true);
  controller.events().on_activation(5.0, 1);
  controller.events().on_hibernation(6.0, 1);
  controller.events().on_server_failed(7.0, 7);
  controller.events().on_vm_orphaned(7.0, 2, 7);
  controller.events().on_migration_aborted(8.0, 5, false);
  controller.events().on_server_repaired(9.0, 7);
  ASSERT_EQ(log.size(), 10u);

  std::ostringstream out;
  log.write_csv(out);
  std::istringstream in(out.str());
  const auto rows = ecocloud::util::read_csv(in);

  // Header row plus one row per event.
  ASSERT_EQ(rows.size(), 1u + log.size());
  EXPECT_EQ(rows[0],
            (ecocloud::util::CsvRow{"time_s", "kind", "vm", "server", "is_high"}));
  for (std::size_t i = 0; i < log.size(); ++i) {
    const metrics::Event& event = log.events()[i];
    const ecocloud::util::CsvRow& row = rows[i + 1];
    ASSERT_EQ(row.size(), 5u);
    EXPECT_DOUBLE_EQ(ecocloud::util::parse_double(row[0]), event.time);
    EXPECT_EQ(row[1], metrics::to_string(event.kind));
    EXPECT_EQ(row[2], event.vm == dc::kNoVm ? "-1" : std::to_string(event.vm));
    EXPECT_EQ(row[3], event.server == dc::kNoServer
                          ? "-1"
                          : std::to_string(event.server));
    EXPECT_EQ(row[4], event.is_high ? "1" : "0");
  }
  // Fault-path kinds survive the round trip by name.
  EXPECT_EQ(rows[7][1], "server_failed");
  EXPECT_EQ(rows[8][1], "vm_orphaned");
  EXPECT_EQ(rows[9][1], "migration_aborted");
  EXPECT_EQ(rows[10][1], "server_repaired");
}

TEST(Collector, RebaseAfterAccountingResetReportsNonNegativeWindows) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  const auto s = datacenter.add_server(2, 1000.0);  // capacity 2000
  datacenter.start_booting(0.0, s);
  datacenter.finish_booting(0.0, s);
  const auto v = datacenter.create_vm(1000.0);
  datacenter.place_vm(0.0, v, s);
  const double steady_power_w = datacenter.total_power_w();

  metrics::CollectorConfig config;
  config.sample_period_s = 100.0;
  metrics::MetricsCollector collector(simulator, datacenter, config);
  collector.start();

  // Overload during the warm-up only, then end the warm-up at t = 150 the
  // way DailyScenario does: reset the accumulators and rebase the
  // collector so the next window starts from zero instead of reporting
  // negative deltas.
  simulator.schedule_at(50.0, [&] { datacenter.set_vm_demand(50.0, v, 3000.0); });
  simulator.schedule_at(120.0, [&] { datacenter.set_vm_demand(120.0, v, 1000.0); });
  simulator.schedule_at(150.0, [&] {
    datacenter.reset_accounting(150.0);
    collector.rebase();
  });
  simulator.run_until(350.0);

  ASSERT_GE(collector.samples().size(), 3u);
  // First post-reset window (ending t = 200): deltas must be non-negative
  // and reflect only the 50 s since the reset, not the warm-up.
  const auto& first = collector.samples()[1];
  EXPECT_DOUBLE_EQ(first.time, 200.0);
  EXPECT_GE(first.window_energy_j, 0.0);
  EXPECT_GE(first.overload_percent, 0.0);
  // Active server at 50% for 50 s at the steady-state power draw.
  EXPECT_NEAR(first.window_energy_j, steady_power_w * 50.0, 1e-6);
  EXPECT_NEAR(first.overload_percent, 0.0, 1e-9);
  // Later windows are clean full windows again.
  EXPECT_NEAR(collector.samples()[2].window_energy_j, steady_power_w * 100.0,
              1e-6);
}

// ------------------------------------------------------ binary event log

namespace {

/// A corpus that exercises every field: all kinds, sentinel and large ids,
/// fractional times, both is_high values.
std::vector<metrics::Event> binary_corpus(std::size_t n) {
  std::vector<metrics::Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    metrics::Event e;
    e.time = 0.25 * static_cast<double>(i) + 1e-9;
    e.kind = static_cast<metrics::EventKind>(i % metrics::kNumEventKinds);
    e.vm = (i % 3 == 0) ? dc::kNoVm : static_cast<dc::VmId>(i * 7 + 1);
    e.server =
        (i % 5 == 0) ? dc::kNoServer : static_cast<dc::ServerId>(0xFFFF0000u + i);
    e.is_high = (i % 2) != 0;
    events.push_back(e);
  }
  return events;
}

bool same_event(const metrics::Event& a, const metrics::Event& b) {
  return a.time == b.time && a.kind == b.kind && a.vm == b.vm &&
         a.server == b.server && a.is_high == b.is_high;
}

}  // namespace

TEST(EventLogBinary, RoundTripPreservesEveryField) {
  const std::vector<metrics::Event> events = binary_corpus(257);
  std::ostringstream out;
  metrics::write_binary_events(out, events);
  const std::string bytes = out.str();
  EXPECT_EQ(bytes.size(), metrics::kEventLogHeaderSize +
                              events.size() * metrics::kEventRecordSize);

  std::istringstream in(bytes);
  const metrics::BinaryReadResult result = metrics::read_binary_events(in);
  EXPECT_FALSE(result.truncated_tail);
  ASSERT_EQ(result.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(same_event(result.events[i], events[i])) << "event " << i;
  }
}

TEST(EventLogBinary, IncrementalWriterMatchesBatchWriter) {
  // Enough records to cross the writer's internal flush threshold several
  // times: block flushing must not reorder or drop bytes.
  const std::vector<metrics::Event> events = binary_corpus(20000);
  std::ostringstream batch;
  metrics::write_binary_events(batch, events);
  std::ostringstream incremental;
  {
    metrics::BinaryEventWriter writer(incremental);
    for (const metrics::Event& e : events) writer.write(e);
    EXPECT_EQ(writer.written(), events.size());
  }  // destructor flushes the tail
  EXPECT_EQ(incremental.str(), batch.str());
}

TEST(EventLogBinary, RecordLayoutIsFixedAndLittleEndian) {
  metrics::Event e;
  e.time = 1.5;  // IEEE-754: 0x3FF8000000000000
  e.kind = metrics::EventKind::kMigrationStart;  // enumerator 2
  e.vm = 0x01020304u;
  e.server = dc::kNoServer;
  e.is_high = true;
  std::ostringstream out;
  metrics::write_binary_events(out, {e});
  const std::string b = out.str();
  ASSERT_EQ(b.size(), 8u + 18u);
  const unsigned char expected[26] = {
      'E', 'C', 'E', 'V', 0x01, 0x00, 0x12, 0x00,            // header
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,        // time 1.5 LE
      0x02,                                                  // kind
      0x04, 0x03, 0x02, 0x01,                                // vm LE
      0xFF, 0xFF, 0xFF, 0xFF,                                // server sentinel
      0x01};                                                 // is_high
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(b[i]), expected[i]) << "byte " << i;
  }
}

TEST(EventLogBinary, TruncatedTailRecoversCompletePrefix) {
  const std::vector<metrics::Event> events = binary_corpus(3);
  std::ostringstream out;
  metrics::write_binary_events(out, events);
  std::string bytes = out.str();
  bytes.resize(bytes.size() - 5);  // cut into the last record

  std::istringstream in(bytes);
  const metrics::BinaryReadResult result = metrics::read_binary_events(in);
  EXPECT_TRUE(result.truncated_tail);
  ASSERT_EQ(result.events.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(same_event(result.events[i], events[i])) << "event " << i;
  }
}

TEST(EventLogBinary, CorruptInputsAreRejected) {
  const std::vector<metrics::Event> events = binary_corpus(2);
  std::ostringstream out;
  metrics::write_binary_events(out, events);
  const std::string good = out.str();

  {  // bad magic
    std::string bytes = good;
    bytes[0] = 'X';
    std::istringstream in(bytes);
    EXPECT_THROW((void)metrics::read_binary_events(in), std::runtime_error);
  }
  {  // unsupported version
    std::string bytes = good;
    bytes[4] = 0x7F;
    std::istringstream in(bytes);
    EXPECT_THROW((void)metrics::read_binary_events(in), std::runtime_error);
  }
  {  // wrong record size
    std::string bytes = good;
    bytes[6] = 0x13;
    std::istringstream in(bytes);
    EXPECT_THROW((void)metrics::read_binary_events(in), std::runtime_error);
  }
  {  // out-of-range event kind in the first record
    std::string bytes = good;
    bytes[8 + 8] = static_cast<char>(metrics::kNumEventKinds);
    std::istringstream in(bytes);
    EXPECT_THROW((void)metrics::read_binary_events(in), std::runtime_error);
  }
  {  // empty stream: not even a header
    std::istringstream in("");
    EXPECT_THROW((void)metrics::read_binary_events(in), std::runtime_error);
  }
}

TEST(EventLogBinary, ConvertedCsvIsByteIdenticalToLegacyWriter) {
  const std::vector<metrics::Event> events = binary_corpus(100);
  std::ostringstream legacy;
  metrics::write_events_csv(legacy, events);

  std::ostringstream binary;
  metrics::write_binary_events(binary, events);
  std::istringstream in(binary.str());
  std::ostringstream converted;
  const metrics::BinaryReadResult result =
      metrics::convert_binary_events_to_csv(in, converted);
  EXPECT_FALSE(result.truncated_tail);
  EXPECT_EQ(converted.str(), legacy.str());
}
