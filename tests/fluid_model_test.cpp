// Tests for the fluid (differential-equation) model of the assignment
// procedure, including exact-vs-simplified agreement and consolidation
// behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ecocloud/ode/fluid_model.hpp"

namespace ode = ecocloud::ode;

namespace {

ode::FluidModelConfig base_config(std::size_t n, bool exact) {
  ode::FluidModelConfig config;
  config.num_servers = n;
  config.ta = 0.9;
  config.p = 3.0;
  config.lambda = [](double) { return 0.1; };
  config.nu = [](double) { return 1e-4; };
  config.vm_share.assign(n, 0.02);
  config.exact = exact;
  return config;
}

}  // namespace

TEST(FluidModel, SharesSumToOneWhenAnyoneAccepts) {
  for (bool exact : {false, true}) {
    ode::FluidModel model(base_config(10, exact));
    std::vector<double> u(10);
    for (std::size_t i = 0; i < 10; ++i) u[i] = 0.1 + 0.07 * static_cast<double>(i);
    const auto shares = model.assignment_shares(u);
    const double total = std::accumulate(shares.begin(), shares.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << "exact=" << exact;
    for (double s : shares) EXPECT_GE(s, 0.0);
  }
}

TEST(FluidModel, SharesAllZeroWhenNobodyAccepts) {
  for (bool exact : {false, true}) {
    ode::FluidModel model(base_config(5, exact));
    // Everyone above Ta: f_a = 0 everywhere.
    const std::vector<double> u(5, 0.95);
    const auto shares = model.assignment_shares(u);
    for (double s : shares) EXPECT_DOUBLE_EQ(s, 0.0);
  }
}

TEST(FluidModel, ExactAndSimplifiedAgreeForSymmetricState) {
  // With identical utilizations the exact share must equal 1/N exactly,
  // and so must the simplified share.
  ode::FluidModel exact(base_config(20, true));
  ode::FluidModel simplified(base_config(20, false));
  const std::vector<double> u(20, 0.5);
  for (const auto& shares : {exact.assignment_shares(u),
                             simplified.assignment_shares(u)}) {
    for (double s : shares) EXPECT_NEAR(s, 1.0 / 20.0, 1e-9);
  }
}

TEST(FluidModel, ExactAndSimplifiedCloseForAsymmetricState) {
  // The paper reports the simplified model is "very close" to the exact
  // one; check shares differ by at most a few percent in a mixed state.
  ode::FluidModel exact(base_config(30, true));
  ode::FluidModel simplified(base_config(30, false));
  std::vector<double> u(30);
  for (std::size_t i = 0; i < 30; ++i) u[i] = 0.05 + 0.028 * static_cast<double>(i);
  const auto se = exact.assignment_shares(u);
  const auto ss = simplified.assignment_shares(u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(se[i], ss[i], 0.02) << "i=" << i;
  }
}

TEST(FluidModel, ExactFavorsHigherFaServers) {
  ode::FluidModel model(base_config(3, true));
  // u = {0.2, argmax, 0.85}: middle server has f_a = 1.
  const std::vector<double> u{0.2, 0.675, 0.85};
  const auto shares = model.assignment_shares(u);
  EXPECT_GT(shares[1], shares[0]);
  EXPECT_GT(shares[1], shares[2]);
}

TEST(FluidModel, DerivativeBalancesArrivalsAndDepartures) {
  auto config = base_config(2, false);
  config.lambda = [](double) { return 2.0; };
  config.nu = [](double) { return 0.1; };
  ode::FluidModel model(config);
  const std::vector<double> u{0.5, 0.5};
  std::vector<double> dudt;
  model.derivative(0.0, u, dudt);
  // Each server gets share 0.5: du/dt = -0.1*0.5 + 2.0*0.5*0.02 = -0.03.
  EXPECT_NEAR(dudt[0], -0.03, 1e-12);
  EXPECT_NEAR(dudt[1], -0.03, 1e-12);
}

TEST(FluidModel, NoNegativeDriftAtZero) {
  auto config = base_config(2, false);
  ode::FluidModel model(config);
  const std::vector<double> u{0.0, 0.5};
  std::vector<double> dudt;
  model.derivative(0.0, u, dudt);
  EXPECT_GE(dudt[0], 0.0);
}

TEST(FluidModel, ConsolidationFromUniformStart) {
  // Start 20 servers at u = 0.25 with balanced lambda/nu; the fluid system
  // must stratify: some servers drain toward 0, others approach Ta.
  // Balance: lambda * vm_share / nu = 5 total utilization over 20 servers
  // (capacity 18 at Ta), with a ~2.8 h VM lifetime so 12 h is > 4 turnover
  // times.
  auto config = base_config(20, false);
  config.lambda = [](double) { return 0.025; };  // VMs/s
  config.nu = [](double) { return 1.0e-4; };
  ode::FluidModel model(config);

  std::vector<double> u0(20);
  for (std::size_t i = 0; i < 20; ++i) {
    // Small asymmetry seeds the instability (as randomness does in the sim).
    u0[i] = 0.20 + 0.005 * static_cast<double>(i);
  }
  const auto u = ode::integrate_rk4(model.rhs(), u0, 0.0, 12.0 * 3600.0, 10.0);

  const std::size_t active = ode::FluidModel::count_active(u, 0.05);
  EXPECT_LT(active, 20u);  // someone hibernated
  EXPECT_GT(active, 0u);
  double max_u = 0.0;
  for (double x : u) max_u = std::max(max_u, x);
  EXPECT_GT(max_u, 0.7);  // someone consolidated toward Ta
  for (double x : u) EXPECT_LE(x, config.ta + 0.02);
}

TEST(FluidModel, TotalUtilizationConservedAtBalance) {
  // If lambda * mean(vm_share) == nu * sum(u), total utilization is in
  // steady state; verify d(sum u)/dt ~ 0 when shares sum to 1.
  auto config = base_config(10, false);
  const double total_u = 4.0;
  config.nu = [](double) { return 1e-4; };
  config.lambda = [total_u](double) { return 1e-4 * total_u / 0.02; };
  ode::FluidModel model(config);
  std::vector<double> u(10, total_u / 10.0);
  std::vector<double> dudt;
  model.derivative(0.0, u, dudt);
  const double drift = std::accumulate(dudt.begin(), dudt.end(), 0.0);
  EXPECT_NEAR(drift, 0.0, 1e-12);
}

TEST(FluidModel, CountActiveThreshold) {
  EXPECT_EQ(ode::FluidModel::count_active({0.0, 0.005, 0.02, 0.5}, 0.01), 2u);
}

TEST(FluidModel, Validation) {
  auto config = base_config(5, false);
  config.vm_share.resize(3);
  EXPECT_THROW(ode::FluidModel{config}, std::invalid_argument);
  auto config2 = base_config(5, false);
  config2.lambda = nullptr;
  EXPECT_THROW(ode::FluidModel{config2}, std::invalid_argument);
  auto config3 = base_config(5, false);
  config3.vm_share[2] = 0.0;
  EXPECT_THROW(ode::FluidModel{config3}, std::invalid_argument);
}

TEST(FluidModel, StateSizeMismatchThrows) {
  ode::FluidModel model(base_config(5, false));
  std::vector<double> dudt;
  EXPECT_THROW(model.derivative(0.0, {0.1, 0.2}, dudt), std::invalid_argument);
}
