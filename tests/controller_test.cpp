// Tests for the event-driven ecoCloud controller: deployment, wake-up and
// boot queues, migration execution, hibernation, departures.

#include <gtest/gtest.h>

#include "ecocloud/core/controller.hpp"

namespace core = ecocloud::core;
namespace dc = ecocloud::dc;
namespace sim = ecocloud::sim;
using ecocloud::util::Rng;

namespace {

struct Fixture {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  std::unique_ptr<core::EcoCloudController> controller;

  void build(std::uint64_t seed = 9) {
    controller = std::make_unique<core::EcoCloudController>(simulator, datacenter,
                                                            params, Rng(seed));
  }

  dc::ServerId add_server(unsigned cores = 6) {
    return datacenter.add_server(cores, 2000.0);
  }
};

}  // namespace

TEST(Controller, DeployPlacesOnVolunteeringServer) {
  Fixture f;
  const auto s = f.add_server();
  f.build();
  f.controller->force_activate(s);
  const auto seed_vm = f.datacenter.create_vm(0.675 * 12000.0);
  f.datacenter.place_vm(0.0, seed_vm, s);  // fa(0.675) = 1

  const auto vm = f.datacenter.create_vm(100.0);
  EXPECT_TRUE(f.controller->deploy_vm(vm));
  EXPECT_EQ(f.datacenter.vm(vm).host, s);
}

TEST(Controller, DeployWakesServerWhenNobodyVolunteers) {
  Fixture f;
  f.add_server();
  f.build();
  const auto vm = f.datacenter.create_vm(100.0);
  EXPECT_TRUE(f.controller->deploy_vm(vm));  // queued on the waking server
  EXPECT_EQ(f.datacenter.booting_server_count(), 1u);
  EXPECT_FALSE(f.datacenter.vm(vm).placed());
  f.simulator.run_until(f.params.boot_time_s + 1.0);
  EXPECT_EQ(f.datacenter.active_server_count(), 1u);
  EXPECT_TRUE(f.datacenter.vm(vm).placed());
  EXPECT_EQ(f.controller->wake_ups(), 1u);
}

TEST(Controller, WokenServerGetsGracePeriod) {
  Fixture f;
  const auto s = f.add_server();
  f.build();
  const auto vm = f.datacenter.create_vm(100.0);
  f.controller->deploy_vm(vm);
  f.simulator.run_until(f.params.boot_time_s + 1.0);
  EXPECT_TRUE(f.datacenter.server(s).in_grace(f.simulator.now()));
  EXPECT_NEAR(f.datacenter.server(s).grace_until(),
              f.params.boot_time_s + f.params.grace_period_s, 1e-9);
}

TEST(Controller, MultipleVmsShareOneBootingServer) {
  Fixture f;
  f.add_server(8);  // 16000 MHz capacity
  f.add_server(8);
  f.build();
  std::vector<dc::VmId> vms;
  for (int i = 0; i < 10; ++i) {
    vms.push_back(f.datacenter.create_vm(1000.0));
    EXPECT_TRUE(f.controller->deploy_vm(vms.back()));
  }
  // 10 * 1000 = 10000 MHz < Ta * 16000 = 14400: one boot suffices.
  EXPECT_EQ(f.controller->wake_ups(), 1u);
  f.simulator.run_until(f.params.boot_time_s + 1.0);
  for (auto vm : vms) {
    EXPECT_TRUE(f.datacenter.vm(vm).placed());
  }
}

TEST(Controller, QueueOverflowWakesSecondServer) {
  Fixture f;
  f.add_server(4);  // 8000 MHz, Ta cap 7200
  f.add_server(4);
  f.build();
  for (int i = 0; i < 4; ++i) {
    const auto vm = f.datacenter.create_vm(2000.0);
    EXPECT_TRUE(f.controller->deploy_vm(vm));
  }
  // 4 * 2000 = 8000 > 7200: needs a second server.
  EXPECT_EQ(f.controller->wake_ups(), 2u);
}

TEST(Controller, DeployFailsWhenSaturated) {
  Fixture f;
  f.add_server(4);
  f.build();
  // Fill the only server's boot queue beyond Ta, then exhaust sleepers.
  for (int i = 0; i < 3; ++i) {
    const auto vm = f.datacenter.create_vm(2400.0);
    EXPECT_TRUE(f.controller->deploy_vm(vm));
  }
  const auto overflow = f.datacenter.create_vm(2400.0);
  EXPECT_FALSE(f.controller->deploy_vm(overflow));
  EXPECT_EQ(f.controller->assignment_failures(), 1u);
}

TEST(Controller, AssignmentFailureEventFires) {
  Fixture f;
  f.build();
  bool fired = false;
  f.controller->events().on_assignment_failure = [&](sim::SimTime, dc::VmId) {
    fired = true;
  };
  const auto vm = f.datacenter.create_vm(100.0);
  EXPECT_FALSE(f.controller->deploy_vm(vm));  // zero servers at all
  EXPECT_TRUE(fired);
}

TEST(Controller, AssignmentEventReportsPlacement) {
  Fixture f;
  const auto s = f.add_server();
  f.build();
  f.controller->force_activate(s);
  const auto seed_vm = f.datacenter.create_vm(0.675 * 12000.0);
  f.datacenter.place_vm(0.0, seed_vm, s);
  dc::ServerId reported = dc::kNoServer;
  f.controller->events().on_assignment = [&](sim::SimTime, dc::VmId, dc::ServerId sid) {
    reported = sid;
  };
  const auto vm = f.datacenter.create_vm(50.0);
  f.controller->deploy_vm(vm);
  EXPECT_EQ(reported, s);
}

TEST(Controller, DepartedQueuedVmIsNotPlaced) {
  Fixture f;
  f.add_server();
  f.build();
  const auto vm = f.datacenter.create_vm(100.0);
  f.controller->deploy_vm(vm);  // queued on booting server
  f.controller->depart_vm(vm);
  f.simulator.run_until(f.params.boot_time_s + 1.0);
  EXPECT_FALSE(f.datacenter.vm(vm).placed());
  EXPECT_EQ(f.datacenter.placed_vm_count(), 0u);
}

TEST(Controller, DepartPlacedVmTriggersHibernation) {
  Fixture f;
  const auto s = f.add_server();
  f.build();
  f.controller->force_activate(s);
  const auto vm = f.datacenter.create_vm(100.0);
  f.datacenter.place_vm(0.0, vm, s);
  std::size_t hibernated = 0;
  f.controller->events().on_hibernation = [&](sim::SimTime, dc::ServerId) {
    ++hibernated;
  };
  f.controller->depart_vm(vm);
  f.simulator.run_until(f.params.hibernate_delay_s + 1.0);
  EXPECT_TRUE(f.datacenter.server(s).hibernated());
  EXPECT_EQ(hibernated, 1u);
}

TEST(Controller, HibernationSkippedIfServerRefilled) {
  Fixture f;
  const auto s = f.add_server();
  f.build();
  f.controller->force_activate(s);
  const auto vm = f.datacenter.create_vm(100.0);
  f.datacenter.place_vm(0.0, vm, s);
  f.controller->depart_vm(vm);
  // Refill before the hibernate delay expires.
  const auto vm2 = f.datacenter.create_vm(100.0);
  f.simulator.schedule_at(f.params.hibernate_delay_s / 2.0,
                          [&] { f.datacenter.place_vm(f.simulator.now(), vm2, s); });
  f.simulator.run_until(f.params.hibernate_delay_s * 2.0);
  EXPECT_TRUE(f.datacenter.server(s).active());
}

TEST(Controller, LowMigrationDrainsAndHibernatesSource) {
  Fixture f;
  const auto source = f.add_server();
  const auto dest = f.add_server();
  f.params.monitor_period_s = 5.0;
  f.params.migration_cooldown_s = 10.0;
  f.build();
  f.controller->force_activate(source);
  f.controller->force_activate(dest);
  // Source holds one small VM (u ~ 0.08 < Tl); dest is a perfect acceptor.
  const auto small = f.datacenter.create_vm(1000.0);
  f.datacenter.place_vm(0.0, small, source);
  const auto anchor = f.datacenter.create_vm(0.675 * 12000.0);
  f.datacenter.place_vm(0.0, anchor, dest);
  std::size_t low = 0;
  f.controller->events().on_migration_complete = [&](sim::SimTime, dc::VmId,
                                                     bool is_high) {
    if (!is_high) ++low;
  };
  f.controller->start();
  f.simulator.run_until(2.0 * sim::kHour);
  EXPECT_EQ(low, 1u);
  EXPECT_EQ(f.datacenter.vm(small).host, dest);
  EXPECT_TRUE(f.datacenter.server(source).hibernated());
  EXPECT_EQ(f.controller->low_migrations(), 1u);
}

TEST(Controller, HighMigrationRelievesOverload) {
  Fixture f;
  const auto hot = f.add_server();
  const auto cool = f.add_server();
  f.params.monitor_period_s = 5.0;
  f.build();
  f.controller->force_activate(hot);
  f.controller->force_activate(cool);
  // Hot server at u = 0.99; cool at 0.5 (below 0.9 * 0.99 = 0.891).
  for (int i = 0; i < 11; ++i) {
    const auto vm = f.datacenter.create_vm(1080.0);
    f.datacenter.place_vm(0.0, vm, hot);
  }
  const auto anchor = f.datacenter.create_vm(0.5 * 12000.0);
  f.datacenter.place_vm(0.0, anchor, cool);
  f.controller->start();
  f.simulator.run_until(0.5 * sim::kHour);
  EXPECT_GT(f.controller->high_migrations(), 0u);
  EXPECT_LE(f.datacenter.server(hot).utilization(), 0.96);
}

TEST(Controller, HighMigrationWakesWhenNoVolunteer) {
  Fixture f;
  const auto hot = f.add_server();
  f.add_server();  // sleeper
  f.params.monitor_period_s = 5.0;
  f.build();
  f.controller->force_activate(hot);
  for (int i = 0; i < 12; ++i) {
    const auto vm = f.datacenter.create_vm(1000.0);
    f.datacenter.place_vm(0.0, vm, hot);
  }
  ASSERT_DOUBLE_EQ(f.datacenter.server(hot).utilization(), 1.0);
  f.controller->start();
  f.simulator.run_until(0.5 * sim::kHour);
  EXPECT_GE(f.controller->wake_ups(), 1u);
  EXPECT_GT(f.controller->high_migrations(), 0u);
  EXPECT_LT(f.datacenter.server(hot).utilization(), 1.0);
}

TEST(Controller, MigrationsDisabledMeansNoMonitors) {
  Fixture f;
  const auto s = f.add_server();
  f.params.enable_migrations = false;
  f.build();
  f.controller->force_activate(s);
  const auto vm = f.datacenter.create_vm(1000.0);  // u ~ 0.08 < Tl
  f.datacenter.place_vm(0.0, vm, s);
  f.controller->start();
  f.simulator.run_until(1.0 * sim::kHour);
  EXPECT_EQ(f.controller->low_migrations(), 0u);
  EXPECT_EQ(f.datacenter.vm(vm).host, s);
}

TEST(Controller, DepartMidMigrationCancelsCleanly) {
  Fixture f;
  const auto source = f.add_server();
  const auto dest = f.add_server();
  f.params.monitor_period_s = 5.0;
  f.params.migration_latency_s = 50.0;
  f.build();
  f.controller->force_activate(source);
  f.controller->force_activate(dest);
  const auto small = f.datacenter.create_vm(1000.0);
  f.datacenter.place_vm(0.0, small, source);
  const auto anchor = f.datacenter.create_vm(0.675 * 12000.0);
  f.datacenter.place_vm(0.0, anchor, dest);
  f.controller->start();
  // Run until the migration starts, then depart the VM mid-flight.
  while (f.simulator.now() < sim::kHour && !f.datacenter.vm(small).migrating()) {
    f.simulator.step();
  }
  ASSERT_TRUE(f.datacenter.vm(small).migrating());
  f.controller->depart_vm(small);
  f.simulator.run_until(f.simulator.now() + 2.0 * sim::kHour);
  EXPECT_FALSE(f.datacenter.vm(small).placed());
  EXPECT_DOUBLE_EQ(f.datacenter.server(dest).reserved_mhz(), 0.0);
  EXPECT_EQ(f.controller->low_migrations(), 0u);  // never completed
  EXPECT_TRUE(f.datacenter.server(source).hibernated());
}

TEST(Controller, CountersReset) {
  Fixture f;
  f.build();
  const auto vm = f.datacenter.create_vm(100.0);
  f.controller->deploy_vm(vm);  // fails: no servers
  EXPECT_EQ(f.controller->assignment_failures(), 1u);
  f.controller->reset_counters();
  EXPECT_EQ(f.controller->assignment_failures(), 0u);
  EXPECT_EQ(f.controller->wake_ups(), 0u);
}

TEST(Controller, StartTwiceThrows) {
  Fixture f;
  f.add_server();
  f.build();
  f.controller->start();
  EXPECT_THROW(f.controller->start(), std::logic_error);
}

TEST(Controller, BootingServerReusedForHighMigrationWakes) {
  // Two overloaded servers shed at nearly the same time with one sleeper:
  // the second shedding must reuse the already-booting server instead of
  // failing or double-waking.
  Fixture f;
  const auto hot1 = f.add_server();
  const auto hot2 = f.add_server();
  f.add_server();  // single sleeper
  f.params.monitor_period_s = 5.0;
  f.build();
  f.controller->force_activate(hot1);
  f.controller->force_activate(hot2);
  for (auto hot : {hot1, hot2}) {
    for (int i = 0; i < 12; ++i) {
      const auto vm = f.datacenter.create_vm(1000.0);
      f.datacenter.place_vm(0.0, vm, hot);
    }
  }
  f.controller->start();
  f.simulator.run_until(sim::kHour);
  EXPECT_EQ(f.controller->wake_ups(), 1u);  // one sleeper, woken once
  EXPECT_GT(f.controller->high_migrations(), 1u);
  EXPECT_LT(f.datacenter.server(hot1).utilization(), 1.0);
  EXPECT_LT(f.datacenter.server(hot2).utilization(), 1.0);
}

TEST(Controller, MessageLogCountsDeployTraffic) {
  Fixture f;
  const auto s = f.add_server();
  f.build();
  f.controller->force_activate(s);
  const auto anchor = f.datacenter.create_vm(0.675 * 12000.0);
  f.datacenter.place_vm(0.0, anchor, s);
  const auto vm = f.datacenter.create_vm(10.0);
  f.controller->deploy_vm(vm);
  const auto& messages = f.controller->messages();
  EXPECT_EQ(messages.invitation_rounds, 1u);
  EXPECT_EQ(messages.invitations_sent, 1u);
  EXPECT_EQ(messages.volunteer_replies, 1u);  // fa(argmax) = 1
  EXPECT_EQ(messages.placement_commands, 1u);
}

// --- Failure and recovery paths ---------------------------------------------

TEST(Controller, BootingServerFailureOrphansQueueButNotDepartedVms) {
  Fixture f;
  const auto s = f.add_server();
  f.build();
  const auto gone = f.datacenter.create_vm(100.0);
  const auto stays = f.datacenter.create_vm(100.0);
  f.controller->deploy_vm(gone);   // wakes the server, queues on it
  f.controller->deploy_vm(stays);  // joins the same boot queue
  f.controller->depart_vm(gone);   // leaves while the server still boots

  const auto orphans = f.controller->fail_server(s);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], stays);
  EXPECT_TRUE(f.datacenter.server(s).failed());
  // The cancelled boot event must not activate the dead server later.
  f.simulator.run_until(f.params.boot_time_s + 1.0);
  EXPECT_TRUE(f.datacenter.server(s).failed());
  EXPECT_EQ(f.datacenter.total_activations(), 0u);
  // Redeploying the orphan wakes a fresh machine once one exists.
  const auto spare = f.add_server();
  EXPECT_TRUE(f.controller->deploy_vm(stays));
  f.simulator.run_until(f.simulator.now() + f.params.boot_time_s + 1.0);
  EXPECT_EQ(f.datacenter.vm(stays).host, spare);
}

TEST(Controller, DestinationCrashMidFlightRollsBackMigration) {
  Fixture f;
  const auto source = f.add_server();
  const auto dest = f.add_server();
  f.params.monitor_period_s = 5.0;
  f.params.migration_latency_s = 50.0;
  f.build();
  f.controller->force_activate(source);
  f.controller->force_activate(dest);
  const auto small = f.datacenter.create_vm(1000.0);
  f.datacenter.place_vm(0.0, small, source);
  const auto anchor = f.datacenter.create_vm(0.675 * 12000.0);
  f.datacenter.place_vm(0.0, anchor, dest);
  std::size_t aborted_events = 0;
  f.controller->events().on_migration_aborted =
      [&](sim::SimTime, dc::VmId, bool) { ++aborted_events; };
  f.controller->start();
  while (f.simulator.now() < sim::kHour && !f.datacenter.vm(small).migrating()) {
    f.simulator.step();
  }
  ASSERT_TRUE(f.datacenter.vm(small).migrating());
  ASSERT_GT(f.datacenter.server(dest).reserved_mhz(), 0.0);

  const auto orphans = f.controller->fail_server(dest);
  // The in-flight VM stays on its source; only the anchor is orphaned.
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], anchor);
  EXPECT_FALSE(f.datacenter.vm(small).migrating());
  EXPECT_EQ(f.datacenter.vm(small).host, source);
  EXPECT_DOUBLE_EQ(f.datacenter.server(dest).reserved_mhz(), 0.0);
  EXPECT_EQ(f.controller->interrupted_migrations(), 1u);
  EXPECT_EQ(f.controller->low_migrations(), 0u);
  EXPECT_EQ(aborted_events, 1u);
  // The stale completion event must not land the rolled-back migration.
  f.simulator.run_until(f.simulator.now() + 2.0 * sim::kHour);
  EXPECT_EQ(f.datacenter.vm(small).host, source);
  EXPECT_EQ(f.controller->low_migrations(), 0u);
}

TEST(Controller, SourceCrashMidFlightOrphansMigratingVm) {
  Fixture f;
  const auto source = f.add_server();
  const auto dest = f.add_server();
  f.params.monitor_period_s = 5.0;
  f.params.migration_latency_s = 50.0;
  f.build();
  f.controller->force_activate(source);
  f.controller->force_activate(dest);
  const auto small = f.datacenter.create_vm(1000.0);
  f.datacenter.place_vm(0.0, small, source);
  const auto anchor = f.datacenter.create_vm(0.675 * 12000.0);
  f.datacenter.place_vm(0.0, anchor, dest);
  f.controller->start();
  while (f.simulator.now() < sim::kHour && !f.datacenter.vm(small).migrating()) {
    f.simulator.step();
  }
  ASSERT_TRUE(f.datacenter.vm(small).migrating());

  const auto orphans = f.controller->fail_server(source);
  // The migration dies with its source: the VM is rolled back onto the
  // crashing host first, then orphaned with it.
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], small);
  EXPECT_FALSE(f.datacenter.vm(small).placed());
  EXPECT_DOUBLE_EQ(f.datacenter.server(dest).reserved_mhz(), 0.0);
  EXPECT_EQ(f.controller->interrupted_migrations(), 1u);
  // Recovery: the orphan redeploys onto the surviving destination.
  EXPECT_TRUE(f.controller->deploy_vm(small));
  EXPECT_EQ(f.datacenter.vm(small).host, dest);
  // Repair returns the crashed server to the hibernated pool.
  f.controller->repair_server(source);
  EXPECT_TRUE(f.datacenter.server(source).hibernated());
}

TEST(Controller, OrphanHandlerReceivesCrashVictims) {
  Fixture f;
  const auto s = f.add_server();
  f.build();
  f.controller->force_activate(s);
  const auto a = f.datacenter.create_vm(500.0);
  const auto b = f.datacenter.create_vm(600.0);
  f.datacenter.place_vm(0.0, a, s);
  f.datacenter.place_vm(0.0, b, s);
  std::vector<dc::VmId> handed;
  f.controller->set_orphan_handler([&](dc::VmId vm) { handed.push_back(vm); });
  const auto orphans = f.controller->fail_server(s);
  EXPECT_EQ(handed, orphans);
  EXPECT_EQ(handed.size(), 2u);
  EXPECT_EQ(f.datacenter.placed_vm_count(), 0u);
}

TEST(Controller, BootQueueCountsInboundMigrationReservations) {
  // Regression: queue_on_booting used to ignore capacity reserved for
  // in-flight migrations, so a queued deployment racing a migration to the
  // same booting target could over-commit it past Ta (and even past
  // physical capacity). The queue check must mirror booting_with_room and
  // count queued + reserved + new demand.
  Fixture f;
  const auto s0 = f.datacenter.add_server(1, 2000.0);
  f.datacenter.add_server(1, 2000.0);
  f.datacenter.add_server(1, 2000.0);
  f.build();
  f.controller->force_activate(s0);
  // s0 is too full to volunteer for anything below.
  const auto anchor = f.datacenter.create_vm(1800.0);
  f.datacenter.place_vm(0.0, anchor, s0);

  // First deployment finds no volunteer and wakes a server W, queue = 400.
  const auto vm1 = f.datacenter.create_vm(400.0);
  ASSERT_TRUE(f.controller->deploy_vm(vm1));
  ASSERT_EQ(f.controller->wake_ups(), 1u);
  const auto booting = f.datacenter.servers_with(dc::ServerState::kBooting);
  ASSERT_EQ(booting.size(), 1u);
  const auto w = booting.front();

  // A migration toward W reserves 800 MHz while it boots.
  const auto mover = f.datacenter.create_vm(800.0);
  f.datacenter.place_vm(0.0, mover, s0);
  f.datacenter.begin_migration(0.0, mover, w);
  ASSERT_DOUBLE_EQ(f.datacenter.server(w).reserved_mhz(), 800.0);

  // 400 queued + 800 reserved + 900 new = 2100 MHz > Ta * 2000: W must
  // refuse, and the deployment wakes the last sleeper instead. The buggy
  // check saw only (400 + 900) / 2000 = 0.65 and over-committed W.
  const auto vm2 = f.datacenter.create_vm(900.0);
  ASSERT_TRUE(f.controller->deploy_vm(vm2));
  EXPECT_EQ(f.controller->wake_ups(), 2u);

  // After the boots land and the migration drains s0's overload, no server
  // holds commitments past capacity.
  f.simulator.run_until(f.params.boot_time_s + 1.0);
  EXPECT_NE(f.datacenter.vm(vm2).host, w);
  f.datacenter.complete_migration(f.simulator.now(), mover);
  for (const dc::Server& server : f.datacenter.servers()) {
    EXPECT_LE(server.demand_mhz() + server.reserved_mhz(),
              server.capacity_mhz() + 1e-9)
        << "server " << server.id();
  }
}

TEST(Controller, RecheckShedsMultipleVmsInOneMonitorTick) {
  // Footnote-3 regression for the iterative execute_plan loop: when every
  // hosted VM's share is below share_needed, plan_high falls back to the
  // largest VM and suggests a recheck, and the chain must keep shedding
  // within the SAME monitor tick until the trial stops firing. A server
  // clamped at u = 1.0 fires with certainty (f_h(1.0) = 1), so the number
  // of same-instant migration starts is deterministic.
  Fixture f;
  const auto hot = f.add_server();  // 6 cores = 12000 MHz
  f.add_server();                   // sleepers: the wake path absorbs the
  f.add_server();                   // shed VMs without any volunteer draw
  f.params.monitor_period_s = 5.0;
  // The firing trial sets the cooldown BEFORE execute_plan runs, and the
  // recheck's MigrationProcedure::check reads it — with the default 60 s
  // cooldown the chain stops after one migration by design. Zeroing it
  // isolates the recheck loop itself.
  f.params.migration_cooldown_s = 0.0;
  f.build();
  f.controller->force_activate(hot);

  // 30 x 500 MHz on 12000 MHz: demand 15000, u clamps to 1.0. Each share
  // is 500/12000 ~ 0.042 < share_needed = 1 - Th = 0.05, so every round
  // takes the footnote-3 path. u stays >= 1.0 (certain fire) until six
  // migrations are in flight: at least seven same-tick starts.
  for (int i = 0; i < 30; ++i) {
    const auto vm = f.datacenter.create_vm(500.0);
    f.datacenter.place_vm(0.0, vm, hot);
  }
  ASSERT_DOUBLE_EQ(f.datacenter.server(hot).utilization(), 1.0);

  std::vector<sim::SimTime> starts;
  f.controller->events().on_migration_start =
      [&](sim::SimTime t, dc::VmId, bool is_high) {
        EXPECT_TRUE(is_high);
        starts.push_back(t);
      };
  f.controller->start();
  f.simulator.run_until(60.0);

  ASSERT_FALSE(starts.empty());
  std::size_t best = 0;
  for (std::size_t i = 0; i < starts.size();) {
    std::size_t j = i;
    while (j < starts.size() && starts[j] == starts[i]) ++j;
    best = std::max(best, j - i);
    i = j;
  }
  EXPECT_GE(best, 7u);
  EXPECT_GE(f.controller->wake_ups(), 1u);
}
