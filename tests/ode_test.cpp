// Tests for the ODE solvers and the Poisson-binomial machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "ecocloud/ode/poisson_binomial.hpp"
#include "ecocloud/ode/solver.hpp"

namespace ode = ecocloud::ode;

// ------------------------------------------------------------------- solvers

TEST(Rk4, ExponentialDecayMatchesClosedForm) {
  const ode::Rhs rhs = [](double, const std::vector<double>& y,
                          std::vector<double>& dydt) { dydt[0] = -0.5 * y[0]; };
  const auto y = ode::integrate_rk4(rhs, {2.0}, 0.0, 4.0, 0.01);
  EXPECT_NEAR(y[0], 2.0 * std::exp(-2.0), 1e-8);
}

TEST(Rk4, HarmonicOscillatorConservesEnergy) {
  const ode::Rhs rhs = [](double, const std::vector<double>& y,
                          std::vector<double>& dydt) {
    dydt[0] = y[1];
    dydt[1] = -y[0];
  };
  const auto y = ode::integrate_rk4(rhs, {1.0, 0.0}, 0.0, 2.0 * M_PI, 0.001);
  EXPECT_NEAR(y[0], 1.0, 1e-9);
  EXPECT_NEAR(y[1], 0.0, 1e-9);
}

TEST(Rk4, TimeDependentRhs) {
  // y' = 2t -> y(3) = 9 from y(0) = 0.
  const ode::Rhs rhs = [](double t, const std::vector<double>&,
                          std::vector<double>& dydt) { dydt[0] = 2.0 * t; };
  const auto y = ode::integrate_rk4(rhs, {0.0}, 0.0, 3.0, 0.1);
  EXPECT_NEAR(y[0], 9.0, 1e-10);
}

TEST(Rk4, FinalPartialStepLandsExactly) {
  const ode::Rhs rhs = [](double, const std::vector<double>&,
                          std::vector<double>& dydt) { dydt[0] = 1.0; };
  // 1.0 step over [0, 2.5]: last step is shortened to 0.5.
  const auto y = ode::integrate_rk4(rhs, {0.0}, 0.0, 2.5, 1.0);
  EXPECT_NEAR(y[0], 2.5, 1e-12);
}

TEST(Rk4, ObserverSeesMonotoneTimes) {
  const ode::Rhs rhs = [](double, const std::vector<double>&,
                          std::vector<double>& dydt) { dydt[0] = 1.0; };
  std::vector<double> times;
  ode::integrate_rk4(rhs, {0.0}, 0.0, 1.0, 0.25,
                     [&](double t, const std::vector<double>&) { times.push_back(t); });
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.front(), 0.0);
  EXPECT_DOUBLE_EQ(times.back(), 1.0);
}

TEST(Rk4, Validation) {
  const ode::Rhs rhs = [](double, const std::vector<double>&,
                          std::vector<double>& dydt) { dydt[0] = 0.0; };
  EXPECT_THROW(ode::integrate_rk4(rhs, {0.0}, 0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ode::integrate_rk4(rhs, {0.0}, 1.0, 0.0, 0.1), std::invalid_argument);
}

TEST(Rkf45, ExponentialDecayWithinTolerance) {
  const ode::Rhs rhs = [](double, const std::vector<double>& y,
                          std::vector<double>& dydt) { dydt[0] = -1.0 * y[0]; };
  ode::Rkf45Options options;
  options.abs_tol = 1e-10;
  options.rel_tol = 1e-10;
  ode::Rkf45Stats stats;
  const auto y = ode::integrate_rkf45(rhs, {1.0}, 0.0, 5.0, options, {}, &stats);
  EXPECT_NEAR(y[0], std::exp(-5.0), 1e-7);
  EXPECT_GT(stats.accepted_steps, 0u);
}

TEST(Rkf45, AdaptsStepToStiffness) {
  // A RHS whose time scale changes sharply at t = 5.
  const ode::Rhs rhs = [](double t, const std::vector<double>& y,
                          std::vector<double>& dydt) {
    dydt[0] = (t < 5.0 ? -0.01 : -50.0) * y[0];
  };
  ode::Rkf45Options options;
  options.dt_init = 1.0;
  options.dt_max = 10.0;
  ode::Rkf45Stats stats;
  const auto y = ode::integrate_rkf45(rhs, {1.0}, 0.0, 6.0, options, {}, &stats);
  EXPECT_GT(stats.rejected_steps, 0u);  // must have shrunk the step at t = 5
  EXPECT_NEAR(y[0], std::exp(-0.05) * std::exp(-50.0), 1e-6);
}

TEST(Rkf45, MatchesRk4OnSmoothProblem) {
  const ode::Rhs rhs = [](double t, const std::vector<double>& y,
                          std::vector<double>& dydt) {
    dydt[0] = std::sin(t) - 0.1 * y[0];
  };
  const auto fine = ode::integrate_rk4(rhs, {0.0}, 0.0, 10.0, 0.001);
  const auto adaptive = ode::integrate_rkf45(rhs, {0.0}, 0.0, 10.0);
  EXPECT_NEAR(adaptive[0], fine[0], 1e-4);
}

// --------------------------------------------------------- Poisson-binomial

TEST(PoissonBinomial, MatchesBinomialForEqualProbs) {
  const auto pmf = ode::poisson_binomial_pmf({0.5, 0.5, 0.5});
  ASSERT_EQ(pmf.size(), 4u);
  EXPECT_NEAR(pmf[0], 0.125, 1e-12);
  EXPECT_NEAR(pmf[1], 0.375, 1e-12);
  EXPECT_NEAR(pmf[2], 0.375, 1e-12);
  EXPECT_NEAR(pmf[3], 0.125, 1e-12);
}

TEST(PoissonBinomial, EmptyInputIsPointMassAtZero) {
  const auto pmf = ode::poisson_binomial_pmf({});
  ASSERT_EQ(pmf.size(), 1u);
  EXPECT_DOUBLE_EQ(pmf[0], 1.0);
}

TEST(PoissonBinomial, MatchesBruteForceEnumeration) {
  const std::vector<double> probs{0.1, 0.7, 0.45, 0.99, 0.3};
  const auto pmf = ode::poisson_binomial_pmf(probs);
  // Brute force over all 2^5 outcomes.
  std::vector<double> expected(probs.size() + 1, 0.0);
  for (unsigned mask = 0; mask < 32; ++mask) {
    double p = 1.0;
    int successes = 0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      if (mask & (1u << i)) {
        p *= probs[i];
        ++successes;
      } else {
        p *= 1.0 - probs[i];
      }
    }
    expected[successes] += p;
  }
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_NEAR(pmf[k], expected[k], 1e-12) << "k=" << k;
  }
}

TEST(PoissonBinomial, PmfSumsToOne) {
  std::vector<double> probs;
  for (int i = 0; i < 50; ++i) probs.push_back((i % 10) / 10.0);
  const auto pmf = ode::poisson_binomial_pmf(probs);
  double total = 0.0;
  for (double p : pmf) {
    EXPECT_GE(p, -1e-15);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PoissonBinomial, RemoveFactorInvertsConvolution) {
  const std::vector<double> probs{0.2, 0.8, 0.5, 0.05, 0.95};
  const auto full = ode::poisson_binomial_pmf(probs);
  for (std::size_t s = 0; s < probs.size(); ++s) {
    std::vector<double> others;
    for (std::size_t i = 0; i < probs.size(); ++i) {
      if (i != s) others.push_back(probs[i]);
    }
    const auto expected = ode::poisson_binomial_pmf(others);
    const auto actual = ode::remove_factor(full, probs[s]);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_NEAR(actual[k], expected[k], 1e-9) << "s=" << s << " k=" << k;
    }
  }
}

TEST(PoissonBinomial, RemoveFactorStableForExtremeProbs) {
  std::vector<double> probs;
  for (int i = 0; i < 100; ++i) {
    probs.push_back(i % 2 == 0 ? 0.999 : 0.001);
  }
  const auto full = ode::poisson_binomial_pmf(probs);
  const auto without_high = ode::remove_factor(full, 0.999);
  const auto without_low = ode::remove_factor(full, 0.001);
  double sum_high = 0.0, sum_low = 0.0;
  for (double p : without_high) sum_high += p;
  for (double p : without_low) sum_low += p;
  EXPECT_NEAR(sum_high, 1.0, 1e-6);
  EXPECT_NEAR(sum_low, 1.0, 1e-6);
}

TEST(PoissonBinomial, ExpectedInverseOnePlus) {
  // K ~ Bernoulli(0.5): E[1/(1+K)] = 0.5 * 1 + 0.5 * 0.5 = 0.75.
  const auto pmf = ode::poisson_binomial_pmf({0.5});
  EXPECT_NEAR(ode::expected_inverse_one_plus(pmf), 0.75, 1e-12);
  // Degenerate: no rivals.
  EXPECT_DOUBLE_EQ(ode::expected_inverse_one_plus({1.0}), 1.0);
}

TEST(PoissonBinomial, Validation) {
  EXPECT_THROW(ode::poisson_binomial_pmf({1.5}), std::invalid_argument);
  EXPECT_THROW(ode::poisson_binomial_pmf({-0.1}), std::invalid_argument);
  EXPECT_THROW(ode::remove_factor({1.0}, 0.5), std::invalid_argument);
}
