// Tests for the multi-resource extension (paper Sec. V future work).

#include <gtest/gtest.h>

#include "ecocloud/multires/multi_resource.hpp"

namespace multires = ecocloud::multires;
namespace core = ecocloud::core;
namespace dc = ecocloud::dc;
using ecocloud::util::Rng;

namespace {

struct Fixture {
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  Rng rng{55};

  dc::ServerId add_server(double cpu_util, double ram_util, double ram_mb = 24000.0) {
    const auto s = datacenter.add_server(6, 2000.0, ram_mb);
    datacenter.start_booting(0.0, s);
    datacenter.finish_booting(0.0, s);
    if (cpu_util > 0.0 || ram_util > 0.0) {
      const auto v = datacenter.create_vm(cpu_util * 12000.0, ram_util * ram_mb);
      datacenter.place_vm(0.0, v, s);
    }
    return s;
  }
};

}  // namespace

TEST(MultiResource, StrategyNames) {
  EXPECT_STREQ(multires::to_string(multires::Strategy::kAllTrials), "all-trials");
  EXPECT_STREQ(multires::to_string(multires::Strategy::kCriticalTrial),
               "critical-trial");
}

TEST(MultiResource, HardFeasibilityAlwaysEnforced) {
  Fixture f;
  f.add_server(0.675, 0.95);  // RAM nearly full
  for (auto strategy :
       {multires::Strategy::kAllTrials, multires::Strategy::kCriticalTrial}) {
    multires::MultiResourceAssignment proc(f.params, strategy, f.rng);
    // 10% of RAM cannot fit on a server at 95% RAM.
    for (int i = 0; i < 100; ++i) {
      EXPECT_FALSE(proc.invite(f.datacenter, 100.0, 2400.0).server.has_value());
    }
  }
}

TEST(MultiResource, AllTrialsRequiresBothResourcesAttractive) {
  Fixture f;
  // CPU at argmax (f_a = 1) but RAM empty (f_a = 0): the AND of trials
  // must always fail.
  f.add_server(0.675, 0.0);
  multires::MultiResourceAssignment proc(f.params, multires::Strategy::kAllTrials,
                                         f.rng);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(proc.invite(f.datacenter, 100.0, 0.0).server.has_value());
  }
}

TEST(MultiResource, AllTrialsAcceptanceIsProductOfFa) {
  Fixture f;
  const double u_cpu = 0.5, u_ram = 0.4;
  f.add_server(u_cpu, u_ram);
  multires::MultiResourceAssignment proc(f.params, multires::Strategy::kAllTrials,
                                         f.rng);
  core::AssignmentFunction fa(f.params.ta, f.params.p);
  const double expected = fa(u_cpu) * fa(u_ram);
  int accepted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (proc.invite(f.datacenter, 10.0, 10.0).server.has_value()) ++accepted;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / n, expected, 0.02);
}

TEST(MultiResource, CriticalTrialUsesMostUtilizedResource) {
  Fixture f;
  const double u_cpu = 0.3, u_ram = 0.675;  // RAM is critical, fa(0.675) = 1
  f.add_server(u_cpu, u_ram);
  multires::MultiResourceAssignment proc(
      f.params, multires::Strategy::kCriticalTrial, f.rng);
  int accepted = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (proc.invite(f.datacenter, 10.0, 10.0).server.has_value()) ++accepted;
  }
  EXPECT_EQ(accepted, n);  // fa(critical) = 1 and constraints hold
}

TEST(MultiResource, CriticalTrialEnforcesConstraintOnOtherResource) {
  Fixture f;
  // CPU critical at argmax; placing the VM would push RAM above Ta.
  f.add_server(0.675, 0.88);
  multires::MultiResourceAssignment proc(
      f.params, multires::Strategy::kCriticalTrial, f.rng);
  // VM needs 5% RAM: 0.88 + 0.05 = 0.93 > Ta = 0.9 -> constraint fails.
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(proc.invite(f.datacenter, 10.0, 0.05 * 24000.0).server.has_value());
  }
}

TEST(MultiResource, ServersWithoutRamTreatRamAsFree) {
  Fixture f;
  const auto s = f.datacenter.add_server(6, 2000.0, 0.0);  // no RAM tracked
  f.datacenter.start_booting(0.0, s);
  f.datacenter.finish_booting(0.0, s);
  const auto v = f.datacenter.create_vm(0.675 * 12000.0, 0.0);
  f.datacenter.place_vm(0.0, v, s);
  multires::MultiResourceAssignment all(f.params, multires::Strategy::kAllTrials,
                                        f.rng);
  // RAM utilization reads 0 -> fa(0) = 0 -> all-trials never accepts.
  EXPECT_FALSE(all.invite(f.datacenter, 10.0, 100.0).server.has_value());
  multires::MultiResourceAssignment critical(
      f.params, multires::Strategy::kCriticalTrial, f.rng);
  // Critical resource is CPU at argmax -> always accepts.
  EXPECT_TRUE(critical.invite(f.datacenter, 10.0, 100.0).server.has_value());
}

TEST(MultiResource, InviteCountsContactedAndVolunteers) {
  Fixture f;
  for (int i = 0; i < 5; ++i) f.add_server(0.675, 0.675);
  f.datacenter.add_server(6, 2000.0, 24000.0);  // hibernated, not contacted
  multires::MultiResourceAssignment proc(
      f.params, multires::Strategy::kCriticalTrial, f.rng);
  const auto result = proc.invite(f.datacenter, 10.0, 10.0);
  EXPECT_EQ(result.contacted, 5u);
  EXPECT_EQ(result.volunteers, 5u);
  EXPECT_TRUE(result.server.has_value());
}

TEST(MultiResource, CriticalPacksTighterThanAllTrials) {
  // The paper's hypothesized trade-off: the critical-trial strategy should
  // volunteer at least as often as the AND-of-trials strategy.
  Fixture f;
  f.add_server(0.5, 0.3);
  Rng rng_a(7), rng_b(7);
  multires::MultiResourceAssignment all(f.params, multires::Strategy::kAllTrials,
                                        rng_a);
  multires::MultiResourceAssignment critical(
      f.params, multires::Strategy::kCriticalTrial, rng_b);
  int all_accepts = 0, critical_accepts = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (all.invite(f.datacenter, 10.0, 10.0).server.has_value()) ++all_accepts;
    if (critical.invite(f.datacenter, 10.0, 10.0).server.has_value()) {
      ++critical_accepts;
    }
  }
  EXPECT_GT(critical_accepts, all_accepts);
}

TEST(MultiResource, NegativeDemandRejected) {
  Fixture f;
  multires::MultiResourceAssignment proc(f.params, multires::Strategy::kAllTrials,
                                         f.rng);
  EXPECT_THROW(proc.invite(f.datacenter, -1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(proc.invite(f.datacenter, 0.0, -1.0), std::invalid_argument);
}
