// Tests for the telemetry layer: metric registry semantics, structured
// logging, exporter formats, the Chrome trace writer, the engine
// introspection counters, and — the load-bearing guarantee — that
// attaching the full telemetry stack leaves the simulation bit-identical.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ecocloud/core/probability.hpp"
#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/obs/chrome_trace.hpp"
#include "ecocloud/obs/exporters.hpp"
#include "ecocloud/obs/instrumentation.hpp"
#include "ecocloud/obs/logger.hpp"
#include "ecocloud/obs/metric_registry.hpp"
#include "ecocloud/scenario/scenario.hpp"
#include "ecocloud/sim/simulator.hpp"

using namespace ecocloud;

// ------------------------------------------------------------------ registry

TEST(MetricRegistry, RegistrationIsIdempotent) {
  obs::MetricRegistry registry;
  obs::Counter& a = registry.counter("ecocloud_test_total", {{"k", "v"}});
  obs::Counter& b = registry.counter("ecocloud_test_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.num_instances(), 1u);
}

TEST(MetricRegistry, LabelOrderDoesNotSplitSeries) {
  obs::MetricRegistry registry;
  obs::Counter& a =
      registry.counter("ecocloud_test_total", {{"b", "2"}, {"a", "1"}});
  obs::Counter& b =
      registry.counter("ecocloud_test_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.num_instances(), 1u);
}

TEST(MetricRegistry, DistinctLabelsGetDistinctInstances) {
  obs::MetricRegistry registry;
  obs::Counter& heap = registry.counter("ecocloud_pops_total", {{"source", "heap"}});
  obs::Counter& ring = registry.counter("ecocloud_pops_total", {{"source", "ring"}});
  EXPECT_NE(&heap, &ring);
  heap.inc();
  EXPECT_EQ(heap.value(), 1u);
  EXPECT_EQ(ring.value(), 0u);
  EXPECT_EQ(registry.families().size(), 1u);
  EXPECT_EQ(registry.num_instances(), 2u);
}

TEST(MetricRegistry, TypeConflictThrows) {
  obs::MetricRegistry registry;
  registry.counter("ecocloud_thing");
  EXPECT_THROW(registry.gauge("ecocloud_thing"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("ecocloud_thing", {1.0}), std::invalid_argument);
}

TEST(MetricRegistry, InvalidNamesRejected) {
  obs::MetricRegistry registry;
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  EXPECT_THROW(registry.counter("7starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has-dash"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has space"), std::invalid_argument);
  registry.counter("ok_name:with_colon_1");  // must not throw
}

TEST(MetricRegistry, CallbackBackedMetricsSampleTheirSource) {
  obs::MetricRegistry registry;
  std::uint64_t source = 0;
  obs::Counter& c =
      registry.counter_fn("ecocloud_pull_total", [&source] { return source; });
  EXPECT_EQ(c.value(), 0u);
  source = 41;
  EXPECT_EQ(c.value(), 41u);

  double level = 0.25;
  obs::Gauge& g = registry.gauge_fn("ecocloud_level", [&level] { return level; });
  level = 0.75;
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(MetricRegistry, HistogramBucketsAreCumulativeAtExport) {
  obs::MetricRegistry registry;
  obs::Histogram& h =
      registry.histogram("ecocloud_lat_seconds", {1.0, 5.0, 10.0});
  h.observe(0.5);   // bucket le=1
  h.observe(5.0);   // le=5 (boundary counts into its bucket)
  h.observe(7.0);   // le=10
  h.observe(99.0);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 111.5);
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(MetricRegistry, DisabledRegistryHandsOutWorkingSinks) {
  obs::MetricRegistry registry;
  registry.set_enabled(false);
  obs::Counter& c = registry.counter("ecocloud_sink_total");
  obs::Gauge& g = registry.gauge("ecocloud_sink");
  obs::Histogram& h = registry.histogram("ecocloud_sink_hist", {1.0});
  c.inc();
  g.set(3.0);
  h.observe(0.5);  // must not crash; values are discarded from exports
  EXPECT_EQ(registry.num_instances(), 0u);
  EXPECT_TRUE(registry.families().empty());

  std::ostringstream out;
  obs::write_prometheus(registry, out);
  EXPECT_TRUE(out.str().empty());
}

// -------------------------------------------------------------------- logger

TEST(Logger, DefaultConstructedIsSilent) {
  obs::Logger logger;
  logger.info("test", "nobody hears this");
  EXPECT_EQ(logger.lines_written(), 0u);
  EXPECT_FALSE(logger.enabled(obs::LogLevel::kError));
}

TEST(Logger, EmitsOneJsonObjectPerLine) {
  std::ostringstream out;
  obs::Logger logger;
  logger.set_sink(&out);
  logger.set_level(obs::LogLevel::kDebug);
  logger.set_clock([] { return 12.5; });
  logger.debug("sim", "tick", {{"n", std::uint64_t{7}}});
  logger.info("dc", "msg \"quoted\"\n", {{"load", 0.5}, {"ok", true}});
  EXPECT_EQ(logger.lines_written(), 2u);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            R"({"ts_sim":12.5,"level":"debug","component":"sim","msg":"tick","n":7})");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            R"({"ts_sim":12.5,"level":"info","component":"dc",)"
            R"("msg":"msg \"quoted\"\n","load":0.5,"ok":true})");
}

TEST(Logger, LevelThresholdFilters) {
  std::ostringstream out;
  obs::Logger logger;
  logger.set_sink(&out);
  logger.set_level(obs::LogLevel::kWarn);
  logger.trace("c", "no");
  logger.debug("c", "no");
  logger.info("c", "no");
  logger.warn("c", "yes");
  logger.error("c", "yes");
  EXPECT_EQ(logger.lines_written(), 2u);
}

TEST(Logger, ParseLogLevel) {
  EXPECT_EQ(obs::parse_log_level("trace"), obs::LogLevel::kTrace);
  EXPECT_EQ(obs::parse_log_level("debug"), obs::LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("warn"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("error"), obs::LogLevel::kError);
  EXPECT_EQ(obs::parse_log_level("off"), obs::LogLevel::kOff);
  EXPECT_FALSE(obs::parse_log_level("loud").has_value());
  EXPECT_FALSE(obs::parse_log_level("").has_value());
}

// ----------------------------------------------------------------- exporters

TEST(PrometheusExporter, WritesExpositionFormat) {
  obs::MetricRegistry registry;
  registry.counter("ecocloud_pops_total", {{"source", "heap"}}, "Pop count")
      .inc(5);
  registry.counter("ecocloud_pops_total", {{"source", "ring"}}, "Pop count")
      .inc(7);
  registry.gauge("ecocloud_load", {}, "Overall load").set(0.625);
  obs::Histogram& h = registry.histogram("ecocloud_lat_seconds", {1.0, 5.0},
                                         {}, "Latency");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);

  std::ostringstream out;
  obs::write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP ecocloud_pops_total Pop count\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ecocloud_pops_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("ecocloud_pops_total{source=\"heap\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("ecocloud_pops_total{source=\"ring\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ecocloud_load gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ecocloud_load 0.625\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ecocloud_lat_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("ecocloud_lat_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ecocloud_lat_seconds_bucket{le=\"5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("ecocloud_lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ecocloud_lat_seconds_count 3\n"), std::string::npos);
}

TEST(PrometheusExporter, EscapesLabelValuesAndHelp) {
  obs::MetricRegistry registry;
  registry.counter("ecocloud_esc_total", {{"path", "a\\b\"c\nd"}},
                   "help with \\ and\nnewline");
  std::ostringstream out;
  obs::write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find(R"(path="a\\b\"c\nd")"), std::string::npos);
  EXPECT_NE(text.find("# HELP ecocloud_esc_total help with \\\\ and\\nnewline\n"),
            std::string::npos);
}

TEST(JsonExporter, WritesSnapshot) {
  obs::MetricRegistry registry;
  registry.counter("ecocloud_c_total", {{"k", "v"}}, "A counter").inc(9);
  registry.histogram("ecocloud_h_seconds", {2.0}).observe(1.0);
  std::ostringstream out;
  obs::write_json(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\": \"ecocloud_c_total\""), std::string::npos);
  EXPECT_NE(text.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"value\": 9"), std::string::npos);
  EXPECT_NE(text.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 1"), std::string::npos);
}

// -------------------------------------------------------------- chrome trace

TEST(ChromeTrace, SerializesEventsWithMicrosecondTimestamps) {
  obs::ChromeTraceWriter trace;
  trace.name_process(1, "servers");
  trace.name_thread(1, 17, "server 17");
  trace.complete("active", "server-state", 2.0, 3.5, 1, 17);
  trace.instant("crash", "fault", 4.0, 1, 17, {{"vm", std::int64_t{5}}});
  trace.counter("servers", 6.0, 3, {{"active", std::int64_t{12}}});
  EXPECT_EQ(trace.size(), 5u);

  std::ostringstream out;
  trace.write(out);
  const std::string text = out.str();
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  // 2 s -> 2,000,000 us; durations likewise.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\":2000000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":3500000"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"active\":12}"), std::string::npos);
}

// ------------------------------------------------------------- engine stats

TEST(EngineStats, CountsSchedulingFiringAndCancels) {
  sim::Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  auto cancelled = sim.schedule_at(2.0, [&] { ++fired; });
  auto periodic = sim.schedule_periodic(1.0, [&] { ++fired; }, 0.5);
  ASSERT_TRUE(cancelled.cancel());
  EXPECT_FALSE(cancelled.cancel());  // second cancel is stale

  sim.run_until(3.0);
  periodic.cancel();

  const sim::EngineStats& stats = sim.stats();
  EXPECT_EQ(stats.scheduled_one_shot, 2u);
  EXPECT_EQ(stats.scheduled_periodic, 1u);
  EXPECT_EQ(stats.fired_one_shot, 1u);
  EXPECT_EQ(stats.fired_periodic, 3u);  // t = 0.5, 1.5, 2.5
  EXPECT_EQ(stats.fired_from_heap + stats.fired_from_ring, 4u);
  EXPECT_EQ(stats.cancels, 2u);
  EXPECT_EQ(stats.stale_cancels, 1u);
  EXPECT_GE(stats.slab_high_water, 2u);
  EXPECT_EQ(fired, 4);
}

// ----------------------------------------------------------- bernoulli tally

TEST(BernoulliTally, RecordsOutcomes) {
  core::BernoulliTally tally;
  tally.record(true);
  tally.record(true);
  tally.record(false);
  EXPECT_EQ(tally.accepts, 2u);
  EXPECT_EQ(tally.rejects, 1u);
  EXPECT_EQ(tally.trials(), 3u);
}

// ------------------------------------------------- instrumentation smoke run

namespace {

scenario::DailyConfig small_config() {
  scenario::DailyConfig config;
  config.fleet.num_servers = 30;
  config.num_vms = 450;
  config.horizon_s = 6.0 * sim::kHour;
  config.warmup_s = 1.0 * sim::kHour;
  config.seed = 20130520;
  return config;
}

}  // namespace

TEST(Instrumentation, PopulatesMetricsLogAndTrace) {
  scenario::DailyScenario daily(small_config());

  obs::MetricRegistry registry;
  std::ostringstream log_out;
  obs::Logger logger;
  logger.set_sink(&log_out);
  logger.set_level(obs::LogLevel::kInfo);
  logger.set_clock([&daily] { return daily.simulator().now(); });
  obs::ChromeTraceWriter trace;
  obs::Instrumentation instr(registry, logger, &trace);
  instr.attach_engine(daily.simulator());
  instr.attach_datacenter(daily.datacenter());
  instr.attach_controller(*daily.ecocloud());
  instr.start_flush(daily.simulator(), 300.0);

  daily.run();
  instr.finalize(daily.simulator().now());

  const auto* executed =
      registry.find_counter("ecocloud_engine_executed_events_total");
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(executed->value(), daily.simulator().executed_events());

  // The owned event counters see the whole run from t = 0; the scenario
  // resets the datacenter/controller counters at the end of warm-up, so
  // the telemetry values are an upper bound of the post-warmup ones.
  const auto* activations = registry.find_counter("ecocloud_events_total",
                                                  {{"kind", "activation"}});
  ASSERT_NE(activations, nullptr);
  EXPECT_GT(activations->value(), 0u);
  EXPECT_GE(activations->value(), daily.datacenter().total_activations());

  const auto* wake_latency =
      registry.find_histogram("ecocloud_wake_latency_seconds");
  ASSERT_NE(wake_latency, nullptr);
  EXPECT_GT(wake_latency->count(), 0u);
  EXPECT_GE(wake_latency->count(), daily.ecocloud()->wake_ups());
  // Default boot time is 120 s, so every uncontended wake lands there.
  EXPECT_GE(wake_latency->sum(),
            120.0 * static_cast<double>(wake_latency->count()));

  const auto* trials = registry.find_counter(
      "ecocloud_bernoulli_trials_total",
      {{"function", "fa"}, {"outcome", "accept"}});
  ASSERT_NE(trials, nullptr);
  EXPECT_GT(trials->value(), 0u);

  EXPECT_GT(logger.lines_written(), 0u);
  EXPECT_GT(trace.size(), 0u);

  // Exports of a real run must serialize without throwing.
  std::ostringstream prom, json, tr;
  obs::write_prometheus(registry, prom);
  obs::write_json(registry, json);
  trace.write(tr);
  EXPECT_FALSE(prom.str().empty());
  EXPECT_FALSE(json.str().empty());
  EXPECT_FALSE(tr.str().empty());
}

// --------------------------------------------------- pure-observer guarantee

// The tentpole invariant: running with the full telemetry stack attached
// (registry + logger + trace + periodic flush hook) produces exactly the
// same decision event stream and aggregates as a bare run. Faults are
// enabled so the failure-path instrumentation is covered too. Note
// executed_events() legitimately differs (the flush hook is itself an
// event); the decision stream must not.
TEST(ObsRegression, EventStreamBitIdenticalWithTelemetry) {
  scenario::DailyConfig config = small_config();
  config.horizon_s = 12.0 * sim::kHour;
  config.faults.server_mtbf_s = 6.0 * sim::kHour;
  config.faults.server_mttr_s = 1800.0;

  // Bare run: only the event log observing.
  scenario::DailyScenario bare(config);
  metrics::EventLog bare_log;
  bare_log.attach(*bare.ecocloud());
  bare.run();
  std::ostringstream bare_csv;
  bare_log.write_csv(bare_csv);

  // Instrumented run: event log plus the full telemetry stack.
  scenario::DailyScenario instr_run(config);
  metrics::EventLog instr_log;
  instr_log.attach(*instr_run.ecocloud());
  obs::MetricRegistry registry;
  std::ostringstream log_out;
  obs::Logger logger;
  logger.set_sink(&log_out);
  logger.set_level(obs::LogLevel::kTrace);
  logger.set_clock([&instr_run] { return instr_run.simulator().now(); });
  obs::ChromeTraceWriter trace;
  obs::Instrumentation instr(registry, logger, &trace);
  instr.attach_engine(instr_run.simulator());
  instr.attach_datacenter(instr_run.datacenter());
  instr.attach_controller(*instr_run.ecocloud());
  if (instr_run.fault_injector() != nullptr) {
    instr.attach_faults(*instr_run.fault_injector());
  }
  instr.start_flush(instr_run.simulator(), 300.0);
  instr_run.run();
  instr.finalize(instr_run.simulator().now());

  ASSERT_NE(instr_run.fault_injector(), nullptr);
  EXPECT_GT(instr_run.fault_injector()->stats().crashes(), 0u);

  // Decision streams byte-identical.
  std::ostringstream instr_csv;
  instr_log.write_csv(instr_csv);
  EXPECT_EQ(bare_csv.str(), instr_csv.str());
  EXPECT_GT(bare_log.size(), 0u);

  // Aggregates exactly equal.
  EXPECT_EQ(bare.datacenter().energy_joules(),
            instr_run.datacenter().energy_joules());
  EXPECT_EQ(bare.datacenter().total_migrations(),
            instr_run.datacenter().total_migrations());
  EXPECT_EQ(bare.datacenter().total_activations(),
            instr_run.datacenter().total_activations());
  EXPECT_EQ(bare.datacenter().total_hibernations(),
            instr_run.datacenter().total_hibernations());
  EXPECT_EQ(bare.datacenter().overload_vm_seconds(),
            instr_run.datacenter().overload_vm_seconds());
  EXPECT_EQ(bare.ecocloud()->messages().total(),
            instr_run.ecocloud()->messages().total());
  EXPECT_EQ(bare.ecocloud()->low_migrations(),
            instr_run.ecocloud()->low_migrations());
  EXPECT_EQ(bare.ecocloud()->high_migrations(),
            instr_run.ecocloud()->high_migrations());

  // The flush hook adds events, so the raw executed count must be larger —
  // that is the one permitted difference.
  EXPECT_GT(instr_run.simulator().executed_events(),
            bare.simulator().executed_events());
}

// ---------------------------------------------------- exporter hardening

TEST(MetricRegistry, InvalidLabelNamesRejected) {
  obs::MetricRegistry registry;
  EXPECT_THROW(registry.counter("ecocloud_bad_total", {{"1digit", "v"}}),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("ecocloud_bad_total", {{"has:colon", "v"}}),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("ecocloud_bad_total", {{"", "v"}}),
               std::invalid_argument);
  // Values, unlike names, are free-form (the exporter escapes them).
  registry.counter("ecocloud_ok_total", {{"_ok", "anything: goes\n"}});
}

TEST(MetricRegistry, LeLabelReservedOnHistograms) {
  obs::MetricRegistry registry;
  EXPECT_THROW(
      registry.histogram("ecocloud_h_seconds", {1.0}, {{"le", "0.5"}}),
      std::invalid_argument);
  // "le" stays usable on non-histogram families.
  registry.counter("ecocloud_le_total", {{"le", "x"}});
}

TEST(MetricRegistry, NonFiniteHistogramBoundsRejected) {
  obs::MetricRegistry registry;
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(registry.histogram("ecocloud_h1_seconds", {1.0, inf}),
               std::invalid_argument);
  EXPECT_THROW(
      registry.histogram("ecocloud_h2_seconds",
                         {std::numeric_limits<double>::quiet_NaN()}),
      std::invalid_argument);
}

TEST(MetricRegistry, NonFiniteObservationsLandInInfBucketOnly) {
  obs::MetricRegistry registry;
  obs::Histogram& h = registry.histogram("ecocloud_h_seconds", {1.0});
  h.observe(0.5);
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);  // non-finite values excluded from sum
  const auto& counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(MetricRegistry, HistogramResetToMirrorsExternalCounts) {
  obs::MetricRegistry registry;
  obs::Histogram& h = registry.histogram("ecocloud_h_seconds", {1.0, 5.0});
  h.observe(0.3);
  h.reset_to({4, 2, 1}, 12.5);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.5);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{4, 2, 1}));
  EXPECT_THROW(h.reset_to({1, 2}, 0.0), std::invalid_argument);  // wrong size
}

TEST(PrometheusExporter, HistogramExpositionIsCumulativeWithInfBucket) {
  obs::MetricRegistry registry;
  obs::Histogram& h =
      registry.histogram("ecocloud_lat_seconds", {1.0, 5.0}, {{"op", "x"}});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(99.0);
  std::ostringstream out;
  obs::write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("ecocloud_lat_seconds_bucket{op=\"x\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ecocloud_lat_seconds_bucket{op=\"x\",le=\"5\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ecocloud_lat_seconds_bucket{op=\"x\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ecocloud_lat_seconds_count{op=\"x\"} 3"),
            std::string::npos);
  // The +Inf bucket equals _count — the consistency scrapers assert on.
  EXPECT_NE(text.find("ecocloud_lat_seconds_sum{op=\"x\"} 102.5"),
            std::string::npos);
}

TEST(JsonExporter, NonFiniteHistogramSumStaysValidJson) {
  obs::MetricRegistry registry;
  obs::Histogram& h = registry.histogram("ecocloud_h_seconds", {1.0});
  h.reset_to({0, 0}, std::numeric_limits<double>::quiet_NaN());
  std::ostringstream out;
  obs::write_json(registry, out);
  const std::string text = out.str();
  // A bare NaN token would break every JSON parser; it must be quoted.
  EXPECT_EQ(text.find("\"sum\": nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("\"sum\": -nan"), std::string::npos) << text;
  EXPECT_NE(text.find("\"sum\": \""), std::string::npos) << text;
}
