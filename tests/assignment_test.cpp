// Tests for the decentralized assignment procedure (invitation rounds).

#include <gtest/gtest.h>

#include "ecocloud/core/assignment.hpp"

namespace core = ecocloud::core;
namespace dc = ecocloud::dc;
using ecocloud::util::Rng;

namespace {

struct Fixture {
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  Rng rng{123};

  Fixture() { params.validate(); }

  dc::ServerId add_active_server(double utilization, unsigned cores = 6) {
    const auto s = datacenter.add_server(cores, 2000.0);
    datacenter.start_booting(0.0, s);
    datacenter.finish_booting(0.0, s);
    if (utilization > 0.0) {
      const auto v = datacenter.create_vm(
          utilization * datacenter.server(s).capacity_mhz());
      datacenter.place_vm(0.0, v, s);
    }
    return s;
  }
};

}  // namespace

TEST(Assignment, NoActiveServersMeansNoVolunteers) {
  Fixture f;
  f.datacenter.add_server(6, 2000.0);  // hibernated
  core::AssignmentProcedure proc(f.params, f.rng);
  const auto result = proc.invite(f.datacenter, 0.0, 100.0);
  EXPECT_FALSE(result.server.has_value());
  EXPECT_EQ(result.contacted, 0u);
}

TEST(Assignment, ServerAtArgmaxAlmostAlwaysVolunteers) {
  Fixture f;
  core::AssignmentProcedure proc(f.params, f.rng);
  const auto s = f.add_active_server(proc.fa().argmax());
  int accepted = 0;
  for (int i = 0; i < 1000; ++i) {
    if (proc.invite(f.datacenter, 0.0, 10.0).server.has_value()) ++accepted;
  }
  // f_a(argmax) = 1, so only the fit check could refuse (it does not here).
  EXPECT_EQ(accepted, 1000);
  (void)s;
}

TEST(Assignment, EmptyServerNeverVolunteers) {
  Fixture f;
  f.add_active_server(0.0);
  core::AssignmentProcedure proc(f.params, f.rng);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(proc.invite(f.datacenter, 0.0, 10.0).server.has_value());
  }
}

TEST(Assignment, ServerAboveTaNeverVolunteers) {
  Fixture f;
  f.add_active_server(0.95);
  core::AssignmentProcedure proc(f.params, f.rng);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(proc.invite(f.datacenter, 0.0, 10.0).server.has_value());
  }
}

TEST(Assignment, AcceptanceFrequencyTracksFa) {
  Fixture f;
  const double u = 0.4;
  f.add_active_server(u);
  core::AssignmentProcedure proc(f.params, f.rng);
  const double expected = proc.fa()(u);
  int accepted = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (proc.invite(f.datacenter, 0.0, 1.0).server.has_value()) ++accepted;
  }
  EXPECT_NEAR(static_cast<double>(accepted) / n, expected, 0.02);
}

TEST(Assignment, FitCheckRejectsOversizedVm) {
  Fixture f;
  f.add_active_server(0.675);  // argmax for Ta=0.9, p=3: fa = 1
  core::AssignmentProcedure proc(f.params, f.rng);
  // Remaining capacity is 0.325 * 12000 = 3900 MHz; a 5000 MHz VM cannot fit.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(proc.invite(f.datacenter, 0.0, 5000.0).server.has_value());
  }
  // With require_fit disabled the same server volunteers.
  Fixture f2;
  f2.params.require_fit = false;
  f2.add_active_server(0.675);
  core::AssignmentProcedure proc2(f2.params, f2.rng);
  EXPECT_TRUE(proc2.invite(f2.datacenter, 0.0, 5000.0).server.has_value());
}

TEST(Assignment, GraceServerAcceptsDeterministically) {
  Fixture f;
  const auto s = f.add_active_server(0.0);  // empty: fa = 0
  f.datacenter.server_mutable(s).set_grace_until(1000.0);
  core::AssignmentProcedure proc(f.params, f.rng);
  // During grace it accepts every VM that keeps it under Ta...
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(proc.invite(f.datacenter, 500.0, 100.0).server.has_value());
  }
  // ...but not one that would push it over Ta.
  EXPECT_FALSE(
      proc.invite(f.datacenter, 500.0, 0.95 * 12000.0).server.has_value());
  // After grace expiry the empty server refuses again.
  EXPECT_FALSE(proc.invite(f.datacenter, 1000.0, 100.0).server.has_value());
}

TEST(Assignment, TaOverrideRestrictsVolunteers) {
  Fixture f;
  f.add_active_server(0.7);
  core::AssignmentProcedure proc(f.params, f.rng);
  // With default Ta = 0.9 the 0.7 server can volunteer.
  int base_accepts = 0;
  for (int i = 0; i < 500; ++i) {
    if (proc.invite(f.datacenter, 0.0, 1.0).server.has_value()) ++base_accepts;
  }
  EXPECT_GT(base_accepts, 0);
  // With Ta' = 0.6 < u it never volunteers (the high-migration variant).
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(proc.invite(f.datacenter, 0.0, 1.0, 0.0, 0.6).server.has_value());
  }
}

TEST(Assignment, ExcludedServerIsNotContacted) {
  Fixture f;
  const auto s = f.add_active_server(0.675);
  core::AssignmentProcedure proc(f.params, f.rng);
  const auto result = proc.invite(f.datacenter, 0.0, 1.0, 0.0, -1.0, s);
  EXPECT_EQ(result.contacted, 0u);
  EXPECT_FALSE(result.server.has_value());
}

TEST(Assignment, PicksUniformlyAmongVolunteers) {
  Fixture f;
  std::vector<dc::ServerId> servers;
  for (int i = 0; i < 4; ++i) servers.push_back(f.add_active_server(0.675));
  core::AssignmentProcedure proc(f.params, f.rng);
  std::vector<int> hits(4, 0);
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    const auto result = proc.invite(f.datacenter, 0.0, 1.0);
    ASSERT_TRUE(result.server.has_value());
    ++hits[*result.server];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / n, 0.25, 0.03);
  }
}

TEST(Assignment, HigherFaServersChosenMoreOften) {
  Fixture f;
  const auto mid = f.add_active_server(0.675);  // fa = 1
  const auto low = f.add_active_server(0.20);   // fa ~ 0.08
  core::AssignmentProcedure proc(f.params, f.rng);
  int mid_hits = 0, low_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto result = proc.invite(f.datacenter, 0.0, 1.0);
    if (result.server == mid) ++mid_hits;
    if (result.server == low) ++low_hits;
  }
  EXPECT_GT(mid_hits, 5 * low_hits);
}

TEST(Assignment, InviteGroupSizeLimitsContacts) {
  Fixture f;
  for (int i = 0; i < 20; ++i) f.add_active_server(0.675);
  f.params.invite_group_size = 5;
  core::AssignmentProcedure proc(f.params, f.rng);
  const auto result = proc.invite(f.datacenter, 0.0, 1.0);
  EXPECT_EQ(result.contacted, 5u);
  EXPECT_LE(result.volunteers, 5u);
  EXPECT_TRUE(result.server.has_value());
}

TEST(Assignment, VolunteerCountReported) {
  Fixture f;
  for (int i = 0; i < 10; ++i) f.add_active_server(0.675);  // all fa = 1
  core::AssignmentProcedure proc(f.params, f.rng);
  const auto result = proc.invite(f.datacenter, 0.0, 1.0);
  EXPECT_EQ(result.volunteers, 10u);
  EXPECT_EQ(result.contacted, 10u);
}

TEST(Assignment, NegativeDemandRejected) {
  Fixture f;
  core::AssignmentProcedure proc(f.params, f.rng);
  EXPECT_THROW(proc.invite(f.datacenter, 0.0, -1.0), std::invalid_argument);
}
